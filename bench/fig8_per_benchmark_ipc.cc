/**
 * @file
 * E8 / Figure 8: per-benchmark IPC at the ~53KB/64KB budget point
 * with realistic (overriding) implementations, plus harmonic and
 * arithmetic means.
 *
 * Paper reading: gshare.fast's harmonic-mean IPC edges out the
 * complex predictors (1.71-ish vs paper's perceptron/multicomponent
 * slightly below); some benchmarks favour the complex predictors
 * slightly, others favour gshare.fast.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "common/stats.hh"

using namespace bpsim;

int
main(int argc, char **argv)
{
    BenchSession session(argc, argv, "fig8_per_benchmark_ipc");
    requireNoExtraArgs(argc, argv);
    const Counter ops = benchOpsPerWorkload(800000);
    benchHeader("Figure 8",
                "per-benchmark IPC at the 53KB/64KB budget "
                "(overriding implementations)",
                ops);
    SuiteTraces suite(ops, 42, session.pool());
    CoreConfig cfg;

    const std::vector<std::pair<PredictorKind, std::size_t>> configs = {
        {PredictorKind::MultiComponent, 53 * 1024},
        {PredictorKind::Gskew, 64 * 1024},
        {PredictorKind::Perceptron, 64 * 1024},
        {PredictorKind::GshareFast, 64 * 1024},
    };

    std::vector<std::vector<double>> ipc(configs.size());
    for (std::size_t c = 0; c < configs.size(); ++c) {
        const auto res = suiteTimingReport(
            suite, cfg,
            [&] {
                return makeFetchPredictor(configs[c].first,
                                          configs[c].second,
                                          DelayMode::Overriding);
            },
            nullptr, session.report(), kindName(configs[c].first),
            delayModeName(DelayMode::Overriding), configs[c].second,
            session.metricsIfEnabled(), session.tracer(),
            session.pool());
        for (const auto &r : res)
            ipc[c].push_back(r.ipc());
    }

    std::printf("%-12s", "benchmark");
    for (const auto &[k, b] : configs)
        std::printf("%16s", kindName(k).c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < suite.size(); ++i) {
        std::printf("%-12s", shortName(suite.name(i)).c_str());
        for (std::size_t c = 0; c < configs.size(); ++c)
            std::printf("%16.3f", ipc[c][i]);
        std::printf("\n");
    }
    std::printf("%-12s", "harm.mean");
    for (std::size_t c = 0; c < configs.size(); ++c)
        std::printf("%16.3f", harmonicMean(ipc[c]));
    std::printf("\n%-12s", "arith.mean");
    for (std::size_t c = 0; c < configs.size(); ++c)
        std::printf("%16.3f", arithmeticMean(ipc[c]));
    std::printf("\n");
    return 0;
}
