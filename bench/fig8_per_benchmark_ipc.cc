/**
 * @file
 * E8 / Figure 8: per-benchmark IPC at the ~53KB/64KB budget point
 * with realistic (overriding) implementations, plus harmonic and
 * arithmetic means.
 *
 * Paper reading: gshare.fast's harmonic-mean IPC edges out the
 * complex predictors (1.71-ish vs paper's perceptron/multicomponent
 * slightly below); some benchmarks favour the complex predictors
 * slightly, others favour gshare.fast.
 */

#include <vector>

#include "artifact_registry.hh"
#include "common/stats.hh"

namespace bpsim {

namespace {

int
run(const ArtifactSpec &spec, SweepContext &ctx)
{
    const Counter ops = benchOpsPerWorkload(spec.defaultOps);
    benchHeader(ctx, "Figure 8",
                "per-benchmark IPC at the 53KB/64KB budget "
                "(overriding implementations)",
                ops);
    SuiteTraces suite(ops, 42, ctx.pool(), /*shared_pool=*/true);
    CoreConfig cfg;

    const std::vector<std::pair<PredictorKind, std::size_t>> configs = {
        {PredictorKind::MultiComponent, 53 * 1024},
        {PredictorKind::Gskew, 64 * 1024},
        {PredictorKind::Perceptron, 64 * 1024},
        {PredictorKind::GshareFast, 64 * 1024},
    };

    // One TimingCellConfig per column. The four kinds are distinct
    // but each owns a private core paused at side-effect-free
    // boundaries, so the engine merges them into ONE heterogeneous
    // group per workload: one trace pass for the whole figure
    // (core.ensemble.timing.hetero_* gauges report the merge).
    std::vector<TimingCellConfig> cells;
    for (const auto &[k, b] : configs)
        cells.push_back({[k = k, b = b] {
                             return makeFetchPredictor(
                                 k, b, DelayMode::Overriding);
                         },
                         kindName(k),
                         delayModeName(DelayMode::Overriding),
                         b,
                         cfg});
    suiteTimingReportEnsemble(suite, cells, ctx.report(),
                              ctx.metricsIfEnabled(), ctx.tracer(),
                              ctx.pool());
    std::vector<std::vector<double>> ipc(configs.size());
    for (std::size_t c = 0; c < configs.size(); ++c)
        for (const auto &r : cells[c].results)
            ipc[c].push_back(r.ipc());

    ctx.printf("%-12s", "benchmark");
    for (const auto &[k, b] : configs)
        ctx.printf("%16s", kindName(k).c_str());
    ctx.printf("\n");
    for (std::size_t i = 0; i < suite.size(); ++i) {
        ctx.printf("%-12s", shortName(suite.name(i)).c_str());
        for (std::size_t c = 0; c < configs.size(); ++c)
            ctx.printf("%16.3f", ipc[c][i]);
        ctx.printf("\n");
    }
    ctx.printf("%-12s", "harm.mean");
    for (std::size_t c = 0; c < configs.size(); ++c)
        ctx.printf("%16.3f", harmonicMean(ipc[c]));
    ctx.printf("\n%-12s", "arith.mean");
    for (std::size_t c = 0; c < configs.size(); ++c)
        ctx.printf("%16.3f", arithmeticMean(ipc[c]));
    ctx.printf("\n");
    return 0;
}

} // namespace

const ArtifactDef &
fig8PerBenchmarkIpcArtifact()
{
    static const ArtifactDef def = {
        {"fig8_per_benchmark_ipc",
         "Figure 8: per-benchmark IPC at 53KB/64KB (overriding)",
         800000, false, ""},
        run,
    };
    return def;
}

} // namespace bpsim

#ifndef BPSIM_ARTIFACT_LIB
int
main(int argc, char **argv)
{
    return bpsim::artifactMain(bpsim::fig8PerBenchmarkIpcArtifact(),
                               argc, argv);
}
#endif
