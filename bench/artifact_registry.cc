#include "artifact_registry.hh"

namespace bpsim {

const std::vector<ArtifactDef> &
artifactRegistry()
{
    // Canonical (paper) order: figures, table, ablations, studies.
    // bpsweep launches and prints in this order; keep it stable so
    // sweep output and report directories stay diffable over time.
    static const std::vector<ArtifactDef> defs = {
        fig1AccuracyBudgetArtifact(),
        fig2IdealVsOverridingArtifact(),
        fig5AccuracyLargeArtifact(),
        fig6PerBenchmarkAccuracyArtifact(),
        fig7IpcBudgetArtifact(),
        fig8PerBenchmarkIpcArtifact(),
        table2AccessDelayArtifact(),
        ablationUpdateDelayArtifact(),
        ablationDelayHidingArtifact(),
        ablationPipelineArtifact(),
        studyDisagreementArtifact(),
        studyPipelineDepthArtifact(),
        studyContextSwitchArtifact(),
        studySoftErrorArtifact(),
        studyProtectionSurfaceArtifact(),
        studyFieldVulnerabilityArtifact(),
    };
    return defs;
}

const ArtifactDef *
findArtifact(const std::string &name)
{
    for (const ArtifactDef &def : artifactRegistry())
        if (def.spec.name == name)
            return &def;
    return nullptr;
}

} // namespace bpsim
