/**
 * @file
 * E5 / Figure 5: arithmetic-mean misprediction rates of the four
 * large predictors (multi-component, 2Bc-gskew, perceptron,
 * gshare.fast) at 16KB-512KB budgets.
 *
 * Paper reading: the complex predictors hold a modest accuracy edge
 * over gshare.fast at every budget (about one percentage point at
 * 64KB: perceptron 3.6% vs gshare.fast 4.4% in the paper), and the
 * ordering perceptron < multi-component < 2Bc-gskew < gshare.fast
 * is stable.
 */

#include "artifact_registry.hh"

namespace bpsim {

namespace {

int
run(const ArtifactSpec &spec, SweepContext &ctx)
{
    const Counter ops = benchOpsPerWorkload(spec.defaultOps);
    benchHeader(ctx, "Figure 5",
                "arithmetic-mean misprediction (%) of the four large "
                "predictors",
                ops);
    SuiteTraces suite(ops, 42, ctx.pool(), /*shared_pool=*/true);

    ctx.printf("%-8s", "budget");
    for (auto k : largePredictorKinds())
        ctx.printf("%16s", kindName(k).c_str());
    ctx.printf("\n");

    for (std::size_t budget : largeBudgetsBytes()) {
        ctx.printf("%-8s", budgetLabel(budget).c_str());
        for (auto k : largePredictorKinds()) {
            double mean = 0;
            suiteAccuracyReport(
                suite, [&] { return makePredictor(k, budget); },
                &mean, ctx.report(), kindName(k), budget,
                ctx.metricsIfEnabled(), ctx.pool());
            ctx.printf("%16.2f", mean);
        }
        ctx.printf("\n");
    }
    return 0;
}

} // namespace

const ArtifactDef &
fig5AccuracyLargeArtifact()
{
    static const ArtifactDef def = {
        {"fig5_accuracy_large",
         "Figure 5: mean misprediction (%) of the large predictors",
         1200000, false, ""},
        run,
    };
    return def;
}

} // namespace bpsim

#ifndef BPSIM_ARTIFACT_LIB
int
main(int argc, char **argv)
{
    return bpsim::artifactMain(bpsim::fig5AccuracyLargeArtifact(),
                               argc, argv);
}
#endif
