/**
 * @file
 * E5 / Figure 5: arithmetic-mean misprediction rates of the four
 * large predictors (multi-component, 2Bc-gskew, perceptron,
 * gshare.fast) at 16KB-512KB budgets.
 *
 * Paper reading: the complex predictors hold a modest accuracy edge
 * over gshare.fast at every budget (about one percentage point at
 * 64KB: perceptron 3.6% vs gshare.fast 4.4% in the paper), and the
 * ordering perceptron < multi-component < 2Bc-gskew < gshare.fast
 * is stable.
 */

#include "artifact_registry.hh"

namespace bpsim {

namespace {

int
run(const ArtifactSpec &spec, SweepContext &ctx)
{
    const Counter ops = benchOpsPerWorkload(spec.defaultOps);
    benchHeader(ctx, "Figure 5",
                "arithmetic-mean misprediction (%) of the four large "
                "predictors",
                ops);
    SuiteTraces suite(ops, 42, ctx.pool(), /*shared_pool=*/true);

    ctx.printf("%-8s", "budget");
    for (auto k : largePredictorKinds())
        ctx.printf("%16s", kindName(k).c_str());
    ctx.printf("\n");

    // Same structure as Figure 1: list the cells in the serial row
    // order, let the ensemble engine batch each kind across budgets.
    std::vector<AccuracyCellConfig> cells;
    for (std::size_t budget : largeBudgetsBytes())
        for (auto k : largePredictorKinds()) {
            AccuracyCellConfig c;
            c.make = [k, budget] { return makePredictor(k, budget); };
            c.name = kindName(k);
            c.budgetBytes = budget;
            cells.push_back(std::move(c));
        }
    suiteAccuracyReportEnsemble(suite, cells, ctx.report(),
                                ctx.metricsIfEnabled(), ctx.pool());

    std::size_t cell = 0;
    for (std::size_t budget : largeBudgetsBytes()) {
        ctx.printf("%-8s", budgetLabel(budget).c_str());
        for ([[maybe_unused]] auto k : largePredictorKinds())
            ctx.printf("%16.2f", cells[cell++].meanPercent);
        ctx.printf("\n");
    }
    return 0;
}

} // namespace

const ArtifactDef &
fig5AccuracyLargeArtifact()
{
    static const ArtifactDef def = {
        {"fig5_accuracy_large",
         "Figure 5: mean misprediction (%) of the large predictors",
         1200000, false, ""},
        run,
    };
    return def;
}

} // namespace bpsim

#ifndef BPSIM_ARTIFACT_LIB
int
main(int argc, char **argv)
{
    return bpsim::artifactMain(bpsim::fig5AccuracyLargeArtifact(),
                               argc, argv);
}
#endif
