/**
 * @file
 * E5 / Figure 5: arithmetic-mean misprediction rates of the four
 * large predictors (multi-component, 2Bc-gskew, perceptron,
 * gshare.fast) at 16KB-512KB budgets.
 *
 * Paper reading: the complex predictors hold a modest accuracy edge
 * over gshare.fast at every budget (about one percentage point at
 * 64KB: perceptron 3.6% vs gshare.fast 4.4% in the paper), and the
 * ordering perceptron < multi-component < 2Bc-gskew < gshare.fast
 * is stable.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace bpsim;

int
main(int argc, char **argv)
{
    BenchSession session(argc, argv, "fig5_accuracy_large");
    requireNoExtraArgs(argc, argv);
    const Counter ops = benchOpsPerWorkload(1200000);
    benchHeader("Figure 5",
                "arithmetic-mean misprediction (%) of the four large "
                "predictors",
                ops);
    SuiteTraces suite(ops, 42, session.pool());

    std::printf("%-8s", "budget");
    for (auto k : largePredictorKinds())
        std::printf("%16s", kindName(k).c_str());
    std::printf("\n");

    for (std::size_t budget : largeBudgetsBytes()) {
        std::printf("%-8s", budgetLabel(budget).c_str());
        for (auto k : largePredictorKinds()) {
            double mean = 0;
            suiteAccuracyReport(
                suite, [&] { return makePredictor(k, budget); },
                &mean, session.report(), kindName(k), budget,
                session.metricsIfEnabled(), session.pool());
            std::printf("%16.2f", mean);
        }
        std::printf("\n");
    }
    return 0;
}
