/**
 * @file
 * E2 / Figure 2: harmonic-mean IPC of the perceptron and
 * multi-component predictors with (a) ideal zero-delay access and
 * (b) realistic overriding (quick 2K gshare in front, disagreement
 * bubbles equal to the slow predictor's latency), over 16KB-512KB.
 *
 * Paper reading: ideal IPC rises with budget; realistic IPC peaks at
 * a moderate budget and *declines* at large ones — the 512KB
 * perceptron loses ~11% IPC against its 32KB version. This is the
 * paper's motivating result.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"

using namespace bpsim;

int
main(int argc, char **argv)
{
    BenchSession session(argc, argv, "fig2_ideal_vs_overriding");
    requireNoExtraArgs(argc, argv);
    const Counter ops = benchOpsPerWorkload(800000);
    benchHeader("Figure 2",
                "harmonic-mean IPC: zero-delay vs overriding", ops);
    SuiteTraces suite(ops, 42, session.pool());
    CoreConfig cfg;

    const std::vector<PredictorKind> kinds = {
        PredictorKind::Perceptron,
        PredictorKind::MultiComponent,
    };

    std::printf("%-8s", "budget");
    for (auto k : kinds) {
        std::printf(" %21s", (kindName(k) + " (ideal)").c_str());
        std::printf(" %21s", (kindName(k) + " (overr.)").c_str());
        std::printf(" %5s", "lat");
    }
    std::printf("\n");

    for (std::size_t budget : largeBudgetsBytes()) {
        std::printf("%-8s", budgetLabel(budget).c_str());
        for (auto k : kinds) {
            double ideal = 0, over = 0;
            suiteTimingReport(
                suite, cfg,
                [&] {
                    return makeFetchPredictor(k, budget,
                                              DelayMode::Ideal);
                },
                &ideal, session.report(), kindName(k),
                delayModeName(DelayMode::Ideal), budget,
                session.metricsIfEnabled(), session.tracer(),
                session.pool());
            suiteTimingReport(
                suite, cfg,
                [&] {
                    return makeFetchPredictor(k, budget,
                                              DelayMode::Overriding);
                },
                &over, session.report(), kindName(k),
                delayModeName(DelayMode::Overriding), budget,
                session.metricsIfEnabled(), session.tracer(),
                session.pool());
            std::printf(" %21.3f %21.3f %5u", ideal, over,
                        predictorLatencyCycles(k, budget));
        }
        std::printf("\n");
    }

    std::printf("\n(\"lat\" = modelled access latency in cycles; the "
                "overriding penalty per disagreement)\n");
    return 0;
}
