/**
 * @file
 * E2 / Figure 2: harmonic-mean IPC of the perceptron and
 * multi-component predictors with (a) ideal zero-delay access and
 * (b) realistic overriding (quick 2K gshare in front, disagreement
 * bubbles equal to the slow predictor's latency), over 16KB-512KB.
 *
 * Paper reading: ideal IPC rises with budget; realistic IPC peaks at
 * a moderate budget and *declines* at large ones — the 512KB
 * perceptron loses ~11% IPC against its 32KB version. This is the
 * paper's motivating result.
 */

#include <vector>

#include "artifact_registry.hh"

namespace bpsim {

namespace {

int
run(const ArtifactSpec &spec, SweepContext &ctx)
{
    const Counter ops = benchOpsPerWorkload(spec.defaultOps);
    benchHeader(ctx, "Figure 2",
                "harmonic-mean IPC: zero-delay vs overriding", ops);
    SuiteTraces suite(ops, 42, ctx.pool(), /*shared_pool=*/true);
    CoreConfig cfg;

    const std::vector<PredictorKind> kinds = {
        PredictorKind::Perceptron,
        PredictorKind::MultiComponent,
    };

    // Cells in the serial row order (budget, kind, ideal then
    // overriding); each kind's ideal and overriding series batch
    // across budgets into one trace pass per workload.
    std::vector<TimingCellConfig> cells;
    for (std::size_t budget : largeBudgetsBytes())
        for (auto k : kinds)
            for (const DelayMode mode :
                 {DelayMode::Ideal, DelayMode::Overriding})
                cells.push_back(
                    {[k, budget, mode] {
                         return makeFetchPredictor(k, budget, mode);
                     },
                     kindName(k),
                     delayModeName(mode),
                     budget,
                     cfg});
    suiteTimingReportEnsemble(suite, cells, ctx.report(),
                              ctx.metricsIfEnabled(), ctx.tracer(),
                              ctx.pool());

    ctx.printf("%-8s", "budget");
    for (auto k : kinds) {
        ctx.printf(" %21s", (kindName(k) + " (ideal)").c_str());
        ctx.printf(" %21s", (kindName(k) + " (overr.)").c_str());
        ctx.printf(" %5s", "lat");
    }
    ctx.printf("\n");

    std::size_t cell = 0;
    for (std::size_t budget : largeBudgetsBytes()) {
        ctx.printf("%-8s", budgetLabel(budget).c_str());
        for (auto k : kinds) {
            const double ideal = cells[cell++].harmonicMeanIpc;
            const double over = cells[cell++].harmonicMeanIpc;
            ctx.printf(" %21.3f %21.3f %5u", ideal, over,
                       predictorLatencyCycles(k, budget));
        }
        ctx.printf("\n");
    }

    ctx.printf("\n(\"lat\" = modelled access latency in cycles; the "
               "overriding penalty per disagreement)\n");
    return 0;
}

} // namespace

const ArtifactDef &
fig2IdealVsOverridingArtifact()
{
    static const ArtifactDef def = {
        {"fig2_ideal_vs_overriding",
         "Figure 2: harmonic-mean IPC, zero-delay vs overriding",
         800000, false, ""},
        run,
    };
    return def;
}

} // namespace bpsim

#ifndef BPSIM_ARTIFACT_LIB
int
main(int argc, char **argv)
{
    return bpsim::artifactMain(
        bpsim::fig2IdealVsOverridingArtifact(), argc, argv);
}
#endif
