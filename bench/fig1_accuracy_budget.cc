/**
 * @file
 * E1 / Figure 1: arithmetic-mean SPECint misprediction rates of
 * gshare, bi-mode, the multi-component hybrid and the perceptron,
 * swept over hardware budgets from 2KB to 512KB.
 *
 * Paper reading: all predictors improve with budget; the perceptron
 * and multi-component hybrid are the most accurate at every point;
 * bi-mode beats gshare.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"

using namespace bpsim;

int
main(int argc, char **argv)
{
    BenchSession session(argc, argv, "fig1_accuracy_budget");
    requireNoExtraArgs(argc, argv);
    const Counter ops = benchOpsPerWorkload(1200000);
    benchHeader("Figure 1",
                "arithmetic-mean misprediction (%) vs hardware budget",
                ops);
    SuiteTraces suite(ops, 42, session.pool());

    const std::vector<PredictorKind> kinds = {
        PredictorKind::Gshare,
        PredictorKind::BiMode,
        PredictorKind::MultiComponent,
        PredictorKind::Perceptron,
    };

    std::printf("%-16s", "budget");
    for (auto k : kinds)
        std::printf("%16s", kindName(k).c_str());
    std::printf("\n");

    for (std::size_t budget : figure1BudgetsBytes()) {
        std::printf("%-16s", budgetLabel(budget).c_str());
        for (auto k : kinds) {
            double mean = 0;
            suiteAccuracyReport(
                suite, [&] { return makePredictor(k, budget); },
                &mean, session.report(), kindName(k), budget,
                session.metricsIfEnabled(), session.pool());
            std::printf("%16.2f", mean);
        }
        std::printf("\n");
    }
    return 0;
}
