/**
 * @file
 * E1 / Figure 1: arithmetic-mean SPECint misprediction rates of
 * gshare, bi-mode, the multi-component hybrid and the perceptron,
 * swept over hardware budgets from 2KB to 512KB.
 *
 * Paper reading: all predictors improve with budget; the perceptron
 * and multi-component hybrid are the most accurate at every point;
 * bi-mode beats gshare.
 */

#include <vector>

#include "artifact_registry.hh"

namespace bpsim {

namespace {

int
run(const ArtifactSpec &spec, SweepContext &ctx)
{
    const Counter ops = benchOpsPerWorkload(spec.defaultOps);
    benchHeader(ctx, "Figure 1",
                "arithmetic-mean misprediction (%) vs hardware budget",
                ops);
    SuiteTraces suite(ops, 42, ctx.pool(), /*shared_pool=*/true);

    const std::vector<PredictorKind> kinds = {
        PredictorKind::Gshare,
        PredictorKind::BiMode,
        PredictorKind::MultiComponent,
        PredictorKind::Perceptron,
    };

    ctx.printf("%-16s", "budget");
    for (auto k : kinds)
        ctx.printf("%16s", kindName(k).c_str());
    ctx.printf("\n");

    // Budget-major, kind-minor — the row order of the serial sweep.
    // The ensemble engine groups the cells by kind across budgets
    // and replays each group in one pass per trace; rows and means
    // come out byte-identical to the per-cell suiteAccuracyReport
    // calls this loop used to make.
    std::vector<AccuracyCellConfig> cells;
    for (std::size_t budget : figure1BudgetsBytes())
        for (auto k : kinds) {
            AccuracyCellConfig c;
            c.make = [k, budget] { return makePredictor(k, budget); };
            c.name = kindName(k);
            c.budgetBytes = budget;
            cells.push_back(std::move(c));
        }
    suiteAccuracyReportEnsemble(suite, cells, ctx.report(),
                                ctx.metricsIfEnabled(), ctx.pool());

    std::size_t cell = 0;
    for (std::size_t budget : figure1BudgetsBytes()) {
        ctx.printf("%-16s", budgetLabel(budget).c_str());
        for ([[maybe_unused]] auto k : kinds)
            ctx.printf("%16.2f", cells[cell++].meanPercent);
        ctx.printf("\n");
    }
    return 0;
}

} // namespace

const ArtifactDef &
fig1AccuracyBudgetArtifact()
{
    static const ArtifactDef def = {
        {"fig1_accuracy_budget",
         "Figure 1: mean misprediction (%) vs hardware budget",
         1200000, false, ""},
        run,
    };
    return def;
}

} // namespace bpsim

#ifndef BPSIM_ARTIFACT_LIB
int
main(int argc, char **argv)
{
    return bpsim::artifactMain(bpsim::fig1AccuracyBudgetArtifact(),
                               argc, argv);
}
#endif
