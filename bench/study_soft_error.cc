/**
 * @file
 * Soft-error resilience study: predictor accuracy and IPC under SRAM
 * single-event upsets.
 *
 * Predictor state is architecturally invisible — a flipped PHT bit
 * can only cost accuracy, never correctness — so complex predictors
 * should degrade *gracefully* as the upset rate climbs. This study
 * bombards the five headline predictors at the 64KB budget with
 * upset rates from 0 to 1e-2 flips/bit/event (one event every 256
 * branches) and reports mean misprediction per rate, plus a
 * gshare.fast timing sweep showing the IPC cost of the same upsets.
 *
 * Every cell runs through the HardenedSuiteRunner: pass
 * `--manifest FILE` and a killed campaign restarted with the same
 * file resumes from the first incomplete cell, producing a final
 * --report byte-identical to an uninterrupted run.
 */

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "artifact_registry.hh"
#include "common/stats.hh"
#include "robust/fault_injector.hh"
#include "robust/hardened_runner.hh"

namespace bpsim {

namespace {

/** "0", "1e-06", ... — stable across platforms for row keys. */
std::string
rateLabel(double rate)
{
    if (rate == 0.0)
        return "0";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0e", rate);
    return buf;
}

/** Predictor label with the swept upset rate folded in, so every
 *  (workload, predictor) row key stays unique: "gshare@u=1e-05". */
std::string
cellLabel(PredictorKind kind, double rate)
{
    return kindName(kind) + "@u=" + rateLabel(rate);
}

/** Per-cell fault seed: same campaign => same flip sequence, but no
 *  two cells share one. */
std::uint64_t
cellSeed(std::size_t kind_i, std::size_t rate_i, std::size_t wl_i)
{
    return 0x5eedfa17 + kind_i * 1000003 + rate_i * 997 + wl_i;
}

int
run(const ArtifactSpec &spec, SweepContext &ctx)
{
    const Counter ops = benchOpsPerWorkload(spec.defaultOps);
    benchHeader(ctx, "Soft-error study",
                "accuracy/IPC vs SRAM upset rate at 64KB", ops);
    SuiteTraces suite(ops, 42, ctx.pool(), /*shared_pool=*/true);
    suite.describe(ctx.report());
    CoreConfig cfg;

    const std::size_t budget = 64 * 1024;
    const std::vector<double> rates = {0.0, 1e-5, 1e-4, 1e-3, 1e-2};
    const std::vector<PredictorKind> kinds = {
        PredictorKind::Gshare,        PredictorKind::GshareFast,
        PredictorKind::Perceptron,    PredictorKind::MultiComponent,
        PredictorKind::Gskew,
    };

    robust::HardenedRunSummary summary;
    if (ctx.manifestPath().empty()) {
        // No manifest, no resume granularity to honour: run the
        // sweep through the batched ensemble engines. All five rates
        // of one kind are fault-injected wrappers of the same inner
        // type, so each kind's rates replay as one mixed-wrapper
        // group per workload; the gshare.fast timing slice batches
        // its five rates as one group too. Rows stay byte-identical
        // (BPSIM_ENSEMBLE=0 A/B-tested).
        std::vector<AccuracyCellConfig> acc;
        for (std::size_t ki = 0; ki < kinds.size(); ++ki) {
            for (std::size_t ri = 0; ri < rates.size(); ++ri) {
                const PredictorKind kind = kinds[ki];
                const double rate = rates[ri];
                AccuracyCellConfig c;
                c.makeForWorkload = [kind, rate, budget, ki,
                                     ri](std::size_t wi) {
                    robust::FaultPlan plan;
                    plan.upsetRatePerBit = rate;
                    plan.intervalBranches = 256;
                    plan.seed = cellSeed(ki, ri, wi);
                    return std::unique_ptr<DirectionPredictor>(
                        std::make_unique<
                            robust::FaultInjectingPredictor>(
                            makePredictor(kind, budget), plan));
                };
                c.name = cellLabel(kind, rate);
                c.budgetBytes = budget;
                acc.push_back(std::move(c));
            }
        }
        std::vector<TimingCellConfig> tim;
        for (std::size_t ri = 0; ri < rates.size(); ++ri) {
            const double rate = rates[ri];
            TimingCellConfig c;
            c.makeForWorkload = [rate, budget, ri](std::size_t wi) {
                robust::FaultPlan plan;
                plan.upsetRatePerBit = rate;
                plan.intervalBranches = 256;
                plan.seed = cellSeed(99, ri, wi);
                return std::unique_ptr<FetchPredictor>(
                    std::make_unique<
                        robust::FaultInjectingFetchPredictor>(
                        makeFetchPredictor(PredictorKind::GshareFast,
                                           budget,
                                           DelayMode::Pipelined),
                        plan));
            };
            c.name = cellLabel(PredictorKind::GshareFast, rate);
            c.mode = delayModeName(DelayMode::Pipelined);
            c.budgetBytes = budget;
            c.cfg = cfg;
            tim.push_back(std::move(c));
        }
        suiteAccuracyReportEnsemble(suite, acc, ctx.report(),
                                    ctx.metricsIfEnabled(),
                                    ctx.pool());
        suiteTimingReportEnsemble(suite, tim, ctx.report(),
                                  ctx.metricsIfEnabled(), nullptr,
                                  ctx.pool());
        summary.completed =
            (acc.size() + tim.size()) * suite.size();
    } else {
    // A manifest was passed: keep the serial HardenedSuiteRunner
    // path, whose one-cell-per-point granularity is what resume
    // depends on. One cell per (workload, predictor, rate) so resume
    // granularity matches report granularity. Accuracy cells for all
    // five predictors; timing cells for the pipelined gshare.fast
    // only (the timing core dominates runtime).
    std::vector<robust::SuiteCell> cells;
    for (std::size_t ki = 0; ki < kinds.size(); ++ki) {
        for (std::size_t ri = 0; ri < rates.size(); ++ri) {
            const PredictorKind kind = kinds[ki];
            const double rate = rates[ri];
            const std::string label = cellLabel(kind, rate);
            for (std::size_t wi = 0; wi < suite.size(); ++wi) {
                obs::RunReport::Row probe;
                probe.workload = suite.name(wi);
                probe.predictor = label;
                probe.budgetBytes = budget;
                cells.push_back(
                    {probe.key(),
                     [&suite, kind, rate, label, budget, ki, ri,
                      wi](const robust::Deadline &deadline) {
                         robust::FaultPlan plan;
                         plan.upsetRatePerBit = rate;
                         plan.intervalBranches = 256;
                         plan.seed = cellSeed(ki, ri, wi);
                         robust::FaultInjectingPredictor pred(
                             makePredictor(kind, budget), plan);
                         const AccuracyResult r = runAccuracy(
                             pred, suite.trace(wi),
                             [&deadline] {
                                 deadline.check("accuracy cell");
                             });
                         return reportRow(suite.name(wi), label,
                                          budget, r);
                     }});
            }
        }
    }
    for (std::size_t ri = 0; ri < rates.size(); ++ri) {
        const double rate = rates[ri];
        const std::string label =
            cellLabel(PredictorKind::GshareFast, rate);
        for (std::size_t wi = 0; wi < suite.size(); ++wi) {
            obs::RunReport::Row probe;
            probe.workload = suite.name(wi);
            probe.predictor = label;
            probe.mode = delayModeName(DelayMode::Pipelined);
            probe.budgetBytes = budget;
            cells.push_back(
                {probe.key(),
                 [&suite, &cfg, rate, label, budget, ri,
                  wi](const robust::Deadline &) {
                     robust::FaultPlan plan;
                     plan.upsetRatePerBit = rate;
                     plan.intervalBranches = 256;
                     plan.seed = cellSeed(99, ri, wi);
                     robust::FaultInjectingFetchPredictor pred(
                         makeFetchPredictor(PredictorKind::GshareFast,
                                            budget,
                                            DelayMode::Pipelined),
                         plan);
                     const SimResult r =
                         runTiming(cfg, pred, suite.trace(wi));
                     return reportRow(
                         suite.name(wi), label,
                         delayModeName(DelayMode::Pipelined), budget,
                         cfg, r);
                 }});
        }
    }

    // Generous per-cell watchdog: any wedged cell is timed out,
    // retried, and at worst annotated instead of hanging the sweep.
    robust::HardenedSuiteRunner runner(ctx.manifestPath(),
                                       robust::RetryPolicy{},
                                       std::chrono::minutes{5},
                                       ctx.pool());
    summary = runner.run(cells, ctx.report());
    }

    // Reduce report rows back to the study tables.
    std::map<std::string, std::vector<double>> misp, ipcs;
    for (const auto &row : ctx.report().rows) {
        if (row.hasTiming)
            ipcs[row.predictor].push_back(row.ipc());
        else
            misp[row.predictor].push_back(row.mispredictPercent());
    }

    ctx.printf("\nmean misprediction (%%) vs upset rate "
               "(flips/bit/event, event every 256 branches)\n");
    ctx.printf("%-10s", "rate");
    for (auto k : kinds)
        ctx.printf("%16s", kindName(k).c_str());
    ctx.printf("\n");
    for (double rate : rates) {
        ctx.printf("%-10s", rateLabel(rate).c_str());
        for (auto k : kinds) {
            const auto it = misp.find(cellLabel(k, rate));
            if (it == misp.end())
                ctx.printf("%16s", "-");
            else
                ctx.printf("%16.3f", arithmeticMean(it->second));
        }
        ctx.printf("\n");
    }

    ctx.printf("\ngshare.fast harmonic-mean IPC vs upset rate\n");
    ctx.printf("%-10s %12s\n", "rate", "IPC");
    for (double rate : rates) {
        const auto it =
            ipcs.find(cellLabel(PredictorKind::GshareFast, rate));
        if (it == ipcs.end())
            ctx.printf("%-10s %12s\n", rateLabel(rate).c_str(), "-");
        else
            ctx.printf("%-10s %12.3f\n", rateLabel(rate).c_str(),
                       harmonicMean(it->second));
    }

    ctx.printf("\ncells: %zu completed, %zu resumed from manifest, "
               "%zu failed (%zu retries)\n",
               summary.completed, summary.resumed, summary.failed,
               summary.retries);
    if (!ctx.manifestPath().empty())
        ctx.printf("manifest: %s\n", ctx.manifestPath().c_str());

    return summary.allOk() ? 0 : 1;
}

} // namespace

const ArtifactDef &
studySoftErrorArtifact()
{
    static const ArtifactDef def = {
        {"study_soft_error",
         "Soft-error study: accuracy/IPC vs SRAM upset rate at 64KB",
         250000, true, "[--manifest FILE]"},
        run,
    };
    return def;
}

} // namespace bpsim

#ifndef BPSIM_ARTIFACT_LIB
int
main(int argc, char **argv)
{
    return bpsim::artifactMain(bpsim::studySoftErrorArtifact(), argc,
                               argv);
}
#endif
