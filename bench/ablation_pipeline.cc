/**
 * @file
 * E11/E12 / Sections 3.1 and 3.3.1: the pipelined implementation
 * itself.
 *
 *  - Fidelity: the cycle-level engine must produce the identical
 *    prediction stream to the functional model (here checked over
 *    every workload at several PHT latencies, counting divergences).
 *  - Buffer sizing: the B * 2^L PHT-buffer requirement, tabulated.
 *  - Staleness sensitivity: accuracy of gshare.fast as the row-fetch
 *    staleness grows (the paper claims stale history costs little —
 *    this quantifies it on our suite).
 */

#include <string>
#include <vector>

#include "artifact_registry.hh"
#include "pipeline/gshare_fast_engine.hh"
#include "predictors/gshare_fast.hh"

namespace bpsim {

namespace {

/** Drive engine and functional model in lockstep over a trace;
 *  returns (branches, divergences, engine mispredicts). */
struct Fidelity
{
    Counter branches = 0;
    Counter divergences = 0;
    Counter mispredicts = 0;
};

Fidelity
checkFidelity(const TraceBuffer &trace, std::size_t entries,
              unsigned latency)
{
    GshareFastEngine::Config c;
    c.entries = entries;
    c.phtLatency = latency;
    GshareFastEngine engine(c);
    GshareFastPredictor model(entries, latency - 1, 0);

    Fidelity f;
    for (const MicroOp &op : trace) {
        if (op.cls != InstClass::CondBranch)
            continue;
        ++f.branches;
        const bool ep = engine.predictBranch(op.pc);
        const bool mp = model.predict(op.pc);
        if (ep != mp)
            ++f.divergences;
        model.update(op.pc, op.taken);
        if (!engine.resolve(op.taken)) {
            ++f.mispredicts;
            engine.recover();
        }
    }
    return f;
}

int
run(const ArtifactSpec &spec, SweepContext &ctx)
{
    const Counter ops = benchOpsPerWorkload(spec.defaultOps);
    benchHeader(ctx, "Pipeline ablation (Sections 3.1/3.3.1)",
                "engine fidelity, buffer sizing, staleness cost", ops);
    SuiteTraces suite(ops, 42, ctx.pool(), /*shared_pool=*/true);

    // --- E12 fidelity ------------------------------------------------
    // Per-workload cells run on the pool; totals accumulate in
    // commit (workload) order, so the table is the same as a serial
    // loop's.
    ctx.printf("\nEngine vs functional model (must diverge 0 times):\n");
    ctx.printf("%-10s %-14s %-12s %-12s\n", "latency", "branches",
               "divergences", "misp (%)");
    for (unsigned latency : {1u, 3u, 7u, 11u}) {
        std::vector<Fidelity> cells(suite.size());
        Fidelity total;
        ctx.pool()->run(
            suite.size(),
            [&](std::size_t i) {
                cells[i] =
                    checkFidelity(suite.trace(i), 1 << 18, latency);
            },
            [&](std::size_t i) {
                total.branches += cells[i].branches;
                total.divergences += cells[i].divergences;
                total.mispredicts += cells[i].mispredicts;
            });
        ctx.printf("%-10u %-14llu %-12llu %-12.2f\n", latency,
                   static_cast<unsigned long long>(total.branches),
                   static_cast<unsigned long long>(total.divergences),
                   100.0 * static_cast<double>(total.mispredicts) /
                       static_cast<double>(total.branches));
    }

    // --- E11 buffer sizing -------------------------------------------
    ctx.printf("\nPHT buffer entries required (B x 2^L, Section 3.3.1):\n");
    ctx.printf("%-22s", "branches/cycle");
    for (unsigned latency : {1u, 2u, 3u, 5u, 8u})
        ctx.printf("  L=%-6u", latency);
    ctx.printf("\n");
    for (unsigned b : {1u, 2u, 4u, 8u, 16u}) {
        ctx.printf("%-22u", b);
        for (unsigned latency : {1u, 2u, 3u, 5u, 8u}) {
            GshareFastEngine::Config c;
            c.entries = 1 << 16;
            c.phtLatency = latency;
            c.branchesPerCycle = b;
            ctx.printf("  %-8zu", GshareFastEngine(c).bufferEntries());
        }
        ctx.printf("\n");
    }

    // --- E11b: bundled (multi-branch) prediction accuracy -------------
    // Section 3.3.1: with B predictions per cycle the select uses
    // speculative history that can be a whole fetch block stale; the
    // EV8 experience (and the claim here) is that this costs little.
    ctx.printf("\nEngine mean misprediction vs branches/cycle "
               "(64KB, latency 3):\n%-16s %-12s\n", "branches/cycle",
               "misp (%)");
    for (unsigned b : {1u, 2u, 4u, 8u}) {
        struct Cell
        {
            Counter branches = 0;
            Counter wrong = 0;
        };
        std::vector<Cell> cells(suite.size());
        Counter branches = 0, wrong = 0;
        ctx.pool()->run(
            suite.size(),
            [&](std::size_t i) {
                GshareFastEngine::Config c;
                c.entries = 1 << 18;
                c.phtLatency = 3;
                c.branchesPerCycle = b;
                GshareFastEngine engine(c);
                for (const MicroOp &op : suite.trace(i)) {
                    if (op.cls != InstClass::CondBranch)
                        continue;
                    ++cells[i].branches;
                    engine.predictBranch(op.pc);
                    if (!engine.resolve(op.taken)) {
                        ++cells[i].wrong;
                        engine.recover();
                    }
                }
            },
            [&](std::size_t i) {
                branches += cells[i].branches;
                wrong += cells[i].wrong;
            });
        ctx.printf("%-16u %-12.2f\n", b,
                   100.0 * static_cast<double>(wrong) /
                       static_cast<double>(branches));
    }

    // --- staleness sensitivity ----------------------------------------
    ctx.printf("\ngshare.fast (64KB) mean misprediction vs row "
               "staleness:\n%-12s %-12s\n", "staleness", "misp (%)");
    for (unsigned lag : {0u, 1u, 3u, 6u, 10u}) {
        double mean = 0;
        suiteAccuracyReport(
            suite,
            [&] {
                return std::make_unique<GshareFastPredictor>(
                    std::size_t{1} << 18, lag, 0);
            },
            &mean, ctx.report(),
            "gshare.fast(lag=" + std::to_string(lag) + ")", 64 * 1024,
            ctx.metricsIfEnabled(), ctx.pool());
        ctx.printf("%-12u %-12.2f\n", lag, mean);
    }
    ctx.printf("\nPaper reference: stale fetch history has "
               "\"minimal impact\" (Section 3.3.1).\n");
    return 0;
}

} // namespace

const ArtifactDef &
ablationPipelineArtifact()
{
    static const ArtifactDef def = {
        {"ablation_pipeline",
         "Sections 3.1/3.3.1: engine fidelity, buffers, staleness",
         400000, false, ""},
        run,
    };
    return def;
}

} // namespace bpsim

#ifndef BPSIM_ARTIFACT_LIB
int
main(int argc, char **argv)
{
    return bpsim::artifactMain(bpsim::ablationPipelineArtifact(),
                               argc, argv);
}
#endif
