/**
 * @file
 * Library entry points for the paper-artifact benches.
 *
 * Historically each figure/table/study was only an executable; the
 * sweep engine (tools/bpsweep) needs to run all of them inside one
 * process, against one shared worker pool and one shared trace pool.
 * So every bench body is a function
 *
 *     int run(const ArtifactSpec &, SweepContext &)
 *
 * and the per-bench main() is a thin wrapper: parse BenchArgs, build
 * a StandaloneSweepContext (stdout + ReportSession + private
 * CellPool — exactly the old BenchSession behavior, byte for byte),
 * call the body. bpsweep instead builds a BufferedSweepContext per
 * artifact (in-memory output, own RunReport/MetricRegistry, a
 * SweepPool view onto the shared scheduler) and runs many bodies
 * concurrently. Because every body writes rows in commit order and
 * text through ctx.printf(), its RunReport and table text are
 * byte-identical either way — the contract test_artifact_registry
 * and the CI sweep-check job enforce.
 *
 * Artifacts are registered in artifact_registry.cc via the accessor
 * functions below (plain functions, so no static-initializer-order
 * or linker dead-stripping hazards). Names are stable CLI/report
 * identifiers; never reuse or rename one.
 */

#ifndef BPSIM_BENCH_ARTIFACT_REGISTRY_HH
#define BPSIM_BENCH_ARTIFACT_REGISTRY_HH

#include <cstddef>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/types.hh"
#include "obs/event_trace.hh"
#include "obs/metrics.hh"
#include "obs/report_session.hh"
#include "obs/run_report.hh"
#include "parallel/cell_pool.hh"

namespace bpsim {

/** Static description of one reproducible artifact. */
struct ArtifactSpec
{
    std::string name;  ///< stable id: bench binary / report name
    std::string title; ///< one-line "what it reproduces"
    /** Default BPSIM_OPS_PER_WORKLOAD fallback; 0 = replays no
     *  suite traces (table2). */
    Counter defaultOps = 0;
    bool acceptsManifest = false; ///< takes --manifest (soft error)
    std::string extraUsage;       ///< e.g. "[--manifest FILE]"
};

/**
 * Everything an artifact body needs from its host. The standalone
 * main and bpsweep provide different implementations; bodies must
 * not touch stdout or globals directly — all table text goes through
 * printf() so the sweep can buffer it per artifact.
 */
class SweepContext
{
  public:
    virtual ~SweepContext() = default;

    virtual obs::RunReport &report() = 0;
    virtual obs::MetricRegistry &metrics() = 0;
    /** Event sink for timing runs; nullptr unless --trace. */
    virtual obs::EventTracer *tracer() = 0;
    virtual bool wantReport() const = 0;
    /** The suite-cell executor (private CellPool standalone, a
     *  SweepPool inside bpsweep). Never nullptr. */
    virtual parallel::CellPool *pool() = 0;
    /** --manifest path; "" when absent or not accepted. */
    virtual const std::string &manifestPath() const = 0;

    /** Registry pointer only when a report will be written — so
     *  plain stdout runs skip the metric bookkeeping entirely. */
    obs::MetricRegistry *
    metricsIfEnabled()
    {
        return wantReport() ? &metrics() : nullptr;
    }

    /** The artifact's table output (stdout standalone, an in-memory
     *  buffer inside bpsweep). */
    void printf(const char *fmt, ...)
        __attribute__((format(printf, 2, 3)));

  protected:
    /** Sink for printf(); called from the artifact driver thread. */
    virtual void write(const char *data, std::size_t n) = 0;
};

/** An artifact body. Returns the process exit code (0 success). */
using ArtifactFn = int (*)(const ArtifactSpec &, SweepContext &);

struct ArtifactDef
{
    ArtifactSpec spec;
    ArtifactFn fn = nullptr;
};

/** All artifacts, in canonical (paper) order. */
const std::vector<ArtifactDef> &artifactRegistry();

/** Lookup by spec name; nullptr when unknown. */
const ArtifactDef *findArtifact(const std::string &name);

/** Per-artifact accessors (each defined in its bench TU). */
const ArtifactDef &fig1AccuracyBudgetArtifact();
const ArtifactDef &fig2IdealVsOverridingArtifact();
const ArtifactDef &fig5AccuracyLargeArtifact();
const ArtifactDef &fig6PerBenchmarkAccuracyArtifact();
const ArtifactDef &fig7IpcBudgetArtifact();
const ArtifactDef &fig8PerBenchmarkIpcArtifact();
const ArtifactDef &table2AccessDelayArtifact();
const ArtifactDef &ablationUpdateDelayArtifact();
const ArtifactDef &ablationDelayHidingArtifact();
const ArtifactDef &ablationPipelineArtifact();
const ArtifactDef &studyDisagreementArtifact();
const ArtifactDef &studyPipelineDepthArtifact();
const ArtifactDef &studyContextSwitchArtifact();
const ArtifactDef &studySoftErrorArtifact();
const ArtifactDef &studyProtectionSurfaceArtifact();
const ArtifactDef &studyFieldVulnerabilityArtifact();

/**
 * The standalone host: stdout output, a ReportSession for
 * --report/--trace, a private CellPool sized by --jobs. The
 * destructor stamps the pool's utilization stats and the process
 * trace-pool counters into the metrics before the session writes
 * the report (the old BenchSession behavior).
 */
class StandaloneSweepContext final : public SweepContext
{
  public:
    StandaloneSweepContext(const ArtifactSpec &spec,
                           const BenchArgs &args);
    ~StandaloneSweepContext() override;

    obs::RunReport &report() override { return session_.report(); }
    obs::MetricRegistry &metrics() override
    {
        return session_.metrics();
    }
    obs::EventTracer *tracer() override { return session_.tracer(); }
    bool wantReport() const override { return session_.wantReport(); }
    parallel::CellPool *pool() override { return &pool_; }
    const std::string &manifestPath() const override
    {
        return manifest_;
    }

  protected:
    void write(const char *data, std::size_t n) override;

  private:
    obs::ReportSession session_;
    parallel::CellPool pool_;
    std::string manifest_;
};

/**
 * The in-process host bpsweep (and the registry test) uses: output
 * accumulates in a string, report/metrics live here, and cells run
 * on a caller-supplied pool. finalize() attaches the metric
 * snapshot to the report the way ReportSession::finish() would.
 */
class BufferedSweepContext final : public SweepContext
{
  public:
    /** @param pool Cell executor; must outlive the context.
     *  @param want_report Enables metrics and report assembly. */
    BufferedSweepContext(const ArtifactSpec &spec,
                         parallel::CellPool *pool, bool want_report,
                         std::string manifest = "");

    obs::RunReport &report() override { return report_; }
    obs::MetricRegistry &metrics() override { return metrics_; }
    obs::EventTracer *tracer() override { return nullptr; }
    bool wantReport() const override { return wantReport_; }
    parallel::CellPool *pool() override { return pool_; }
    const std::string &manifestPath() const override
    {
        return manifest_;
    }

    const std::string &output() const { return out_; }

    /** Snapshot metrics into the report (idempotent-enough: call
     *  once, after the body returned). */
    void finalize();

  protected:
    void write(const char *data, std::size_t n) override;

  private:
    obs::RunReport report_;
    obs::MetricRegistry metrics_;
    parallel::CellPool *pool_;
    bool wantReport_;
    std::string manifest_;
    std::string out_;
};

/**
 * The whole main() of a standalone bench: parse the common flags
 * (exit 2 on usage errors), host the body in a
 * StandaloneSweepContext, return its exit code.
 */
int artifactMain(const ArtifactDef &def, int argc, char **argv);

/** Print the standard bench header naming the reproduced artifact. */
void benchHeader(SweepContext &ctx, const std::string &artifact,
                 const std::string &what, Counter ops);

} // namespace bpsim

#endif // BPSIM_BENCH_ARTIFACT_REGISTRY_HH
