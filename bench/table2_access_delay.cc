/**
 * @file
 * E4 / Table 2: predictor access latencies in cycles from the
 * CACTI-lite model at 100 nm with an 8 FO4 clock (3.5 GHz).
 *
 * The paper's Table 2 columns are the multi-component hybrid,
 * 2Bc-gskew, and the perceptron at rising hardware budgets. The
 * extraction of the published table is partially garbled, so the
 * reference column below reconstructs its legible anchors
 * (multi-component 3..9 cycles over its budget points, 2Bc-gskew
 * 11 cycles and perceptron 9 cycles at 512KB).
 */

#include "artifact_registry.hh"
#include "delay/clock_model.hh"
#include "delay/sram_model.hh"

namespace bpsim {

namespace {

int
run(const ArtifactSpec &, SweepContext &ctx)
{
    const ClockModel clock;
    const SramModel sram;

    ctx.printf("=============================================================\n");
    ctx.printf("Table 2 — predictor access latencies (cycles)\n");
    ctx.printf("clock: %.2f GHz (8 FO4 at 100 nm, %.0f ps period)\n",
               clock.frequencyGHz(), clock.periodPs());
    ctx.printf("=============================================================\n");
    ctx.printf("%-8s %-16s %-12s %-12s %-10s\n", "budget",
               "multicomponent", "2bc-gskew", "perceptron", "gshare");

    for (std::size_t budget : largeBudgetsBytes()) {
        const struct {
            PredictorKind kind;
            const char *label;
        } cols[] = {
            {PredictorKind::MultiComponent, "multicomponent"},
            {PredictorKind::Gskew, "2bc-gskew"},
            {PredictorKind::Perceptron, "perceptron"},
            {PredictorKind::Gshare, "gshare"},
        };
        unsigned lat[4];
        for (std::size_t c = 0; c < 4; ++c) {
            lat[c] = predictorLatencyCycles(cols[c].kind, budget, sram,
                                            clock);
            if (auto *reg = ctx.metricsIfEnabled())
                reg->gauge("model.latency_cycles{predictor=" +
                           std::string(cols[c].label) +
                           ",budget=" + budgetLabel(budget) + "}")
                    .set(static_cast<double>(lat[c]));
        }
        ctx.printf("%-8s %-16u %-12u %-12u %-10u\n",
                   budgetLabel(budget).c_str(), lat[0], lat[1],
                   lat[2], lat[3]);
    }

    ctx.printf("\nPaper reference (legible anchors): multicomponent "
               "3/3/4/5/7/9 over 18K..359K;\n2bc-gskew 11 and "
               "perceptron 9 cycles at 512K; quick 2K-entry gshare "
               "= 1 cycle.\n");

    // The single-cycle envelope the paper leans on (Section 2.5):
    // the largest PHT readable in one cycle.
    ctx.printf("\nLargest two-bit-counter PHT per cycle budget:\n");
    for (unsigned cycles = 1; cycles <= 4; ++cycles) {
        const auto entries = sram.maxEntriesForCycles(2, cycles, clock);
        ctx.printf("  %u cycle(s): %llu entries (%llu bytes)\n",
                   cycles, static_cast<unsigned long long>(entries),
                   static_cast<unsigned long long>(entries / 4));
    }
    return 0;
}

} // namespace

const ArtifactDef &
table2AccessDelayArtifact()
{
    static const ArtifactDef def = {
        {"table2_access_delay",
         "Table 2: modelled predictor access latencies (cycles)", 0,
         false, ""},
        run,
    };
    return def;
}

} // namespace bpsim

#ifndef BPSIM_ARTIFACT_LIB
int
main(int argc, char **argv)
{
    return bpsim::artifactMain(bpsim::table2AccessDelayArtifact(),
                               argc, argv);
}
#endif
