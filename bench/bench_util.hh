/**
 * @file
 * Shared helpers for the experiment-reproduction benches.
 *
 * Each bench binary regenerates one table or figure of the paper:
 * it prints the same rows/series the paper reports, over the same
 * sweep axes. Absolute values differ from the paper (our substrate
 * is a synthetic-workload simulator, see DESIGN.md §4); the shapes
 * are the reproduction target and EXPERIMENTS.md records both.
 *
 * Trace length per workload defaults to a laptop-friendly value and
 * scales with the BPSIM_OPS_PER_WORKLOAD environment variable for
 * paper-scale runs.
 *
 * The artifact bodies themselves live behind the registry in
 * artifact_registry.hh; this header holds the CLI-argument layer the
 * thin per-artifact mains share.
 */

#ifndef BPSIM_BENCH_BENCH_UTIL_HH
#define BPSIM_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/factory.hh"
#include "core/runner.hh"
#include "obs/report_session.hh"
#include "parallel/cell_pool.hh"

namespace bpsim {

/**
 * Uniform CLI error handling for the bench binaries: after
 * BenchArgs::parse has stripped --report/--trace/--jobs (and
 * --manifest where accepted) and the bench has consumed its own
 * flags, anything left in argv is unknown (this also catches a
 * trailing `--report` or `--jobs` with no value, which the strippers
 * leave in place). Prints a one-line error plus usage to stderr and
 * exits 2, matching the bpstat usage exit code. @p extra_usage names
 * bench-specific flags, e.g. "[--manifest FILE]".
 */
inline void
requireNoExtraArgs(int argc, char **argv,
                   const std::string &extra_usage = "")
{
    if (argc <= 1)
        return;
    std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0],
                 argv[1]);
    std::fprintf(stderr,
                 "usage: %s [--report FILE] [--trace FILE] "
                 "[--jobs N] [--ensemble 0|1]%s%s\n",
                 argv[0], extra_usage.empty() ? "" : " ",
                 extra_usage.c_str());
    std::exit(2);
}

/**
 * The one shared `--jobs N` / `--jobs=N` parser: strips the flag
 * from argv and returns N. A non-numeric or zero value (either
 * form) is a usage error (exit 2, like requireNoExtraArgs); a
 * trailing `--jobs` with no value is left in argv for
 * requireNoExtraArgs to reject. Without the flag, 0 is returned and
 * the CellPool falls back to BPSIM_JOBS, then to the hardware
 * concurrency.
 */
inline unsigned
takeJobsFlag(int &argc, char **argv)
{
    const auto parse = [&](const char *val) {
        char *end = nullptr;
        const long v = std::strtol(val, &end, 10);
        if (end == val || *end != '\0' || v <= 0) {
            std::fprintf(stderr,
                         "%s: --jobs needs a positive integer, "
                         "got '%s'\n",
                         argv[0], val);
            std::fprintf(stderr,
                         "usage: %s [--report FILE] "
                         "[--trace FILE] [--jobs N]\n",
                         argv[0]);
            std::exit(2);
        }
        return static_cast<unsigned>(v);
    };
    unsigned jobs = 0;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            jobs = parse(argv[i + 1]);
            ++i;
            continue;
        }
        if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
            jobs = parse(argv[i] + 7);
            continue;
        }
        argv[out++] = argv[i];
    }
    argc = out;
    return jobs;
}

/**
 * `--ensemble 0|1` / `--ensemble=0|1`: the CLI mirror of the
 * BPSIM_ENSEMBLE environment variable (core/ensemble.hh). The flag
 * simply sets the variable for this process, so the sweep engines —
 * which only consult ensembleEnabled() — need no plumbing, and the
 * flag wins over an inherited environment value. Anything but a
 * literal "0" or "1" is a usage error (exit 2); a trailing
 * `--ensemble` with no value is left for requireNoExtraArgs. Returns
 * -1 when the flag is absent, else the parsed value.
 */
inline int
takeEnsembleFlag(int &argc, char **argv)
{
    const auto parse = [&](const char *val) {
        if (std::strcmp(val, "0") != 0 &&
            std::strcmp(val, "1") != 0) {
            std::fprintf(stderr,
                         "%s: --ensemble needs 0 or 1, got '%s'\n",
                         argv[0], val);
            std::fprintf(stderr,
                         "usage: %s [--report FILE] "
                         "[--trace FILE] [--jobs N] "
                         "[--ensemble 0|1]\n",
                         argv[0]);
            std::exit(2);
        }
        ::setenv("BPSIM_ENSEMBLE", val, 1);
        return val[0] - '0';
    };
    int ensemble = -1;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--ensemble") == 0 &&
            i + 1 < argc) {
            ensemble = parse(argv[i + 1]);
            ++i;
            continue;
        }
        if (std::strncmp(argv[i], "--ensemble=", 11) == 0) {
            ensemble = parse(argv[i] + 11);
            continue;
        }
        argv[out++] = argv[i];
    }
    argc = out;
    return ensemble;
}

/**
 * The common bench command line, parsed once and passed around as a
 * plain value — so bpsweep (and tests) can construct one
 * programmatically without fabricating an argv.
 *
 * parse() is the one shared arg-parsing path for every bench main:
 * it strips --report/--trace (obs::takeFlag), --jobs
 * (takeJobsFlag), --ensemble (takeEnsembleFlag) and, when
 * @p accepts_manifest, the separated `--manifest FILE`
 * form, then rejects anything left over (requireNoExtraArgs: exit 2
 * with the usage line). Flag syntax, precedence (last occurrence
 * wins) and exit codes are exactly the pre-BenchArgs behavior.
 */
struct BenchArgs
{
    std::string report;   ///< --report path, "" when absent
    std::string trace;    ///< --trace path, "" when absent
    unsigned jobs = 0;    ///< --jobs value, 0 = env/hardware
    int ensemble = -1;    ///< --ensemble value, -1 = env default
    std::string manifest; ///< --manifest path, "" when absent

    static BenchArgs
    parse(int &argc, char **argv, bool accepts_manifest = false,
          const std::string &extra_usage = "")
    {
        BenchArgs args;
        args.report = obs::takeFlag(argc, argv, "--report");
        args.trace = obs::takeFlag(argc, argv, "--trace");
        args.jobs = takeJobsFlag(argc, argv);
        args.ensemble = takeEnsembleFlag(argc, argv);
        if (accepts_manifest) {
            // Separated form only, as study_soft_error always
            // accepted it.
            int out = 1;
            for (int i = 1; i < argc; ++i) {
                if (std::strcmp(argv[i], "--manifest") == 0 &&
                    i + 1 < argc) {
                    args.manifest = argv[i + 1];
                    ++i;
                    continue;
                }
                argv[out++] = argv[i];
            }
            argc = out;
        }
        requireNoExtraArgs(argc, argv, extra_usage);
        return args;
    }
};

/** "16K", "512K" style budget label. */
inline std::string
budgetLabel(std::size_t bytes)
{
    return std::to_string(bytes / 1024) + "K";
}

/** Short (7-char) benchmark label: "gzip", "twolf", ... */
inline std::string
shortName(const std::string &spec_name)
{
    const auto dot = spec_name.find('.');
    return dot == std::string::npos ? spec_name
                                    : spec_name.substr(dot + 1);
}

} // namespace bpsim

#endif // BPSIM_BENCH_BENCH_UTIL_HH
