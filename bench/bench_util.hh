/**
 * @file
 * Shared helpers for the experiment-reproduction benches.
 *
 * Each bench binary regenerates one table or figure of the paper:
 * it prints the same rows/series the paper reports, over the same
 * sweep axes. Absolute values differ from the paper (our substrate
 * is a synthetic-workload simulator, see DESIGN.md §4); the shapes
 * are the reproduction target and EXPERIMENTS.md records both.
 *
 * Trace length per workload defaults to a laptop-friendly value and
 * scales with the BPSIM_OPS_PER_WORKLOAD environment variable for
 * paper-scale runs.
 */

#ifndef BPSIM_BENCH_BENCH_UTIL_HH
#define BPSIM_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/factory.hh"
#include "core/runner.hh"
#include "obs/report_session.hh"
#include "parallel/cell_pool.hh"

namespace bpsim {

/**
 * Uniform CLI error handling for the bench binaries: after
 * BenchSession has stripped --report/--trace/--jobs and the bench
 * has consumed its own flags, anything left in argv is unknown (this
 * also catches a trailing `--report` or `--jobs` with no value,
 * which the session leaves in place). Prints a one-line error plus
 * usage to stderr and exits 2, matching the bpstat usage exit code.
 * @p extra_usage names bench-specific flags, e.g.
 * "[--manifest FILE]".
 */
inline void
requireNoExtraArgs(int argc, char **argv,
                   const std::string &extra_usage = "")
{
    if (argc <= 1)
        return;
    std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0],
                 argv[1]);
    std::fprintf(stderr,
                 "usage: %s [--report FILE] [--trace FILE] "
                 "[--jobs N]%s%s\n",
                 argv[0], extra_usage.empty() ? "" : " ",
                 extra_usage.c_str());
    std::exit(2);
}

/**
 * The one shared `--jobs N` / `--jobs=N` parser: strips the flag
 * from argv and returns N. A non-numeric or zero value (either
 * form) is a usage error (exit 2, like requireNoExtraArgs); a
 * trailing `--jobs` with no value is left in argv for
 * requireNoExtraArgs to reject. Without the flag, 0 is returned and
 * the CellPool falls back to BPSIM_JOBS, then to the hardware
 * concurrency.
 */
inline unsigned
takeJobsFlag(int &argc, char **argv)
{
    const auto parse = [&](const char *val) {
        char *end = nullptr;
        const long v = std::strtol(val, &end, 10);
        if (end == val || *end != '\0' || v <= 0) {
            std::fprintf(stderr,
                         "%s: --jobs needs a positive integer, "
                         "got '%s'\n",
                         argv[0], val);
            std::fprintf(stderr,
                         "usage: %s [--report FILE] "
                         "[--trace FILE] [--jobs N]\n",
                         argv[0]);
            std::exit(2);
        }
        return static_cast<unsigned>(v);
    };
    unsigned jobs = 0;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            jobs = parse(argv[i + 1]);
            ++i;
            continue;
        }
        if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
            jobs = parse(argv[i] + 7);
            continue;
        }
        argv[out++] = argv[i];
    }
    argc = out;
    return jobs;
}

/**
 * Every bench binary constructs one of these first: it strips the
 * common `--report <path>` / `--trace <path>` / `--jobs <N>` flags
 * from argv (the one shared arg-parsing helper — no bench
 * hand-rolls these), and on exit writes the RunReport JSON and
 * event trace when requested. Benches append rows via the
 * suite*Report helpers in core/runner.hh, passing session.report()
 * / metricsIfEnabled() / tracer() / pool(); the session-owned
 * CellPool's utilization stats land in the report automatically.
 */
class BenchSession : public obs::ReportSession
{
  public:
    BenchSession(int &argc, char **argv,
                 const std::string &experiment)
        : obs::ReportSession(argc, argv, experiment),
          pool_(takeJobsFlag(argc, argv))
    {
    }

    ~BenchSession()
    {
        // Before the base finish() snapshots the registry: stamp the
        // pool's execution stats so --report runs carry utilization.
        if (wantReport())
            pool_.stats().publish(metrics());
    }

    /** Registry pointer only when a report will be written — so
     *  plain stdout runs skip the metric bookkeeping entirely. */
    obs::MetricRegistry *
    metricsIfEnabled()
    {
        return wantReport() ? &metrics() : nullptr;
    }

    /** The suite-cell executor for this binary (--jobs/BPSIM_JOBS). */
    parallel::CellPool *pool() { return &pool_; }

  private:
    parallel::CellPool pool_;
};

/** Print a standard bench header naming the reproduced artifact. */
inline void
benchHeader(const std::string &artifact, const std::string &what,
            Counter ops)
{
    std::printf("==============================================================\n");
    std::printf("%s — %s\n", artifact.c_str(), what.c_str());
    std::printf("workloads: SPECint2000 stand-ins, %llu ops each "
                "(BPSIM_OPS_PER_WORKLOAD to scale)\n",
                static_cast<unsigned long long>(ops));
    std::printf("==============================================================\n");
}

/** "16K", "512K" style budget label. */
inline std::string
budgetLabel(std::size_t bytes)
{
    return std::to_string(bytes / 1024) + "K";
}

/** Short (7-char) benchmark label: "gzip", "twolf", ... */
inline std::string
shortName(const std::string &spec_name)
{
    const auto dot = spec_name.find('.');
    return dot == std::string::npos ? spec_name
                                    : spec_name.substr(dot + 1);
}

} // namespace bpsim

#endif // BPSIM_BENCH_BENCH_UTIL_HH
