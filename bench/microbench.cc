/**
 * @file
 * Google-benchmark microbenchmarks of the library's hot paths:
 * predictor predict+update throughput, trace generation, and the
 * timing simulator itself. These are engineering benchmarks (how
 * fast is the simulator), not paper reproductions.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "core/factory.hh"
#include "core/runner.hh"
#include "workloads/registry.hh"

namespace bpsim {
namespace {

const TraceBuffer &
sharedTrace()
{
    static const TraceBuffer trace = [] {
        const auto w = makeWorkload("176.gcc");
        return generateTrace(*w, 200000, 42);
    }();
    return trace;
}

void
BM_PredictorThroughput(benchmark::State &state)
{
    const auto kind = static_cast<PredictorKind>(state.range(0));
    const auto &trace = sharedTrace();
    auto pred = makePredictor(kind, 64 * 1024);
    Counter branches = 0;
    for (auto _ : state) {
        for (const MicroOp &op : trace) {
            if (op.cls != InstClass::CondBranch)
                continue;
            benchmark::DoNotOptimize(pred->predict(op.pc));
            pred->update(op.pc, op.taken);
            ++branches;
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(branches));
    state.SetLabel(kindName(kind));
}

void
BM_TraceGeneration(benchmark::State &state)
{
    const auto w = makeWorkload("164.gzip");
    Counter ops = 0;
    for (auto _ : state) {
        const auto t = generateTrace(*w, 100000, 1);
        benchmark::DoNotOptimize(t.size());
        ops += t.size();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}

void
BM_TimingSimulator(benchmark::State &state)
{
    const auto &trace = sharedTrace();
    CoreConfig cfg;
    Counter insts = 0;
    for (auto _ : state) {
        auto fp = makeFetchPredictor(PredictorKind::GshareFast,
                                     64 * 1024, DelayMode::Pipelined);
        const auto r = runTiming(cfg, *fp, trace);
        benchmark::DoNotOptimize(r.cycles);
        insts += r.instructions;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(insts));
}

void
BM_AccuracyRunner(benchmark::State &state)
{
    const auto &trace = sharedTrace();
    Counter branches = 0;
    for (auto _ : state) {
        auto pred =
            makePredictor(PredictorKind::GshareFast, 64 * 1024);
        const auto r = runAccuracy(*pred, trace);
        benchmark::DoNotOptimize(r.mispredictions);
        branches += r.branches;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(branches));
}

} // namespace
} // namespace bpsim

BENCHMARK(bpsim::BM_PredictorThroughput)
    ->DenseRange(0, 7, 1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bpsim::BM_TraceGeneration)->Unit(benchmark::kMillisecond);
BENCHMARK(bpsim::BM_TimingSimulator)->Unit(benchmark::kMillisecond);
BENCHMARK(bpsim::BM_AccuracyRunner)->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    // Strip --report/--trace before google-benchmark sees argv so its
    // own flag parser does not reject them.
    bpsim::BenchSession session(argc, argv, "microbench");
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
