/**
 * @file
 * Google-benchmark microbenchmarks of the library's hot paths:
 * predictor predict+update throughput, trace generation, and the
 * timing simulator itself. These are engineering benchmarks (how
 * fast is the simulator), not paper reproductions.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <utility>

#include "bench_util.hh"
#include "common/vec_kernels.hh"
#include "core/ensemble.hh"
#include "core/factory.hh"
#include "core/runner.hh"
#include "obs/report_session.hh"
#include "obs/span_trace.hh"
#include "parallel/cell_pool.hh"
#include "trace/trace_cache.hh"
#include "workloads/registry.hh"

namespace bpsim {
namespace {

const TraceBuffer &
sharedTrace()
{
    static const TraceBuffer trace = [] {
        const auto w = makeWorkload("176.gcc");
        return generateTrace(*w, 200000, 42);
    }();
    return trace;
}

void
BM_PredictorThroughput(benchmark::State &state)
{
    const auto kind = static_cast<PredictorKind>(state.range(0));
    const auto &trace = sharedTrace();
    auto pred = makePredictor(kind, 64 * 1024);
    Counter branches = 0;
    for (auto _ : state) {
        for (const MicroOp &op : trace) {
            if (op.cls != InstClass::CondBranch)
                continue;
            benchmark::DoNotOptimize(pred->predict(op.pc));
            pred->update(op.pc, op.taken);
            ++branches;
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(branches));
    state.SetLabel(kindName(kind));
}

void
BM_TraceGeneration(benchmark::State &state)
{
    const auto w = makeWorkload("164.gzip");
    Counter ops = 0;
    for (auto _ : state) {
        const auto t = generateTrace(*w, 100000, 1);
        benchmark::DoNotOptimize(t.size());
        ops += t.size();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}

void
BM_TimingSimulator(benchmark::State &state)
{
    const auto &trace = sharedTrace();
    CoreConfig cfg;
    Counter insts = 0;
    for (auto _ : state) {
        auto fp = makeFetchPredictor(PredictorKind::GshareFast,
                                     64 * 1024, DelayMode::Pipelined);
        const auto r = runTiming(cfg, *fp, trace);
        benchmark::DoNotOptimize(r.cycles);
        insts += r.instructions;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(insts));
}

void
BM_AccuracyRunner(benchmark::State &state)
{
    const auto &trace = sharedTrace();
    Counter branches = 0;
    for (auto _ : state) {
        auto pred =
            makePredictor(PredictorKind::GshareFast, 64 * 1024);
        const auto r = runAccuracy(*pred, trace);
        benchmark::DoNotOptimize(r.mispredictions);
        branches += r.branches;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(branches));
}

/**
 * Single-cell replay kernel, devirtualized path: what one suite cell
 * costs per branch through runAccuracy()'s monomorphized loop.
 * Registered per predictor kind as BM_PredictUpdate/<name>; the CI
 * kernel-bench gate tracks BM_PredictUpdate/gshare.
 */
void
BM_PredictUpdate(benchmark::State &state, PredictorKind kind)
{
    const auto &trace = sharedTrace();
    auto pred = makePredictor(kind, 64 * 1024);
    Counter branches = 0;
    for (auto _ : state) {
        const auto r = runAccuracy(*pred, trace);
        benchmark::DoNotOptimize(r.mispredictions);
        branches += r.branches;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(branches));
}

/** Same cell through the virtual-dispatch loop, for the
 *  devirtualization speedup ratio. */
void
BM_PredictUpdateVirtual(benchmark::State &state, PredictorKind kind)
{
    const auto &trace = sharedTrace();
    auto pred = makePredictor(kind, 64 * 1024);
    Counter branches = 0;
    for (auto _ : state) {
        const auto r = runAccuracyVirtual(*pred, trace);
        benchmark::DoNotOptimize(r.mispredictions);
        branches += r.branches;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(branches));
}

/**
 * Flight-recorder overhead on the disabled and enabled paths, around
 * a trivial xorshift body:
 *
 *   none      the bare body — the baseline;
 *   disabled  body + a SpanScope with no recorder installed: must
 *             cost only the null-sink branch (CI gates this against
 *             "none" within the same run);
 *   enabled   body + a SpanScope recording into an installed ring —
 *             the real per-span cost (clock reads + ring store).
 */
enum class SpanMode { None, Disabled, Enabled };

void
BM_SpanOverhead(benchmark::State &state, SpanMode mode)
{
    // One recorder per benchmark run; install only for "enabled".
    obs::SpanRecorder recorder(1 << 10);
    if (mode == SpanMode::Enabled)
        obs::SpanRecorder::install(&recorder);
    std::uint64_t x = 0x9e3779b97f4a7c15ULL;
    Counter spans = 0;
    for (auto _ : state) {
        if (mode == SpanMode::None) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
        } else {
            obs::SpanScope span("bench", "xorshift");
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
        }
        benchmark::DoNotOptimize(x);
        ++spans;
    }
    if (mode == SpanMode::Enabled)
        obs::SpanRecorder::install(nullptr);
    state.SetItemsProcessed(static_cast<std::int64_t>(spans));
}

/**
 * Batched ensemble replay: one pass over the shared trace stepping
 * one member per standard budget (the widest group a figure sweep
 * forms). Items processed counts member-branches, so items/s divides
 * directly against BM_PredictUpdate's serial per-cell rate — the
 * ratio is the per-member saving from amortizing the trace stream
 * (and, for the perceptron, the shared input vector).
 */
void
BM_EnsembleReplay(benchmark::State &state, PredictorKind kind)
{
    const auto &trace = sharedTrace();
    Counter memberBranches = 0;
    for (auto _ : state) {
        state.PauseTiming();
        std::vector<std::unique_ptr<DirectionPredictor>> owned;
        std::vector<DirectionPredictor *> members;
        for (const std::size_t budget : standardBudgets()) {
            owned.push_back(makePredictor(kind, budget));
            members.push_back(owned.back().get());
        }
        state.ResumeTiming();
        const auto results = runAccuracyEnsemble(members, trace);
        benchmark::DoNotOptimize(results.data());
        for (const auto &r : results)
            memberBranches += r.branches;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(memberBranches));
    state.SetLabel("width=" +
                   std::to_string(standardBudgets().size()));
}

/**
 * Batched timing-ensemble replay vs the same members run serially:
 * a fig7-shaped group (one perceptron overriding core per standard
 * budget) either replayed in one pass over the shared trace
 * (EnsembleTimingReplay, arg 1) or simulated one core at a time
 * (runTiming, arg 0). Per-member SimResults are byte-identical
 * either way — test_ensemble.cc — so the ratio is pure trace-stream
 * amortization across the member cores.
 */
void
BM_EnsembleTiming(benchmark::State &state, bool batched)
{
    const auto &trace = sharedTrace();
    CoreConfig cfg;
    Counter insts = 0;
    for (auto _ : state) {
        state.PauseTiming();
        std::vector<std::unique_ptr<FetchPredictor>> owned;
        for (const std::size_t budget : standardBudgets())
            owned.push_back(makeFetchPredictor(
                PredictorKind::Perceptron, budget,
                DelayMode::Overriding));
        state.ResumeTiming();
        if (batched) {
            std::vector<EnsembleTimingReplay::Member> members;
            for (const auto &fp : owned)
                members.push_back({cfg, fp.get()});
            EnsembleTimingReplay replay(std::move(members));
            const auto results = replay.run(trace);
            benchmark::DoNotOptimize(results.data());
            for (const auto &r : results)
                insts += r.instructions;
        } else {
            for (const auto &fp : owned) {
                const auto r = runTiming(cfg, *fp, trace);
                benchmark::DoNotOptimize(r.cycles);
                insts += r.instructions;
            }
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(insts));
    state.SetLabel(
        std::string(batched ? "batched" : "serial") + " width=" +
        std::to_string(standardBudgets().size()));
}

/**
 * Cross-kind (heterogeneous) timing-ensemble replay vs the same
 * members run serially: the fig8-shaped group — one core each for
 * multicomponent@53KB, gskew@64KB, perceptron@64KB (overriding) and
 * gshare.fast@64KB (single-cycle) — replayed in one pass over the
 * shared trace (arg 1) or one core at a time (arg 0). The old
 * per-kind grouping ran all four serially; the win here is what the
 * cross-kind merge buys a real figure sweep.
 */
void
BM_EnsembleTimingHetero(benchmark::State &state, bool hetero)
{
    const auto &trace = sharedTrace();
    CoreConfig cfg;
    const auto build = [] {
        std::vector<std::unique_ptr<FetchPredictor>> owned;
        owned.push_back(
            makeFetchPredictor(PredictorKind::MultiComponent,
                               53 * 1024, DelayMode::Overriding));
        owned.push_back(makeFetchPredictor(
            PredictorKind::Gskew, 64 * 1024, DelayMode::Overriding));
        owned.push_back(
            makeFetchPredictor(PredictorKind::Perceptron, 64 * 1024,
                               DelayMode::Overriding));
        owned.push_back(makeFetchPredictor(PredictorKind::GshareFast,
                                           64 * 1024,
                                           DelayMode::Ideal));
        return owned;
    };
    Counter insts = 0;
    for (auto _ : state) {
        state.PauseTiming();
        auto owned = build();
        state.ResumeTiming();
        if (hetero) {
            std::vector<EnsembleTimingReplay::Member> members;
            for (const auto &fp : owned)
                members.push_back({cfg, fp.get()});
            EnsembleTimingReplay replay(std::move(members));
            const auto results = replay.run(trace);
            benchmark::DoNotOptimize(results.data());
            for (const auto &r : results)
                insts += r.instructions;
        } else {
            for (const auto &fp : owned) {
                const auto r = runTiming(cfg, *fp, trace);
                benchmark::DoNotOptimize(r.cycles);
                insts += r.instructions;
            }
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(insts));
    state.SetLabel(std::string(hetero ? "hetero" : "serial") +
                   " width=4");
}

/** Register the per-kind replay-kernel benchmarks. Called from main
 *  (name/closure registration needs runtime values). */
void
registerKernelBenchmarks()
{
    for (const PredictorKind kind : allKinds()) {
        benchmark::RegisterBenchmark(
            ("BM_PredictUpdate/" + kindName(kind)).c_str(),
            [kind](benchmark::State &s) { BM_PredictUpdate(s, kind); })
            ->Unit(benchmark::kMillisecond);
        benchmark::RegisterBenchmark(
            ("BM_PredictUpdateVirtual/" + kindName(kind)).c_str(),
            [kind](benchmark::State &s) {
                BM_PredictUpdateVirtual(s, kind);
            })
            ->Unit(benchmark::kMillisecond);
        benchmark::RegisterBenchmark(
            ("BM_EnsembleReplay/" + kindName(kind)).c_str(),
            [kind](benchmark::State &s) { BM_EnsembleReplay(s, kind); })
            ->Unit(benchmark::kMillisecond);
    }
    benchmark::RegisterBenchmark(
        "BM_EnsembleTiming/serial",
        [](benchmark::State &s) { BM_EnsembleTiming(s, false); })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        "BM_EnsembleTiming/batched",
        [](benchmark::State &s) { BM_EnsembleTiming(s, true); })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        "BM_EnsembleTimingHetero/serial",
        [](benchmark::State &s) { BM_EnsembleTimingHetero(s, false); })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        "BM_EnsembleTimingHetero/hetero",
        [](benchmark::State &s) { BM_EnsembleTimingHetero(s, true); })
        ->Unit(benchmark::kMillisecond);
    const std::pair<const char *, SpanMode> spanModes[] = {
        {"BM_SpanOverhead/none", SpanMode::None},
        {"BM_SpanOverhead/disabled", SpanMode::Disabled},
        {"BM_SpanOverhead/enabled", SpanMode::Enabled},
    };
    for (const auto &[name, mode] : spanModes)
        benchmark::RegisterBenchmark(
            name,
            [mode](benchmark::State &s) { BM_SpanOverhead(s, mode); });
}

/**
 * Timing-core cycle skipping, off (arg 0) vs on (arg 1) on a
 * stall-heavy configuration (overriding gshare: long predictor
 * bubbles and mispredict waits are exactly the windows the skip
 * jumps). Identical SimResults either way — test_cycle_skip.cc —
 * so the delta is pure simulator wall clock.
 */
void
BM_OooCoreStallSkip(benchmark::State &state)
{
    const auto &trace = sharedTrace();
    CoreConfig cfg;
    cfg.cycleSkip = state.range(0) != 0;
    Counter insts = 0;
    for (auto _ : state) {
        auto fp = makeFetchPredictor(PredictorKind::Gshare, 64 * 1024,
                                     DelayMode::Overriding);
        const auto r = runTiming(cfg, *fp, trace);
        benchmark::DoNotOptimize(r.cycles);
        insts += r.instructions;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(insts));
    state.SetLabel(cfg.cycleSkip ? "skip=on" : "skip=off");
}

/** The perceptron dot-product/train kernel in isolation: verifies
 *  the contiguous-int16 formulation actually vectorizes (throughput
 *  should sit far above one weight per cycle). */
void
BM_PerceptronKernel(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    std::vector<std::int16_t> w(n, 3);
    std::vector<std::int16_t> x(n, 1);
    for (std::size_t i = 1; i < n; i += 2)
        x[i] = -1;
    Counter weights = 0;
    for (auto _ : state) {
        const int y = dotSignedI16Wide(w.data(), x.data(), n);
        benchmark::DoNotOptimize(y);
        trainSignedI16Wide(w.data(), x.data(), n, y >= 0 ? -1 : 1,
                           -128, 127);
        benchmark::DoNotOptimize(w.data());
        weights += 2 * n;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(weights));
}

/**
 * CellPool scaling: a fixed 24-cell accuracy grid (2 predictors x 12
 * workloads) executed at 1/2/4/hardware jobs. On a multicore host the
 * per-iteration time should drop roughly linearly until the core
 * count; jobs=1 measures the pool's serial-path overhead against the
 * plain loop (BM_AccuracyRunner).
 */
void
BM_CellPoolSuiteAccuracy(benchmark::State &state)
{
    const unsigned jobs =
        state.range(0) == 0
            ? parallel::hardwareJobs()
            : static_cast<unsigned>(state.range(0));
    static const SuiteTraces suite(50000, 42);
    const std::vector<PredictorKind> kinds = {
        PredictorKind::GshareFast, PredictorKind::Gshare};
    Counter cells = 0;
    for (auto _ : state) {
        parallel::CellPool pool(jobs);
        for (auto kind : kinds) {
            const auto res = suiteAccuracy(
                suite, [&] { return makePredictor(kind, 64 * 1024); },
                nullptr, &pool);
            benchmark::DoNotOptimize(res.data());
            cells += res.size();
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(cells));
    state.SetLabel("jobs=" + std::to_string(jobs));
}

/** Trace-suite construction with a cold cache: every workload is
 *  generated and written to disk. */
void
BM_TraceCacheCold(benchmark::State &state)
{
    const std::string dir =
        std::filesystem::temp_directory_path() /
        "bpsim_microbench_cache_cold";
    Counter ops = 0;
    for (auto _ : state) {
        std::filesystem::remove_all(dir);
        const SuiteTraces suite(50000, 42, nullptr, TraceCache(dir));
        benchmark::DoNotOptimize(suite.cacheMisses());
        ops += suite.size() * suite.opsPerWorkload();
    }
    std::filesystem::remove_all(dir);
    state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}

/** Trace-suite construction with a warm cache: every workload is
 *  served from disk, skipping generation entirely. */
void
BM_TraceCacheWarm(benchmark::State &state)
{
    const std::string dir =
        std::filesystem::temp_directory_path() /
        "bpsim_microbench_cache_warm";
    std::filesystem::remove_all(dir);
    { // Prime once outside the timed loop.
        const SuiteTraces prime(50000, 42, nullptr, TraceCache(dir));
        benchmark::DoNotOptimize(prime.cacheMisses());
    }
    Counter ops = 0;
    for (auto _ : state) {
        const SuiteTraces suite(50000, 42, nullptr, TraceCache(dir));
        benchmark::DoNotOptimize(suite.cacheHits());
        ops += suite.size() * suite.opsPerWorkload();
    }
    std::filesystem::remove_all(dir);
    state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}

/**
 * Compressed trace-cache codec: one store (delta+varint encode +
 * fwrite) plus one load (read + checksum + decode) of a 200k-op
 * trace per iteration. Isolates the v2 entry format from workload
 * generation; items processed counts trace ops through the codec
 * (encode + decode).
 */
void
BM_TraceCacheCompressed(benchmark::State &state)
{
    const std::string dir =
        std::filesystem::temp_directory_path() /
        "bpsim_microbench_cache_compressed";
    std::filesystem::remove_all(dir);
    const TraceCache cache(dir, 2); // pin the legacy v2 codec
    const TraceBuffer &trace = sharedTrace();
    Counter ops = 0;
    for (auto _ : state) {
        cache.store("176.gcc", trace.size(), 42, trace);
        const auto loaded = cache.load("176.gcc", trace.size(), 42);
        benchmark::DoNotOptimize(loaded->size());
        ops += 2 * trace.size();
    }
    std::filesystem::remove_all(dir);
    state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}

/**
 * Columnar (v3) trace-cache codec, the BM_TraceCacheCompressed
 * analogue: one store (column split + delta encode + checksums)
 * plus one load of a 200k-op trace. The load side is the v3 cold
 * cost — mmap, header/dir/block-checksum validation, zero-copy
 * branch columns; op decoding stays lazy and unpaid, which is why
 * this runs far ahead of the v2 codec.
 */
void
BM_TraceCacheColumnar(benchmark::State &state)
{
    const std::string dir =
        std::filesystem::temp_directory_path() /
        "bpsim_microbench_cache_columnar";
    std::filesystem::remove_all(dir);
    const TraceCache cache(dir, 3);
    const TraceBuffer &trace = sharedTrace();
    Counter ops = 0;
    for (auto _ : state) {
        cache.store("176.gcc", trace.size(), 42, trace);
        const auto loaded = cache.load("176.gcc", trace.size(), 42);
        benchmark::DoNotOptimize(loaded->branchView().size());
        ops += 2 * trace.size();
    }
    std::filesystem::remove_all(dir);
    state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}

} // namespace
} // namespace bpsim

BENCHMARK(bpsim::BM_PredictorThroughput)
    ->DenseRange(0, 7, 1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bpsim::BM_TraceGeneration)->Unit(benchmark::kMillisecond);
BENCHMARK(bpsim::BM_TimingSimulator)->Unit(benchmark::kMillisecond);
BENCHMARK(bpsim::BM_AccuracyRunner)->Unit(benchmark::kMillisecond);
BENCHMARK(bpsim::BM_CellPoolSuiteAccuracy)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(0) // 0 = hardware concurrency
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bpsim::BM_TraceCacheCold)->Unit(benchmark::kMillisecond);
BENCHMARK(bpsim::BM_TraceCacheWarm)->Unit(benchmark::kMillisecond);
BENCHMARK(bpsim::BM_TraceCacheCompressed)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bpsim::BM_TraceCacheColumnar)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bpsim::BM_OooCoreStallSkip)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bpsim::BM_PerceptronKernel)->Arg(32)->Arg(64)->Arg(256);

int
main(int argc, char **argv)
{
    // Strip --report/--trace/--jobs before google-benchmark sees argv
    // so its own flag parser does not reject them. BenchArgs::parse
    // is unusable here: it rejects every leftover argument, including
    // google-benchmark's own flags.
    bpsim::obs::ReportSession session(argc, argv, "microbench");
    (void)bpsim::takeJobsFlag(argc, argv);
    bpsim::registerKernelBenchmarks();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
