/**
 * @file
 * E7 / Figure 7: harmonic-mean IPC of the four large predictors over
 * 16KB-512KB budgets, left graph (ideal single-cycle prediction for
 * everyone) and right graph (overriding for the complex predictors;
 * gshare.fast is pipelined and needs no delay hiding).
 *
 * Paper reading (the headline result): with ideal access the complex
 * predictors win slightly; with realistic overriding their advantage
 * vanishes and turns into a loss at large budgets, while
 * gshare.fast's IPC is identical in both graphs because pipelining
 * hides its delay completely.
 */

#include "artifact_registry.hh"

namespace bpsim {

namespace {

void
sweep(SweepContext &ctx, const SuiteTraces &suite,
      const CoreConfig &cfg, DelayMode mode, const char *title)
{
    ctx.printf("\n-- %s --\n", title);
    ctx.printf("%-8s", "budget");
    for (auto k : largePredictorKinds())
        ctx.printf("%16s", kindName(k).c_str());
    ctx.printf("\n");
    for (std::size_t budget : largeBudgetsBytes()) {
        ctx.printf("%-8s", budgetLabel(budget).c_str());
        for (auto k : largePredictorKinds()) {
            double hm = 0;
            suiteTimingReport(
                suite, cfg,
                [&] { return makeFetchPredictor(k, budget, mode); },
                &hm, ctx.report(), kindName(k), delayModeName(mode),
                budget, ctx.metricsIfEnabled(), ctx.tracer(),
                ctx.pool());
            ctx.printf("%16.3f", hm);
        }
        ctx.printf("\n");
    }
}

int
run(const ArtifactSpec &spec, SweepContext &ctx)
{
    const Counter ops = benchOpsPerWorkload(spec.defaultOps);
    benchHeader(ctx, "Figure 7",
                "harmonic-mean IPC vs hardware budget", ops);
    SuiteTraces suite(ops, 42, ctx.pool(), /*shared_pool=*/true);
    CoreConfig cfg;

    sweep(ctx, suite, cfg, DelayMode::Ideal,
          "left graph: 1-cycle (ideal) prediction");
    sweep(ctx, suite, cfg, DelayMode::Overriding,
          "right graph: overriding prediction (gshare.fast pipelined)");
    return 0;
}

} // namespace

const ArtifactDef &
fig7IpcBudgetArtifact()
{
    static const ArtifactDef def = {
        {"fig7_ipc_budget",
         "Figure 7: harmonic-mean IPC vs hardware budget", 800000,
         false, ""},
        run,
    };
    return def;
}

} // namespace bpsim

#ifndef BPSIM_ARTIFACT_LIB
int
main(int argc, char **argv)
{
    return bpsim::artifactMain(bpsim::fig7IpcBudgetArtifact(), argc,
                               argv);
}
#endif
