/**
 * @file
 * E7 / Figure 7: harmonic-mean IPC of the four large predictors over
 * 16KB-512KB budgets, left graph (ideal single-cycle prediction for
 * everyone) and right graph (overriding for the complex predictors;
 * gshare.fast is pipelined and needs no delay hiding).
 *
 * Paper reading (the headline result): with ideal access the complex
 * predictors win slightly; with realistic overriding their advantage
 * vanishes and turns into a loss at large budgets, while
 * gshare.fast's IPC is identical in both graphs because pipelining
 * hides its delay completely.
 */

#include "artifact_registry.hh"

namespace bpsim {

namespace {

int
run(const ArtifactSpec &spec, SweepContext &ctx)
{
    const Counter ops = benchOpsPerWorkload(spec.defaultOps);
    benchHeader(ctx, "Figure 7",
                "harmonic-mean IPC vs hardware budget", ops);
    SuiteTraces suite(ops, 42, ctx.pool(), /*shared_pool=*/true);
    CoreConfig cfg;

    // Both graphs' cells in the serial row order (mode-major,
    // budget, kind); the ensemble engine batches each (mode, kind)
    // series across budgets into one trace pass per workload.
    const DelayMode modes[] = {DelayMode::Ideal,
                               DelayMode::Overriding};
    std::vector<TimingCellConfig> cells;
    for (const DelayMode mode : modes)
        for (std::size_t budget : largeBudgetsBytes())
            for (auto k : largePredictorKinds())
                cells.push_back(
                    {[k, budget, mode] {
                         return makeFetchPredictor(k, budget, mode);
                     },
                     kindName(k),
                     delayModeName(mode),
                     budget,
                     cfg});
    suiteTimingReportEnsemble(suite, cells, ctx.report(),
                              ctx.metricsIfEnabled(), ctx.tracer(),
                              ctx.pool());

    const char *titles[] = {
        "left graph: 1-cycle (ideal) prediction",
        "right graph: overriding prediction (gshare.fast pipelined)"};
    std::size_t cell = 0;
    for (const char *title : titles) {
        ctx.printf("\n-- %s --\n", title);
        ctx.printf("%-8s", "budget");
        for (auto k : largePredictorKinds())
            ctx.printf("%16s", kindName(k).c_str());
        ctx.printf("\n");
        for (std::size_t budget : largeBudgetsBytes()) {
            ctx.printf("%-8s", budgetLabel(budget).c_str());
            for (std::size_t k = 0;
                 k < largePredictorKinds().size(); ++k)
                ctx.printf("%16.3f",
                           cells[cell++].harmonicMeanIpc);
            ctx.printf("\n");
        }
    }
    return 0;
}

} // namespace

const ArtifactDef &
fig7IpcBudgetArtifact()
{
    static const ArtifactDef def = {
        {"fig7_ipc_budget",
         "Figure 7: harmonic-mean IPC vs hardware budget", 800000,
         false, ""},
        run,
    };
    return def;
}

} // namespace bpsim

#ifndef BPSIM_ARTIFACT_LIB
int
main(int argc, char **argv)
{
    return bpsim::artifactMain(bpsim::fig7IpcBudgetArtifact(), argc,
                               argv);
}
#endif
