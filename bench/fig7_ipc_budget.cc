/**
 * @file
 * E7 / Figure 7: harmonic-mean IPC of the four large predictors over
 * 16KB-512KB budgets, left graph (ideal single-cycle prediction for
 * everyone) and right graph (overriding for the complex predictors;
 * gshare.fast is pipelined and needs no delay hiding).
 *
 * Paper reading (the headline result): with ideal access the complex
 * predictors win slightly; with realistic overriding their advantage
 * vanishes and turns into a loss at large budgets, while
 * gshare.fast's IPC is identical in both graphs because pipelining
 * hides its delay completely.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace bpsim;

namespace {

void
sweep(BenchSession &session, const SuiteTraces &suite,
      const CoreConfig &cfg, DelayMode mode, const char *title)
{
    std::printf("\n-- %s --\n", title);
    std::printf("%-8s", "budget");
    for (auto k : largePredictorKinds())
        std::printf("%16s", kindName(k).c_str());
    std::printf("\n");
    for (std::size_t budget : largeBudgetsBytes()) {
        std::printf("%-8s", budgetLabel(budget).c_str());
        for (auto k : largePredictorKinds()) {
            double hm = 0;
            suiteTimingReport(
                suite, cfg,
                [&] { return makeFetchPredictor(k, budget, mode); },
                &hm, session.report(), kindName(k),
                delayModeName(mode), budget,
                session.metricsIfEnabled(), session.tracer(),
                session.pool());
            std::printf("%16.3f", hm);
        }
        std::printf("\n");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    BenchSession session(argc, argv, "fig7_ipc_budget");
    requireNoExtraArgs(argc, argv);
    const Counter ops = benchOpsPerWorkload(800000);
    benchHeader("Figure 7", "harmonic-mean IPC vs hardware budget",
                ops);
    SuiteTraces suite(ops, 42, session.pool());
    CoreConfig cfg;

    sweep(session, suite, cfg, DelayMode::Ideal,
          "left graph: 1-cycle (ideal) prediction");
    sweep(session, suite, cfg, DelayMode::Overriding,
          "right graph: overriding prediction (gshare.fast pipelined)");
    return 0;
}
