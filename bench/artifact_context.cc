#include "artifact_registry.hh"

#include <cstdarg>
#include <cstdio>
#include <vector>

#include "trace/shared_trace_pool.hh"

namespace bpsim {

void
SweepContext::printf(const char *fmt, ...)
{
    char stack[1024];
    std::va_list ap;
    va_start(ap, fmt);
    std::va_list ap2;
    va_copy(ap2, ap);
    const int n = std::vsnprintf(stack, sizeof(stack), fmt, ap);
    va_end(ap);
    if (n < 0) {
        va_end(ap2);
        return;
    }
    if (static_cast<std::size_t>(n) < sizeof(stack)) {
        write(stack, static_cast<std::size_t>(n));
    } else {
        std::vector<char> heap(static_cast<std::size_t>(n) + 1);
        std::vsnprintf(heap.data(), heap.size(), fmt, ap2);
        write(heap.data(), static_cast<std::size_t>(n));
    }
    va_end(ap2);
}

StandaloneSweepContext::StandaloneSweepContext(
    const ArtifactSpec &spec, const BenchArgs &args)
    : session_(args.report, args.trace, spec.name),
      pool_(args.jobs, spec.name),
      manifest_(args.manifest)
{
    // Timing runs under --trace bypass the pool (runner.cc hands the
    // tracer a serial path so event streams stay in cycle order);
    // say so instead of silently ignoring a multi-job request.
    if (session_.tracer() && pool_.jobs() > 1)
        std::fprintf(stderr,
                     "%s: --trace forces serial cell execution; "
                     "--jobs %u ignored for traced runs\n",
                     spec.name.c_str(), pool_.jobs());
}

StandaloneSweepContext::~StandaloneSweepContext()
{
    // Before the session's finish() snapshots the registry: stamp
    // the pool's execution stats and the process-wide trace-pool
    // counters so --report runs carry utilization and sharing info.
    if (session_.wantReport()) {
        pool_.stats().publish(session_.metrics());
        SharedTracePool::global().stats().publish(session_.metrics());
    }
}

void
StandaloneSweepContext::write(const char *data, std::size_t n)
{
    std::fwrite(data, 1, n, stdout);
}

BufferedSweepContext::BufferedSweepContext(const ArtifactSpec &spec,
                                           parallel::CellPool *pool,
                                           bool want_report,
                                           std::string manifest)
    : metrics_(/*enabled=*/true),
      pool_(pool),
      wantReport_(want_report),
      manifest_(std::move(manifest))
{
    report_.experiment = spec.name;
}

void
BufferedSweepContext::finalize()
{
    // Mirror the standalone destructor: stamp the pool's execution
    // stats before the snapshot, so sweep-written reports carry the
    // same `parallel.pool.*` series (bpstat summary reads them).
    // Metrics never participate in bpstat diff, so the wall-clock
    // fields can differ from a standalone run.
    if (wantReport_ && pool_)
        pool_->stats().publish(metrics_);
    if (metrics_.size() > 0)
        report_.metrics = metrics_.toJson();
}

void
BufferedSweepContext::write(const char *data, std::size_t n)
{
    out_.append(data, n);
}

int
artifactMain(const ArtifactDef &def, int argc, char **argv)
{
    const BenchArgs args =
        BenchArgs::parse(argc, argv, def.spec.acceptsManifest,
                         def.spec.extraUsage);
    StandaloneSweepContext ctx(def.spec, args);
    return def.fn(def.spec, ctx);
}

void
benchHeader(SweepContext &ctx, const std::string &artifact,
            const std::string &what, Counter ops)
{
    static const char rule[] =
        "==============================================================\n";
    ctx.printf("%s", rule);
    ctx.printf("%s — %s\n", artifact.c_str(), what.c_str());
    ctx.printf("workloads: SPECint2000 stand-ins, %llu ops each "
               "(BPSIM_OPS_PER_WORKLOAD to scale)\n",
               static_cast<unsigned long long>(ops));
    ctx.printf("%s", rule);
}

} // namespace bpsim
