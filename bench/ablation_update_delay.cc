/**
 * @file
 * E9 / Section 3.2: the "update the table slowly" policy. The paper
 * reports that letting 64 branches pass between a prediction and its
 * PHT update moves the 256KB-budget mean misprediction from 4.03% to
 * 4.07%, with under 1% IPC cost — i.e. slow non-speculative update
 * is essentially free, which is what makes the pipelined PHT
 * practical.
 *
 * This bench sweeps the update-delay depth at the 256KB budget and
 * reports mean misprediction and harmonic-mean IPC per depth.
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/bitutil.hh"
#include "predictors/gshare_fast.hh"

using namespace bpsim;

int
main(int argc, char **argv)
{
    BenchSession session(argc, argv, "ablation_update_delay");
    requireNoExtraArgs(argc, argv);
    const Counter ops = benchOpsPerWorkload(800000);
    benchHeader("Section 3.2 ablation",
                "gshare.fast (256KB) accuracy/IPC vs PHT update delay",
                ops);
    SuiteTraces suite(ops, 42, session.pool());
    CoreConfig cfg;

    const std::size_t budget = 256 * 1024;
    const std::size_t entries = budget * 4;
    const unsigned row_lag = 6; // ~the 256KB access latency - 1

    std::printf("%-12s %-18s %-18s\n", "updateDelay",
                "mean misp (%)", "harmonic IPC");

    for (unsigned delay : {0u, 4u, 16u, 64u, 256u, 1024u}) {
        auto make = [&] {
            return std::make_unique<GshareFastPredictor>(
                entries, row_lag, delay);
        };
        const std::string name =
            "gshare.fast(upd=" + std::to_string(delay) + ")";
        double mean = 0;
        suiteAccuracyReport(suite, make, &mean, session.report(), name,
                            budget, session.metricsIfEnabled(),
                            session.pool());

        double hm = 0;
        suiteTimingReport(
            suite, cfg,
            [&] {
                return std::make_unique<SingleCycleFetchPredictor>(
                    make());
            },
            &hm, session.report(), name,
            delayModeName(DelayMode::Ideal), budget,
            session.metricsIfEnabled(), session.tracer(),
            session.pool());
        std::printf("%-12u %-18.3f %-18.3f\n", delay, mean, hm);
    }

    std::printf("\nPaper reference: delay 64 moves 4.03%% -> 4.07%% "
                "misprediction, <1%% IPC loss.\n");
    return 0;
}
