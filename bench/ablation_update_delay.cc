/**
 * @file
 * E9 / Section 3.2: the "update the table slowly" policy. The paper
 * reports that letting 64 branches pass between a prediction and its
 * PHT update moves the 256KB-budget mean misprediction from 4.03% to
 * 4.07%, with under 1% IPC cost — i.e. slow non-speculative update
 * is essentially free, which is what makes the pipelined PHT
 * practical.
 *
 * This bench sweeps the update-delay depth at the 256KB budget and
 * reports mean misprediction and harmonic-mean IPC per depth.
 */

#include <memory>
#include <string>

#include "artifact_registry.hh"
#include "common/bitutil.hh"
#include "predictors/gshare_fast.hh"

namespace bpsim {

namespace {

int
run(const ArtifactSpec &spec, SweepContext &ctx)
{
    const Counter ops = benchOpsPerWorkload(spec.defaultOps);
    benchHeader(ctx, "Section 3.2 ablation",
                "gshare.fast (256KB) accuracy/IPC vs PHT update delay",
                ops);
    SuiteTraces suite(ops, 42, ctx.pool(), /*shared_pool=*/true);
    CoreConfig cfg;

    const std::size_t budget = 256 * 1024;
    const std::size_t entries = budget * 4;
    const unsigned row_lag = 6; // ~the 256KB access latency - 1

    ctx.printf("%-12s %-18s %-18s\n", "updateDelay", "mean misp (%)",
               "harmonic IPC");

    for (unsigned delay : {0u, 4u, 16u, 64u, 256u, 1024u}) {
        auto make = [&] {
            return std::make_unique<GshareFastPredictor>(
                entries, row_lag, delay);
        };
        const std::string name =
            "gshare.fast(upd=" + std::to_string(delay) + ")";
        double mean = 0;
        suiteAccuracyReport(suite, make, &mean, ctx.report(), name,
                            budget, ctx.metricsIfEnabled(),
                            ctx.pool());

        double hm = 0;
        suiteTimingReport(
            suite, cfg,
            [&] {
                return std::make_unique<SingleCycleFetchPredictor>(
                    make());
            },
            &hm, ctx.report(), name, delayModeName(DelayMode::Ideal),
            budget, ctx.metricsIfEnabled(), ctx.tracer(), ctx.pool());
        ctx.printf("%-12u %-18.3f %-18.3f\n", delay, mean, hm);
    }

    ctx.printf("\nPaper reference: delay 64 moves 4.03%% -> 4.07%% "
               "misprediction, <1%% IPC loss.\n");
    return 0;
}

} // namespace

const ArtifactDef &
ablationUpdateDelayArtifact()
{
    static const ArtifactDef def = {
        {"ablation_update_delay",
         "Section 3.2 ablation: accuracy/IPC vs PHT update delay",
         800000, false, ""},
        run,
    };
    return def;
}

} // namespace bpsim

#ifndef BPSIM_ARTIFACT_LIB
int
main(int argc, char **argv)
{
    return bpsim::artifactMain(bpsim::ablationUpdateDelayArtifact(),
                               argc, argv);
}
#endif
