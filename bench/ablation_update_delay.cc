/**
 * @file
 * E9 / Section 3.2: the "update the table slowly" policy. The paper
 * reports that letting 64 branches pass between a prediction and its
 * PHT update moves the 256KB-budget mean misprediction from 4.03% to
 * 4.07%, with under 1% IPC cost — i.e. slow non-speculative update
 * is essentially free, which is what makes the pipelined PHT
 * practical.
 *
 * This bench sweeps the update-delay depth at the 256KB budget and
 * reports mean misprediction and harmonic-mean IPC per depth.
 */

#include <memory>
#include <string>

#include "artifact_registry.hh"
#include "common/bitutil.hh"
#include "predictors/gshare_fast.hh"

namespace bpsim {

namespace {

int
run(const ArtifactSpec &spec, SweepContext &ctx)
{
    const Counter ops = benchOpsPerWorkload(spec.defaultOps);
    benchHeader(ctx, "Section 3.2 ablation",
                "gshare.fast (256KB) accuracy/IPC vs PHT update delay",
                ops);
    SuiteTraces suite(ops, 42, ctx.pool(), /*shared_pool=*/true);
    CoreConfig cfg;

    const std::size_t budget = 256 * 1024;
    const std::size_t entries = budget * 4;
    const unsigned row_lag = 6; // ~the 256KB access latency - 1

    // Accuracy cells first, then timing cells, each list batching
    // the whole delay sweep into one trace pass per workload (every
    // delay point is the same gshare.fast family).
    const unsigned delays[] = {0u, 4u, 16u, 64u, 256u, 1024u};
    std::vector<AccuracyCellConfig> accCells;
    std::vector<TimingCellConfig> timCells;
    for (const unsigned delay : delays) {
        const std::string name =
            "gshare.fast(upd=" + std::to_string(delay) + ")";
        auto make = [entries, row_lag, delay] {
            return std::make_unique<GshareFastPredictor>(
                entries, row_lag, delay);
        };
        accCells.push_back({make, name, budget});
        timCells.push_back(
            {[make] {
                 return std::make_unique<SingleCycleFetchPredictor>(
                     make());
             },
             name, delayModeName(DelayMode::Ideal), budget, cfg});
    }
    suiteAccuracyReportEnsemble(suite, accCells, ctx.report(),
                                ctx.metricsIfEnabled(), ctx.pool());
    suiteTimingReportEnsemble(suite, timCells, ctx.report(),
                              ctx.metricsIfEnabled(), ctx.tracer(),
                              ctx.pool());

    ctx.printf("%-12s %-18s %-18s\n", "updateDelay", "mean misp (%)",
               "harmonic IPC");
    for (std::size_t d = 0; d < std::size(delays); ++d)
        ctx.printf("%-12u %-18.3f %-18.3f\n", delays[d],
                   accCells[d].meanPercent,
                   timCells[d].harmonicMeanIpc);

    ctx.printf("\nPaper reference: delay 64 moves 4.03%% -> 4.07%% "
               "misprediction, <1%% IPC loss.\n");
    return 0;
}

} // namespace

const ArtifactDef &
ablationUpdateDelayArtifact()
{
    static const ArtifactDef def = {
        {"ablation_update_delay",
         "Section 3.2 ablation: accuracy/IPC vs PHT update delay",
         800000, false, ""},
        run,
    };
    return def;
}

} // namespace bpsim

#ifndef BPSIM_ARTIFACT_LIB
int
main(int argc, char **argv)
{
    return bpsim::artifactMain(bpsim::ablationUpdateDelayArtifact(),
                               argc, argv);
}
#endif
