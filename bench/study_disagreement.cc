/**
 * @file
 * E10 / Section 4.5: why overriding hurts — the quick and slow
 * predictors disagree often, and every disagreement costs a bubble
 * equal to the slow predictor's latency. The paper reports the
 * perceptron overriding its quick predictor 7.38% of the time on
 * average, and the multi-component predictor disagreeing 18.1% of
 * the time on 300.twolf.
 *
 * This bench reports per-benchmark disagreement rates for both
 * complex predictors at the 64KB budget, plus the share of cycles
 * lost to overriding bubbles.
 */

#include <memory>
#include <vector>

#include "artifact_registry.hh"
#include "common/stats.hh"

namespace bpsim {

namespace {

int
run(const ArtifactSpec &spec, SweepContext &ctx)
{
    const Counter ops = benchOpsPerWorkload(spec.defaultOps);
    benchHeader(ctx, "Section 4.5 study",
                "overriding disagreement rates at 64KB", ops);
    SuiteTraces suite(ops, 42, ctx.pool(), /*shared_pool=*/true);
    CoreConfig cfg;
    suite.describe(ctx.report());

    for (auto kind :
         {PredictorKind::Perceptron, PredictorKind::MultiComponent}) {
        ctx.printf("\n-- %s (latency %u cycles) --\n",
                   kindName(kind).c_str(),
                   predictorLatencyCycles(kind, 64 * 1024));
        ctx.printf("%-12s %-16s %-16s %-14s\n", "benchmark",
                   "disagree (%)", "bubble cyc (%)", "IPC");
        std::vector<double> rates;
        // Per-workload cells on the pool; predictors stay alive past
        // compute so their disagreement counters can be read at
        // commit time, in workload order. An event tracer needs one
        // ordered stream, so it forces the serial path.
        std::vector<std::unique_ptr<FetchPredictor>> preds(
            suite.size());
        std::vector<SimResult> results(suite.size());
        const auto compute = [&](std::size_t i) {
            preds[i] = makeFetchPredictor(kind, 64 * 1024,
                                          DelayMode::Overriding);
            results[i] =
                runTiming(cfg, *preds[i], suite.trace(i),
                          ctx.tracer());
        };
        const auto commit = [&](std::size_t i) {
            const auto &r = results[i];
            auto *over = dynamic_cast<OverridingFetchPredictor *>(
                preds[i].get());
            ctx.report().rows.push_back(reportRow(
                suite.name(i), kindName(kind),
                delayModeName(DelayMode::Overriding), 64 * 1024, cfg,
                r));
            if (auto *reg = ctx.metricsIfEnabled()) {
                r.publishMetrics(*reg, suite.name(i));
                reg->gauge("fetch.overriding.disagree_percent{"
                           "predictor=" +
                           kindName(kind) +
                           ",workload=" + suite.name(i) + "}")
                    .set(over ? over->disagreements().percent() : 0.0);
            }
            const double dis =
                over ? over->disagreements().percent() : 0.0;
            rates.push_back(dis);
            ctx.printf("%-12s %-16.2f %-16.2f %-14.3f\n",
                       shortName(suite.name(i)).c_str(), dis,
                       100.0 *
                           static_cast<double>(
                               r.overridingBubbleCycles) /
                           static_cast<double>(r.cycles),
                       r.ipc());
            preds[i].reset();
        };
        if (ctx.tracer()) {
            for (std::size_t i = 0; i < suite.size(); ++i) {
                compute(i);
                commit(i);
            }
        } else {
            ctx.pool()->run(suite.size(), compute, commit);
        }
        ctx.printf("%-12s %-16.2f\n", "arith.mean",
                   arithmeticMean(rates));
    }

    ctx.printf("\nPaper reference: perceptron overrides 7.38%% of "
               "predictions on average;\nmulticomponent disagrees "
               "18.1%% of the time on 300.twolf.\n");
    return 0;
}

} // namespace

const ArtifactDef &
studyDisagreementArtifact()
{
    static const ArtifactDef def = {
        {"study_disagreement",
         "Section 4.5 study: overriding disagreement rates at 64KB",
         800000, false, ""},
        run,
    };
    return def;
}

} // namespace bpsim

#ifndef BPSIM_ARTIFACT_LIB
int
main(int argc, char **argv)
{
    return bpsim::artifactMain(bpsim::studyDisagreementArtifact(),
                               argc, argv);
}
#endif
