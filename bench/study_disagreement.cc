/**
 * @file
 * E10 / Section 4.5: why overriding hurts — the quick and slow
 * predictors disagree often, and every disagreement costs a bubble
 * equal to the slow predictor's latency. The paper reports the
 * perceptron overriding its quick predictor 7.38% of the time on
 * average, and the multi-component predictor disagreeing 18.1% of
 * the time on 300.twolf.
 *
 * This bench reports per-benchmark disagreement rates for both
 * complex predictors at the 64KB budget, plus the share of cycles
 * lost to overriding bubbles.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "common/stats.hh"

using namespace bpsim;

int
main(int argc, char **argv)
{
    BenchSession session(argc, argv, "study_disagreement");
    requireNoExtraArgs(argc, argv);
    const Counter ops = benchOpsPerWorkload(800000);
    benchHeader("Section 4.5 study",
                "overriding disagreement rates at 64KB", ops);
    SuiteTraces suite(ops, 42, session.pool());
    CoreConfig cfg;
    suite.describe(session.report());

    for (auto kind :
         {PredictorKind::Perceptron, PredictorKind::MultiComponent}) {
        std::printf("\n-- %s (latency %u cycles) --\n",
                    kindName(kind).c_str(),
                    predictorLatencyCycles(kind, 64 * 1024));
        std::printf("%-12s %-16s %-16s %-14s\n", "benchmark",
                    "disagree (%)", "bubble cyc (%)", "IPC");
        std::vector<double> rates;
        for (std::size_t i = 0; i < suite.size(); ++i) {
            auto fp = makeFetchPredictor(kind, 64 * 1024,
                                         DelayMode::Overriding);
            auto *over =
                dynamic_cast<OverridingFetchPredictor *>(fp.get());
            const auto r =
                runTiming(cfg, *fp, suite.trace(i), session.tracer());
            session.report().rows.push_back(reportRow(
                suite.name(i), kindName(kind),
                delayModeName(DelayMode::Overriding), 64 * 1024, cfg,
                r));
            if (auto *reg = session.metricsIfEnabled()) {
                r.publishMetrics(*reg, suite.name(i));
                reg->gauge("fetch.overriding.disagree_percent{"
                           "predictor=" +
                           kindName(kind) +
                           ",workload=" + suite.name(i) + "}")
                    .set(over ? over->disagreements().percent() : 0.0);
            }
            const double dis =
                over ? over->disagreements().percent() : 0.0;
            rates.push_back(dis);
            std::printf("%-12s %-16.2f %-16.2f %-14.3f\n",
                        shortName(suite.name(i)).c_str(), dis,
                        100.0 *
                            static_cast<double>(
                                r.overridingBubbleCycles) /
                            static_cast<double>(r.cycles),
                        r.ipc());
        }
        std::printf("%-12s %-16.2f\n", "arith.mean",
                    arithmeticMean(rates));
    }

    std::printf("\nPaper reference: perceptron overrides 7.38%% of "
                "predictions on average;\nmulticomponent disagrees "
                "18.1%% of the time on 300.twolf.\n");
    return 0;
}
