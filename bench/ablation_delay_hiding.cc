/**
 * @file
 * Section 2.6 ablation: overriding vs the alternative delay-hiding
 * organizations the paper discusses — stalling (no hiding at all),
 * dual-path fetch (AMD Hammer style), and cascading (use the slow
 * answer for the branch's next instance).
 *
 * Paper reading: "Overriding has been shown to yield better
 * performance [7] than other proposed delay-hiding schemes such as
 * lookahead [21] and cascading [7, 4]" — and of course every scheme
 * loses to a predictor that needs no hiding at all, which is
 * gshare.fast's point.
 */

#include <vector>

#include "artifact_registry.hh"

namespace bpsim {

namespace {

int
run(const ArtifactSpec &spec, SweepContext &ctx)
{
    const Counter ops = benchOpsPerWorkload(spec.defaultOps);
    benchHeader(ctx, "Section 2.6 ablation",
                "delay-hiding schemes for the perceptron predictor",
                ops);
    SuiteTraces suite(ops, 42, ctx.pool(), /*shared_pool=*/true);
    CoreConfig cfg;

    const std::vector<DelayMode> modes = {
        DelayMode::Ideal,    DelayMode::Overriding,
        DelayMode::Cascading, DelayMode::DualPath,
        DelayMode::Stall,
    };

    // Cells in the serial row order (budget, mode); each mode's
    // series batches across the three budgets.
    const std::size_t budgets[] = {64u * 1024, 256u * 1024,
                                   512u * 1024};
    std::vector<TimingCellConfig> cells;
    for (const std::size_t budget : budgets)
        for (auto m : modes)
            cells.push_back(
                {[budget, m] {
                     return makeFetchPredictor(
                         PredictorKind::Perceptron, budget, m);
                 },
                 kindName(PredictorKind::Perceptron),
                 delayModeName(m),
                 budget,
                 cfg});
    suiteTimingReportEnsemble(suite, cells, ctx.report(),
                              ctx.metricsIfEnabled(), ctx.tracer(),
                              ctx.pool());

    ctx.printf("%-8s %6s", "budget", "lat");
    for (auto m : modes)
        ctx.printf("%14s", delayModeName(m).c_str());
    ctx.printf("\n");

    std::size_t cell = 0;
    for (const std::size_t budget : budgets) {
        ctx.printf("%-8s %6u", budgetLabel(budget).c_str(),
                   predictorLatencyCycles(PredictorKind::Perceptron,
                                          budget));
        for (std::size_t m = 0; m < modes.size(); ++m)
            ctx.printf("%14.3f", cells[cell++].harmonicMeanIpc);
        ctx.printf("\n");
    }

    ctx.printf("\n(harmonic-mean IPC; 'ideal' is the unreachable "
               "zero-delay upper bound)\n");
    return 0;
}

} // namespace

const ArtifactDef &
ablationDelayHidingArtifact()
{
    static const ArtifactDef def = {
        {"ablation_delay_hiding",
         "Section 2.6 ablation: delay-hiding schemes (perceptron)",
         600000, false, ""},
        run,
    };
    return def;
}

} // namespace bpsim

#ifndef BPSIM_ARTIFACT_LIB
int
main(int argc, char **argv)
{
    return bpsim::artifactMain(bpsim::ablationDelayHidingArtifact(),
                               argc, argv);
}
#endif
