/**
 * @file
 * Section 2.6 ablation: overriding vs the alternative delay-hiding
 * organizations the paper discusses — stalling (no hiding at all),
 * dual-path fetch (AMD Hammer style), and cascading (use the slow
 * answer for the branch's next instance).
 *
 * Paper reading: "Overriding has been shown to yield better
 * performance [7] than other proposed delay-hiding schemes such as
 * lookahead [21] and cascading [7, 4]" — and of course every scheme
 * loses to a predictor that needs no hiding at all, which is
 * gshare.fast's point.
 */

#include <vector>

#include "artifact_registry.hh"

namespace bpsim {

namespace {

int
run(const ArtifactSpec &spec, SweepContext &ctx)
{
    const Counter ops = benchOpsPerWorkload(spec.defaultOps);
    benchHeader(ctx, "Section 2.6 ablation",
                "delay-hiding schemes for the perceptron predictor",
                ops);
    SuiteTraces suite(ops, 42, ctx.pool(), /*shared_pool=*/true);
    CoreConfig cfg;

    const std::vector<DelayMode> modes = {
        DelayMode::Ideal,    DelayMode::Overriding,
        DelayMode::Cascading, DelayMode::DualPath,
        DelayMode::Stall,
    };

    ctx.printf("%-8s %6s", "budget", "lat");
    for (auto m : modes)
        ctx.printf("%14s", delayModeName(m).c_str());
    ctx.printf("\n");

    for (std::size_t budget : {64u * 1024, 256u * 1024, 512u * 1024}) {
        ctx.printf("%-8s %6u", budgetLabel(budget).c_str(),
                   predictorLatencyCycles(PredictorKind::Perceptron,
                                          budget));
        for (auto m : modes) {
            double hm = 0;
            suiteTimingReport(
                suite, cfg,
                [&] {
                    return makeFetchPredictor(PredictorKind::Perceptron,
                                              budget, m);
                },
                &hm, ctx.report(), kindName(PredictorKind::Perceptron),
                delayModeName(m), budget, ctx.metricsIfEnabled(),
                ctx.tracer(), ctx.pool());
            ctx.printf("%14.3f", hm);
        }
        ctx.printf("\n");
    }

    ctx.printf("\n(harmonic-mean IPC; 'ideal' is the unreachable "
               "zero-delay upper bound)\n");
    return 0;
}

} // namespace

const ArtifactDef &
ablationDelayHidingArtifact()
{
    static const ArtifactDef def = {
        {"ablation_delay_hiding",
         "Section 2.6 ablation: delay-hiding schemes (perceptron)",
         600000, false, ""},
        run,
    };
    return def;
}

} // namespace bpsim

#ifndef BPSIM_ARTIFACT_LIB
int
main(int argc, char **argv)
{
    return bpsim::artifactMain(bpsim::ablationDelayHidingArtifact(),
                               argc, argv);
}
#endif
