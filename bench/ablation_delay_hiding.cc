/**
 * @file
 * Section 2.6 ablation: overriding vs the alternative delay-hiding
 * organizations the paper discusses — stalling (no hiding at all),
 * dual-path fetch (AMD Hammer style), and cascading (use the slow
 * answer for the branch's next instance).
 *
 * Paper reading: "Overriding has been shown to yield better
 * performance [7] than other proposed delay-hiding schemes such as
 * lookahead [21] and cascading [7, 4]" — and of course every scheme
 * loses to a predictor that needs no hiding at all, which is
 * gshare.fast's point.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"

using namespace bpsim;

int
main(int argc, char **argv)
{
    BenchSession session(argc, argv, "ablation_delay_hiding");
    requireNoExtraArgs(argc, argv);
    const Counter ops = benchOpsPerWorkload(600000);
    benchHeader("Section 2.6 ablation",
                "delay-hiding schemes for the perceptron predictor",
                ops);
    SuiteTraces suite(ops, 42, session.pool());
    CoreConfig cfg;

    const std::vector<DelayMode> modes = {
        DelayMode::Ideal,    DelayMode::Overriding,
        DelayMode::Cascading, DelayMode::DualPath,
        DelayMode::Stall,
    };

    std::printf("%-8s %6s", "budget", "lat");
    for (auto m : modes)
        std::printf("%14s", delayModeName(m).c_str());
    std::printf("\n");

    for (std::size_t budget : {64u * 1024, 256u * 1024, 512u * 1024}) {
        std::printf("%-8s %6u",
                    budgetLabel(budget).c_str(),
                    predictorLatencyCycles(PredictorKind::Perceptron,
                                           budget));
        for (auto m : modes) {
            double hm = 0;
            suiteTimingReport(
                suite, cfg,
                [&] {
                    return makeFetchPredictor(PredictorKind::Perceptron,
                                              budget, m);
                },
                &hm, session.report(),
                kindName(PredictorKind::Perceptron), delayModeName(m),
                budget, session.metricsIfEnabled(), session.tracer(),
                session.pool());
            std::printf("%14.3f", hm);
        }
        std::printf("\n");
    }

    std::printf("\n(harmonic-mean IPC; 'ideal' is the unreachable "
                "zero-delay upper bound)\n");
    return 0;
}
