/**
 * @file
 * Context-switch study. Evers' multi-component hybrid — one of the
 * paper's two "most accurate" predictors — originally came out of
 * research on prediction in the presence of context switches
 * (Evers/Chang/Patt, ISCA-23): multi-scheme predictors re-warm
 * faster because some component recovers quickly. This bench
 * interleaves two workloads in fixed quanta (simulating kernel
 * scheduling) and reports how much each predictor loses relative to
 * running the workloads back to back.
 */

#include <memory>
#include <string>
#include <vector>

#include "artifact_registry.hh"
#include "trace/shared_trace_pool.hh"
#include "workloads/registry.hh"

namespace bpsim {

namespace {

/** Interleave two traces in quanta of @p quantum instructions. */
TraceBuffer
interleave(const TraceBuffer &a, const TraceBuffer &b,
           std::size_t quantum)
{
    TraceBuffer out;
    out.reserve(a.size() + b.size());
    std::size_t ia = 0, ib = 0;
    while (ia < a.size() || ib < b.size()) {
        for (std::size_t k = 0; k < quantum && ia < a.size(); ++k)
            out.push(a[ia++]);
        for (std::size_t k = 0; k < quantum && ib < b.size(); ++k)
            out.push(b[ib++]);
    }
    return out;
}

int
run(const ArtifactSpec &spec, SweepContext &ctx)
{
    const Counter ops = benchOpsPerWorkload(spec.defaultOps);
    ctx.printf("==============================================================\n");
    ctx.printf("Context-switch study — interleaved gcc+crafty at 64KB\n");
    ctx.printf("(the workload regime Evers' multi-component design "
               "targets)\n");
    ctx.printf("==============================================================\n");

    // The base traces go through the shared pool (and the on-disk
    // cache): in a sweep they are the same buffers the suite benches
    // replay, materialized once per process.
    const TraceCache cache = TraceCache::fromEnv();
    const auto fetchShared = [&](const std::string &name) {
        return SharedTracePool::global().fetch(
            name, ops, 42, cache, [&] {
                const auto w = makeWorkload(name);
                return generateTrace(*w, ops, 42);
            });
    };
    const auto ta = fetchShared("176.gcc");
    const auto tb = fetchShared("186.crafty");
    const TraceBuffer back_to_back =
        interleave(*ta, *tb, ta->size());
    ctx.report().opsPerWorkload = ops;
    ctx.report().seed = 42;

    const std::vector<std::size_t> quanta = {100000, 20000, 4000};
    // Interleavings are deterministic; build each once up front
    // instead of once per predictor kind.
    std::vector<TraceBuffer> mixed;
    for (std::size_t q : quanta)
        mixed.push_back(interleave(*ta, *tb, q));

    const std::vector<PredictorKind> kinds = {
        PredictorKind::Gshare,
        PredictorKind::Gskew,
        PredictorKind::Perceptron,
        PredictorKind::MultiComponent,
        PredictorKind::GshareFast,
    };

    ctx.printf("%-16s %16s", "quantum (insts)", "back-to-back");
    for (std::size_t q : quanta)
        ctx.printf("%16zu", q);
    ctx.printf("\n");

    // One cell per (kind, schedule): replay on the pool, commit rows
    // and table text in schedule order per kind.
    struct Schedule
    {
        std::string workload;
        const TraceBuffer *trace;
    };
    std::vector<Schedule> schedules = {
        {"gcc+crafty@back-to-back", &back_to_back}};
    for (std::size_t qi = 0; qi < quanta.size(); ++qi)
        schedules.push_back(
            {"gcc+crafty@q=" + std::to_string(quanta[qi]),
             &mixed[qi]});

    for (auto kind : kinds) {
        std::vector<AccuracyResult> results(schedules.size());
        ctx.pool()->run(
            schedules.size(),
            [&](std::size_t i) {
                auto p = makePredictor(kind, 64 * 1024);
                results[i] =
                    runAccuracy(*p, *schedules[i].trace);
            },
            [&](std::size_t i) {
                if (ctx.wantReport())
                    ctx.report().rows.push_back(
                        reportRow(schedules[i].workload,
                                  kindName(kind), 64 * 1024,
                                  results[i]));
                if (i == 0)
                    ctx.printf("%-16s %16.2f",
                               kindName(kind).c_str(),
                               results[i].percent());
                else
                    ctx.printf("%16.2f", results[i].percent());
            });
        ctx.printf("\n");
    }

    ctx.printf("\n(mean misprediction %%; smaller quanta = more "
               "frequent context switches)\n");
    return 0;
}

} // namespace

const ArtifactDef &
studyContextSwitchArtifact()
{
    static const ArtifactDef def = {
        {"study_context_switch",
         "Context-switch study: interleaved gcc+crafty at 64KB",
         400000, false, ""},
        run,
    };
    return def;
}

} // namespace bpsim

#ifndef BPSIM_ARTIFACT_LIB
int
main(int argc, char **argv)
{
    return bpsim::artifactMain(bpsim::studyContextSwitchArtifact(),
                               argc, argv);
}
#endif
