/**
 * @file
 * Context-switch study. Evers' multi-component hybrid — one of the
 * paper's two "most accurate" predictors — originally came out of
 * research on prediction in the presence of context switches
 * (Evers/Chang/Patt, ISCA-23): multi-scheme predictors re-warm
 * faster because some component recovers quickly. This bench
 * interleaves two workloads in fixed quanta (simulating kernel
 * scheduling) and reports how much each predictor loses relative to
 * running the workloads back to back.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "workloads/registry.hh"

using namespace bpsim;

namespace {

/** Interleave two traces in quanta of @p quantum instructions. */
TraceBuffer
interleave(const TraceBuffer &a, const TraceBuffer &b,
           std::size_t quantum)
{
    TraceBuffer out;
    out.reserve(a.size() + b.size());
    std::size_t ia = 0, ib = 0;
    while (ia < a.size() || ib < b.size()) {
        for (std::size_t k = 0; k < quantum && ia < a.size(); ++k)
            out.push(a[ia++]);
        for (std::size_t k = 0; k < quantum && ib < b.size(); ++k)
            out.push(b[ib++]);
    }
    return out;
}

double
mispOn(BenchSession &session, const std::string &workload,
       const TraceBuffer &t, PredictorKind kind)
{
    auto p = makePredictor(kind, 64 * 1024);
    const auto r = runAccuracy(*p, t);
    if (session.wantReport())
        session.report().rows.push_back(
            reportRow(workload, kindName(kind), 64 * 1024, r));
    return r.percent();
}

} // namespace

int
main(int argc, char **argv)
{
    BenchSession session(argc, argv, "study_context_switch");
    requireNoExtraArgs(argc, argv);
    const Counter ops = benchOpsPerWorkload(400000);
    std::printf("==============================================================\n");
    std::printf("Context-switch study — interleaved gcc+crafty at 64KB\n");
    std::printf("(the workload regime Evers' multi-component design "
                "targets)\n");
    std::printf("==============================================================\n");

    const auto gcc = makeWorkload("176.gcc");
    const auto crafty = makeWorkload("186.crafty");
    const TraceBuffer ta = generateTrace(*gcc, ops, 42);
    const TraceBuffer tb = generateTrace(*crafty, ops, 42);
    const TraceBuffer back_to_back = interleave(ta, tb, ta.size());
    session.report().opsPerWorkload = ops;
    session.report().seed = 42;

    const std::vector<PredictorKind> kinds = {
        PredictorKind::Gshare,
        PredictorKind::Gskew,
        PredictorKind::Perceptron,
        PredictorKind::MultiComponent,
        PredictorKind::GshareFast,
    };

    std::printf("%-16s %16s", "quantum (insts)", "back-to-back");
    for (std::size_t q : {100000u, 20000u, 4000u})
        std::printf("%16zu", q);
    std::printf("\n");

    for (auto kind : kinds) {
        std::printf("%-16s %16.2f", kindName(kind).c_str(),
                    mispOn(session, "gcc+crafty@back-to-back",
                           back_to_back, kind));
        for (std::size_t q : {100000u, 20000u, 4000u}) {
            const TraceBuffer mixed = interleave(ta, tb, q);
            // Quantum goes into the workload name so row keys stay
            // unique across the sweep.
            std::printf("%16.2f",
                        mispOn(session,
                               "gcc+crafty@q=" + std::to_string(q),
                               mixed, kind));
        }
        std::printf("\n");
    }

    std::printf("\n(mean misprediction %%; smaller quanta = more "
                "frequent context switches)\n");
    return 0;
}
