/**
 * @file
 * E6 / Figure 6: per-benchmark misprediction rates of the complex
 * predictors and gshare.fast at the ~64KB budget point (the paper
 * uses the multi-component's 53KB configuration and 64KB for the
 * others), plus the arithmetic mean.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "common/stats.hh"

using namespace bpsim;

int
main(int argc, char **argv)
{
    BenchSession session(argc, argv, "fig6_per_benchmark_accuracy");
    requireNoExtraArgs(argc, argv);
    const Counter ops = benchOpsPerWorkload(1200000);
    benchHeader("Figure 6",
                "per-benchmark misprediction (%) at the 64KB budget",
                ops);
    SuiteTraces suite(ops, 42, session.pool());

    const std::vector<std::pair<PredictorKind, std::size_t>> configs = {
        {PredictorKind::MultiComponent, 53 * 1024},
        {PredictorKind::Gskew, 64 * 1024},
        {PredictorKind::Perceptron, 64 * 1024},
        {PredictorKind::GshareFast, 64 * 1024},
    };

    std::printf("%-12s", "benchmark");
    for (const auto &[k, b] : configs)
        std::printf("%16s", kindName(k).c_str());
    std::printf("\n");

    std::vector<std::vector<double>> per_kind(configs.size());
    for (std::size_t c = 0; c < configs.size(); ++c) {
        const auto res = suiteAccuracyReport(
            suite,
            [&] {
                return makePredictor(configs[c].first,
                                     configs[c].second);
            },
            nullptr, session.report(), kindName(configs[c].first),
            configs[c].second, session.metricsIfEnabled(),
            session.pool());
        for (const auto &r : res)
            per_kind[c].push_back(r.percent());
    }

    for (std::size_t i = 0; i < suite.size(); ++i) {
        std::printf("%-12s", shortName(suite.name(i)).c_str());
        for (std::size_t c = 0; c < configs.size(); ++c)
            std::printf("%16.2f", per_kind[c][i]);
        std::printf("\n");
    }
    std::printf("%-12s", "arith.mean");
    for (std::size_t c = 0; c < configs.size(); ++c)
        std::printf("%16.2f", arithmeticMean(per_kind[c]));
    std::printf("\n");
    return 0;
}
