/**
 * @file
 * E6 / Figure 6: per-benchmark misprediction rates of the complex
 * predictors and gshare.fast at the ~64KB budget point (the paper
 * uses the multi-component's 53KB configuration and 64KB for the
 * others), plus the arithmetic mean.
 */

#include <vector>

#include "artifact_registry.hh"
#include "common/stats.hh"

namespace bpsim {

namespace {

int
run(const ArtifactSpec &spec, SweepContext &ctx)
{
    const Counter ops = benchOpsPerWorkload(spec.defaultOps);
    benchHeader(ctx, "Figure 6",
                "per-benchmark misprediction (%) at the 64KB budget",
                ops);
    SuiteTraces suite(ops, 42, ctx.pool(), /*shared_pool=*/true);

    const std::vector<std::pair<PredictorKind, std::size_t>> configs = {
        {PredictorKind::MultiComponent, 53 * 1024},
        {PredictorKind::Gskew, 64 * 1024},
        {PredictorKind::Perceptron, 64 * 1024},
        {PredictorKind::GshareFast, 64 * 1024},
    };

    ctx.printf("%-12s", "benchmark");
    for (const auto &[k, b] : configs)
        ctx.printf("%16s", kindName(k).c_str());
    ctx.printf("\n");

    // Every kind appears once here, so the ensemble engine forms no
    // batched groups — but routing through it keeps the reporting
    // path uniform with Figures 1 and 5 (and would batch any future
    // same-kind configs automatically).
    std::vector<AccuracyCellConfig> cells;
    for (const auto &[k, b] : configs) {
        AccuracyCellConfig c;
        c.make = [k = k, b = b] { return makePredictor(k, b); };
        c.name = kindName(k);
        c.budgetBytes = b;
        cells.push_back(std::move(c));
    }
    suiteAccuracyReportEnsemble(suite, cells, ctx.report(),
                                ctx.metricsIfEnabled(), ctx.pool());

    std::vector<std::vector<double>> per_kind(configs.size());
    for (std::size_t c = 0; c < configs.size(); ++c)
        for (const auto &r : cells[c].results)
            per_kind[c].push_back(r.percent());

    for (std::size_t i = 0; i < suite.size(); ++i) {
        ctx.printf("%-12s", shortName(suite.name(i)).c_str());
        for (std::size_t c = 0; c < configs.size(); ++c)
            ctx.printf("%16.2f", per_kind[c][i]);
        ctx.printf("\n");
    }
    ctx.printf("%-12s", "arith.mean");
    for (std::size_t c = 0; c < configs.size(); ++c)
        ctx.printf("%16.2f", arithmeticMean(per_kind[c]));
    ctx.printf("\n");
    return 0;
}

} // namespace

const ArtifactDef &
fig6PerBenchmarkAccuracyArtifact()
{
    static const ArtifactDef def = {
        {"fig6_per_benchmark_accuracy",
         "Figure 6: per-benchmark misprediction (%) at 64KB",
         1200000, false, ""},
        run,
    };
    return def;
}

} // namespace bpsim

#ifndef BPSIM_ARTIFACT_LIB
int
main(int argc, char **argv)
{
    return bpsim::artifactMain(
        bpsim::fig6PerBenchmarkAccuracyArtifact(), argc, argv);
}
#endif
