/**
 * @file
 * Pipeline-depth sensitivity study (the paper's premise, Section 1:
 * "the techniques used to hide the latency of a large and complex
 * branch predictor do not scale well and will be unable to sustain
 * IPC for deeper pipelines").
 *
 * Sweeps the front-end depth of the core and reports the IPC of the
 * 512KB perceptron under ideal access and under overriding, plus
 * gshare.fast — the deeper the pipe, the more each misprediction
 * costs, and the bigger the relative toll of overriding bubbles on
 * the fetch stream the back end is trying to stay fed from.
 */

#include <string>
#include <tuple>
#include <vector>

#include "artifact_registry.hh"

namespace bpsim {

namespace {

int
run(const ArtifactSpec &spec, SweepContext &ctx)
{
    const Counter ops = benchOpsPerWorkload(spec.defaultOps);
    benchHeader(ctx, "Pipeline-depth study",
                "512KB predictors vs front-end depth", ops);
    SuiteTraces suite(ops, 42, ctx.pool(), /*shared_pool=*/true);

    // Cells in the serial row order (depth, then the three series).
    // The core config differs per depth, but TimingCellConfig
    // carries it per cell, so each series still batches across all
    // five depths in one trace pass per workload.
    const unsigned depths[] = {6u, 10u, 15u, 20u, 25u};
    const std::tuple<PredictorKind, DelayMode> series[] = {
        {PredictorKind::Perceptron, DelayMode::Ideal},
        {PredictorKind::Perceptron, DelayMode::Overriding},
        {PredictorKind::GshareFast, DelayMode::Pipelined},
    };
    std::vector<TimingCellConfig> cells;
    for (const unsigned depth : depths) {
        CoreConfig cfg;
        cfg.frontEndDepth = depth;
        // The swept axis (front-end depth) is folded into the mode
        // string so RunReport row keys stay unique across the sweep.
        const std::string depth_tag =
            "@depth" + std::to_string(depth);
        for (const auto &[kind, mode] : series)
            cells.push_back({[kind, mode] {
                                 return makeFetchPredictor(
                                     kind, 512 * 1024, mode);
                             },
                             kindName(kind),
                             delayModeName(mode) + depth_tag,
                             512 * 1024,
                             cfg});
    }
    suiteTimingReportEnsemble(suite, cells, ctx.report(),
                              ctx.metricsIfEnabled(), ctx.tracer(),
                              ctx.pool());

    ctx.printf("%-12s %18s %18s %16s %12s\n", "front-end",
               "perceptron ideal", "perceptron overr.",
               "gshare.fast", "overr. loss");

    std::size_t cell = 0;
    for (const unsigned depth : depths) {
        const double ideal = cells[cell++].harmonicMeanIpc;
        const double over = cells[cell++].harmonicMeanIpc;
        const double fast = cells[cell++].harmonicMeanIpc;
        ctx.printf("%-12u %18.3f %18.3f %16.3f %11.1f%%\n", depth,
                   ideal, over, fast, 100.0 * (ideal - over) / ideal);
    }

    ctx.printf("\n(overr. loss = IPC the perceptron loses to "
               "overriding bubbles at that depth)\n");
    return 0;
}

} // namespace

const ArtifactDef &
studyPipelineDepthArtifact()
{
    static const ArtifactDef def = {
        {"study_pipeline_depth",
         "Depth study: 512KB predictors vs front-end depth", 600000,
         false, ""},
        run,
    };
    return def;
}

} // namespace bpsim

#ifndef BPSIM_ARTIFACT_LIB
int
main(int argc, char **argv)
{
    return bpsim::artifactMain(bpsim::studyPipelineDepthArtifact(),
                               argc, argv);
}
#endif
