/**
 * @file
 * Pipeline-depth sensitivity study (the paper's premise, Section 1:
 * "the techniques used to hide the latency of a large and complex
 * branch predictor do not scale well and will be unable to sustain
 * IPC for deeper pipelines").
 *
 * Sweeps the front-end depth of the core and reports the IPC of the
 * 512KB perceptron under ideal access and under overriding, plus
 * gshare.fast — the deeper the pipe, the more each misprediction
 * costs, and the bigger the relative toll of overriding bubbles on
 * the fetch stream the back end is trying to stay fed from.
 */

#include <cstdio>
#include <string>

#include "bench_util.hh"

using namespace bpsim;

int
main(int argc, char **argv)
{
    BenchSession session(argc, argv, "study_pipeline_depth");
    requireNoExtraArgs(argc, argv);
    const Counter ops = benchOpsPerWorkload(600000);
    benchHeader("Pipeline-depth study",
                "512KB predictors vs front-end depth", ops);
    SuiteTraces suite(ops, 42, session.pool());

    std::printf("%-12s %18s %18s %16s %12s\n", "front-end",
                "perceptron ideal", "perceptron overr.",
                "gshare.fast", "overr. loss");

    for (unsigned depth : {6u, 10u, 15u, 20u, 25u}) {
        CoreConfig cfg;
        cfg.frontEndDepth = depth;

        // The swept axis (front-end depth) is folded into the mode
        // string so RunReport row keys stay unique across the sweep.
        const std::string depth_tag = "@depth" + std::to_string(depth);
        double ideal = 0, over = 0, fast = 0;
        suiteTimingReport(
            suite, cfg,
            [] {
                return makeFetchPredictor(PredictorKind::Perceptron,
                                          512 * 1024, DelayMode::Ideal);
            },
            &ideal, session.report(),
            kindName(PredictorKind::Perceptron),
            delayModeName(DelayMode::Ideal) + depth_tag, 512 * 1024,
            session.metricsIfEnabled(), session.tracer(),
            session.pool());
        suiteTimingReport(
            suite, cfg,
            [] {
                return makeFetchPredictor(PredictorKind::Perceptron,
                                          512 * 1024,
                                          DelayMode::Overriding);
            },
            &over, session.report(),
            kindName(PredictorKind::Perceptron),
            delayModeName(DelayMode::Overriding) + depth_tag,
            512 * 1024, session.metricsIfEnabled(), session.tracer(),
            session.pool());
        suiteTimingReport(
            suite, cfg,
            [] {
                return makeFetchPredictor(PredictorKind::GshareFast,
                                          512 * 1024,
                                          DelayMode::Pipelined);
            },
            &fast, session.report(),
            kindName(PredictorKind::GshareFast),
            delayModeName(DelayMode::Pipelined) + depth_tag,
            512 * 1024, session.metricsIfEnabled(), session.tracer(),
            session.pool());

        std::printf("%-12u %18.3f %18.3f %16.3f %11.1f%%\n", depth,
                    ideal, over, fast,
                    100.0 * (ideal - over) / ideal);
    }

    std::printf("\n(overr. loss = IPC the perceptron loses to "
                "overriding bubbles at that depth)\n");
    return 0;
}
