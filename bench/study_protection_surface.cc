/**
 * @file
 * Protection surface study: misprediction vs budget × upset rate ×
 * protection policy, plus the taxes protection charges.
 *
 * Extends study_soft_error along the axes the paper's thesis makes
 * interesting: does a big unprotected table degrade more gracefully
 * than a protected small one? Each policy (none / parity-invalidate /
 * SEC-DED / scrubbing) is charged honestly — its check bits shrink
 * the effective table inside the nominal budget (factory) and its
 * check logic lands on the read path (delay model) — so the accuracy
 * surface and the timing slice move for real, not by assumption.
 *
 * The accuracy surface sweeps gshare over three budgets, four upset
 * rates and all four policies; a timing slice runs the overriding
 * configuration at 64KB so the delay tax is visible in IPC even at
 * rate zero. Per-policy tax gauges (robust.protection.*) feed the
 * `bpstat summary` resilience view, and `bpstat check
 * --monotone-upsets` gates that misprediction never improves as the
 * upset rate climbs in any (budget, policy) slice.
 *
 * Every cell runs through the HardenedSuiteRunner: pass
 * `--manifest FILE` and a killed campaign restarted with the same
 * file resumes from the first incomplete cell, producing a final
 * --report byte-identical to an uninterrupted run.
 */

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "artifact_registry.hh"
#include "common/stats.hh"
#include "robust/hardened_runner.hh"
#include "robust/protection.hh"

namespace bpsim {

namespace {

/** "0", "1e-06", ... — stable across platforms for row keys. */
std::string
rateLabel(double rate)
{
    if (rate == 0.0)
        return "0";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0e", rate);
    return buf;
}

/** Row label with rate and policy folded in, so every (workload,
 *  predictor) key stays unique: "gshare@u=1e-04@p=secded". The
 *  monotone-upsets gate in bpstat parses this shape. */
std::string
cellLabel(PredictorKind kind, double rate,
          robust::ProtectionPolicy policy)
{
    return kindName(kind) + "@u=" + rateLabel(rate) +
           "@p=" + robust::protectionPolicyName(policy);
}

/** Per-cell fault seed: same campaign => same flip sequence, but no
 *  two cells share one. */
std::uint64_t
cellSeed(std::size_t budget_i, std::size_t rate_i,
         std::size_t policy_i, std::size_t wl_i)
{
    return 0x5eedfa17 +
           ((budget_i * 29 + rate_i) * 31 + policy_i) * 997 + wl_i;
}

robust::ProtectionConfig
configFor(robust::ProtectionPolicy policy)
{
    robust::ProtectionConfig cfg;
    cfg.policy = policy;
    cfg.wordBits = 64;
    cfg.scrubIntervalBranches = 2048;
    return cfg;
}

int
run(const ArtifactSpec &spec, SweepContext &ctx)
{
    const Counter ops = benchOpsPerWorkload(spec.defaultOps);
    benchHeader(ctx, "Protection surface",
                "misprediction vs budget x upset rate x ECC policy",
                ops);
    SuiteTraces suite(ops, 42, ctx.pool(), /*shared_pool=*/true);
    suite.describe(ctx.report());
    CoreConfig cfg;

    const PredictorKind kind = PredictorKind::Gshare;
    const std::vector<std::size_t> budgets = {
        16 * 1024, 64 * 1024, 256 * 1024};
    const std::vector<double> rates = {0.0, 1e-5, 1e-4, 1e-3};
    const std::vector<robust::ProtectionPolicy> &policies =
        robust::allProtectionPolicies();
    const std::size_t timing_budget = 64 * 1024;
    const std::vector<double> timing_rates = {0.0, 1e-3};

    robust::HardenedRunSummary summary;
    if (ctx.manifestPath().empty()) {
        // No manifest, no resume granularity to honour: run the
        // whole surface through the batched ensemble engines. Every
        // (budget, rate, policy) cell is a protected gshare variant
        // of the same inner kind, so the engine forms one
        // mixed-wrapper group per budget and streams each workload's
        // branch columns once per group instead of once per cell
        // (rows stay byte-identical — BPSIM_ENSEMBLE=0 A/B-tested).
        // The injector fires every 256 updates; scrubbing sweeps
        // every 2048, so eight injection events ride inside one
        // scrub window.
        std::vector<AccuracyCellConfig> acc;
        for (std::size_t bi = 0; bi < budgets.size(); ++bi) {
            for (std::size_t ri = 0; ri < rates.size(); ++ri) {
                for (std::size_t pi = 0; pi < policies.size();
                     ++pi) {
                    const std::size_t budget = budgets[bi];
                    const double rate = rates[ri];
                    const robust::ProtectionPolicy policy =
                        policies[pi];
                    AccuracyCellConfig c;
                    c.makeForWorkload = [kind, rate, policy, budget,
                                         bi, ri, pi](std::size_t wi) {
                        robust::FaultPlan plan;
                        plan.upsetRatePerBit = rate;
                        plan.intervalBranches = 256;
                        plan.seed = cellSeed(bi, ri, pi, wi);
                        return std::unique_ptr<DirectionPredictor>(
                            makeProtectedPredictor(kind, budget,
                                                   configFor(policy),
                                                   plan));
                    };
                    c.name = cellLabel(kind, rate, policy);
                    c.budgetBytes = budget;
                    acc.push_back(std::move(c));
                }
            }
        }
        std::vector<TimingCellConfig> tim;
        for (std::size_t ri = 0; ri < timing_rates.size(); ++ri) {
            for (std::size_t pi = 0; pi < policies.size(); ++pi) {
                const double rate = timing_rates[ri];
                const robust::ProtectionPolicy policy = policies[pi];
                TimingCellConfig c;
                c.makeForWorkload = [kind, rate, policy,
                                     timing_budget, ri,
                                     pi](std::size_t wi) {
                    robust::FaultPlan plan;
                    plan.upsetRatePerBit = rate;
                    plan.intervalBranches = 256;
                    plan.seed = cellSeed(77, ri, pi, wi);
                    return std::unique_ptr<FetchPredictor>(
                        makeProtectedFetchPredictor(
                            kind, timing_budget, DelayMode::Overriding,
                            configFor(policy), plan));
                };
                c.name = cellLabel(kind, rate, policy);
                c.mode = delayModeName(DelayMode::Overriding);
                c.budgetBytes = timing_budget;
                c.cfg = cfg;
                tim.push_back(std::move(c));
            }
        }
        suiteAccuracyReportEnsemble(suite, acc, ctx.report(),
                                    ctx.metricsIfEnabled(),
                                    ctx.pool());
        suiteTimingReportEnsemble(suite, tim, ctx.report(),
                                  ctx.metricsIfEnabled(), nullptr,
                                  ctx.pool());
        summary.completed =
            (acc.size() + tim.size()) * suite.size();
    } else {
    // A manifest was passed: keep the serial HardenedSuiteRunner
    // path, whose one-cell-per-point granularity is what resume
    // depends on. One cell per point so resume granularity matches
    // report granularity. The injector fires every 256 updates;
    // scrubbing sweeps every 2048, so eight injection events ride
    // inside one scrub window.
    std::vector<robust::SuiteCell> cells;
    for (std::size_t bi = 0; bi < budgets.size(); ++bi) {
        for (std::size_t ri = 0; ri < rates.size(); ++ri) {
            for (std::size_t pi = 0; pi < policies.size(); ++pi) {
                const std::size_t budget = budgets[bi];
                const double rate = rates[ri];
                const robust::ProtectionPolicy policy = policies[pi];
                const std::string label =
                    cellLabel(kind, rate, policy);
                for (std::size_t wi = 0; wi < suite.size(); ++wi) {
                    obs::RunReport::Row probe;
                    probe.workload = suite.name(wi);
                    probe.predictor = label;
                    probe.budgetBytes = budget;
                    cells.push_back(
                        {probe.key(),
                         [&suite, kind, rate, policy, label, budget,
                          bi, ri, pi,
                          wi](const robust::Deadline &deadline) {
                             robust::FaultPlan plan;
                             plan.upsetRatePerBit = rate;
                             plan.intervalBranches = 256;
                             plan.seed = cellSeed(bi, ri, pi, wi);
                             auto pred = makeProtectedPredictor(
                                 kind, budget, configFor(policy),
                                 plan);
                             const AccuracyResult r = runAccuracy(
                                 *pred, suite.trace(wi),
                                 [&deadline] {
                                     deadline.check(
                                         "protection cell");
                                 });
                             return reportRow(suite.name(wi), label,
                                              budget, r);
                         }});
                }
            }
        }
    }
    for (std::size_t ri = 0; ri < timing_rates.size(); ++ri) {
        for (std::size_t pi = 0; pi < policies.size(); ++pi) {
            const double rate = timing_rates[ri];
            const robust::ProtectionPolicy policy = policies[pi];
            const std::string label = cellLabel(kind, rate, policy);
            for (std::size_t wi = 0; wi < suite.size(); ++wi) {
                obs::RunReport::Row probe;
                probe.workload = suite.name(wi);
                probe.predictor = label;
                probe.mode = delayModeName(DelayMode::Overriding);
                probe.budgetBytes = timing_budget;
                cells.push_back(
                    {probe.key(),
                     [&suite, &cfg, kind, rate, policy, label,
                      timing_budget, ri, pi,
                      wi](const robust::Deadline &) {
                         robust::FaultPlan plan;
                         plan.upsetRatePerBit = rate;
                         plan.intervalBranches = 256;
                         plan.seed = cellSeed(77, ri, pi, wi);
                         auto pred = makeProtectedFetchPredictor(
                             kind, timing_budget,
                             DelayMode::Overriding,
                             configFor(policy), plan);
                         const SimResult r =
                             runTiming(cfg, *pred, suite.trace(wi));
                         return reportRow(
                             suite.name(wi), label,
                             delayModeName(DelayMode::Overriding),
                             timing_budget, cfg, r);
                     }});
            }
        }
    }

    robust::HardenedSuiteRunner runner(ctx.manifestPath(),
                                       robust::RetryPolicy{},
                                       std::chrono::minutes{5},
                                       ctx.pool());
    summary = runner.run(cells, ctx.report());
    }

    // Reduce report rows back to the surface tables. Keys:
    // (label, budget) for accuracy, label for the timing slice.
    std::map<std::pair<std::string, std::size_t>,
             std::vector<double>>
        misp;
    std::map<std::string, std::vector<double>> ipcs;
    for (const auto &row : ctx.report().rows) {
        if (row.hasTiming)
            ipcs[row.predictor].push_back(row.ipc());
        else
            misp[{row.predictor, row.budgetBytes}].push_back(
                row.mispredictPercent());
    }

    for (robust::ProtectionPolicy policy : policies) {
        ctx.printf("\n%s: mean misprediction (%%), budget x upset "
                   "rate\n",
                   robust::protectionPolicyName(policy).c_str());
        ctx.printf("%-10s", "rate");
        for (std::size_t budget : budgets)
            ctx.printf("%12zuKB", budget / 1024);
        ctx.printf("\n");
        for (double rate : rates) {
            ctx.printf("%-10s", rateLabel(rate).c_str());
            for (std::size_t budget : budgets) {
                const auto it = misp.find(
                    {cellLabel(kind, rate, policy), budget});
                if (it == misp.end())
                    ctx.printf("%14s", "-");
                else
                    ctx.printf("%14.3f",
                               arithmeticMean(it->second));
            }
            ctx.printf("\n");
        }
    }

    // The taxes, charged at the timing budget: what each policy
    // costs in effective table size and read latency.
    ctx.printf("\nprotection taxes at %zuKB (gshare, overriding)\n",
               timing_budget / 1024);
    ctx.printf("%-8s %10s %12s %10s %10s\n", "policy", "eff-kB",
               "storage-%", "lat-cyc", "tax-cyc");
    const unsigned base_latency =
        predictorLatencyCycles(kind, timing_budget);
    for (robust::ProtectionPolicy policy : policies) {
        const robust::ProtectionConfig pc = configFor(policy);
        const unsigned lat = protectedPredictorLatencyCycles(
            kind, timing_budget, pc);
        ctx.printf(
            "%-8s %10.1f %12.2f %10u %10d\n",
            robust::protectionPolicyName(policy).c_str(),
            static_cast<double>(
                robust::protectedEffectiveBudget(timing_budget, pc)) /
                1024.0,
            100.0 * robust::protectionStorageOverhead(pc), lat,
            static_cast<int>(lat) - static_cast<int>(base_latency));
    }

    ctx.printf("\nharmonic-mean IPC at %zuKB, policy x upset rate\n",
               timing_budget / 1024);
    ctx.printf("%-8s", "policy");
    for (double rate : timing_rates)
        ctx.printf("%14s", rateLabel(rate).c_str());
    ctx.printf("\n");
    for (robust::ProtectionPolicy policy : policies) {
        ctx.printf("%-8s",
                   robust::protectionPolicyName(policy).c_str());
        for (double rate : timing_rates) {
            const auto it = ipcs.find(cellLabel(kind, rate, policy));
            if (it == ipcs.end())
                ctx.printf("%14s", "-");
            else
                ctx.printf("%14.3f", harmonicMean(it->second));
        }
        ctx.printf("\n");
    }

    // Publish the per-policy taxes for `bpstat summary`.
    if (obs::MetricRegistry *m = ctx.metricsIfEnabled()) {
        for (robust::ProtectionPolicy policy : policies) {
            const robust::ProtectionConfig pc = configFor(policy);
            const std::string name =
                robust::protectionPolicyName(policy);
            m->gauge(obs::labeledName(
                         "robust.protection.storage_tax_pct",
                         "policy", name))
                .set(100.0 * robust::protectionStorageOverhead(pc));
            m->gauge(obs::labeledName(
                         "robust.protection.delay_tax_cycles",
                         "policy", name))
                .set(static_cast<double>(
                         protectedPredictorLatencyCycles(
                             kind, timing_budget, pc)) -
                     static_cast<double>(base_latency));
            m->gauge(obs::labeledName(
                         "robust.protection.check_bits_per_word",
                         "policy", name))
                .set(static_cast<double>(
                    robust::protectionCheckBits(pc)));
        }
    }

    ctx.printf("\ncells: %zu completed, %zu resumed from manifest, "
               "%zu failed (%zu retries)\n",
               summary.completed, summary.resumed, summary.failed,
               summary.retries);
    if (!ctx.manifestPath().empty())
        ctx.printf("manifest: %s\n", ctx.manifestPath().c_str());

    return summary.allOk() ? 0 : 1;
}

} // namespace

const ArtifactDef &
studyProtectionSurfaceArtifact()
{
    static const ArtifactDef def = {
        {"study_protection_surface",
         "Protection surface: misprediction vs budget x upset rate "
         "x ECC policy, with storage/delay taxes",
         250000, true, "[--manifest FILE]"},
        run,
    };
    return def;
}

} // namespace bpsim

#ifndef BPSIM_ARTIFACT_LIB
int
main(int argc, char **argv)
{
    return bpsim::artifactMain(bpsim::studyProtectionSurfaceArtifact(),
                               argc, argv);
}
#endif
