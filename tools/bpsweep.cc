/**
 * @file
 * bpsweep — run every paper artifact in one process, on one shared
 * worker pool.
 *
 *   bpsweep --list                      name + title of each artifact
 *   bpsweep --all [--jobs N] [--report-dir DIR]
 *   bpsweep NAME... [--jobs N] [--report-dir DIR]
 *
 * Fourteen separate bench processes at --jobs N each leave cores idle
 * whenever one bench is in a serial phase (trace generation, report
 * assembly, the tail of an uneven grid). bpsweep instead hosts every
 * artifact body in one process: each gets a driver thread and a
 * SweepPool view onto one SweepScheduler, whose N workers drain all
 * artifacts' cell deques with work stealing — so the long-pole
 * artifact keeps every core busy while short ones finish. Traces are
 * materialized once process-wide through the SharedTracePool instead
 * of once per bench.
 *
 * Determinism contract: each artifact's rows are computed on workers
 * but committed on its own driver thread in strict index order (the
 * CellPool contract), so each per-artifact report written under
 * --report-dir is row-identical to the standalone bench's `--jobs N`
 * report — `bpstat diff` between the two is the CI gate. Table text
 * is buffered per artifact and flushed in registry order, so stdout
 * is stable no matter how the sweep interleaved.
 *
 * Exit codes: 0 all artifacts succeeded, 1 any body failed (its
 * buffered output and error still print), 2 usage error.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "artifact_registry.hh"
#include "obs/report_session.hh"
#include "parallel/sweep_scheduler.hh"
#include "trace/shared_trace_pool.hh"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s --list\n"
                 "       %s (--all | NAME...) [--jobs N] "
                 "[--report-dir DIR]\n",
                 argv0, argv0);
    return 2;
}

/** Result of one artifact body, filled in by its driver thread. */
struct ArtifactResult
{
    int exitCode = 0;
    std::string error; ///< what() of an escaped exception, if any
    double wallMs = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    using bpsim::ArtifactDef;
    using bpsim::artifactRegistry;

    const unsigned jobs = bpsim::takeJobsFlag(argc, argv);
    const std::string reportDir =
        bpsim::obs::takeFlag(argc, argv, "--report-dir");
    bool all = false, list = false;
    std::vector<std::string> names;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--all") == 0)
            all = true;
        else if (std::strcmp(argv[i], "--list") == 0)
            list = true;
        else if (argv[i][0] == '-') {
            std::fprintf(stderr, "%s: unknown argument '%s'\n",
                         argv[0], argv[i]);
            return usage(argv[0]);
        } else
            names.emplace_back(argv[i]);
    }

    if (list) {
        for (const ArtifactDef &def : artifactRegistry())
            std::printf("%-28s %s\n", def.spec.name.c_str(),
                        def.spec.title.c_str());
        return 0;
    }
    if (!all && names.empty())
        return usage(argv[0]);
    for (const auto &name : names) {
        if (!bpsim::findArtifact(name)) {
            std::fprintf(stderr, "%s: unknown artifact '%s' "
                         "(try --list)\n", argv[0], name.c_str());
            return 2;
        }
    }

    // Selection in registry (canonical) order, so output and report
    // files are stable regardless of CLI argument order.
    std::vector<const ArtifactDef *> selected;
    for (const ArtifactDef &def : artifactRegistry()) {
        if (all)
            selected.push_back(&def);
        else
            for (const auto &name : names)
                if (name == def.spec.name) {
                    selected.push_back(&def);
                    break;
                }
    }

    const bool wantReport = !reportDir.empty();
    if (wantReport) {
        std::error_code ec;
        std::filesystem::create_directories(reportDir, ec);
        if (ec) {
            std::fprintf(stderr, "%s: cannot create %s: %s\n",
                         argv[0], reportDir.c_str(),
                         ec.message().c_str());
            return 1;
        }
    }

    const auto sweepStart = std::chrono::steady_clock::now();
    bpsim::parallel::SweepScheduler scheduler(jobs);
    std::vector<ArtifactResult> results(selected.size());
    std::vector<std::unique_ptr<bpsim::BufferedSweepContext>> contexts(
        selected.size());
    {
        // Pools must die before the scheduler; contexts outlive the
        // pools only because nothing touches ctx.pool() after join.
        std::vector<std::unique_ptr<bpsim::parallel::SweepPool>> pools(
            selected.size());
        std::vector<std::thread> drivers;
        drivers.reserve(selected.size());
        for (std::size_t i = 0; i < selected.size(); ++i) {
            const ArtifactDef *def = selected[i];
            pools[i] = std::make_unique<bpsim::parallel::SweepPool>(
                scheduler, def->spec.name);
            contexts[i] = std::make_unique<bpsim::BufferedSweepContext>(
                def->spec, pools[i].get(), wantReport);
            drivers.emplace_back([def, &ctx = *contexts[i],
                                  &res = results[i]] {
                const auto t0 = std::chrono::steady_clock::now();
                try {
                    res.exitCode = def->fn(def->spec, ctx);
                } catch (const std::exception &e) {
                    res.exitCode = 1;
                    res.error = e.what();
                }
                ctx.finalize();
                res.wallMs =
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
            });
        }
        for (auto &t : drivers)
            t.join();
    }
    const double sweepMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - sweepStart)
            .count();

    // Flush buffered output and reports in registry order.
    bool failed = false;
    for (std::size_t i = 0; i < selected.size(); ++i) {
        const ArtifactDef *def = selected[i];
        const auto &out = contexts[i]->output();
        if (i > 0)
            std::fputc('\n', stdout);
        std::fwrite(out.data(), 1, out.size(), stdout);
        if (!results[i].error.empty())
            std::fprintf(stderr, "bpsweep: %s failed: %s\n",
                         def->spec.name.c_str(),
                         results[i].error.c_str());
        if (results[i].exitCode != 0)
            failed = true;
        if (wantReport) {
            const std::string path =
                reportDir + "/" + def->spec.name + ".json";
            if (contexts[i]->report().writeFile(path))
                std::fprintf(stderr,
                             "obs: wrote report %s (%zu rows)\n",
                             path.c_str(),
                             contexts[i]->report().rows.size());
            else
                failed = true;
        }
    }

    const auto sched = scheduler.stats();
    const auto pool = bpsim::SharedTracePool::global().stats();
    std::printf("\n-- bpsweep summary --------------------------------"
                "------------\n");
    std::printf("%-28s %8s %10s\n", "artifact", "exit", "wall ms");
    for (std::size_t i = 0; i < selected.size(); ++i)
        std::printf("%-28s %8d %10.0f\n",
                    selected[i]->spec.name.c_str(),
                    results[i].exitCode, results[i].wallMs);
    std::printf("sweep: %zu artifact(s), %u job(s), %.0f ms wall\n",
                selected.size(), scheduler.jobs(), sweepMs);
    std::printf("scheduler: %llu cell(s), %llu steal(s), "
                "%zu peak active queue(s)\n",
                static_cast<unsigned long long>(sched.cells),
                static_cast<unsigned long long>(sched.steals),
                sched.peakActiveQueues);
    std::printf("trace pool: %llu memory hit(s), %llu disk hit(s), "
                "%llu generated\n",
                static_cast<unsigned long long>(pool.memoryHits),
                static_cast<unsigned long long>(pool.diskHits),
                static_cast<unsigned long long>(pool.generated));

    return failed ? 1 : 0;
}
