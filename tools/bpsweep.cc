/**
 * @file
 * bpsweep — run every paper artifact in one process, on one shared
 * worker pool.
 *
 *   bpsweep --list                      name + title of each artifact
 *   bpsweep --all [--jobs N] [--report-dir DIR]
 *           [--timeline FILE] [--progress]
 *   bpsweep NAME... [same options]
 *
 * Fourteen separate bench processes at --jobs N each leave cores idle
 * whenever one bench is in a serial phase (trace generation, report
 * assembly, the tail of an uneven grid). bpsweep instead hosts every
 * artifact body in one process: each gets a driver thread and a
 * SweepPool view onto one SweepScheduler, whose N workers drain all
 * artifacts' cell deques with work stealing — so the long-pole
 * artifact keeps every core busy while short ones finish. Traces are
 * materialized once process-wide through the SharedTracePool instead
 * of once per bench.
 *
 * Determinism contract: each artifact's rows are computed on workers
 * but committed on its own driver thread in strict index order (the
 * CellPool contract), so each per-artifact report written under
 * --report-dir is row-identical to the standalone bench's `--jobs N`
 * report — `bpstat diff` between the two is the CI gate. Table text
 * is buffered per artifact and flushed in registry order, so stdout
 * is stable no matter how the sweep interleaved.
 *
 * Observability (neither affects the committed rows — the report
 * determinism gate runs with them on):
 *
 *  - --timeline FILE installs an obs::SpanRecorder for the whole
 *    sweep and writes a Chrome trace-event JSON flight recording
 *    (worker/driver tracks, per-cell spans, steal instants, idle
 *    gaps, trace-pool and trace-cache spans) for Perfetto or
 *    `bpstat timeline`.
 *  - --progress refreshes a one-line live meter on stderr from a
 *    dedicated thread: artifacts and cells done, busy workers, ETA.
 *
 * Exit codes: 0 all artifacts succeeded, 1 any body failed (its
 * buffered output and error still print), 2 usage error.
 */

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <exception>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "artifact_registry.hh"
#include "obs/report_session.hh"
#include "obs/span_trace.hh"
#include "parallel/sweep_scheduler.hh"
#include "trace/shared_trace_pool.hh"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s --list\n"
                 "       %s (--all | NAME...) [--jobs N] "
                 "[--report-dir DIR]\n"
                 "           [--timeline FILE] [--progress] "
                 "[--ensemble 0|1]\n",
                 argv0, argv0);
    return 2;
}

/** Result of one artifact body, filled in by its driver thread. */
struct ArtifactResult
{
    int exitCode = 0;
    std::string error; ///< what() of an escaped exception, if any
    double wallMs = 0.0;
};

/**
 * Live one-line progress meter on stderr, refreshed by a dedicated
 * thread on a wall-clock tick. Reads only the scheduler's racy
 * progress() snapshot and an atomic artifact counter — it can never
 * perturb the committed rows.
 */
class ProgressMeter
{
  public:
    ProgressMeter(const bpsim::parallel::SweepScheduler &scheduler,
                  const std::atomic<std::size_t> &artifacts_done,
                  std::size_t artifacts_total)
        : sched_(scheduler),
          artifactsDone_(artifacts_done),
          artifactsTotal_(artifacts_total),
          start_(std::chrono::steady_clock::now()),
          thread_([this] { loop(); })
    {
    }

    ~ProgressMeter() { stop(); }

    void
    stop()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (stop_)
                return;
            stop_ = true;
        }
        tick_.notify_all();
        thread_.join();
        std::fputc('\n', stderr);
    }

  private:
    void
    loop()
    {
        std::unique_lock<std::mutex> lock(mu_);
        for (;;) {
            render();
            tick_.wait_for(lock, std::chrono::milliseconds(500),
                           [this] { return stop_; });
            if (stop_) {
                render(); // final state before the newline
                return;
            }
        }
    }

    void
    render()
    {
        const auto p = sched_.progress();
        bpsim::Counter enqueued = 0, done = 0;
        for (const auto &q : p.queues) {
            enqueued += q.enqueued;
            done += q.done;
        }
        const double elapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start_)
                .count();
        // ETA from throughput so far against the cells enqueued so
        // far; an estimate only, since drivers enqueue as they go.
        char eta[32];
        if (done > 0 && enqueued > done) {
            const double rem = elapsed *
                               static_cast<double>(enqueued - done) /
                               static_cast<double>(done);
            std::snprintf(eta, sizeof(eta), "ETA %4.0fs", rem);
        } else {
            std::snprintf(eta, sizeof(eta), "ETA   --");
        }
        std::fprintf(stderr,
                     "\r[bpsweep] artifacts %zu/%zu | cells "
                     "%llu/%llu | busy %zu/%u | %5.0fs | %s   ",
                     artifactsDone_.load(std::memory_order_relaxed),
                     artifactsTotal_,
                     static_cast<unsigned long long>(done),
                     static_cast<unsigned long long>(enqueued),
                     p.busyWorkers, p.jobs, elapsed, eta);
        std::fflush(stderr);
    }

    const bpsim::parallel::SweepScheduler &sched_;
    const std::atomic<std::size_t> &artifactsDone_;
    const std::size_t artifactsTotal_;
    const std::chrono::steady_clock::time_point start_;
    std::mutex mu_;
    std::condition_variable tick_;
    bool stop_ = false;
    std::thread thread_; ///< last member: starts after state is ready
};

} // namespace

int
main(int argc, char **argv)
{
    using bpsim::ArtifactDef;
    using bpsim::artifactRegistry;

    const unsigned jobs = bpsim::takeJobsFlag(argc, argv);
    // Sets BPSIM_ENSEMBLE for every artifact body in this process:
    // --ensemble 0 is the sweep-wide escape hatch for A/B-ing the
    // batched replay engines against the serial path.
    bpsim::takeEnsembleFlag(argc, argv);
    const std::string reportDir =
        bpsim::obs::takeFlag(argc, argv, "--report-dir");
    const std::string timelinePath =
        bpsim::obs::takeFlag(argc, argv, "--timeline");
    bool all = false, list = false, progress = false;
    std::vector<std::string> names;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--all") == 0)
            all = true;
        else if (std::strcmp(argv[i], "--list") == 0)
            list = true;
        else if (std::strcmp(argv[i], "--progress") == 0)
            progress = true;
        else if (argv[i][0] == '-') {
            std::fprintf(stderr, "%s: unknown argument '%s'\n",
                         argv[0], argv[i]);
            return usage(argv[0]);
        } else
            names.emplace_back(argv[i]);
    }

    if (list) {
        for (const ArtifactDef &def : artifactRegistry())
            std::printf("%-28s %s\n", def.spec.name.c_str(),
                        def.spec.title.c_str());
        return 0;
    }
    if (!all && names.empty())
        return usage(argv[0]);
    for (const auto &name : names) {
        if (!bpsim::findArtifact(name)) {
            std::fprintf(stderr, "%s: unknown artifact '%s' "
                         "(try --list)\n", argv[0], name.c_str());
            return 2;
        }
    }

    // Selection in registry (canonical) order, so output and report
    // files are stable regardless of CLI argument order.
    std::vector<const ArtifactDef *> selected;
    for (const ArtifactDef &def : artifactRegistry()) {
        if (all)
            selected.push_back(&def);
        else
            for (const auto &name : names)
                if (name == def.spec.name) {
                    selected.push_back(&def);
                    break;
                }
    }

    const bool wantReport = !reportDir.empty();
    if (wantReport) {
        std::error_code ec;
        std::filesystem::create_directories(reportDir, ec);
        if (ec) {
            std::fprintf(stderr, "%s: cannot create %s: %s\n",
                         argv[0], reportDir.c_str(),
                         ec.message().c_str());
            return 1;
        }
    }

    // The flight recorder must be installed before the scheduler
    // spawns its workers and drained only after every recording
    // thread (workers AND drivers) has been joined — hence the
    // recorder outliving the scheduler scope below.
    std::unique_ptr<bpsim::obs::SpanRecorder> recorder;
    if (!timelinePath.empty()) {
        recorder =
            std::make_unique<bpsim::obs::SpanRecorder>(1 << 15);
        bpsim::obs::SpanRecorder::install(recorder.get());
        bpsim::obs::SpanRecorder::nameThisThread("main");
    }

    const auto sweepStart = std::chrono::steady_clock::now();
    std::vector<ArtifactResult> results(selected.size());
    std::vector<std::unique_ptr<bpsim::BufferedSweepContext>> contexts(
        selected.size());
    bpsim::parallel::SweepSchedulerStats sched;
    {
        bpsim::parallel::SweepScheduler scheduler(jobs);
        std::atomic<std::size_t> artifactsDone{0};

        // Pools must die before the scheduler; contexts outlive the
        // pools only because nothing touches ctx.pool() after join.
        std::vector<std::unique_ptr<bpsim::parallel::SweepPool>> pools(
            selected.size());
        std::vector<std::thread> drivers;
        drivers.reserve(selected.size());
        for (std::size_t i = 0; i < selected.size(); ++i) {
            const ArtifactDef *def = selected[i];
            pools[i] = std::make_unique<bpsim::parallel::SweepPool>(
                scheduler, def->spec.name);
            contexts[i] = std::make_unique<bpsim::BufferedSweepContext>(
                def->spec, pools[i].get(), wantReport);
            drivers.emplace_back([def, &ctx = *contexts[i],
                                  &res = results[i], &artifactsDone] {
                bpsim::obs::SpanRecorder::nameThisThread(
                    "driver " + def->spec.name);
                const auto t0 = std::chrono::steady_clock::now();
                try {
                    bpsim::obs::SpanScope bodySpan("artifact",
                                                   def->spec.name);
                    res.exitCode = def->fn(def->spec, ctx);
                } catch (const std::exception &e) {
                    res.exitCode = 1;
                    res.error = e.what();
                }
                res.wallMs =
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
                artifactsDone.fetch_add(1,
                                        std::memory_order_relaxed);
            });
        }
        {
            std::unique_ptr<ProgressMeter> meter;
            if (progress)
                meter = std::make_unique<ProgressMeter>(
                    scheduler, artifactsDone, selected.size());
            for (auto &t : drivers)
                t.join();
        }

        // Snapshot metrics on the main thread, after the drivers are
        // done: the sweep-level scheduler counters join each report's
        // registry here (bpstat summary reads them), and finalize()
        // then attaches the snapshot exactly as the driver used to.
        sched = scheduler.stats();
        for (auto &ctx : contexts) {
            if (wantReport)
                sched.publish(ctx->metrics());
            ctx->finalize();
        }
    }
    const double sweepMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - sweepStart)
            .count();

    if (recorder) {
        // Workers and drivers are joined; drain and export.
        bpsim::obs::SpanRecorder::install(nullptr);
        if (!recorder->writeFile(timelinePath))
            return 1;
        std::fprintf(stderr,
                     "obs: wrote timeline %s (%zu threads%s)\n",
                     timelinePath.c_str(), recorder->threadCount(),
                     recorder->dropped() ? ", ring overflowed" : "");
    }

    // Flush buffered output and reports in registry order.
    bool failed = false;
    for (std::size_t i = 0; i < selected.size(); ++i) {
        const ArtifactDef *def = selected[i];
        const auto &out = contexts[i]->output();
        if (i > 0)
            std::fputc('\n', stdout);
        std::fwrite(out.data(), 1, out.size(), stdout);
        if (!results[i].error.empty())
            std::fprintf(stderr, "bpsweep: %s failed: %s\n",
                         def->spec.name.c_str(),
                         results[i].error.c_str());
        if (results[i].exitCode != 0)
            failed = true;
        if (wantReport) {
            const std::string path =
                reportDir + "/" + def->spec.name + ".json";
            if (contexts[i]->report().writeFile(path))
                std::fprintf(stderr,
                             "obs: wrote report %s (%zu rows)\n",
                             path.c_str(),
                             contexts[i]->report().rows.size());
            else
                failed = true;
        }
    }

    const auto pool = bpsim::SharedTracePool::global().stats();
    std::printf("\n-- bpsweep summary --------------------------------"
                "------------\n");
    std::printf("%-28s %8s %10s\n", "artifact", "exit", "wall ms");
    for (std::size_t i = 0; i < selected.size(); ++i)
        std::printf("%-28s %8d %10.0f\n",
                    selected[i]->spec.name.c_str(),
                    results[i].exitCode, results[i].wallMs);
    std::printf("sweep: %zu artifact(s), %u job(s), %.0f ms wall\n",
                selected.size(), sched.jobs, sweepMs);
    std::printf("scheduler: %llu cell(s), %llu steal(s), "
                "%zu peak active queue(s)\n",
                static_cast<unsigned long long>(sched.cells),
                static_cast<unsigned long long>(sched.steals),
                sched.peakActiveQueues);
    std::printf("trace pool: %llu memory hit(s), %llu disk hit(s), "
                "%llu generated, %llu evicted\n",
                static_cast<unsigned long long>(pool.memoryHits),
                static_cast<unsigned long long>(pool.diskHits),
                static_cast<unsigned long long>(pool.generated),
                static_cast<unsigned long long>(pool.evictions));

    return failed ? 1 : 0;
}
