#!/usr/bin/env python3
"""Kernel-bench regression gate.

Compares a freshly measured `microbench --benchmark_format=json` run
against the committed baseline (bench/BENCH_KERNEL.json) and fails —
exit code 1 — when a gated benchmark's throughput (items_per_second)
dropped by more than the threshold. The default gate is the
single-cell replay kernel the whole suite is built from,
BM_PredictUpdate/gshare, at a 10% tolerance: machine-to-machine noise
stays well under that, while losing the devirtualized fast path or
the packed-PHT locality shows up as 2x.

--same-run gates a ratio *within* the current run instead of against
the baseline: `--same-run NUM:DEN[:R]` fails when
current[NUM] / current[DEN] < R (R defaults to --min-ratio). That
makes it machine-independent — the standing uses are holding the
flight recorder's disabled path to "a branch on a null sink"
(BM_SpanOverhead/disabled vs /none at 0.5x) and holding the batched
ensemble perceptron kernel's per-member-branch throughput above the
serial replay kernel's (BM_EnsembleReplay/perceptron vs
BM_PredictUpdate/perceptron at 1.5x — measured ~7x; losing the
shared-input batching shows up as ~1x).

Usage:
  check_kernel_bench.py BASELINE.json CURRENT.json \
      [--key BM_PredictUpdate/gshare] [--threshold 0.10] \
      [--same-run NUM:DEN[:R] --min-ratio R]

Exit codes: 0 ok, 1 regression, 2 usage/IO error.
"""

import argparse
import json
import sys


def load_benchmarks(path):
    """name -> items_per_second for every benchmark in a JSON report."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_kernel_bench: cannot read {path}: {e}",
              file=sys.stderr)
        sys.exit(2)
    out = {}
    for b in doc.get("benchmarks", []):
        # Aggregate rows (mean/median/stddev) shadow the raw ones
        # under repetitions; prefer plain iterations.
        if b.get("run_type") == "aggregate":
            continue
        ips = b.get("items_per_second")
        if ips is not None:
            out[b["name"]] = float(ips)
    if not out:
        print(f"check_kernel_bench: no benchmarks with "
              f"items_per_second in {path}", file=sys.stderr)
        sys.exit(2)
    return out


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--key", action="append", default=None,
                    help="benchmark name(s) to gate on "
                         "(default: BM_PredictUpdate/gshare)")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="maximum tolerated fractional throughput "
                         "drop (default 0.10)")
    ap.add_argument("--same-run", action="append", default=[],
                    metavar="NUM:DEN[:R]",
                    help="also require current[NUM]/current[DEN] "
                         ">= R (within-run gate, no baseline "
                         "involved); R defaults to --min-ratio")
    ap.add_argument("--min-ratio", type=float, default=0.5,
                    help="default minimum throughput ratio for "
                         "--same-run pairs without their own R "
                         "(default 0.5)")
    args = ap.parse_args()
    keys = args.key or ["BM_PredictUpdate/gshare"]

    base = load_benchmarks(args.baseline)
    cur = load_benchmarks(args.current)

    # Informational table over everything both runs measured.
    shared = sorted(set(base) & set(cur))
    width = max((len(n) for n in shared), default=10)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  "
          f"{'current':>12}  {'ratio':>6}")
    for name in shared:
        ratio = cur[name] / base[name] if base[name] else float("nan")
        print(f"{name:<{width}}  {base[name]:>12.3e}  "
              f"{cur[name]:>12.3e}  {ratio:>6.2f}")

    failed = False
    for key in keys:
        if key not in base:
            print(f"check_kernel_bench: gated benchmark '{key}' "
                  f"missing from baseline {args.baseline}",
                  file=sys.stderr)
            sys.exit(2)
        if key not in cur:
            print(f"check_kernel_bench: gated benchmark '{key}' "
                  f"missing from current run {args.current}",
                  file=sys.stderr)
            sys.exit(2)
        floor = base[key] * (1.0 - args.threshold)
        if cur[key] < floor:
            drop = 100.0 * (1.0 - cur[key] / base[key])
            print(f"FAIL: {key} regressed {drop:.1f}% "
                  f"({base[key]:.3e} -> {cur[key]:.3e} items/s, "
                  f"tolerance {100.0 * args.threshold:.0f}%)",
                  file=sys.stderr)
            failed = True
        else:
            print(f"ok: {key} within tolerance "
                  f"({cur[key]:.3e} vs {base[key]:.3e} items/s)")

    for pair in args.same_run:
        parts = pair.split(":")
        if len(parts) == 2:
            (num, den), min_ratio = parts, args.min_ratio
        elif len(parts) == 3:
            num, den = parts[0], parts[1]
            try:
                min_ratio = float(parts[2])
            except ValueError:
                print(f"check_kernel_bench: bad --same-run ratio "
                      f"in '{pair}'", file=sys.stderr)
                sys.exit(2)
        else:
            num = den = ""
        if not num or not den:
            print(f"check_kernel_bench: bad --same-run '{pair}' "
                  f"(want NUM:DEN[:R])", file=sys.stderr)
            sys.exit(2)
        for key in (num, den):
            if key not in cur:
                print(f"check_kernel_bench: --same-run benchmark "
                      f"'{key}' missing from {args.current}",
                      file=sys.stderr)
                sys.exit(2)
        if not cur[den]:
            print(f"check_kernel_bench: --same-run denominator "
                  f"'{den}' is zero", file=sys.stderr)
            sys.exit(2)
        ratio = cur[num] / cur[den]
        if ratio < min_ratio:
            print(f"FAIL: {num} at {ratio:.2f}x of {den} "
                  f"(minimum {min_ratio:.2f}x)",
                  file=sys.stderr)
            failed = True
        else:
            print(f"ok: {num} at {ratio:.2f}x of {den} "
                  f"(minimum {min_ratio:.2f}x)")
    sys.exit(1 if failed else 0)


if __name__ == "__main__":
    main()
