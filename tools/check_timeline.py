#!/usr/bin/env python3
"""Flight-recording validity gate.

Checks a `bpsweep --timeline` Chrome trace-event JSON file for the
structural invariants CI relies on:

  - the file parses and has a traceEvents array with span events;
  - every thread announced as a scheduler worker (thread_name
    metadata "worker N") recorded at least one "X" span;
  - every event's ts (and dur, for spans) is a non-negative number;
  - per thread, span *end* times (ts + dur) are monotonically
    non-decreasing in file order — the recorder's rings are written
    at span close, so completion order is the file order and any
    backwards step means a clock or drain bug;
  - with --expect-cell NAME (repeatable), at least one "cell" span
    named NAME exists — the sweep really executed that artifact's
    cells under the recorder.

Usage:
  check_timeline.py TIMELINE.json [--expect-cell NAME]...

Exit codes: 0 ok, 1 invariant violated, 2 usage/IO error.
"""

import argparse
import json
import sys


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("timeline")
    ap.add_argument("--expect-cell", action="append", default=[],
                    metavar="NAME",
                    help="require a 'cell' span with this name")
    args = ap.parse_args()

    try:
        with open(args.timeline) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_timeline: cannot read {args.timeline}: {e}",
              file=sys.stderr)
        sys.exit(2)

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        print(f"check_timeline: {args.timeline}: no traceEvents "
              f"array", file=sys.stderr)
        sys.exit(1)

    problems = []
    thread_names = {}    # tid -> thread_name metadata
    spans_per_tid = {}   # tid -> "X" event count
    last_end = {}        # tid -> latest span end (ts + dur)
    cell_names = set()   # names of "cell" spans seen
    spans = 0

    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i}: not an object")
            continue
        ph = ev.get("ph")
        tid = ev.get("tid")
        if ph == "M":
            if ev.get("name") == "thread_name":
                name = ev.get("args", {}).get("name")
                if isinstance(name, str):
                    thread_names[tid] = name
            continue
        if ph not in ("X", "i"):
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event {i}: bad ts {ts!r}")
            continue
        if ph == "i":
            continue
        dur = ev.get("dur")
        if not isinstance(dur, (int, float)) or dur < 0:
            problems.append(f"event {i}: bad dur {dur!r}")
            continue
        spans += 1
        spans_per_tid[tid] = spans_per_tid.get(tid, 0) + 1
        end = ts + dur
        if end < last_end.get(tid, 0.0):
            problems.append(
                f"event {i}: span end {end} precedes an earlier end "
                f"{last_end[tid]} on tid {tid} (non-monotonic)")
        else:
            last_end[tid] = end
        if ev.get("cat") == "cell":
            cell_names.add(ev.get("name"))

    if spans == 0:
        problems.append("no span (ph=X) events at all")

    workers = {tid: name for tid, name in thread_names.items()
               if name.startswith("worker")}
    if not workers:
        problems.append("no threads named 'worker N' — scheduler "
                        "workers never registered")
    for tid, name in sorted(workers.items(),
                            key=lambda kv: str(kv[0])):
        if spans_per_tid.get(tid, 0) == 0:
            problems.append(f"{name} (tid {tid}) recorded no spans")

    for name in args.expect_cell:
        if name not in cell_names:
            problems.append(f"no 'cell' span named '{name}'")

    if problems:
        print(f"check_timeline: {args.timeline}: "
              f"{len(problems)} problem(s)", file=sys.stderr)
        for p in problems:
            print(f"  - {p}", file=sys.stderr)
        sys.exit(1)
    print(f"check_timeline: {args.timeline}: OK — {spans} span(s), "
          f"{len(workers)} worker(s), {len(cell_names)} distinct "
          f"cell label(s)")
    sys.exit(0)


if __name__ == "__main__":
    main()
