/**
 * @file
 * bpstat — inspect, validate and diff bpsim RunReport JSON files.
 *
 *   bpstat show     REPORT.json          summarise one report
 *   bpstat check    REPORT.json          validate schema + invariants
 *   bpstat --check  REPORT.json          (same; flag spelling)
 *   bpstat diff     OLD.json NEW.json    per-cell deltas
 *   bpstat summary  DIR                  one line per report in DIR
 *                                        (a bpsweep --report-dir)
 *   bpstat manifest MANIFEST.json        summarise a campaign
 *                                        checkpoint (src/robust)
 *   bpstat timeline TIMELINE.json        summarise a flight
 *                                        recording (bpsweep
 *                                        --timeline): per-worker
 *                                        utilization, steal counts,
 *                                        slowest cells, where the
 *                                        waits went
 *
 * `check` exits 1 when the report violates its invariants (duplicate
 * row keys, squashed-uop/flush-cycle accounting, schema version), so
 * CI can gate on it. `diff` matches rows across the two reports by
 * (workload, predictor, mode, budget) key and prints misprediction,
 * IPC and penalty-attribution deltas — the standing perf-regression
 * workflow: save a report on main, save one on your branch, diff.
 *
 * Every failure mode has a distinct exit code so scripts can react
 * without parsing stderr; bad input is always a one-line error,
 * never an unhandled exception:
 *
 *   0  success
 *   1  invariant violation / diff regression / failed manifest cells
 *   2  usage error (unknown command, wrong arity)
 *   3  file missing or unreadable
 *   4  file unparsable (truncated, not JSON, wrong shape)
 *   5  schema version mismatch
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "obs/run_report.hh"
#include "robust/run_manifest.hh"

using bpsim::obs::RunReport;
using bpsim::obs::RunReportError;
using bpsim::obs::RunReportIoError;
using bpsim::obs::RunReportParseError;
using bpsim::obs::RunReportSchemaError;
using bpsim::robust::CellRecord;
using bpsim::robust::RunManifest;
using bpsim::robust::RunManifestError;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: bpstat show REPORT.json\n"
                 "       bpstat check REPORT.json   (or --check)\n"
                 "              [--monotone-upsets [TOLERANCE_PP]]\n"
                 "       bpstat diff OLD.json NEW.json\n"
                 "       bpstat summary DIR\n"
                 "       bpstat manifest MANIFEST.json\n"
                 "       bpstat timeline TIMELINE.json\n");
    return 2;
}

RunReport
load(const char *path)
{
    return RunReport::readFile(path);
}

void
header(const RunReport &r, const char *path)
{
    std::printf("%s: experiment '%s' (schema v%d), %zu rows, "
                "%llu ops/workload, seed %llu\n",
                path, r.experiment.c_str(), r.schemaVersion,
                r.rows.size(),
                static_cast<unsigned long long>(r.opsPerWorkload),
                static_cast<unsigned long long>(r.seed));
}

int
cmdShow(const char *path)
{
    const RunReport r = load(path);
    header(r, path);
    std::printf("%-44s %10s %8s %12s %12s\n", "cell (wl|pred|mode|kB)",
                "misp %", "IPC", "flush cyc", "of which ovr");
    for (const auto &row : r.rows) {
        std::printf("%-44s %10.2f", row.key().c_str(),
                    row.mispredictPercent());
        if (row.hasTiming)
            std::printf(" %8.3f %12llu %12llu\n", row.ipc(),
                        static_cast<unsigned long long>(
                            row.flushCyclesTotal()),
                        static_cast<unsigned long long>(
                            row.flushCyclesOverride));
        else
            std::printf(" %8s %12s %12s\n", "-", "-", "-");
    }
    for (const auto &a : r.annotations)
        std::printf("failed cell %s: %s\n", a.key.c_str(),
                    a.message.c_str());
    return 0;
}

/**
 * The resilience gate: rows whose predictor label carries a swept
 * upset rate ("gshare@u=1e-04", optionally "...@p=secded" — the
 * shape study_soft_error and study_protection_surface emit) are
 * grouped into (predictor+policy, mode, budget) slices, misprediction
 * is averaged across workloads per rate, and every slice must be
 * monotone non-decreasing in the rate. A flip can accidentally help
 * one workload, but if *more* upsets mean *fewer* mispredictions on
 * the suite mean, the injection or repair path is broken — that is
 * the regression this catches. @p tolerance_pp absorbs suite-mean
 * noise at small trace lengths.
 */
int
checkMonotoneUpsets(const RunReport &r, const char *path,
                    double tolerance_pp)
{
    struct Slice
    {
        // rate -> per-workload misprediction percents
        std::map<double, std::vector<double>> byRate;
    };
    std::map<std::string, Slice> slices;
    for (const auto &row : r.rows) {
        const std::size_t at = row.predictor.find("@u=");
        if (at == std::string::npos)
            continue;
        const char *rate_str = row.predictor.c_str() + at + 3;
        char *end = nullptr;
        const double rate = std::strtod(rate_str, &end);
        if (end == rate_str)
            continue;
        // Slice key: the label with the rate spliced out, so the
        // policy suffix (when present) stays part of the key.
        std::string label = row.predictor;
        label.erase(at, static_cast<std::size_t>(end - rate_str) + 3);
        const std::string key = label + "|" + row.mode + "|" +
                                std::to_string(row.budgetBytes);
        slices[key].byRate[rate].push_back(row.mispredictPercent());
    }
    if (slices.empty()) {
        std::fprintf(stderr,
                     "%s: monotone-upsets: no rows with @u=RATE "
                     "labels — gate misapplied?\n",
                     path);
        return 1;
    }

    std::size_t violations = 0;
    for (const auto &[key, slice] : slices) {
        double prev = -HUGE_VAL, prev_rate = 0.0;
        for (const auto &[rate, misps] : slice.byRate) {
            double mean = 0.0;
            for (double m : misps)
                mean += m;
            mean /= static_cast<double>(misps.size());
            if (mean < prev - tolerance_pp) {
                std::fprintf(stderr,
                             "%s: monotone-upsets: %s improves from "
                             "%.3f%% at u=%g to %.3f%% at u=%g\n",
                             path, key.c_str(), prev, prev_rate,
                             mean, rate);
                ++violations;
            }
            prev = mean;
            prev_rate = rate;
        }
    }
    std::printf("%s: monotone-upsets: %zu slice(s) checked, "
                "%zu violation(s) (tolerance %.3fpp)\n",
                path, slices.size(), violations, tolerance_pp);
    return violations ? 1 : 0;
}

int
cmdCheck(const char *path, bool monotone_upsets,
         double monotone_tolerance_pp)
{
    const RunReport r = load(path);
    const auto problems = r.validate();
    if (!problems.empty()) {
        std::fprintf(stderr, "%s: %zu problem(s)\n", path,
                     problems.size());
        for (const auto &p : problems)
            std::fprintf(stderr, "  - %s\n", p.c_str());
        return 1;
    }
    if (r.annotations.empty())
        std::printf("%s: OK (%zu rows, schema v%d)\n", path,
                    r.rows.size(), r.schemaVersion);
    else
        std::printf("%s: OK but PARTIAL (%zu rows, %zu failed "
                    "cell(s), schema v%d)\n",
                    path, r.rows.size(), r.annotations.size(),
                    r.schemaVersion);
    if (monotone_upsets)
        return checkMonotoneUpsets(r, path, monotone_tolerance_pp);
    return 0;
}

int
cmdManifest(const char *path)
{
    const RunManifest m = RunManifest::load(path);
    const std::size_t done = m.done(), failed = m.failed();
    const std::size_t pending = m.cells().size() - done - failed;
    std::printf("%s: campaign '%s', %zu cell(s): %zu done, "
                "%zu failed, %zu pending\n",
                path, m.experiment().c_str(), m.cells().size(), done,
                failed, pending);
    for (const auto &c : m.cells()) {
        if (c.status == CellRecord::Status::Failed)
            std::printf("  FAILED  %s (%u attempts): %s\n",
                        c.key.c_str(), c.attempts, c.error.c_str());
        else if (c.status == CellRecord::Status::Pending)
            std::printf("  pending %s\n", c.key.c_str());
    }
    return failed ? 1 : 0;
}

/** A named metric from a report's snapshot, or NAN when absent. */
double
metricValue(const RunReport &r, const char *name)
{
    if (!r.metrics.isObject())
        return NAN;
    const auto *v = r.metrics.find(name);
    return v && v->isNumber() ? v->asNumber() : NAN;
}

/**
 * One line per RunReport in a directory (the shape bpsweep
 * --report-dir writes): artifact name, row count, suite-cell wall
 * time, trace-cache hits. Files that do not parse as reports are
 * listed as skipped; only a missing directory is an error.
 */
int
cmdSummary(const char *dir)
{
    if (!std::filesystem::is_directory(dir)) {
        std::fprintf(stderr, "bpstat: not a directory: %s\n", dir);
        return 3;
    }
    std::vector<std::string> paths;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir))
        if (entry.is_regular_file() &&
            entry.path().extension() == ".json")
            paths.push_back(entry.path().string());
    std::sort(paths.begin(), paths.end());

    std::printf("%-28s %8s %12s %12s %8s %7s %13s %11s %9s %7s %8s "
                "%11s  %s\n",
                "artifact", "rows", "wall ms", "cache hits",
                "steals", "peak q", "batched-cells", "batch-width",
                "t-batched", "t-width", "t-hetero", "mixed-width",
                "file");
    std::size_t reports = 0;
    for (const auto &path : paths) {
        RunReport r;
        try {
            r = load(path.c_str());
        } catch (const RunReportError &e) {
            std::fprintf(stderr, "bpstat: skipping %s: %s\n",
                         path.c_str(), e.what());
            continue;
        }
        ++reports;
        const std::string file =
            std::filesystem::path(path).filename().string();
        std::printf("%-28s %8zu", r.experiment.c_str(),
                    r.rows.size());
        const double wall =
            metricValue(r, "parallel.pool.wall_ms");
        if (std::isnan(wall))
            std::printf(" %12s", "-");
        else
            std::printf(" %12.0f", wall);
        const double hits = metricValue(r, "trace.cache.hits");
        if (std::isnan(hits))
            std::printf(" %12s", "-");
        else
            std::printf(" %12.0f", hits);
        // Present only in reports written by a bpsweep run, where
        // the shared scheduler stamps its counters into every
        // artifact's registry; standalone reports show "-".
        const double steals =
            metricValue(r, "sweep.scheduler.steals");
        if (std::isnan(steals))
            std::printf(" %8s", "-");
        else
            std::printf(" %8.0f", steals);
        const double peakq =
            metricValue(r, "sweep.scheduler.peak_active_queues");
        if (std::isnan(peakq))
            std::printf(" %7s", "-");
        else
            std::printf(" %7.0f", peakq);
        // Stamped by suiteAccuracyReportEnsemble: how many cells
        // rode a batched group, and the widest group formed. "-"
        // for artifacts that never route through the engine.
        const double batched =
            metricValue(r, "core.ensemble.batched_cells");
        if (std::isnan(batched))
            std::printf(" %13s", "-");
        else
            std::printf(" %13.0f", batched);
        const double bwidth =
            metricValue(r, "core.ensemble.batch_width");
        if (std::isnan(bwidth))
            std::printf(" %11s", "-");
        else
            std::printf(" %11.0f", bwidth);
        // Timing counterpart, stamped by suiteTimingReportEnsemble:
        // full-core cells replayed in batched groups over one trace
        // pass, and the widest timing group.
        const double tbatched =
            metricValue(r, "core.ensemble.timing.batched_cells");
        if (std::isnan(tbatched))
            std::printf(" %9s", "-");
        else
            std::printf(" %9.0f", tbatched);
        const double twidth =
            metricValue(r, "core.ensemble.timing.batch_width");
        if (std::isnan(twidth))
            std::printf(" %7s", "-");
        else
            std::printf(" %7.0f", twidth);
        // Cross-kind merge: heterogeneous timing groups formed and
        // the widest one — fig8's four kinds in one pass shows up
        // here as t-hetero 1, mixed-width 4.
        const double thetero =
            metricValue(r, "core.ensemble.timing.hetero_groups");
        if (std::isnan(thetero))
            std::printf(" %8s", "-");
        else
            std::printf(" %8.0f", thetero);
        const double mwidth =
            metricValue(r, "core.ensemble.timing.hetero_width");
        if (std::isnan(mwidth))
            std::printf(" %11s", "-");
        else
            std::printf(" %11.0f", mwidth);
        std::printf("  %s\n", file.c_str());

        // Resilience view: artifacts that model protected state
        // (study_protection_surface) publish per-policy tax gauges;
        // surface them inline so the cost of each ECC choice is
        // readable next to the run that measured it.
        if (r.metrics.isObject()) {
            struct Taxes
            {
                double storagePct = NAN;
                double delayCycles = NAN;
            };
            std::map<std::string, Taxes> byPolicy;
            for (const auto &[name, value] : r.metrics.members()) {
                if (!value.isNumber())
                    continue;
                static const std::string kStorage =
                    "robust.protection.storage_tax_pct{policy=";
                static const std::string kDelay =
                    "robust.protection.delay_tax_cycles{policy=";
                if (name.compare(0, kStorage.size(), kStorage) == 0)
                    byPolicy[name.substr(kStorage.size(),
                                         name.size() -
                                             kStorage.size() - 1)]
                        .storagePct = value.asNumber();
                else if (name.compare(0, kDelay.size(), kDelay) == 0)
                    byPolicy[name.substr(kDelay.size(),
                                         name.size() -
                                             kDelay.size() - 1)]
                        .delayCycles = value.asNumber();
            }
            for (const auto &[policy, t] : byPolicy) {
                std::printf("  %-26s", ("  policy " + policy).c_str());
                if (std::isnan(t.storagePct))
                    std::printf(" %14s", "-");
                else
                    std::printf(" storage %5.2f%%", t.storagePct);
                if (std::isnan(t.delayCycles))
                    std::printf(" %14s\n", "-");
                else
                    std::printf("  delay %+3.0f cyc\n",
                                t.delayCycles);
            }
        }
    }
    std::printf("%zu report(s)\n", reports);
    return 0;
}

/**
 * Summarise a bpsweep --timeline flight recording (Chrome
 * trace-event JSON): per-worker utilization against the sweep wall
 * time, steal counts, the slowest cells, and per-category totals so
 * pool/cache waits are attributable at a glance. Tolerates events it
 * does not recognise (the format is Perfetto's, not ours).
 */
int
cmdTimeline(const char *path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "bpstat: cannot open %s\n", path);
        return 3;
    }
    std::ostringstream buf;
    buf << in.rdbuf();

    bpsim::obs::Json doc;
    try {
        doc = bpsim::obs::Json::parse(buf.str());
    } catch (const bpsim::obs::JsonError &e) {
        std::fprintf(stderr, "bpstat: %s: %s\n", path, e.what());
        return 4;
    }
    const bpsim::obs::Json *events = doc.find("traceEvents");
    if (!events || !events->isArray()) {
        std::fprintf(stderr,
                     "bpstat: %s: no traceEvents array\n", path);
        return 4;
    }

    struct ThreadAgg
    {
        std::string name;
        double busyUs = 0.0; ///< summed "cell" span durations
        std::size_t cells = 0;
        std::size_t steals = 0;
    };
    struct CatAgg
    {
        std::size_t count = 0;
        double totalUs = 0.0;
    };
    struct SlowCell
    {
        std::string name;
        double tid = 0.0;
        double cell = -1.0; ///< args.cell, -1 when absent
        double durUs = 0.0;
    };
    std::map<double, ThreadAgg> threads;
    std::map<std::string, CatAgg> cats;
    std::vector<SlowCell> slow;
    double minTs = HUGE_VAL, maxEnd = 0.0;
    std::size_t parsed = 0;
    // "cell.batched" / "cell.batched.hetero" spans
    // (suiteTimingReportEnsemble groups) nest inside pool "cell"
    // spans, so they are tallied separately — never into busyUs,
    // which would double-count the wall time. The hetero category
    // marks cross-kind merged groups (fig8-shaped sweeps).
    std::size_t batchedSpans = 0;
    double batchedUs = 0.0, batchedMaxWidth = 0.0;
    std::size_t heteroSpans = 0;
    double heteroUs = 0.0, heteroMaxWidth = 0.0;

    for (const auto &ev : events->items()) {
        if (!ev.isObject())
            continue;
        const auto *ph = ev.find("ph");
        const auto *tid = ev.find("tid");
        if (!ph || !ph->isString() || !tid || !tid->isNumber())
            continue;
        const std::string &phase = ph->asString();
        ThreadAgg &t = threads[tid->asNumber()];
        if (phase == "M") {
            const auto *aobj = ev.find("args");
            const auto *nm =
                aobj && aobj->isObject() ? aobj->find("name") : nullptr;
            if (nm && nm->isString())
                t.name = nm->asString();
            continue;
        }
        const auto *ts = ev.find("ts");
        if (!ts || !ts->isNumber())
            continue;
        ++parsed;
        const auto *cat = ev.find("cat");
        const auto *name = ev.find("name");
        const std::string catStr =
            cat && cat->isString() ? cat->asString() : "";
        minTs = std::min(minTs, ts->asNumber());
        if (phase == "i") {
            maxEnd = std::max(maxEnd, ts->asNumber());
            if (catStr == "steal")
                ++t.steals;
            continue;
        }
        if (phase != "X")
            continue;
        const auto *dur = ev.find("dur");
        const double durUs =
            dur && dur->isNumber() ? dur->asNumber() : 0.0;
        maxEnd = std::max(maxEnd, ts->asNumber() + durUs);
        CatAgg &c = cats[catStr];
        ++c.count;
        c.totalUs += durUs;
        if (catStr == "cell") {
            t.busyUs += durUs;
            ++t.cells;
            SlowCell sc;
            sc.name = name && name->isString() ? name->asString()
                                               : "?";
            sc.tid = tid->asNumber();
            const auto *aobj = ev.find("args");
            const auto *ci =
                aobj && aobj->isObject() ? aobj->find("cell") : nullptr;
            if (ci && ci->isNumber())
                sc.cell = ci->asNumber();
            sc.durUs = durUs;
            slow.push_back(std::move(sc));
        } else if (catStr == "cell.batched" ||
                   catStr == "cell.batched.hetero") {
            ++batchedSpans;
            batchedUs += durUs;
            const auto *aobj = ev.find("args");
            const auto *w = aobj && aobj->isObject()
                                ? aobj->find("width")
                                : nullptr;
            if (w && w->isNumber())
                batchedMaxWidth =
                    std::max(batchedMaxWidth, w->asNumber());
            if (catStr == "cell.batched.hetero") {
                ++heteroSpans;
                heteroUs += durUs;
                if (w && w->isNumber())
                    heteroMaxWidth =
                        std::max(heteroMaxWidth, w->asNumber());
            }
        }
    }
    if (parsed == 0) {
        std::fprintf(stderr, "bpstat: %s: no span events\n", path);
        return 4;
    }
    const double wallUs = maxEnd > minTs ? maxEnd - minTs : 0.0;
    std::printf("%s: %zu thread(s), %zu event(s), %.1f ms wall\n",
                path, threads.size(), parsed, wallUs / 1000.0);
    if (batchedSpans > 0)
        std::printf("%zu batched timing-ensemble group(s), %.1f ms, "
                    "widest %.0f members\n",
                    batchedSpans, batchedUs / 1000.0,
                    batchedMaxWidth);
    if (heteroSpans > 0)
        std::printf("%zu cross-kind (hetero) group(s), %.1f ms, "
                    "widest %.0f members\n",
                    heteroSpans, heteroUs / 1000.0, heteroMaxWidth);

    std::printf("\n%-24s %8s %8s %10s %8s\n", "thread", "cells",
                "steals", "busy ms", "util %");
    for (const auto &[tid, t] : threads) {
        std::string name = t.name;
        if (name.empty())
            name = "tid " + std::to_string(
                                static_cast<long long>(tid));
        // Utilization is meaningful for cell-executing threads; the
        // main/driver tracks show "-" rather than a misleading 0.
        std::printf("%-24s %8zu %8zu", name.c_str(), t.cells,
                    t.steals);
        if (t.cells > 0 && wallUs > 0.0)
            std::printf(" %10.1f %8.1f\n", t.busyUs / 1000.0,
                        100.0 * t.busyUs / wallUs);
        else
            std::printf(" %10s %8s\n", "-", "-");
    }

    std::printf("\n%-16s %8s %12s\n", "category", "count",
                "total ms");
    for (const auto &[cat, c] : cats)
        std::printf("%-16s %8zu %12.1f\n",
                    cat.empty() ? "(none)" : cat.c_str(), c.count,
                    c.totalUs / 1000.0);

    std::sort(slow.begin(), slow.end(),
              [](const SlowCell &a, const SlowCell &b) {
                  return a.durUs > b.durUs;
              });
    const std::size_t top = std::min<std::size_t>(10, slow.size());
    std::printf("\ntop %zu slowest cell(s):\n", top);
    for (std::size_t i = 0; i < top; ++i) {
        const SlowCell &sc = slow[i];
        if (sc.cell >= 0.0)
            std::printf("  %10.1f ms  %s cell %.0f\n",
                        sc.durUs / 1000.0, sc.name.c_str(), sc.cell);
        else
            std::printf("  %10.1f ms  %s\n", sc.durUs / 1000.0,
                        sc.name.c_str());
    }
    return 0;
}

/** Penalty attribution of a timing row as a fraction of cycles. */
double
penaltyShare(const RunReport::Row &r)
{
    return r.cycles ? static_cast<double>(r.flushCyclesTotal()) /
                          static_cast<double>(r.cycles)
                    : 0.0;
}

int
cmdDiff(const char *old_path, const char *new_path)
{
    const RunReport a = load(old_path);
    const RunReport b = load(new_path);
    header(a, old_path);
    header(b, new_path);

    std::map<std::string, const RunReport::Row *> olds;
    for (const auto &row : a.rows)
        olds.emplace(row.key(), &row);

    std::printf("\n%-44s %10s %10s %12s\n", "cell (wl|pred|mode|kB)",
                "d misp pp", "d IPC %", "d penalty pp");

    std::size_t matched = 0, regressions = 0;
    for (const auto &nw : b.rows) {
        const auto it = olds.find(nw.key());
        if (it == olds.end()) {
            std::printf("%-44s %34s\n", nw.key().c_str(),
                        "(new cell)");
            continue;
        }
        const RunReport::Row &od = *it->second;
        ++matched;
        const double d_misp =
            nw.mispredictPercent() - od.mispredictPercent();
        std::printf("%-44s %+10.3f", nw.key().c_str(), d_misp);
        double d_ipc = 0.0;
        if (nw.hasTiming && od.hasTiming && od.ipc() > 0.0) {
            d_ipc = 100.0 * (nw.ipc() - od.ipc()) / od.ipc();
            const double d_pen =
                100.0 * (penaltyShare(nw) - penaltyShare(od));
            std::printf(" %+10.3f %+12.3f\n", d_ipc, d_pen);
        } else {
            std::printf(" %10s %12s\n", "-", "-");
        }
        if (d_misp > 0.05 || d_ipc < -0.5)
            ++regressions;
        olds.erase(it);
    }
    for (const auto &[key, row] : olds) {
        (void)row;
        std::printf("%-44s %34s\n", key.c_str(), "(cell removed)");
    }

    std::printf("\n%zu cell(s) matched, %zu regression(s) "
                "(misp +0.05pp or IPC -0.5%%)\n",
                matched, regressions);
    return regressions ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    const std::string cmd = argv[1];
    try {
        if ((cmd == "check" || cmd == "--check") && argc >= 3 &&
            argc <= 5) {
            bool monotone = false;
            double tolerance_pp = 0.05;
            if (argc >= 4) {
                if (std::strcmp(argv[3], "--monotone-upsets") != 0)
                    return usage();
                monotone = true;
                if (argc == 5) {
                    char *end = nullptr;
                    tolerance_pp = std::strtod(argv[4], &end);
                    if (end == argv[4] || *end != '\0' ||
                        tolerance_pp < 0.0)
                        return usage();
                }
            }
            return cmdCheck(argv[2], monotone, tolerance_pp);
        }
        if (cmd == "show" && argc == 3)
            return cmdShow(argv[2]);
        if (cmd == "diff" && argc == 4)
            return cmdDiff(argv[2], argv[3]);
        if (cmd == "summary" && argc == 3)
            return cmdSummary(argv[2]);
        if (cmd == "manifest" && argc == 3)
            return cmdManifest(argv[2]);
        if (cmd == "timeline" && argc == 3)
            return cmdTimeline(argv[2]);
    } catch (const RunReportIoError &e) {
        std::fprintf(stderr, "bpstat: %s\n", e.what());
        return 3;
    } catch (const RunReportSchemaError &e) {
        std::fprintf(stderr, "bpstat: %s\n", e.what());
        return 5;
    } catch (const RunReportParseError &e) {
        std::fprintf(stderr, "bpstat: %s\n", e.what());
        return 4;
    } catch (const RunReportError &e) {
        // Base-class fallback; treat as a parse-level failure.
        std::fprintf(stderr, "bpstat: %s\n", e.what());
        return 4;
    } catch (const RunManifestError &e) {
        const bool io =
            std::strstr(e.what(), "cannot open") != nullptr;
        std::fprintf(stderr, "bpstat: %s\n", e.what());
        return io ? 3 : 4;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "bpstat: %s\n", e.what());
        return 4;
    }
    return usage();
}
