file(REMOVE_RECURSE
  "CMakeFiles/ablation_update_delay.dir/ablation_update_delay.cc.o"
  "CMakeFiles/ablation_update_delay.dir/ablation_update_delay.cc.o.d"
  "ablation_update_delay"
  "ablation_update_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_update_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
