# Empty compiler generated dependencies file for ablation_update_delay.
# This may be replaced when dependencies are built.
