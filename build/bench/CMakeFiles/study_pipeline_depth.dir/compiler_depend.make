# Empty compiler generated dependencies file for study_pipeline_depth.
# This may be replaced when dependencies are built.
