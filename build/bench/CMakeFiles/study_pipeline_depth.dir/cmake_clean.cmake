file(REMOVE_RECURSE
  "CMakeFiles/study_pipeline_depth.dir/study_pipeline_depth.cc.o"
  "CMakeFiles/study_pipeline_depth.dir/study_pipeline_depth.cc.o.d"
  "study_pipeline_depth"
  "study_pipeline_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/study_pipeline_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
