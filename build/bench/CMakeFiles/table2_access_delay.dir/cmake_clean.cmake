file(REMOVE_RECURSE
  "CMakeFiles/table2_access_delay.dir/table2_access_delay.cc.o"
  "CMakeFiles/table2_access_delay.dir/table2_access_delay.cc.o.d"
  "table2_access_delay"
  "table2_access_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_access_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
