# Empty dependencies file for table2_access_delay.
# This may be replaced when dependencies are built.
