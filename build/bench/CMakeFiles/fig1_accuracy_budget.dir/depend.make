# Empty dependencies file for fig1_accuracy_budget.
# This may be replaced when dependencies are built.
