file(REMOVE_RECURSE
  "CMakeFiles/fig1_accuracy_budget.dir/fig1_accuracy_budget.cc.o"
  "CMakeFiles/fig1_accuracy_budget.dir/fig1_accuracy_budget.cc.o.d"
  "fig1_accuracy_budget"
  "fig1_accuracy_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_accuracy_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
