# Empty compiler generated dependencies file for fig7_ipc_budget.
# This may be replaced when dependencies are built.
