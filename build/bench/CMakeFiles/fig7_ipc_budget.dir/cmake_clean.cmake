file(REMOVE_RECURSE
  "CMakeFiles/fig7_ipc_budget.dir/fig7_ipc_budget.cc.o"
  "CMakeFiles/fig7_ipc_budget.dir/fig7_ipc_budget.cc.o.d"
  "fig7_ipc_budget"
  "fig7_ipc_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_ipc_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
