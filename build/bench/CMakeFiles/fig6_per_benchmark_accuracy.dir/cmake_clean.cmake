file(REMOVE_RECURSE
  "CMakeFiles/fig6_per_benchmark_accuracy.dir/fig6_per_benchmark_accuracy.cc.o"
  "CMakeFiles/fig6_per_benchmark_accuracy.dir/fig6_per_benchmark_accuracy.cc.o.d"
  "fig6_per_benchmark_accuracy"
  "fig6_per_benchmark_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_per_benchmark_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
