# Empty dependencies file for fig6_per_benchmark_accuracy.
# This may be replaced when dependencies are built.
