file(REMOVE_RECURSE
  "CMakeFiles/study_context_switch.dir/study_context_switch.cc.o"
  "CMakeFiles/study_context_switch.dir/study_context_switch.cc.o.d"
  "study_context_switch"
  "study_context_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/study_context_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
