# Empty compiler generated dependencies file for study_context_switch.
# This may be replaced when dependencies are built.
