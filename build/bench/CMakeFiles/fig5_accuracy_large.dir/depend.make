# Empty dependencies file for fig5_accuracy_large.
# This may be replaced when dependencies are built.
