file(REMOVE_RECURSE
  "CMakeFiles/fig5_accuracy_large.dir/fig5_accuracy_large.cc.o"
  "CMakeFiles/fig5_accuracy_large.dir/fig5_accuracy_large.cc.o.d"
  "fig5_accuracy_large"
  "fig5_accuracy_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_accuracy_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
