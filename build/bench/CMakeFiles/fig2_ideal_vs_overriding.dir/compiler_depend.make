# Empty compiler generated dependencies file for fig2_ideal_vs_overriding.
# This may be replaced when dependencies are built.
