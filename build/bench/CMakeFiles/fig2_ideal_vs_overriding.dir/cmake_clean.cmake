file(REMOVE_RECURSE
  "CMakeFiles/fig2_ideal_vs_overriding.dir/fig2_ideal_vs_overriding.cc.o"
  "CMakeFiles/fig2_ideal_vs_overriding.dir/fig2_ideal_vs_overriding.cc.o.d"
  "fig2_ideal_vs_overriding"
  "fig2_ideal_vs_overriding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_ideal_vs_overriding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
