file(REMOVE_RECURSE
  "CMakeFiles/study_disagreement.dir/study_disagreement.cc.o"
  "CMakeFiles/study_disagreement.dir/study_disagreement.cc.o.d"
  "study_disagreement"
  "study_disagreement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/study_disagreement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
