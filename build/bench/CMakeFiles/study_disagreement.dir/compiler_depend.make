# Empty compiler generated dependencies file for study_disagreement.
# This may be replaced when dependencies are built.
