# Empty dependencies file for fig8_per_benchmark_ipc.
# This may be replaced when dependencies are built.
