file(REMOVE_RECURSE
  "CMakeFiles/fig8_per_benchmark_ipc.dir/fig8_per_benchmark_ipc.cc.o"
  "CMakeFiles/fig8_per_benchmark_ipc.dir/fig8_per_benchmark_ipc.cc.o.d"
  "fig8_per_benchmark_ipc"
  "fig8_per_benchmark_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_per_benchmark_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
