# Empty compiler generated dependencies file for ablation_delay_hiding.
# This may be replaced when dependencies are built.
