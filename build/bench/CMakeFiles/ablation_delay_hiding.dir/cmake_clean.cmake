file(REMOVE_RECURSE
  "CMakeFiles/ablation_delay_hiding.dir/ablation_delay_hiding.cc.o"
  "CMakeFiles/ablation_delay_hiding.dir/ablation_delay_hiding.cc.o.d"
  "ablation_delay_hiding"
  "ablation_delay_hiding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_delay_hiding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
