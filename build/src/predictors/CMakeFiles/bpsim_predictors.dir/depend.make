# Empty dependencies file for bpsim_predictors.
# This may be replaced when dependencies are built.
