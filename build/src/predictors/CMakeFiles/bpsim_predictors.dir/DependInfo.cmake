
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/predictors/bimodal.cc" "src/predictors/CMakeFiles/bpsim_predictors.dir/bimodal.cc.o" "gcc" "src/predictors/CMakeFiles/bpsim_predictors.dir/bimodal.cc.o.d"
  "/root/repo/src/predictors/bimode.cc" "src/predictors/CMakeFiles/bpsim_predictors.dir/bimode.cc.o" "gcc" "src/predictors/CMakeFiles/bpsim_predictors.dir/bimode.cc.o.d"
  "/root/repo/src/predictors/gshare.cc" "src/predictors/CMakeFiles/bpsim_predictors.dir/gshare.cc.o" "gcc" "src/predictors/CMakeFiles/bpsim_predictors.dir/gshare.cc.o.d"
  "/root/repo/src/predictors/gshare_fast.cc" "src/predictors/CMakeFiles/bpsim_predictors.dir/gshare_fast.cc.o" "gcc" "src/predictors/CMakeFiles/bpsim_predictors.dir/gshare_fast.cc.o.d"
  "/root/repo/src/predictors/gskew.cc" "src/predictors/CMakeFiles/bpsim_predictors.dir/gskew.cc.o" "gcc" "src/predictors/CMakeFiles/bpsim_predictors.dir/gskew.cc.o.d"
  "/root/repo/src/predictors/local.cc" "src/predictors/CMakeFiles/bpsim_predictors.dir/local.cc.o" "gcc" "src/predictors/CMakeFiles/bpsim_predictors.dir/local.cc.o.d"
  "/root/repo/src/predictors/loop.cc" "src/predictors/CMakeFiles/bpsim_predictors.dir/loop.cc.o" "gcc" "src/predictors/CMakeFiles/bpsim_predictors.dir/loop.cc.o.d"
  "/root/repo/src/predictors/multicomponent.cc" "src/predictors/CMakeFiles/bpsim_predictors.dir/multicomponent.cc.o" "gcc" "src/predictors/CMakeFiles/bpsim_predictors.dir/multicomponent.cc.o.d"
  "/root/repo/src/predictors/perceptron.cc" "src/predictors/CMakeFiles/bpsim_predictors.dir/perceptron.cc.o" "gcc" "src/predictors/CMakeFiles/bpsim_predictors.dir/perceptron.cc.o.d"
  "/root/repo/src/predictors/tournament.cc" "src/predictors/CMakeFiles/bpsim_predictors.dir/tournament.cc.o" "gcc" "src/predictors/CMakeFiles/bpsim_predictors.dir/tournament.cc.o.d"
  "/root/repo/src/predictors/yags.cc" "src/predictors/CMakeFiles/bpsim_predictors.dir/yags.cc.o" "gcc" "src/predictors/CMakeFiles/bpsim_predictors.dir/yags.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bpsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
