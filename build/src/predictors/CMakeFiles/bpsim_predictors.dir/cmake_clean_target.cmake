file(REMOVE_RECURSE
  "libbpsim_predictors.a"
)
