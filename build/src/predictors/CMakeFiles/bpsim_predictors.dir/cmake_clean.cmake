file(REMOVE_RECURSE
  "CMakeFiles/bpsim_predictors.dir/bimodal.cc.o"
  "CMakeFiles/bpsim_predictors.dir/bimodal.cc.o.d"
  "CMakeFiles/bpsim_predictors.dir/bimode.cc.o"
  "CMakeFiles/bpsim_predictors.dir/bimode.cc.o.d"
  "CMakeFiles/bpsim_predictors.dir/gshare.cc.o"
  "CMakeFiles/bpsim_predictors.dir/gshare.cc.o.d"
  "CMakeFiles/bpsim_predictors.dir/gshare_fast.cc.o"
  "CMakeFiles/bpsim_predictors.dir/gshare_fast.cc.o.d"
  "CMakeFiles/bpsim_predictors.dir/gskew.cc.o"
  "CMakeFiles/bpsim_predictors.dir/gskew.cc.o.d"
  "CMakeFiles/bpsim_predictors.dir/local.cc.o"
  "CMakeFiles/bpsim_predictors.dir/local.cc.o.d"
  "CMakeFiles/bpsim_predictors.dir/loop.cc.o"
  "CMakeFiles/bpsim_predictors.dir/loop.cc.o.d"
  "CMakeFiles/bpsim_predictors.dir/multicomponent.cc.o"
  "CMakeFiles/bpsim_predictors.dir/multicomponent.cc.o.d"
  "CMakeFiles/bpsim_predictors.dir/perceptron.cc.o"
  "CMakeFiles/bpsim_predictors.dir/perceptron.cc.o.d"
  "CMakeFiles/bpsim_predictors.dir/tournament.cc.o"
  "CMakeFiles/bpsim_predictors.dir/tournament.cc.o.d"
  "CMakeFiles/bpsim_predictors.dir/yags.cc.o"
  "CMakeFiles/bpsim_predictors.dir/yags.cc.o.d"
  "libbpsim_predictors.a"
  "libbpsim_predictors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpsim_predictors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
