file(REMOVE_RECURSE
  "libbpsim_pipeline.a"
)
