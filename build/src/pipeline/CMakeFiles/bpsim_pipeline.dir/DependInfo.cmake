
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pipeline/fetch_predictor.cc" "src/pipeline/CMakeFiles/bpsim_pipeline.dir/fetch_predictor.cc.o" "gcc" "src/pipeline/CMakeFiles/bpsim_pipeline.dir/fetch_predictor.cc.o.d"
  "/root/repo/src/pipeline/gshare_fast_engine.cc" "src/pipeline/CMakeFiles/bpsim_pipeline.dir/gshare_fast_engine.cc.o" "gcc" "src/pipeline/CMakeFiles/bpsim_pipeline.dir/gshare_fast_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/predictors/CMakeFiles/bpsim_predictors.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bpsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
