# Empty dependencies file for bpsim_pipeline.
# This may be replaced when dependencies are built.
