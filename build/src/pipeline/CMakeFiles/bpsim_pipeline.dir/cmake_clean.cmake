file(REMOVE_RECURSE
  "CMakeFiles/bpsim_pipeline.dir/fetch_predictor.cc.o"
  "CMakeFiles/bpsim_pipeline.dir/fetch_predictor.cc.o.d"
  "CMakeFiles/bpsim_pipeline.dir/gshare_fast_engine.cc.o"
  "CMakeFiles/bpsim_pipeline.dir/gshare_fast_engine.cc.o.d"
  "libbpsim_pipeline.a"
  "libbpsim_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpsim_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
