# Empty compiler generated dependencies file for bpsim_core.
# This may be replaced when dependencies are built.
