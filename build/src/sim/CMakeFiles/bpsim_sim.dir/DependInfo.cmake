
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/btb.cc" "src/sim/CMakeFiles/bpsim_sim.dir/btb.cc.o" "gcc" "src/sim/CMakeFiles/bpsim_sim.dir/btb.cc.o.d"
  "/root/repo/src/sim/cache.cc" "src/sim/CMakeFiles/bpsim_sim.dir/cache.cc.o" "gcc" "src/sim/CMakeFiles/bpsim_sim.dir/cache.cc.o.d"
  "/root/repo/src/sim/ooo_core.cc" "src/sim/CMakeFiles/bpsim_sim.dir/ooo_core.cc.o" "gcc" "src/sim/CMakeFiles/bpsim_sim.dir/ooo_core.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pipeline/CMakeFiles/bpsim_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bpsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bpsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/predictors/CMakeFiles/bpsim_predictors.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
