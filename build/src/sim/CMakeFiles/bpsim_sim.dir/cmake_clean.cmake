file(REMOVE_RECURSE
  "CMakeFiles/bpsim_sim.dir/btb.cc.o"
  "CMakeFiles/bpsim_sim.dir/btb.cc.o.d"
  "CMakeFiles/bpsim_sim.dir/cache.cc.o"
  "CMakeFiles/bpsim_sim.dir/cache.cc.o.d"
  "CMakeFiles/bpsim_sim.dir/ooo_core.cc.o"
  "CMakeFiles/bpsim_sim.dir/ooo_core.cc.o.d"
  "libbpsim_sim.a"
  "libbpsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
