file(REMOVE_RECURSE
  "CMakeFiles/bpsim_analysis.dir/branch_profile.cc.o"
  "CMakeFiles/bpsim_analysis.dir/branch_profile.cc.o.d"
  "libbpsim_analysis.a"
  "libbpsim_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpsim_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
