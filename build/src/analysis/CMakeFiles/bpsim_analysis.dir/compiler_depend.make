# Empty compiler generated dependencies file for bpsim_analysis.
# This may be replaced when dependencies are built.
