file(REMOVE_RECURSE
  "libbpsim_workloads.a"
)
