
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/bzip2.cc" "src/workloads/CMakeFiles/bpsim_workloads.dir/bzip2.cc.o" "gcc" "src/workloads/CMakeFiles/bpsim_workloads.dir/bzip2.cc.o.d"
  "/root/repo/src/workloads/crafty.cc" "src/workloads/CMakeFiles/bpsim_workloads.dir/crafty.cc.o" "gcc" "src/workloads/CMakeFiles/bpsim_workloads.dir/crafty.cc.o.d"
  "/root/repo/src/workloads/eon.cc" "src/workloads/CMakeFiles/bpsim_workloads.dir/eon.cc.o" "gcc" "src/workloads/CMakeFiles/bpsim_workloads.dir/eon.cc.o.d"
  "/root/repo/src/workloads/gap.cc" "src/workloads/CMakeFiles/bpsim_workloads.dir/gap.cc.o" "gcc" "src/workloads/CMakeFiles/bpsim_workloads.dir/gap.cc.o.d"
  "/root/repo/src/workloads/gcc.cc" "src/workloads/CMakeFiles/bpsim_workloads.dir/gcc.cc.o" "gcc" "src/workloads/CMakeFiles/bpsim_workloads.dir/gcc.cc.o.d"
  "/root/repo/src/workloads/gzip.cc" "src/workloads/CMakeFiles/bpsim_workloads.dir/gzip.cc.o" "gcc" "src/workloads/CMakeFiles/bpsim_workloads.dir/gzip.cc.o.d"
  "/root/repo/src/workloads/mcf.cc" "src/workloads/CMakeFiles/bpsim_workloads.dir/mcf.cc.o" "gcc" "src/workloads/CMakeFiles/bpsim_workloads.dir/mcf.cc.o.d"
  "/root/repo/src/workloads/parser.cc" "src/workloads/CMakeFiles/bpsim_workloads.dir/parser.cc.o" "gcc" "src/workloads/CMakeFiles/bpsim_workloads.dir/parser.cc.o.d"
  "/root/repo/src/workloads/perlbmk.cc" "src/workloads/CMakeFiles/bpsim_workloads.dir/perlbmk.cc.o" "gcc" "src/workloads/CMakeFiles/bpsim_workloads.dir/perlbmk.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/workloads/CMakeFiles/bpsim_workloads.dir/registry.cc.o" "gcc" "src/workloads/CMakeFiles/bpsim_workloads.dir/registry.cc.o.d"
  "/root/repo/src/workloads/twolf.cc" "src/workloads/CMakeFiles/bpsim_workloads.dir/twolf.cc.o" "gcc" "src/workloads/CMakeFiles/bpsim_workloads.dir/twolf.cc.o.d"
  "/root/repo/src/workloads/vortex.cc" "src/workloads/CMakeFiles/bpsim_workloads.dir/vortex.cc.o" "gcc" "src/workloads/CMakeFiles/bpsim_workloads.dir/vortex.cc.o.d"
  "/root/repo/src/workloads/vpr.cc" "src/workloads/CMakeFiles/bpsim_workloads.dir/vpr.cc.o" "gcc" "src/workloads/CMakeFiles/bpsim_workloads.dir/vpr.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/workloads/CMakeFiles/bpsim_workloads.dir/workload.cc.o" "gcc" "src/workloads/CMakeFiles/bpsim_workloads.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/bpsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bpsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
