file(REMOVE_RECURSE
  "CMakeFiles/bpsim_workloads.dir/bzip2.cc.o"
  "CMakeFiles/bpsim_workloads.dir/bzip2.cc.o.d"
  "CMakeFiles/bpsim_workloads.dir/crafty.cc.o"
  "CMakeFiles/bpsim_workloads.dir/crafty.cc.o.d"
  "CMakeFiles/bpsim_workloads.dir/eon.cc.o"
  "CMakeFiles/bpsim_workloads.dir/eon.cc.o.d"
  "CMakeFiles/bpsim_workloads.dir/gap.cc.o"
  "CMakeFiles/bpsim_workloads.dir/gap.cc.o.d"
  "CMakeFiles/bpsim_workloads.dir/gcc.cc.o"
  "CMakeFiles/bpsim_workloads.dir/gcc.cc.o.d"
  "CMakeFiles/bpsim_workloads.dir/gzip.cc.o"
  "CMakeFiles/bpsim_workloads.dir/gzip.cc.o.d"
  "CMakeFiles/bpsim_workloads.dir/mcf.cc.o"
  "CMakeFiles/bpsim_workloads.dir/mcf.cc.o.d"
  "CMakeFiles/bpsim_workloads.dir/parser.cc.o"
  "CMakeFiles/bpsim_workloads.dir/parser.cc.o.d"
  "CMakeFiles/bpsim_workloads.dir/perlbmk.cc.o"
  "CMakeFiles/bpsim_workloads.dir/perlbmk.cc.o.d"
  "CMakeFiles/bpsim_workloads.dir/registry.cc.o"
  "CMakeFiles/bpsim_workloads.dir/registry.cc.o.d"
  "CMakeFiles/bpsim_workloads.dir/twolf.cc.o"
  "CMakeFiles/bpsim_workloads.dir/twolf.cc.o.d"
  "CMakeFiles/bpsim_workloads.dir/vortex.cc.o"
  "CMakeFiles/bpsim_workloads.dir/vortex.cc.o.d"
  "CMakeFiles/bpsim_workloads.dir/vpr.cc.o"
  "CMakeFiles/bpsim_workloads.dir/vpr.cc.o.d"
  "CMakeFiles/bpsim_workloads.dir/workload.cc.o"
  "CMakeFiles/bpsim_workloads.dir/workload.cc.o.d"
  "libbpsim_workloads.a"
  "libbpsim_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpsim_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
