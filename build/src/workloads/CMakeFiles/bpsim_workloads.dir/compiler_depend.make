# Empty compiler generated dependencies file for bpsim_workloads.
# This may be replaced when dependencies are built.
