file(REMOVE_RECURSE
  "libbpsim_delay.a"
)
