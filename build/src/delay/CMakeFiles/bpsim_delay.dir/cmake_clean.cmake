file(REMOVE_RECURSE
  "CMakeFiles/bpsim_delay.dir/clock_model.cc.o"
  "CMakeFiles/bpsim_delay.dir/clock_model.cc.o.d"
  "CMakeFiles/bpsim_delay.dir/sram_model.cc.o"
  "CMakeFiles/bpsim_delay.dir/sram_model.cc.o.d"
  "libbpsim_delay.a"
  "libbpsim_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpsim_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
