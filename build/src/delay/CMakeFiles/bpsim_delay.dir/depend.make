# Empty dependencies file for bpsim_delay.
# This may be replaced when dependencies are built.
