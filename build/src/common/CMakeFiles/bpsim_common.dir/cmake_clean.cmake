file(REMOVE_RECURSE
  "CMakeFiles/bpsim_common.dir/history.cc.o"
  "CMakeFiles/bpsim_common.dir/history.cc.o.d"
  "CMakeFiles/bpsim_common.dir/rng.cc.o"
  "CMakeFiles/bpsim_common.dir/rng.cc.o.d"
  "CMakeFiles/bpsim_common.dir/stats.cc.o"
  "CMakeFiles/bpsim_common.dir/stats.cc.o.d"
  "libbpsim_common.a"
  "libbpsim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpsim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
