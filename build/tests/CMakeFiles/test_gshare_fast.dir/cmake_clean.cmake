file(REMOVE_RECURSE
  "CMakeFiles/test_gshare_fast.dir/test_gshare_fast.cc.o"
  "CMakeFiles/test_gshare_fast.dir/test_gshare_fast.cc.o.d"
  "test_gshare_fast"
  "test_gshare_fast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gshare_fast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
