# Empty dependencies file for test_gshare_fast.
# This may be replaced when dependencies are built.
