# Empty dependencies file for test_fetch_predictor.
# This may be replaced when dependencies are built.
