file(REMOVE_RECURSE
  "CMakeFiles/test_fetch_predictor.dir/test_fetch_predictor.cc.o"
  "CMakeFiles/test_fetch_predictor.dir/test_fetch_predictor.cc.o.d"
  "test_fetch_predictor"
  "test_fetch_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fetch_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
