file(REMOVE_RECURSE
  "CMakeFiles/test_gskew_multicomponent.dir/test_gskew_multicomponent.cc.o"
  "CMakeFiles/test_gskew_multicomponent.dir/test_gskew_multicomponent.cc.o.d"
  "test_gskew_multicomponent"
  "test_gskew_multicomponent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gskew_multicomponent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
