# Empty dependencies file for test_gskew_multicomponent.
# This may be replaced when dependencies are built.
