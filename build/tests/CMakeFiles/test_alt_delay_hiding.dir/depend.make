# Empty dependencies file for test_alt_delay_hiding.
# This may be replaced when dependencies are built.
