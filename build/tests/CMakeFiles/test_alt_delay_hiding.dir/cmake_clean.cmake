file(REMOVE_RECURSE
  "CMakeFiles/test_alt_delay_hiding.dir/test_alt_delay_hiding.cc.o"
  "CMakeFiles/test_alt_delay_hiding.dir/test_alt_delay_hiding.cc.o.d"
  "test_alt_delay_hiding"
  "test_alt_delay_hiding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alt_delay_hiding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
