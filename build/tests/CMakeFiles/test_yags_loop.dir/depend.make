# Empty dependencies file for test_yags_loop.
# This may be replaced when dependencies are built.
