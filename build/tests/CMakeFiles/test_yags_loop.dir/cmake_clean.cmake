file(REMOVE_RECURSE
  "CMakeFiles/test_yags_loop.dir/test_yags_loop.cc.o"
  "CMakeFiles/test_yags_loop.dir/test_yags_loop.cc.o.d"
  "test_yags_loop"
  "test_yags_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_yags_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
