# Empty compiler generated dependencies file for test_table1_config.
# This may be replaced when dependencies are built.
