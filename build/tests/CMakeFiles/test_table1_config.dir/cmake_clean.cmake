file(REMOVE_RECURSE
  "CMakeFiles/test_table1_config.dir/test_table1_config.cc.o"
  "CMakeFiles/test_table1_config.dir/test_table1_config.cc.o.d"
  "test_table1_config"
  "test_table1_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_table1_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
