# Empty compiler generated dependencies file for test_sram_model.
# This may be replaced when dependencies are built.
