file(REMOVE_RECURSE
  "CMakeFiles/test_sram_model.dir/test_sram_model.cc.o"
  "CMakeFiles/test_sram_model.dir/test_sram_model.cc.o.d"
  "test_sram_model"
  "test_sram_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sram_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
