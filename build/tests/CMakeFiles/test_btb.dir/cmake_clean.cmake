file(REMOVE_RECURSE
  "CMakeFiles/test_btb.dir/test_btb.cc.o"
  "CMakeFiles/test_btb.dir/test_btb.cc.o.d"
  "test_btb"
  "test_btb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_btb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
