
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_trace_io.cc" "tests/CMakeFiles/test_trace_io.dir/test_trace_io.cc.o" "gcc" "tests/CMakeFiles/test_trace_io.dir/test_trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/bpsim_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bpsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/bpsim_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bpsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/bpsim_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/predictors/CMakeFiles/bpsim_predictors.dir/DependInfo.cmake"
  "/root/repo/build/src/delay/CMakeFiles/bpsim_delay.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bpsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bpsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
