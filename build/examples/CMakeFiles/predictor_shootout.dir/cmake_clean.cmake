file(REMOVE_RECURSE
  "CMakeFiles/predictor_shootout.dir/predictor_shootout.cpp.o"
  "CMakeFiles/predictor_shootout.dir/predictor_shootout.cpp.o.d"
  "predictor_shootout"
  "predictor_shootout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predictor_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
