# Empty compiler generated dependencies file for pipeline_walkthrough.
# This may be replaced when dependencies are built.
