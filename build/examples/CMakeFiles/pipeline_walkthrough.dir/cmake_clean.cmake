file(REMOVE_RECURSE
  "CMakeFiles/pipeline_walkthrough.dir/pipeline_walkthrough.cpp.o"
  "CMakeFiles/pipeline_walkthrough.dir/pipeline_walkthrough.cpp.o.d"
  "pipeline_walkthrough"
  "pipeline_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
