file(REMOVE_RECURSE
  "CMakeFiles/design_your_own.dir/design_your_own.cpp.o"
  "CMakeFiles/design_your_own.dir/design_your_own.cpp.o.d"
  "design_your_own"
  "design_your_own.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_your_own.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
