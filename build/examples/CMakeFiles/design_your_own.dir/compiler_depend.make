# Empty compiler generated dependencies file for design_your_own.
# This may be replaced when dependencies are built.
