# Empty dependencies file for cli.
# This may be replaced when dependencies are built.
