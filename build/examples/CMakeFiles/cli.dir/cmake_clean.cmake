file(REMOVE_RECURSE
  "CMakeFiles/cli.dir/cli.cpp.o"
  "CMakeFiles/cli.dir/cli.cpp.o.d"
  "cli"
  "cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
