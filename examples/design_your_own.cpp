/**
 * @file
 * Design your own predictor: the library's DirectionPredictor
 * interface is the extension point — implement predict()/update()
 * and every runner, wrapper, and bench works with your design.
 *
 * As a worked example we build an "agree" predictor (Sprangle et
 * al.): the PHT stores whether the branch will *agree* with a
 * per-branch bias bit instead of the direction itself, converting
 * destructive PHT aliasing into (mostly) constructive aliasing. We
 * then evaluate it against gshare across the suite, and — because
 * its index has the same structure as gshare's — it is equally easy
 * to pipeline with the paper's gshare.fast recipe.
 */

#include <cstdio>
#include <vector>

#include "common/bitutil.hh"
#include "common/history.hh"
#include "common/sat_counter.hh"
#include "core/factory.hh"
#include "core/runner.hh"
#include "predictors/predictor.hh"

using namespace bpsim;

namespace {

/** Agree predictor: bias table + agree-coded gshare PHT. */
class AgreePredictor : public DirectionPredictor
{
  public:
    explicit AgreePredictor(std::size_t entries)
        : pht_(entries),
          bias_(entries / 4),
          biasSet_(entries / 4, false),
          mask_(entries - 1),
          history_(floorLog2(entries))
    {
    }

    std::string name() const override { return "agree"; }

    std::size_t
    storageBits() const override
    {
        // Two-bit agree counters + one bias bit (+valid) per entry.
        return pht_.size() * 2 + bias_.size() * 2 + history_.length();
    }

    bool
    predict(Addr pc) override
    {
        const std::size_t bi = biasIndex(pc);
        // First-encounter bias: predict backward-taken style (set on
        // first update); until then assume taken.
        const bool bias = biasSet_[bi] ? bias_[bi] : true;
        const bool agree = pht_[index(pc)].taken();
        return agree == bias;
    }

    void
    update(Addr pc, bool taken) override
    {
        const std::size_t bi = biasIndex(pc);
        if (!biasSet_[bi]) {
            // The first outcome becomes the bias, approximating a
            // compiler-set bias bit.
            bias_[bi] = taken;
            biasSet_[bi] = true;
        }
        pht_[index(pc)].update(taken == bias_[bi]);
        history_.shiftIn(taken);
    }

  private:
    std::size_t
    index(Addr pc) const
    {
        return static_cast<std::size_t>(
                   (indexPc(pc) ^ history_.low64())) & mask_;
    }
    std::size_t
    biasIndex(Addr pc) const
    {
        return static_cast<std::size_t>(indexPc(pc)) &
               (bias_.size() - 1);
    }

    std::vector<TwoBitCounter> pht_;
    std::vector<bool> bias_;
    std::vector<bool> biasSet_;
    std::size_t mask_;
    HistoryRegister history_;
};

} // namespace

int
main()
{
    const Counter ops = benchOpsPerWorkload(300000);
    SuiteTraces suite(ops);

    std::printf("custom 'agree' predictor vs library gshare, 16KB "
                "budget, %llu ops per workload\n\n",
                static_cast<unsigned long long>(ops));
    std::printf("%-12s %12s %12s\n", "benchmark", "gshare(%)",
                "agree(%)");

    double gshare_mean = 0, agree_mean = 0;
    const auto gshare_res = suiteAccuracy(
        suite,
        [] { return makePredictor(PredictorKind::Gshare, 16 * 1024); },
        &gshare_mean);
    const auto agree_res = suiteAccuracy(
        suite, [] { return std::make_unique<AgreePredictor>(1 << 16); },
        &agree_mean);

    for (std::size_t i = 0; i < suite.size(); ++i)
        std::printf("%-12s %12.2f %12.2f\n", suite.name(i).c_str(),
                    gshare_res[i].percent(), agree_res[i].percent());
    std::printf("%-12s %12.2f %12.2f\n", "mean", gshare_mean,
                agree_mean);

    std::printf("\nThe same object plugs into the timing simulator "
                "via SingleCycleFetchPredictor or\nOverridingFetchPredictor "
                "— see examples/quickstart.cpp.\n");
    return 0;
}
