/**
 * @file
 * Quickstart: the five-minute tour of the library.
 *
 *  1. Generate an execution-driven trace from a SPECint stand-in.
 *  2. Build a branch predictor at a hardware budget.
 *  3. Measure its accuracy.
 *  4. Run the out-of-order timing simulator with and without the
 *     predictor's access delay hidden, and see why the paper says
 *     "better accuracy doesn't always mean better performance".
 *
 * Build: cmake -B build -G Ninja && cmake --build build
 * Run:   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/factory.hh"
#include "core/runner.hh"
#include "workloads/registry.hh"

using namespace bpsim;

int
main()
{
    // 1. A trace: 300K dynamic instructions of the gcc stand-in.
    const auto workload = makeWorkload("176.gcc");
    std::printf("workload: %s — %s\n", workload->name().c_str(),
                workload->description().c_str());
    const TraceBuffer trace = generateTrace(*workload, 300000, 42);
    std::printf("trace: %zu instructions, %llu conditional branches "
                "(density %.2f)\n\n",
                trace.size(),
                static_cast<unsigned long long>(trace.condBranches()),
                trace.branchDensity());

    // 2+3. Predictors at a 64KB budget and their accuracy.
    std::printf("%-16s %12s %14s\n", "predictor", "budget(KB)",
                "mispredict(%)");
    for (auto kind : {PredictorKind::Gshare, PredictorKind::Perceptron,
                      PredictorKind::GshareFast}) {
        auto pred = makePredictor(kind, 64 * 1024);
        const AccuracyResult acc = runAccuracy(*pred, trace);
        std::printf("%-16s %12zu %14.2f\n", pred->name().c_str(),
                    pred->storageBytes() / 1024, acc.percent());
    }

    // 4. Timing: the perceptron with ideal (zero-delay) access vs a
    // realistic overriding implementation, against gshare.fast whose
    // pipeline makes the question moot.
    CoreConfig cfg; // Table 1 of the paper
    std::printf("\n%-34s %8s\n", "configuration", "IPC");
    for (auto [kind, mode, label] :
         {std::tuple{PredictorKind::Perceptron, DelayMode::Ideal,
                     "perceptron 64KB, zero delay"},
          std::tuple{PredictorKind::Perceptron, DelayMode::Overriding,
                     "perceptron 64KB, overriding"},
          std::tuple{PredictorKind::GshareFast, DelayMode::Pipelined,
                     "gshare.fast 64KB, pipelined"}}) {
        auto fp = makeFetchPredictor(kind, 64 * 1024, mode);
        const SimResult r = runTiming(cfg, *fp, trace);
        std::printf("%-34s %8.3f\n", label, r.ipc());
    }

    std::printf("\nNext: see bench/ for the paper's full figures and "
                "EXPERIMENTS.md for the results.\n");
    return 0;
}
