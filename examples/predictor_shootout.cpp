/**
 * @file
 * Predictor shootout: compare every predictor in the library on a
 * chosen workload and budget.
 *
 * Usage: predictor_shootout [workload] [budget_kb] [ops]
 *   workload   SPECint name (default 300.twolf — the hardest)
 *   budget_kb  hardware budget in KB (default 64)
 *   ops        trace length (default 500000)
 *
 * Prints accuracy, modelled access latency, and delivered IPC under
 * the realistic delay-hiding scheme each predictor would need.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/factory.hh"
#include "core/runner.hh"
#include "workloads/registry.hh"

using namespace bpsim;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "300.twolf";
    const std::size_t budget_kb =
        argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 64;
    const Counter ops =
        argc > 3 ? static_cast<Counter>(std::atoll(argv[3])) : 500000;

    const auto workload = makeWorkload(name);
    if (!workload) {
        std::fprintf(stderr, "unknown workload '%s'; choices:\n",
                     name.c_str());
        for (const auto &n : specint2000Names())
            std::fprintf(stderr, "  %s\n", n.c_str());
        return 1;
    }

    std::printf("shootout on %s at %zuKB (%llu ops)\n",
                name.c_str(), budget_kb,
                static_cast<unsigned long long>(ops));
    const TraceBuffer trace = generateTrace(*workload, ops, 42);
    CoreConfig cfg;

    std::printf("%-16s %10s %8s %18s %10s\n", "predictor", "misp(%)",
                "latency", "delay handling", "IPC");
    for (auto kind : allKinds()) {
        auto pred = makePredictor(kind, budget_kb * 1024);
        const auto acc = runAccuracy(*pred, trace);
        const unsigned lat =
            predictorLatencyCycles(kind, budget_kb * 1024);

        // gshare.fast pipelines; everything else over 1 cycle needs
        // an overriding organization.
        const DelayMode mode = kind == PredictorKind::GshareFast
                                   ? DelayMode::Pipelined
                                   : DelayMode::Overriding;
        auto fp = makeFetchPredictor(kind, budget_kb * 1024, mode);
        const auto r = runTiming(cfg, *fp, trace);

        std::printf("%-16s %10.2f %8u %18s %10.3f\n",
                    kindName(kind).c_str(), acc.percent(), lat,
                    kind == PredictorKind::GshareFast ? "pipelined"
                    : lat > 1                         ? "overriding"
                                                      : "single-cycle",
                    r.ipc());
    }
    return 0;
}
