/**
 * @file
 * Pipeline walkthrough: step the cycle-level gshare.fast engine by
 * hand and watch Figure 4 of the paper happen — one PHT row read
 * launching per cycle, single-cycle selects from the PHT buffer,
 * speculative history running ahead of resolution, and checkpointed
 * recovery after a misprediction.
 */

#include <cstdio>

#include "pipeline/gshare_fast_engine.hh"

using namespace bpsim;

namespace {

void
show(const GshareFastEngine &e, const char *event)
{
    std::printf("  cycle %-4llu outstanding %-2zu | %s\n",
                static_cast<unsigned long long>(e.cycle()),
                e.outstanding(), event);
}

} // namespace

int
main()
{
    GshareFastEngine::Config cfg;
    cfg.entries = 1 << 14;  // 4KB PHT
    cfg.phtLatency = 3;     // the paper's running example
    cfg.branchesPerCycle = 1;
    GshareFastEngine engine(cfg);

    std::printf("gshare.fast engine: %zu-entry PHT, latency %u, "
                "select %u bits, buffer %zu entries\n\n",
                static_cast<std::size_t>(cfg.entries), cfg.phtLatency,
                engine.selectBits(), engine.bufferEntries());

    std::printf("A loop branch (taken 3x, then exits) predicted "
                "every cycle:\n");
    // Warm up: teach the engine the pattern T T T N.
    for (int iter = 0; iter < 300; ++iter) {
        for (int k = 0; k < 4; ++k) {
            engine.predictBranch(0x4000);
            if (!engine.resolve(k != 3))
                engine.recover();
        }
    }

    // Now watch one loop execution in detail.
    for (int k = 0; k < 4; ++k) {
        const bool actual = k != 3;
        const bool pred = engine.predictBranch(0x4000);
        char line[128];
        std::snprintf(line, sizeof(line),
                      "predict %-9s (actual %-9s) %s",
                      pred ? "taken" : "not-taken",
                      actual ? "taken" : "not-taken",
                      pred == actual ? "- hit" : "- MISPREDICT");
        show(engine, line);
        if (!engine.resolve(actual)) {
            engine.recover();
            show(engine,
                 "recovery: speculative history overwritten from "
                 "non-speculative; buffer refilled from checkpoints");
        }
    }

    std::printf("\nIdle cycles still launch a row read per cycle "
                "(the pipeline never blocks):\n");
    for (int i = 0; i < 3; ++i) {
        engine.tickIdle();
        show(engine, "idle - new row prefetch launched");
    }

    std::printf("\nDeep speculation: predict 6 branches with no "
                "resolution, then a misprediction squashes them "
                "all:\n");
    for (int i = 0; i < 6; ++i) {
        engine.predictBranch(0x8000 + i * 16);
    }
    show(engine, "6 unresolved speculative branches in flight");
    engine.resolve(false); // oldest resolves, assume it was wrong
    engine.recover();
    show(engine, "misprediction: younger speculation discarded");

    std::printf("\nThe key property (tested exhaustively in "
                "tests/test_engine.cc): this engine's\nprediction "
                "stream is bit-identical to the functional "
                "GshareFastPredictor model.\n");
    return 0;
}
