/**
 * @file
 * Workload inspector: characterize the branch behaviour of any
 * SPECint stand-in with the analysis module, then attribute a
 * predictor's mispredictions to static sites — the methodology
 * behind per-benchmark explanations like the paper's Section 4.5
 * discussion of 300.twolf.
 *
 * Usage: workload_inspector [workload] [ops]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/branch_profile.hh"
#include "core/factory.hh"
#include "workloads/registry.hh"

using namespace bpsim;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "300.twolf";
    const Counter ops =
        argc > 2 ? static_cast<Counter>(std::atoll(argv[2])) : 400000;

    const auto workload = makeWorkload(name);
    if (!workload) {
        std::fprintf(stderr, "unknown workload '%s'\n", name.c_str());
        return 1;
    }
    const TraceBuffer trace = generateTrace(*workload, ops, 42);

    // --- stream character ------------------------------------------
    const BranchProfile profile = profileTrace(trace);
    std::printf("%s: %s\n", workload->name().c_str(),
                workload->description().c_str());
    std::printf("  dynamic branches : %llu (density %.3f)\n",
                static_cast<unsigned long long>(
                    profile.dynamicBranches()),
                trace.branchDensity());
    std::printf("  static sites     : %zu\n", profile.staticSites());
    std::printf("  taken fraction   : %.2f\n",
                profile.takenFraction());
    std::printf("  biased (>=0.9)   : %.0f%% of dynamic branches\n",
                100.0 * profile.biasedFraction(0.9));
    std::printf("  mean site entropy: %.3f bits\n\n",
                profile.meanSiteEntropyBits());

    // --- misprediction attribution ----------------------------------
    auto pred = makePredictor(PredictorKind::Gshare, 64 * 1024);
    MispredictProfile attribution;
    for (const MicroOp &op : trace) {
        if (op.cls != InstClass::CondBranch)
            continue;
        const bool p = pred->predict(op.pc);
        pred->update(op.pc, op.taken);
        attribution.observe(op.pc, p != op.taken);
    }

    std::printf("gshare 64KB mispredicts %.2f%%; top offending "
                "sites:\n", attribution.percent());
    std::printf("  %-12s %12s %10s %12s %10s\n", "site", "execs",
                "misses", "local(%)", "share(%)");
    for (const auto &s : attribution.topOffenders(8)) {
        const auto site = profile.site(s.pc);
        std::printf("  %#-12llx %12llu %10llu %12.1f %10.1f"
                    "   (taken %.0f%%)\n",
                    static_cast<unsigned long long>(s.pc),
                    static_cast<unsigned long long>(s.executions),
                    static_cast<unsigned long long>(s.misses),
                    100.0 * s.localRate(),
                    100.0 * s.shareOfAllMisses,
                    100.0 * site.takenRate());
    }
    return 0;
}
