/**
 * @file
 * bpsim command-line driver: one binary exposing the whole pipeline
 * — generate or load a trace, pick a predictor/budget/delay mode,
 * run accuracy and/or timing, optionally save the trace for reuse.
 *
 * Usage:
 *   cli --workload 176.gcc --ops 1000000 [--seed 42]
 *       [--predictor gshare.fast] [--budget-kb 64]
 *       [--mode pipelined|ideal|overriding|stall|dual-path|cascading]
 *       [--save-trace t.bpt | --load-trace t.bpt]
 *       [--timing] [--list]
 *       [--report out.json] [--trace events.jsonl]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "core/factory.hh"
#include "core/runner.hh"
#include "obs/report_session.hh"
#include "trace/trace_io.hh"
#include "workloads/registry.hh"

using namespace bpsim;

namespace {

const std::map<std::string, PredictorKind> kindByName = {
    {"bimodal", PredictorKind::Bimodal},
    {"gshare", PredictorKind::Gshare},
    {"bimode", PredictorKind::BiMode},
    {"2bc-gskew", PredictorKind::Gskew},
    {"ev6-tournament", PredictorKind::Tournament},
    {"perceptron", PredictorKind::Perceptron},
    {"multicomponent", PredictorKind::MultiComponent},
    {"gshare.fast", PredictorKind::GshareFast},
};

const std::map<std::string, DelayMode> modeByName = {
    {"ideal", DelayMode::Ideal},
    {"overriding", DelayMode::Overriding},
    {"stall", DelayMode::Stall},
    {"pipelined", DelayMode::Pipelined},
    {"dual-path", DelayMode::DualPath},
    {"cascading", DelayMode::Cascading},
};

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--workload NAME] [--ops N] [--seed S]\n"
                 "          [--predictor NAME] [--budget-kb N] "
                 "[--mode MODE]\n"
                 "          [--save-trace FILE | --load-trace FILE]\n"
                 "          [--timing] [--list]\n"
                 "          [--report FILE] [--trace FILE]\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    // Strips --report/--trace before the hand-rolled loop below, so
    // every binary shares the one observability-flag parser.
    obs::ReportSession session(argc, argv, "cli");
    std::string workload = "164.gzip";
    std::string predictor = "gshare.fast";
    std::string mode = "pipelined";
    std::string save_trace, load_trace;
    Counter ops = 500000;
    std::uint64_t seed = 42;
    std::size_t budget_kb = 64;
    bool timing = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return ++i < argc ? argv[i] : nullptr;
        };
        if (arg == "--list") {
            std::printf("workloads:\n");
            for (const auto &n : specint2000Names())
                std::printf("  %s\n", n.c_str());
            std::printf("predictors:\n");
            for (const auto &[n, k] : kindByName)
                std::printf("  %s\n", n.c_str());
            std::printf("modes:\n");
            for (const auto &[n, m] : modeByName)
                std::printf("  %s\n", n.c_str());
            return 0;
        } else if (arg == "--timing") {
            timing = true;
        } else if (arg == "--workload" && next()) {
            workload = argv[i];
        } else if (arg == "--predictor" && next()) {
            predictor = argv[i];
        } else if (arg == "--mode" && next()) {
            mode = argv[i];
        } else if (arg == "--ops" && next()) {
            ops = static_cast<Counter>(std::atoll(argv[i]));
        } else if (arg == "--seed" && next()) {
            seed = static_cast<std::uint64_t>(std::atoll(argv[i]));
        } else if (arg == "--budget-kb" && next()) {
            budget_kb = static_cast<std::size_t>(std::atoll(argv[i]));
        } else if (arg == "--save-trace" && next()) {
            save_trace = argv[i];
        } else if (arg == "--load-trace" && next()) {
            load_trace = argv[i];
        } else {
            return usage(argv[0]);
        }
    }

    if (kindByName.count(predictor) == 0 ||
        modeByName.count(mode) == 0)
        return usage(argv[0]);

    // --- obtain the trace -------------------------------------------
    TraceBuffer trace;
    try {
        if (!load_trace.empty()) {
            trace = readTrace(load_trace);
            std::printf("loaded %zu ops from %s\n", trace.size(),
                        load_trace.c_str());
        } else {
            const auto w = makeWorkload(workload);
            if (!w) {
                std::fprintf(stderr, "unknown workload '%s'\n",
                             workload.c_str());
                return 1;
            }
            trace = generateTrace(*w, ops, seed);
            std::printf("generated %zu ops of %s (seed %llu)\n",
                        trace.size(), workload.c_str(),
                        static_cast<unsigned long long>(seed));
        }
        if (!save_trace.empty()) {
            writeTrace(trace, save_trace);
            std::printf("saved trace to %s\n", save_trace.c_str());
        }
    } catch (const TraceIoError &e) {
        std::fprintf(stderr, "trace I/O error: %s\n", e.what());
        return 1;
    }

    const PredictorKind kind = kindByName.at(predictor);
    const DelayMode delay_mode = modeByName.at(mode);

    session.report().opsPerWorkload = trace.size();
    session.report().seed = seed;

    // --- accuracy ------------------------------------------------------
    auto pred = makePredictor(kind, budget_kb * 1024);
    const auto acc = runAccuracy(*pred, trace);
    std::printf("%s @ %zuKB (actual %zuKB): %llu branches, "
                "%.2f%% mispredicted\n",
                predictor.c_str(), budget_kb,
                pred->storageBytes() / 1024,
                static_cast<unsigned long long>(acc.branches),
                acc.percent());
    if (!timing && session.wantReport())
        session.report().rows.push_back(
            reportRow(workload, predictor, budget_kb * 1024, acc));

    // --- timing --------------------------------------------------------
    if (timing) {
        CoreConfig cfg;
        auto fp =
            makeFetchPredictor(kind, budget_kb * 1024, delay_mode);
        const auto r = runTiming(cfg, *fp, trace, session.tracer());
        if (session.wantReport()) {
            session.report().rows.push_back(reportRow(
                workload, predictor, mode, budget_kb * 1024, cfg, r));
            r.publishMetrics(session.metrics(), workload);
        }
        std::printf(
            "timing (%s, latency %u): IPC %.3f over %llu cycles\n",
            mode.c_str(), predictorLatencyCycles(kind, budget_kb * 1024),
            r.ipc(), static_cast<unsigned long long>(r.cycles));
        std::printf(
            "  stalls: mispredict %llu, icache %llu, front-end %llu "
            "cycles; bubbles %llu\n",
            static_cast<unsigned long long>(r.mispredictWaitCycles),
            static_cast<unsigned long long>(r.icacheStallCycles),
            static_cast<unsigned long long>(r.frontEndStallCycles),
            static_cast<unsigned long long>(r.overridingBubbleCycles));
    }
    return session.finish() ? 0 : 1;
}
