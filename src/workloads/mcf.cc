/**
 * @file
 * 181.mcf stand-in: network-simplex-style arc scanning and tree walks.
 *
 * mcf is the SPECint memory monster: it streams over a multi-megabyte
 * arc array testing reduced costs (a data-dependent, weakly biased
 * branch fed directly by a load), then chases parent pointers through
 * a spanning tree with essentially random locality. IPC is dominated
 * by cache misses; branch outcomes depend on loaded values, coupling
 * predictor latency to the memory system. We reproduce exactly that:
 * a big arc table scan with reduced-cost tests plus pointer-chasing
 * cycle detection over a random forest.
 */

#include "workloads/kernels.hh"

#include <algorithm>
#include <vector>

#include "common/rng.hh"

namespace bpsim {

namespace {

constexpr unsigned numNodes = 1 << 12;
constexpr unsigned numArcs = 1 << 15;

struct Arc
{
    std::uint32_t tail;
    std::uint32_t head;
    std::int32_t cost;
    std::int32_t flow;
};

struct Network
{
    std::vector<Arc> arcs;
    std::vector<std::uint32_t> parent;
    std::vector<std::int32_t> potential;
    std::vector<std::uint16_t> depth;
};

Network
makeNetwork(Rng &rng)
{
    Network net;
    net.arcs.resize(numArcs);
    // Arc costs follow a random walk: consecutive arcs in the array
    // have correlated costs (they come from the same region of the
    // network), so the pricing scan's reduced-cost test runs in
    // streaks rather than flipping randomly — the structure that
    // makes the real mcf's dominant branch partially predictable.
    std::int32_t walk = 0;
    for (auto &a : net.arcs) {
        a.tail = static_cast<std::uint32_t>(rng.nextRange(numNodes));
        a.head = static_cast<std::uint32_t>(rng.nextRange(numNodes));
        walk += static_cast<std::int32_t>(rng.nextBetween(-60, 60));
        if (walk > 800 || walk < -800)
            walk /= 2;
        a.cost = walk;
        a.flow = 0;
    }
    net.parent.resize(numNodes);
    net.depth.resize(numNodes);
    for (std::uint32_t n = 0; n < numNodes; ++n) {
        // Random forest: parents always have smaller index so walks
        // terminate at node 0.
        net.parent[n] = n == 0 ? 0
                               : static_cast<std::uint32_t>(
                                     rng.nextRange(n));
        net.depth[n] = 0;
    }
    net.potential.resize(numNodes);
    // Potentials are smooth in node index (network locality).
    std::int32_t pwalk = 0;
    for (auto &p : net.potential) {
        pwalk += static_cast<std::int32_t>(rng.nextBetween(-12, 12));
        p = pwalk;
    }
    return net;
}

} // namespace

std::string
McfKernel::name() const
{
    return "181.mcf";
}

std::string
McfKernel::description() const
{
    return "min-cost-flow arc pricing scan and spanning-tree walks";
}

void
McfKernel::run(Tracer &t, std::uint64_t seed) const
{
    Rng rng(seed ^ 0x6d6366ULL);
    for (;;) {
        Network net = makeNetwork(rng);
        const Addr arc_base = 0;
        const Addr node_base = numArcs * sizeof(Arc);

        for (unsigned iter = 0;
             t.condBranch(iter < 256, BranchHint::Backward); ++iter) {
            // Pricing scan: stream a window of the arc array (the
            // real code also scans in blocks, resuming where it
            // left off); the reduced-cost test is fed directly by
            // the loads.
            std::uint32_t best_arc = 0;
            std::int32_t best_red = 0;
            const std::uint32_t begin = (iter * 8192) % numArcs;
            const std::uint32_t end =
                std::min<std::uint32_t>(begin + 8192, numArcs);
            for (std::uint32_t a = begin;
                 t.condBranch(a < end, BranchHint::Backward);
                 a += 1 + static_cast<std::uint32_t>(
                              rng.nextRange(3))) {
                const Arc &arc = net.arcs[a];
                t.load(arc_base + a * sizeof(Arc));
                t.load(node_base + arc.tail * 8);
                t.load(node_base + arc.head * 8);
                const std::int32_t red = arc.cost -
                                         net.potential[arc.tail] +
                                         net.potential[arc.head];
                t.alu(6);
                // Weakly biased, load-dependent: mcf's signature
                // branch.
                if (t.condBranch(red < 0)) {
                    if (t.condBranch(red < best_red)) {
                        best_red = red;
                        best_arc = a;
                        t.alu(1);
                        // Candidate list bookkeeping (store traffic
                        // during the scan, as in the real pricing
                        // code).
                        t.store(0x800000 + (a % 1024) * 4);
                    }
                }
                if (t.condBranch(arc.flow != 0))
                    t.alu(1);
            }

            // Pivot: walk tree parents from both endpoints to find
            // the join — pointer chasing with random locality.
            std::uint32_t u = net.arcs[best_arc].tail;
            std::uint32_t v = net.arcs[best_arc].head;
            unsigned steps = 0;
            while (t.condBranch(u != v && steps < 64,
                                BranchHint::Backward)) {
                t.load(node_base + u * 8);
                t.load(node_base + v * 8);
                if (t.condBranch(u > v)) {
                    u = net.parent[u];
                } else {
                    v = net.parent[v];
                }
                ++steps;
                t.alu(4);
            }

            // Update potentials along a random path (store traffic).
            std::uint32_t n =
                static_cast<std::uint32_t>(rng.nextRange(numNodes));
            while (t.condBranch(n != 0, BranchHint::Backward)) {
                net.potential[n] += best_red / 2;
                t.load(node_base + n * 8);
                t.store(node_base + n * 8);
                n = net.parent[n];
                t.alu(3);
            }
            net.arcs[best_arc].flow += 1;
            t.store(arc_base + best_arc * sizeof(Arc));
        }
    }
}

} // namespace bpsim
