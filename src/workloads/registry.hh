/**
 * @file
 * Registry of the twelve SPECint-2000 stand-in kernels.
 */

#ifndef BPSIM_WORKLOADS_REGISTRY_HH
#define BPSIM_WORKLOADS_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace bpsim {

/** Create one kernel by SPECint name (e.g. "181.mcf").
 *  Returns nullptr for unknown names. */
std::unique_ptr<Workload> makeWorkload(const std::string &name);

/** The twelve SPECint 2000 names, in the paper's figure order. */
const std::vector<std::string> &specint2000Names();

/** Instantiate the full suite, in the paper's figure order. */
std::vector<std::unique_ptr<Workload>> makeSpecint2000();

} // namespace bpsim

#endif // BPSIM_WORKLOADS_REGISTRY_HH
