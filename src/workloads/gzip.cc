/**
 * @file
 * 164.gzip stand-in: LZ77 compression with hash-chain match search.
 *
 * The real gzip spends its time in deflate's longest_match loop:
 * walking hash chains, comparing candidate strings byte by byte, and
 * deciding literal-vs-match. The dominant branches are (a) the
 * byte-comparison loop exit, whose trip count depends on data
 * redundancy, (b) the chain-walk continuation test, and (c) the
 * lazy-match heuristic. We run exactly that algorithm over
 * semi-compressible generated text (a Markov source with repeated
 * phrases), so branch outcomes have the same flavour: mostly
 * well-structured loops with data-dependent exits.
 */

#include "workloads/kernels.hh"

#include <array>
#include <vector>

#include "common/rng.hh"

namespace bpsim {

namespace {

constexpr std::size_t windowSize = 32768;
constexpr std::size_t inputSize = 32768;
constexpr std::size_t hashSize = 1024;
constexpr unsigned maxChainLength = 4;
constexpr unsigned minMatch = 3;
constexpr unsigned maxMatch = 64;

/** Generate semi-compressible text: phrase reuse over a Markov source. */
std::vector<std::uint8_t>
makeInput(Rng &rng)
{
    std::vector<std::uint8_t> data;
    data.reserve(inputSize);
    std::uint8_t state = 0;
    while (data.size() < inputSize) {
        if (data.size() > 64 && rng.nextBool(0.55)) {
            // Re-emit an earlier phrase to create LZ matches; text
            // is highly repetitive, as gzip's inputs are.
            const std::size_t back =
                1 + rng.nextRange(std::min<std::size_t>(data.size(), 2048));
            const std::size_t start = data.size() - back;
            const std::size_t len = 16 + rng.nextRange(64);
            for (std::size_t i = 0; i < len && data.size() < inputSize; ++i)
                data.push_back(data[start + i % back]);
        } else {
            // Fresh text from an order-1 Markov source over a small
            // skewed alphabet, like ASCII text.
            state = static_cast<std::uint8_t>(
                (state + 1 + rng.nextZipf(14, 1.2)) % 20);
            data.push_back(static_cast<std::uint8_t>('a' + state));
        }
    }
    return data;
}

std::uint32_t
hash3(const std::vector<std::uint8_t> &d, std::size_t i)
{
    return ((d[i] << 6) ^ (d[i + 1] << 3) ^ d[i + 2]) % hashSize;
}

} // namespace

std::string
GzipKernel::name() const
{
    return "164.gzip";
}

std::string
GzipKernel::description() const
{
    return "LZ77 deflate-style compression with hash-chain match search";
}

void
GzipKernel::run(Tracer &t, std::uint64_t seed) const
{
    Rng rng(seed ^ 0x647a6970ULL);
    for (;;) {
        const auto data = makeInput(rng);
        std::vector<std::int32_t> head(hashSize, -1);
        std::vector<std::int32_t> prev(data.size(), -1);

        std::size_t pos = 0;
        unsigned deferred = 0; // lazy-match state
        while (t.condBranch(pos + minMatch < data.size(),
                            BranchHint::Backward)) {
            const std::uint32_t h = hash3(data, pos);
            t.alu(4); // hash computation
            t.load(h * 4);
            std::int32_t cand = head[h];

            // Start from the minimum useful length, like deflate's
            // prev_length: the quick-reject below then tests a byte
            // beyond the hashed prefix, so most false candidates die
            // on one biased branch.
            unsigned best_len = minMatch;
            unsigned chain = 0;
            // Hash-chain walk: data-dependent iteration count.
            while (t.condBranch(cand >= 0 && chain < maxChainLength,
                                BranchHint::Backward)) {
                t.load(static_cast<Addr>(cand));
                if (t.condBranch(
                        pos - static_cast<std::size_t>(cand) <=
                        windowSize)) {
                    const auto c = static_cast<std::size_t>(cand);
                    // Quick reject, as in the real longest_match:
                    // a candidate that cannot beat best_len is
                    // dropped with a single (biased) compare before
                    // the expensive byte loop runs.
                    t.load(c + best_len);
                    t.load(pos + best_len);
                    if (t.condBranch(
                            pos + best_len < data.size() &&
                            data[c + best_len] ==
                                data[pos + best_len])) {
                        // Byte-comparison loop: the classic gzip
                        // inner loop; exit is data-dependent.
                        unsigned len = 0;
                        while (t.condBranch(len < maxMatch &&
                                                pos + len <
                                                    data.size() &&
                                                data[c + len] ==
                                                    data[pos + len],
                                            BranchHint::Backward)) {
                            t.load(c + len);
                            t.load(pos + len);
                            t.alu(3);
                            ++len;
                        }
                        if (t.condBranch(len > best_len)) {
                            best_len = len;
                            t.alu(1);
                        }
                    }
                } else {
                    // Candidate slid out of the window: chain is dead.
                    break;
                }
                cand = prev[static_cast<std::size_t>(cand)];
                ++chain;
                t.alu(4);
            }

            // Literal-vs-match decision plus gzip's lazy evaluation:
            // defer a match if the next position may match better.
            if (t.condBranch(best_len > minMatch)) {
                if (t.condBranch(deferred == 0 && best_len < 8)) {
                    deferred = best_len;
                    t.alu(3);
                    pos += 1;
                } else {
                    t.store(pos);
                    t.alu(6); // emit length/distance codes
                    pos += best_len;
                    deferred = 0;
                }
            } else {
                // Emit a literal; Huffman bucket update.
                t.store(inputSize + data[pos]);
                t.alu(5);
                pos += 1;
                deferred = 0;
            }

            // Insert the new position into its hash chain (guarding
            // the 3-byte hash window at the end of the input).
            if (pos >= 1 && pos + 1 < data.size()) {
                const std::uint32_t nh = hash3(data, pos - 1);
                prev[pos - 1] = head[nh];
                head[nh] = static_cast<std::int32_t>(pos - 1);
                t.store(nh * 4);
            }
        }
    }
}

} // namespace bpsim
