/**
 * @file
 * 255.vortex stand-in: object-database transactions.
 *
 * vortex exercises an in-memory OO database: creating, looking up
 * and deleting records in hashed indexes. Its branches are numerous
 * but mostly well-behaved — short bucket-chain walks, key compares
 * that usually fail (or usually succeed, on hot keys), and schema
 * dispatch over a handful of record types — giving it one of the
 * lowest misprediction rates in the suite. Memory behaviour is
 * load-heavy with moderate locality.
 */

#include "workloads/kernels.hh"

#include <vector>

#include "common/rng.hh"

namespace bpsim {

namespace {

constexpr unsigned numBuckets = 1 << 14;
constexpr unsigned maxRecords = 1 << 14;
/** Live key working set: far smaller than capacity, so steady-state
 *  lookups nearly always hit and bucket chains stay short. */
constexpr unsigned keySpace = 512;

struct Record
{
    std::uint32_t key = 0;
    std::uint8_t type = 0;
    std::uint16_t payload = 0;
    std::int32_t next = -1; // bucket chain
    bool live = false;
};

struct Db
{
    std::vector<std::int32_t> buckets;
    std::vector<Record> records;
    std::vector<std::int32_t> freeList;
};

Db
makeDb()
{
    Db db;
    db.buckets.assign(numBuckets, -1);
    db.records.resize(maxRecords);
    db.freeList.reserve(maxRecords);
    for (int i = maxRecords - 1; i >= 0; --i)
        db.freeList.push_back(i);
    return db;
}

std::uint32_t
hashKey(std::uint32_t key)
{
    key ^= key >> 16;
    key *= 0x45d9f3bu;
    key ^= key >> 16;
    return key % numBuckets;
}

/** Find a live record; returns index or -1. */
std::int32_t
dbFind(Tracer &t, Db &db, std::uint32_t key)
{
    const std::uint32_t b = hashKey(key);
    t.load(b * 4);
    std::int32_t r = db.buckets[b];
    // Chain walk: usually 0-2 iterations.
    while (t.condBranch(r >= 0, BranchHint::Backward)) {
        t.load(0x100000 + static_cast<Addr>(r) * sizeof(Record));
        if (t.condBranch(db.records[static_cast<std::size_t>(r)].key ==
                         key))
            return r;
        r = db.records[static_cast<std::size_t>(r)].next;
        t.alu(1);
    }
    return -1;
}

void
dbInsert(Tracer &t, Db &db, std::uint32_t key, std::uint8_t type)
{
    if (t.condBranch(db.freeList.empty()))
        return;
    const std::int32_t r = db.freeList.back();
    db.freeList.pop_back();
    const std::uint32_t b = hashKey(key);
    Record &rec = db.records[static_cast<std::size_t>(r)];
    rec.key = key;
    rec.type = type;
    rec.payload = static_cast<std::uint16_t>(key * 7);
    rec.next = db.buckets[b];
    rec.live = true;
    db.buckets[b] = r;
    t.store(0x100000 + static_cast<Addr>(r) * sizeof(Record));
    t.store(b * 4);
    t.alu(3);
}

void
dbDelete(Tracer &t, Db &db, std::uint32_t key)
{
    const std::uint32_t b = hashKey(key);
    t.load(b * 4);
    std::int32_t r = db.buckets[b];
    std::int32_t prev = -1;
    while (t.condBranch(r >= 0, BranchHint::Backward)) {
        Record &rec = db.records[static_cast<std::size_t>(r)];
        t.load(0x100000 + static_cast<Addr>(r) * sizeof(Record));
        if (t.condBranch(rec.key == key)) {
            if (t.condBranch(prev < 0)) {
                db.buckets[b] = rec.next;
                t.store(b * 4);
            } else {
                db.records[static_cast<std::size_t>(prev)].next =
                    rec.next;
                t.store(0x100000 +
                        static_cast<Addr>(prev) * sizeof(Record));
            }
            rec.live = false;
            db.freeList.push_back(r);
            t.alu(2);
            return;
        }
        prev = r;
        r = rec.next;
        t.alu(1);
    }
}

} // namespace

std::string
VortexKernel::name() const
{
    return "255.vortex";
}

std::string
VortexKernel::description() const
{
    return "hashed object-database insert/lookup/delete transactions";
}

void
VortexKernel::run(Tracer &t, std::uint64_t seed) const
{
    Rng rng(seed ^ 0x766f72ULL);
    for (;;) {
        Db db = makeDb();
        // The real benchmark runs its transactions in long phases
        // (build the database, then query it, then prune it), which
        // is what makes its branches so predictable: the action
        // dispatch and hit/miss tests run in long same-direction
        // streaks.
        for (unsigned phase = 0;
             t.condBranch(phase < 48, BranchHint::Backward); ++phase) {
            const unsigned action = phase % 3; // build/query/prune
            const unsigned txns = 1024;
            for (unsigned txn = 0;
                 t.condBranch(txn < txns, BranchHint::Backward);
                 ++txn) {
                // Strongly skewed hot-key pattern: database clients
                // hammer a small working set, so hit/miss tests and
                // chain walks see the same keys over and over.
                const auto key = static_cast<std::uint32_t>(
                    rng.nextZipf(keySpace, 1.2));
                t.alu(4); // marshal the transaction record
                if (t.condBranch(action == 0)) {
                    if (t.condBranch(dbFind(t, db, key) < 0))
                        dbInsert(t, db, key,
                                 static_cast<std::uint8_t>(key % 3));
                } else if (t.condBranch(action == 1)) {
                    // Lookup + schema dispatch on the record found.
                    const std::int32_t r = dbFind(t, db, key);
                    t.alu(2);
                    if (t.condBranch(r >= 0)) {
                        const std::uint8_t ty =
                            db.records[static_cast<std::size_t>(r)]
                                .type;
                        if (t.condBranch(ty == 0)) {
                            t.alu(4);
                        } else if (t.condBranch(ty == 1)) {
                            t.alu(5);
                        } else {
                            t.alu(3);
                        }
                    }
                } else {
                    // Prune a narrow key band; most keys survive.
                    if (t.condBranch((key & 31) == 0))
                        dbDelete(t, db, key);
                    else
                        t.alu(2);
                }
                t.alu(5); // commit bookkeeping
            }
        }
    }
}

} // namespace bpsim
