/**
 * @file
 * 256.bzip2 stand-in: block-sorting compression.
 *
 * bzip2's time goes into Burrows-Wheeler block sorting (quicksort
 * over rotations, with byte-comparison inner loops whose outcomes
 * depend on the data), then move-to-front and run-length coding.
 * Comparison branches in sorting are the classic example of
 * fundamentally data-dependent but partially history-correlated
 * branches: partition outcomes are near-random on random data and
 * skewed on structured data. We sort rotations of semi-compressible
 * blocks with an instrumented quicksort, then MTF+RLE the result.
 */

#include "workloads/kernels.hh"

#include <vector>

#include "common/rng.hh"

namespace bpsim {

namespace {

constexpr std::size_t blockSize = 2048;

std::vector<std::uint8_t>
makeBlock(Rng &rng)
{
    std::vector<std::uint8_t> b;
    b.reserve(blockSize);
    while (b.size() < blockSize) {
        if (!b.empty() && rng.nextBool(0.3)) {
            const std::size_t back =
                1 + rng.nextRange(std::min<std::size_t>(b.size(), 512));
            const std::size_t len = 3 + rng.nextRange(24);
            const std::size_t start = b.size() - back;
            for (std::size_t i = 0; i < len && b.size() < blockSize;
                 ++i)
                b.push_back(b[start + i % back]);
        } else {
            b.push_back(
                static_cast<std::uint8_t>(rng.nextZipf(64, 0.9)));
        }
    }
    return b;
}

/** Compare rotations @p a and @p b of @p data lexicographically. */
int
rotCompare(Tracer &t, const std::vector<std::uint8_t> &data,
           std::uint32_t a, std::uint32_t b)
{
    const std::size_t n = data.size();
    // Byte-compare loop with data-dependent exit; bzip2 caps the
    // scan depth for worst-case inputs, and so do we.
    for (std::size_t i = 0;
         t.condBranch(i < 64, BranchHint::Backward); ++i) {
        const std::uint8_t ca = data[(a + i) % n];
        const std::uint8_t cb = data[(b + i) % n];
        t.load((a + i) % n);
        t.load((b + i) % n);
        t.alu(4);
        if (t.condBranch(ca != cb))
            return ca < cb ? -1 : 1;
    }
    return 0;
}

void
quickSortRot(Tracer &t, const std::vector<std::uint8_t> &data,
             std::vector<std::uint32_t> &idx, int lo, int hi,
             unsigned depth)
{
    // Insertion sort for small ranges, like the real code.
    if (t.condBranch(hi - lo < 8 || depth > 24)) {
        for (int i = lo + 1;
             t.condBranch(i <= hi, BranchHint::Backward); ++i) {
            const std::uint32_t v = idx[static_cast<std::size_t>(i)];
            int j = i - 1;
            while (t.condBranch(
                j >= lo &&
                    rotCompare(t, data,
                               idx[static_cast<std::size_t>(j)], v) > 0,
                BranchHint::Backward)) {
                idx[static_cast<std::size_t>(j + 1)] =
                    idx[static_cast<std::size_t>(j)];
                t.store(0x10000 + static_cast<Addr>(j + 1) * 4);
                --j;
            }
            idx[static_cast<std::size_t>(j + 1)] = v;
            t.store(0x10000 + static_cast<Addr>(j + 1) * 4);
        }
        return;
    }

    const std::uint32_t pivot =
        idx[static_cast<std::size_t>((lo + hi) / 2)];
    int i = lo, j = hi;
    while (t.condBranch(i <= j, BranchHint::Backward)) {
        while (t.condBranch(
            rotCompare(t, data, idx[static_cast<std::size_t>(i)],
                       pivot) < 0,
            BranchHint::Backward))
            ++i;
        while (t.condBranch(
            rotCompare(t, data, idx[static_cast<std::size_t>(j)],
                       pivot) > 0,
            BranchHint::Backward))
            --j;
        if (t.condBranch(i <= j)) {
            std::swap(idx[static_cast<std::size_t>(i)],
                      idx[static_cast<std::size_t>(j)]);
            t.store(0x10000 + static_cast<Addr>(i) * 4);
            t.store(0x10000 + static_cast<Addr>(j) * 4);
            ++i;
            --j;
        }
    }
    if (t.condBranch(lo < j))
        quickSortRot(t, data, idx, lo, j, depth + 1);
    if (t.condBranch(i < hi))
        quickSortRot(t, data, idx, i, hi, depth + 1);
}

} // namespace

std::string
Bzip2Kernel::name() const
{
    return "256.bzip2";
}

std::string
Bzip2Kernel::description() const
{
    return "Burrows-Wheeler block sort with MTF and RLE coding";
}

void
Bzip2Kernel::run(Tracer &t, std::uint64_t seed) const
{
    Rng rng(seed ^ 0x627a32ULL);
    for (;;) {
        const auto block = makeBlock(rng);
        std::vector<std::uint32_t> idx(block.size());
        for (std::uint32_t i = 0; i < idx.size(); ++i)
            idx[i] = i;
        quickSortRot(t, block, idx, 0,
                     static_cast<int>(idx.size()) - 1, 0);

        // BWT output column.
        std::vector<std::uint8_t> bwt(block.size());
        for (std::size_t i = 0;
             t.condBranch(i < idx.size(), BranchHint::Backward); ++i) {
            bwt[i] = block[(idx[i] + block.size() - 1) % block.size()];
            t.load((idx[i] + block.size() - 1) % block.size());
            t.store(0x20000 + i);
        }

        // Move-to-front: the position-search loop is data dependent
        // but short on structured data (hot symbols stay in front).
        std::uint8_t mtf[64];
        for (unsigned i = 0; i < 64; ++i)
            mtf[i] = static_cast<std::uint8_t>(i);
        std::vector<std::uint8_t> mtfOut(bwt.size());
        for (std::size_t i = 0;
             t.condBranch(i < bwt.size(), BranchHint::Backward); ++i) {
            const std::uint8_t c = bwt[i] & 63;
            unsigned pos = 0;
            while (t.condBranch(mtf[pos] != c, BranchHint::Backward)) {
                ++pos;
                t.alu(1);
            }
            mtfOut[i] = static_cast<std::uint8_t>(pos);
            for (unsigned k = pos; k > 0; --k)
                mtf[k] = mtf[k - 1];
            mtf[0] = c;
            t.alu(5);
            t.store(0x30000 + i);
        }

        // Run-length coding of the MTF stream.
        std::size_t i = 0;
        while (t.condBranch(i < mtfOut.size(), BranchHint::Backward)) {
            std::size_t run = 1;
            while (t.condBranch(i + run < mtfOut.size() &&
                                    mtfOut[i + run] == mtfOut[i],
                                BranchHint::Backward)) {
                t.load(0x30000 + i + run);
                ++run;
            }
            if (t.condBranch(run >= 4)) {
                t.store(0x40000 + i);
                t.alu(2);
            } else {
                t.alu(1);
            }
            i += run;
        }
    }
}

} // namespace bpsim
