/**
 * @file
 * 252.eon stand-in: ray/sphere intersection casting.
 *
 * eon is the suite's outlier: a C++ probabilistic ray tracer with
 * long arithmetic sections, comparatively few and well-predictable
 * branches, and high IPC. We cast rays through a small scene of
 * spheres in fixed-point integer arithmetic: per-object loops with
 * fixed trip counts, a discriminant test that is biased (most rays
 * miss most spheres), and shading arithmetic between branches.
 */

#include "workloads/kernels.hh"

#include <cstdint>
#include <vector>

#include "common/rng.hh"

namespace bpsim {

namespace {

constexpr unsigned numSpheres = 16;
constexpr int fixOne = 1 << 10; // 10-bit fixed point

struct Sphere
{
    std::int64_t x, y, z;
    std::int64_t r2; // radius squared
    std::uint8_t material;
};

std::vector<Sphere>
makeScene(Rng &rng)
{
    std::vector<Sphere> scene(numSpheres);
    for (auto &s : scene) {
        s.x = rng.nextBetween(-64, 64) * fixOne;
        s.y = rng.nextBetween(-64, 64) * fixOne;
        s.z = rng.nextBetween(32, 256) * fixOne;
        const std::int64_t r = rng.nextBetween(4, 24) * fixOne;
        s.r2 = r * r;
        s.material = static_cast<std::uint8_t>(rng.nextRange(4));
    }
    return scene;
}

} // namespace

std::string
EonKernel::name() const
{
    return "252.eon";
}

std::string
EonKernel::description() const
{
    return "fixed-point ray/sphere intersection and shading";
}

void
EonKernel::run(Tracer &t, std::uint64_t seed) const
{
    Rng rng(seed ^ 0x656f6eULL);
    for (;;) {
        const auto scene = makeScene(rng);
        for (int py = 0; t.condBranch(py < 64, BranchHint::Backward);
             ++py) {
            for (int px = 0;
                 t.condBranch(px < 64, BranchHint::Backward); ++px) {
                // Primary ray direction (fixed point).
                const std::int64_t dx = (px - 32) * (fixOne / 32);
                const std::int64_t dy = (py - 32) * (fixOne / 32);
                const std::int64_t dz = fixOne;
                t.alu(4);

                std::int64_t nearest = INT64_MAX;
                unsigned hit = numSpheres;
                for (unsigned s = 0;
                     t.condBranch(s < numSpheres, BranchHint::Backward);
                     ++s) {
                    const Sphere &sp = scene[s];
                    t.load(s * sizeof(Sphere));
                    // Quadratic discriminant test, all integer math.
                    const std::int64_t oc_d =
                        (sp.x * dx + sp.y * dy + sp.z * dz) / fixOne;
                    t.mul();
                    t.alu(5);
                    const std::int64_t oc2 =
                        (sp.x * sp.x + sp.y * sp.y + sp.z * sp.z) /
                        fixOne;
                    t.alu(5);
                    const std::int64_t d2 =
                        (dx * dx + dy * dy + dz * dz) / fixOne;
                    t.alu(5);
                    const std::int64_t disc =
                        oc_d * oc_d / fixOne - d2 * (oc2 - sp.r2) /
                        fixOne;
                    t.mul();
                    t.alu(4);
                    // Biased: most rays miss most spheres.
                    if (t.condBranch(disc > 0)) {
                        const std::int64_t dist = oc_d - disc / 64;
                        if (t.condBranch(dist > 0 && dist < nearest)) {
                            nearest = dist;
                            hit = s;
                            t.alu(1);
                        }
                    }
                }

                // Shading: short material dispatch + arithmetic.
                if (t.condBranch(hit < numSpheres)) {
                    const Sphere &sp = scene[hit];
                    if (t.condBranch(sp.material == 0)) {
                        t.alu(6); // diffuse
                    } else if (t.condBranch(sp.material == 1)) {
                        t.mul(); // specular
                        t.alu(4);
                    } else {
                        t.alu(3); // emissive/flat
                    }
                    t.store(0x100000 + (py * 64 + px) * 4);
                } else {
                    t.alu(2); // background gradient
                    t.store(0x100000 + (py * 64 + px) * 4);
                }
            }
        }
    }
}

} // namespace bpsim
