/**
 * @file
 * 300.twolf stand-in: standard-cell placement/route annealing.
 *
 * twolf is the suite's hardest branch workload (the paper singles it
 * out: the multi-component predictor's quick and slow components
 * disagree 18.1% of the time on it). Its control flow mixes an
 * annealing accept/reject like vpr with much more irregular cost
 * evaluation: row-overlap penalties, conditional feasibility checks,
 * and short searches whose bounds depend on loaded coordinates. We
 * reproduce the row-based placement flavour: cells live in rows,
 * moves are intra/inter-row exchanges, and the cost couples
 * wirelength with pairwise overlap scans.
 */

#include "workloads/kernels.hh"

#include <cmath>
#include <cstdlib>
#include <vector>

#include "common/rng.hh"

namespace bpsim {

namespace {

constexpr unsigned numRows = 16;
constexpr unsigned cellsPerRow = 64;
constexpr unsigned numCells = numRows * cellsPerRow;

struct Layout
{
    std::vector<std::int32_t> x;      // cell x coordinate
    std::vector<std::uint8_t> row;    // cell row
    std::vector<std::uint8_t> width;  // cell width
    std::vector<std::uint16_t> mate;  // a "net partner" per cell
};

Layout
makeLayout(Rng &rng)
{
    Layout l;
    l.x.resize(numCells);
    l.row.resize(numCells);
    l.width.resize(numCells);
    l.mate.resize(numCells);
    for (unsigned c = 0; c < numCells; ++c) {
        l.x[c] = static_cast<std::int32_t>(rng.nextRange(1024));
        l.row[c] = static_cast<std::uint8_t>(c / cellsPerRow);
        l.width[c] = static_cast<std::uint8_t>(4 + rng.nextRange(12));
        l.mate[c] = static_cast<std::uint16_t>(rng.nextRange(numCells));
    }
    return l;
}

/** Wirelength + overlap cost of one cell against its row. */
long
cellCost(Tracer &t, const Layout &l, unsigned c)
{
    t.load(0x1000 + c * 4);
    t.load(0x2000 + l.mate[c] * 4);
    // Wirelength to the net partner; row mismatch adds a penalty.
    long cost = std::labs(static_cast<long>(l.x[c]) -
                          static_cast<long>(l.x[l.mate[c]]));
    t.alu(5);
    if (t.condBranch(l.row[c] != l.row[l.mate[c]])) {
        cost += 16 * std::labs(static_cast<long>(l.row[c]) -
                               static_cast<long>(l.row[l.mate[c]]));
        t.alu(2);
    }
    // Left/right neighbour comparison: essentially 50/50 on loaded
    // coordinates — one of twolf's hardest branch families.
    const unsigned row_base =
        static_cast<unsigned>(l.row[c]) * cellsPerRow;
    const unsigned mirror = row_base + (cellsPerRow - 1 - c % cellsPerRow);
    t.load(0x1000 + mirror * 4);
    if (t.condBranch(l.x[c] < l.x[mirror]))
        cost += 2;
    t.alu(3);

    // Overlap scan against a sample of row neighbours: irregular,
    // weakly biased comparisons on loaded coordinates.
    for (unsigned k = 0; t.condBranch(k < 4, BranchHint::Backward);
         ++k) {
        const unsigned o = row_base + (c * 7 + k * 13) % cellsPerRow;
        if (t.condBranch(o == c)) {
            t.alu(1);
            continue;
        }
        t.load(0x1000 + o * 4);
        const long dist = std::labs(static_cast<long>(l.x[c]) -
                                    static_cast<long>(l.x[o]));
        const long min_sep = (l.width[c] + l.width[o]) / 2;
        t.alu(5);
        // Cells pack tightly within rows, so the overlap test stays
        // genuinely ambiguous.
        if (t.condBranch(dist < min_sep * 8)) {
            cost += (min_sep * 8 - dist);
            t.alu(2);
            if (t.condBranch(dist < min_sep))
                cost += 64;
        }
    }
    return cost;
}

} // namespace

std::string
TwolfKernel::name() const
{
    return "300.twolf";
}

std::string
TwolfKernel::description() const
{
    return "row-based standard-cell placement with overlap penalties";
}

void
TwolfKernel::run(Tracer &t, std::uint64_t seed) const
{
    Rng rng(seed ^ 0x74776fULL);
    for (;;) {
        Layout l = makeLayout(rng);
        // twolf's schedule keeps the accept test in its hard
        // mid-temperature range for most of the run, which is what
        // makes it the suite's worst-predicted benchmark.
        double temperature = 96.0;
        while (t.condBranch(temperature > 24.0, BranchHint::Backward)) {
            for (unsigned move = 0;
                 t.condBranch(move < 384, BranchHint::Backward);
                 ++move) {
                const auto a =
                    static_cast<unsigned>(rng.nextRange(numCells));
                // Move kind: displace, intra-row swap, or inter-row
                // swap — a three-way data-dependent dispatch.
                const unsigned kind =
                    static_cast<unsigned>(rng.nextRange(3));
                unsigned b;
                if (t.condBranch(kind == 0)) {
                    b = a; // displacement: new random x
                } else if (t.condBranch(kind == 1)) {
                    b = (a / cellsPerRow) * cellsPerRow +
                        static_cast<unsigned>(
                            rng.nextRange(cellsPerRow));
                } else {
                    b = static_cast<unsigned>(rng.nextRange(numCells));
                }

                const long before =
                    cellCost(t, l, a) + (a == b ? 0 : cellCost(t, l, b));
                const std::int32_t old_xa = l.x[a];
                const std::uint8_t old_ra = l.row[a];
                if (t.condBranch(kind == 0)) {
                    l.x[a] = static_cast<std::int32_t>(
                        rng.nextRange(1024));
                    t.store(0x1000 + a * 4);
                } else {
                    std::swap(l.x[a], l.x[b]);
                    std::swap(l.row[a], l.row[b]);
                    t.store(0x1000 + a * 4);
                    t.store(0x1000 + b * 4);
                }
                const long after =
                    cellCost(t, l, a) + (a == b ? 0 : cellCost(t, l, b));
                const long delta = after - before;
                t.alu(2);

                const bool accept =
                    delta <= 0 ||
                    rng.nextDouble() <
                        std::exp(-static_cast<double>(delta) /
                                 temperature);
                // Reject path restores state: the hard branch.
                if (!t.condBranch(accept)) {
                    if (t.condBranch(kind == 0)) {
                        l.x[a] = old_xa;
                        l.row[a] = old_ra;
                        t.store(0x1000 + a * 4);
                    } else {
                        std::swap(l.x[a], l.x[b]);
                        std::swap(l.row[a], l.row[b]);
                        t.store(0x1000 + a * 4);
                        t.store(0x1000 + b * 4);
                    }
                }
                t.alu(2);
            }
            temperature *= 0.93;
            t.alu(3);
        }
    }
}

} // namespace bpsim
