/**
 * @file
 * 254.gap stand-in: arbitrary-precision integer arithmetic.
 *
 * GAP is a computer-algebra system; its hot loops are schoolbook
 * big-integer addition/multiplication and small-prime sieving —
 * long counted loops with highly predictable exits, carry-propagation
 * branches that are strongly biased, and very regular memory
 * streaming. It anchors the predictable end of the suite (the real
 * benchmark mispredicts only a few percent) and has high baseline
 * IPC, which makes it one of the benchmarks where even complex slow
 * predictors still look fine.
 */

#include "workloads/kernels.hh"

#include <vector>

#include "common/rng.hh"

namespace bpsim {

namespace {

using BigInt = std::vector<std::uint32_t>; // little-endian limbs

BigInt
makeBig(Rng &rng, unsigned limbs)
{
    BigInt b(limbs);
    // Limbs keep their top bits clear most of the time, as the
    // intermediate values of structured algebra do, so addition
    // carries are rare and the carry branch strongly biased — the
    // real gap's arithmetic behaves this way.
    for (auto &l : b)
        l = static_cast<std::uint32_t>(rng.next()) &
            (rng.nextBool(0.85) ? 0x0fffffffu : 0xffffffffu);
    if (b.back() == 0)
        b.back() = 1;
    return b;
}

BigInt
bigAdd(Tracer &t, const BigInt &a, const BigInt &b)
{
    BigInt r(std::max(a.size(), b.size()) + 1, 0);
    std::uint64_t carry = 0;
    for (std::size_t i = 0;
         t.condBranch(i < r.size() - 1, BranchHint::Backward); ++i) {
        std::uint64_t s = carry;
        if (t.condBranch(i < a.size())) {
            t.load(i * 4);
            s += a[i];
        }
        if (t.condBranch(i < b.size())) {
            t.load(0x4000 + i * 4);
            s += b[i];
        }
        r[i] = static_cast<std::uint32_t>(s);
        // Carry propagation is branchless arithmetic (carry = high
        // word), exactly as real bignum inner loops are written.
        carry = s >> 32;
        t.store(0x8000 + i * 4);
        t.alu(5);
    }
    r[r.size() - 1] = static_cast<std::uint32_t>(carry);
    while (t.condBranch(r.size() > 1 && r.back() == 0,
                        BranchHint::Backward))
        r.pop_back();
    return r;
}

BigInt
bigMul(Tracer &t, const BigInt &a, const BigInt &b)
{
    BigInt r(a.size() + b.size(), 0);
    for (std::size_t i = 0;
         t.condBranch(i < a.size(), BranchHint::Backward); ++i) {
        std::uint64_t carry = 0;
        t.load(i * 4);
        for (std::size_t j = 0;
             t.condBranch(j < b.size(), BranchHint::Backward); ++j) {
            t.load(0x4000 + j * 4);
            const std::uint64_t cur =
                static_cast<std::uint64_t>(r[i + j]) +
                static_cast<std::uint64_t>(a[i]) * b[j] + carry;
            r[i + j] = static_cast<std::uint32_t>(cur);
            carry = cur >> 32;
            t.mul();
            t.alu(4);
            t.store(0x8000 + (i + j) * 4);
        }
        r[i + b.size()] = static_cast<std::uint32_t>(carry);
    }
    while (t.condBranch(r.size() > 1 && r.back() == 0,
                        BranchHint::Backward))
        r.pop_back();
    return r;
}

} // namespace

std::string
GapKernel::name() const
{
    return "254.gap";
}

std::string
GapKernel::description() const
{
    return "big-integer add/multiply chains and small-prime sieving";
}

void
GapKernel::run(Tracer &t, std::uint64_t seed) const
{
    Rng rng(seed ^ 0x676170ULL);
    for (;;) {
        // Fibonacci-style big-int chain: f_{n+1} = f_n + f_{n-1},
        // with periodic multiplies, like group-order computations.
        // Operands are long (16+ limbs), so the limb loops dominate
        // and their exits are rare — gap's loops are long and
        // regular.
        BigInt a = makeBig(rng, 16);
        BigInt b = makeBig(rng, 18);
        for (unsigned n = 0;
             t.condBranch(n < 48 && a.size() < 96,
                          BranchHint::Backward);
             ++n) {
            BigInt c = bigAdd(t, a, b);
            if (t.condBranch(n % 8 == 7))
                c = bigMul(t, c, makeBig(rng, 2));
            a = std::move(b);
            b = std::move(c);
            t.alu(3);
        }

        // Small sieve of Eratosthenes: extremely regular branches.
        std::vector<std::uint8_t> sieve(2048, 1);
        for (std::size_t p = 2;
             t.condBranch(p * p < sieve.size(), BranchHint::Backward);
             ++p) {
            t.load(0x20000 + p);
            if (t.condBranch(sieve[p] != 0)) {
                for (std::size_t m = p * p;
                     t.condBranch(m < sieve.size(),
                                  BranchHint::Backward);
                     m += p) {
                    sieve[m] = 0;
                    t.alu(2);
                    t.store(0x20000 + m);
                }
            }
        }
    }
}

} // namespace bpsim
