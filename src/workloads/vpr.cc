/**
 * @file
 * 175.vpr stand-in: simulated-annealing FPGA placement.
 *
 * VPR's place phase proposes random cell swaps and accepts or
 * rejects them against an annealing schedule. The accept/reject
 * branch is the hallmark hard branch of this benchmark: near 50/50
 * at high temperature, increasingly biased as the temperature
 * drops. Cost evaluation walks the nets attached to each cell with
 * short data-dependent loops. We run the same loop structure over a
 * synthetic netlist on a 2-D grid.
 */

#include "workloads/kernels.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hh"

namespace bpsim {

namespace {

constexpr unsigned gridSide = 48;
constexpr unsigned numCells = 1024;
constexpr unsigned numNets = 1536;
constexpr unsigned maxPinsPerNet = 6;

struct Net
{
    std::vector<std::uint16_t> cells;
};

struct Placement
{
    std::vector<std::uint16_t> cellX;
    std::vector<std::uint16_t> cellY;
    std::vector<std::vector<std::uint16_t>> cellNets;
    std::vector<Net> nets;
};

Placement
makePlacement(Rng &rng)
{
    Placement p;
    p.cellX.resize(numCells);
    p.cellY.resize(numCells);
    p.cellNets.resize(numCells);
    for (unsigned c = 0; c < numCells; ++c) {
        p.cellX[c] = static_cast<std::uint16_t>(rng.nextRange(gridSide));
        p.cellY[c] = static_cast<std::uint16_t>(rng.nextRange(gridSide));
    }
    p.nets.resize(numNets);
    for (unsigned n = 0; n < numNets; ++n) {
        // Nets are overwhelmingly 4-pin with an occasional larger
        // one, so the pin loops have stable trip counts.
        const unsigned pins =
            rng.nextBool(0.9) ? 4 : 4 + rng.nextRange(maxPinsPerNet - 3);
        for (unsigned i = 0; i < pins; ++i) {
            // Mix local and global connectivity, like real netlists.
            const auto c = static_cast<std::uint16_t>(
                rng.nextBool(0.7) ? rng.nextZipf(numCells, 1.2)
                                  : rng.nextRange(numCells));
            p.nets[n].cells.push_back(c);
            p.cellNets[c].push_back(static_cast<std::uint16_t>(n));
        }
    }
    return p;
}

/** Half-perimeter wirelength of one net. */
long
netCost(Tracer &t, const Placement &p, unsigned n)
{
    int min_x = gridSide, max_x = -1, min_y = gridSide, max_y = -1;
    for (std::size_t i = 0;
         t.condBranch(i < p.nets[n].cells.size(), BranchHint::Backward);
         ++i) {
        const unsigned c = p.nets[n].cells[i];
        t.load(0x1000 + c * 4);
        t.load(0x1800 + c * 4);
        // Bounding-box updates compile to conditional moves — no
        // control dependence, as a modern compiler emits for min/max.
        min_x = std::min<int>(min_x, p.cellX[c]);
        max_x = std::max<int>(max_x, p.cellX[c]);
        min_y = std::min<int>(min_y, p.cellY[c]);
        max_y = std::max<int>(max_y, p.cellY[c]);
        t.alu(9);
    }
    return (max_x - min_x) + (max_y - min_y);
}

} // namespace

std::string
VprKernel::name() const
{
    return "175.vpr";
}

std::string
VprKernel::description() const
{
    return "simulated-annealing placement with swap accept/reject";
}

void
VprKernel::run(Tracer &t, std::uint64_t seed) const
{
    Rng rng(seed ^ 0x767072ULL);
    for (;;) {
        Placement p = makePlacement(rng);
        // Most annealing time is spent at low temperature where the
        // accept test is biased toward reject; only the early sweeps
        // see a near-50/50 accept branch, as in the real schedule.
        double temperature = 12.0;
        while (t.condBranch(temperature > 0.25, BranchHint::Backward)) {
            for (unsigned move = 0;
                 t.condBranch(move < 512, BranchHint::Backward); ++move) {
                const unsigned a = static_cast<unsigned>(
                    rng.nextRange(numCells));
                const unsigned b = static_cast<unsigned>(
                    rng.nextRange(numCells));
                t.load(0x1000 + a * 4);
                t.load(0x1000 + b * 4);
                if (t.condBranch(a == b)) {
                    t.alu(1);
                    continue;
                }

                // Cost delta: evaluate affected nets before/after.
                long before = 0;
                for (std::size_t i = 0;
                     t.condBranch(i < p.cellNets[a].size(),
                                  BranchHint::Backward);
                     ++i)
                    before += netCost(t, p, p.cellNets[a][i]);
                for (std::size_t i = 0;
                     t.condBranch(i < p.cellNets[b].size(),
                                  BranchHint::Backward);
                     ++i)
                    before += netCost(t, p, p.cellNets[b][i]);

                std::swap(p.cellX[a], p.cellX[b]);
                std::swap(p.cellY[a], p.cellY[b]);
                t.store(0x1000 + a * 4);
                t.store(0x1000 + b * 4);

                long after = 0;
                for (std::size_t i = 0;
                     t.condBranch(i < p.cellNets[a].size(),
                                  BranchHint::Backward);
                     ++i)
                    after += netCost(t, p, p.cellNets[a][i]);
                for (std::size_t i = 0;
                     t.condBranch(i < p.cellNets[b].size(),
                                  BranchHint::Backward);
                     ++i)
                    after += netCost(t, p, p.cellNets[b][i]);

                const long delta = after - before;
                t.alu(5);
                t.mul();
                // The annealing accept test: the archetypal
                // hard-to-predict branch of this benchmark.
                const bool accept =
                    delta <= 0 ||
                    rng.nextDouble() <
                        std::exp(-static_cast<double>(delta) /
                                 temperature);
                if (!t.condBranch(accept)) {
                    // Reject: swap back.
                    std::swap(p.cellX[a], p.cellX[b]);
                    std::swap(p.cellY[a], p.cellY[b]);
                    t.store(0x1000 + a * 4);
                    t.store(0x1000 + b * 4);
                }
                t.alu(3);
            }
            temperature *= 0.82;
            t.alu(4);
        }
    }
}

} // namespace bpsim
