/**
 * @file
 * Workload kernel interface.
 *
 * Each kernel is an execution-driven stand-in for one SPEC CPU2000
 * integer benchmark (the suite the paper evaluates on). A kernel
 * runs a real algorithm of the same character as its namesake —
 * LZ compression for gzip, simulated annealing for vpr/twolf,
 * recursive-descent parsing for parser, and so on — over
 * synthetically generated but data-dependent inputs, and emits every
 * dynamic instruction through a Tracer. See DESIGN.md §4 for why
 * this substitution preserves the behaviours the paper measures.
 */

#ifndef BPSIM_WORKLOADS_WORKLOAD_HH
#define BPSIM_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>

#include "common/types.hh"
#include "trace/trace_buffer.hh"
#include "trace/tracer.hh"

namespace bpsim {

/** Abstract workload kernel. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** SPECint-style name, e.g. "164.gzip". */
    virtual std::string name() const = 0;

    /** One-line description of the algorithm the kernel runs. */
    virtual std::string description() const = 0;

    /**
     * Run the kernel until the tracer's op budget unwinds it with
     * TraceLimit. Implementations loop forever, regenerating fresh
     * input data (from @p seed) each outer iteration.
     */
    virtual void run(Tracer &t, std::uint64_t seed) const = 0;
};

/**
 * Generate a trace of (at most) @p max_ops dynamic instructions from
 * @p w using @p seed. Deterministic: equal arguments produce equal
 * traces.
 */
TraceBuffer generateTrace(const Workload &w, Counter max_ops,
                          std::uint64_t seed);

} // namespace bpsim

#endif // BPSIM_WORKLOADS_WORKLOAD_HH
