/**
 * @file
 * 186.crafty stand-in: alpha-beta game-tree search.
 *
 * crafty (a chess engine) mixes bit-board manipulation with a deeply
 * recursive alpha-beta search. Its hardest branches are beta-cutoff
 * tests and move-ordering comparisons, whose outcomes depend on
 * evaluation scores; transposition-table probes add load-dependent
 * hit/miss branches. We run a negamax search with a transposition
 * table over a deterministic synthetic game: positions are 64-bit
 * states evolved by pseudo-moves, evaluated with bit tricks (popcount
 * chains) like a real bitboard engine.
 */

#include "workloads/kernels.hh"

#include <bit>
#include <cstdint>
#include <vector>

#include "common/rng.hh"

namespace bpsim {

namespace {

constexpr unsigned ttSize = 1 << 12;
constexpr int maxDepth = 5;

struct TtEntry
{
    std::uint64_t key;
    int score;
    std::uint8_t depth;
};

struct Game
{
    std::vector<TtEntry> tt;
    std::uint64_t nodes = 0;
};

/** Deterministic position evolution ("make move"). */
std::uint64_t
makeMove(std::uint64_t pos, unsigned move)
{
    std::uint64_t x = pos ^ (0x9e3779b97f4a7c15ULL * (move + 1));
    x ^= x >> 29;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 32;
    return x;
}

/** Bitboard-style static evaluation. */
int
evaluate(Tracer &t, std::uint64_t pos)
{
    t.alu(6); // popcount/mask chains of a bitboard evaluator
    // Piece-square and king-safety table lookups.
    t.load(0x40000 + (pos & 0x3f) * 8);
    t.alu(3);
    t.load(0x40400 + ((pos >> 32) & 0x3f) * 8);
    t.alu(3);
    const int material = std::popcount(pos & 0xffffffffULL) -
                         std::popcount(pos >> 32);
    const int mobility = std::popcount(pos & 0x00ff00ff00ff00ffULL) / 2;
    return material * 8 + mobility;
}

int
search(Tracer &t, Game &g, std::uint64_t pos, int depth, int alpha,
       int beta)
{
    ++g.nodes;
    if (t.condBranch(depth == 0))
        return evaluate(t, pos);

    // Transposition-table probe: load-dependent hit test.
    TtEntry &e = g.tt[pos % ttSize];
    t.load((pos % ttSize) * sizeof(TtEntry));
    if (t.condBranch(e.key == pos)) {
        if (t.condBranch(e.depth >= depth)) {
            t.alu(1);
            return e.score;
        }
    }

    // Number of pseudo-moves depends on the position. The search
    // code is specialized per ply in the real engine (root move
    // loop, full-width search, quiescence), so each depth gets its
    // own static branch sites — a realistic static working set with
    // depth-correlated behaviour.
    const auto ply_site = static_cast<std::uint32_t>(3000 + depth * 16);
    const unsigned num_moves = 8 + (pos & 7);
    int best = -32768;
    for (unsigned m = 0;
         t.condBranchAt(ply_site, m < num_moves, BranchHint::Backward);
         ++m) {
        const std::uint64_t child = makeMove(pos, m);
        t.alu(5); // make-move bitboard updates
        // Move-ordering heuristic: "captures" (bit test) first-class.
        if (t.condBranchAt(ply_site + 1, (child & 0xf0) == 0xf0))
            t.alu(3);
        // Move ordering works: earlier moves are statistically
        // better, so best-updates and beta cutoffs cluster at the
        // front of the move list (which is what makes a real
        // engine's search branches predictable).
        const int score =
            -search(t, g, child, depth - 1, -beta, -alpha) -
            static_cast<int>(m) * 3;
        t.alu(4); // unmake move
        if (t.condBranchAt(ply_site + 2, score > best)) {
            best = score;
            t.alu(1);
        }
        if (t.condBranchAt(ply_site + 3, score > alpha)) {
            alpha = score;
            t.alu(1);
        }
        // The beta cutoff: crafty's signature hard branch.
        if (t.condBranchAt(ply_site + 4, alpha >= beta))
            break;
    }

    e.key = pos;
    e.score = best;
    e.depth = static_cast<std::uint8_t>(depth);
    t.store((pos % ttSize) * sizeof(TtEntry));
    return best;
}

} // namespace

std::string
CraftyKernel::name() const
{
    return "186.crafty";
}

std::string
CraftyKernel::description() const
{
    return "negamax alpha-beta search with transposition table";
}

void
CraftyKernel::run(Tracer &t, std::uint64_t seed) const
{
    Rng rng(seed ^ 0x63726166ULL);
    for (;;) {
        Game g;
        g.tt.assign(ttSize, TtEntry{0, 0, 0});
        std::uint64_t root = rng.next();
        // Iterative deepening from a sequence of root positions.
        for (unsigned game = 0;
             t.condBranch(game < 16, BranchHint::Backward); ++game) {
            for (int d = 1;
                 t.condBranch(d <= maxDepth, BranchHint::Backward);
                 ++d) {
                search(t, g, root, d, -32768, 32767);
            }
            root = makeMove(root, static_cast<unsigned>(
                                      rng.nextRange(16)));
        }
    }
}

} // namespace bpsim
