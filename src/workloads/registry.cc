#include "workloads/registry.hh"

#include "workloads/kernels.hh"

namespace bpsim {

std::unique_ptr<Workload>
makeWorkload(const std::string &name)
{
    if (name == "164.gzip")
        return std::make_unique<GzipKernel>();
    if (name == "175.vpr")
        return std::make_unique<VprKernel>();
    if (name == "176.gcc")
        return std::make_unique<GccKernel>();
    if (name == "181.mcf")
        return std::make_unique<McfKernel>();
    if (name == "186.crafty")
        return std::make_unique<CraftyKernel>();
    if (name == "197.parser")
        return std::make_unique<ParserKernel>();
    if (name == "252.eon")
        return std::make_unique<EonKernel>();
    if (name == "253.perlbmk")
        return std::make_unique<PerlbmkKernel>();
    if (name == "254.gap")
        return std::make_unique<GapKernel>();
    if (name == "255.vortex")
        return std::make_unique<VortexKernel>();
    if (name == "256.bzip2")
        return std::make_unique<Bzip2Kernel>();
    if (name == "300.twolf")
        return std::make_unique<TwolfKernel>();
    return nullptr;
}

const std::vector<std::string> &
specint2000Names()
{
    static const std::vector<std::string> names = {
        "164.gzip", "175.vpr",     "176.gcc",  "181.mcf",
        "186.crafty", "197.parser", "252.eon",  "253.perlbmk",
        "254.gap",  "255.vortex",  "256.bzip2", "300.twolf",
    };
    return names;
}

std::vector<std::unique_ptr<Workload>>
makeSpecint2000()
{
    std::vector<std::unique_ptr<Workload>> v;
    for (const auto &n : specint2000Names())
        v.push_back(makeWorkload(n));
    return v;
}

} // namespace bpsim
