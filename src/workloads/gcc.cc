/**
 * @file
 * 176.gcc stand-in: expression-tree folding and peephole matching.
 *
 * gcc's branch behaviour is dominated by a very large static branch
 * working set: dispatch over tree/RTL node kinds and hundreds of
 * small pattern tests, most individually biased but numerous enough
 * to stress predictor capacity and the I-cache. We build random
 * expression trees, run a recursive constant-folding/simplification
 * pass with per-kind dispatch (each kind gets its own static branch
 * site via condBranchAt), then a peephole pass over a linear
 * instruction list with many independent pattern tests.
 */

#include "workloads/kernels.hh"

#include <vector>

#include "common/rng.hh"

namespace bpsim {

namespace {

constexpr unsigned numKinds = 40;
constexpr unsigned treePoolSize = 4096;

struct TreeNode
{
    std::uint8_t kind;
    std::int32_t value;
    std::int32_t left;
    std::int32_t right;
    bool constant;
};

struct Forest
{
    std::vector<TreeNode> pool;
    std::vector<std::int32_t> roots;
};

std::int32_t
buildTree(Forest &f, Rng &rng, unsigned depth, std::uint8_t parent_kind)
{
    const auto idx = static_cast<std::int32_t>(f.pool.size());
    TreeNode n{};
    if (depth == 0 || rng.nextBool(0.08)) {
        // Leaf: constant or "register". Leaves live almost entirely
        // at the bottom of the tree, so the leaf test correlates
        // with the traversal's recursion pattern.
        n.kind = static_cast<std::uint8_t>(rng.nextRange(4));
        n.constant = n.kind < 2;
        n.value = static_cast<std::int32_t>(rng.nextRange(1000));
        n.left = n.right = -1;
        f.pool.push_back(n);
        return idx;
    }
    // Child kinds derive from the parent's: real IR trees are
    // idiomatic (a PLUS tends to hang off a SET, a COMPARE under an
    // IF), which is what makes compiler dispatch predictable.
    n.kind = static_cast<std::uint8_t>(
        rng.nextBool(0.8)
            ? 4 + (parent_kind * 3 + depth) % (numKinds - 4)
            : 4 + rng.nextRange(numKinds - 4));
    f.pool.push_back(n);
    const std::int32_t l = buildTree(f, rng, depth - 1, n.kind);
    const std::int32_t r =
        rng.nextBool(0.85) ? buildTree(f, rng, depth - 1, n.kind) : -1;
    f.pool[idx].left = l;
    f.pool[idx].right = r;
    f.pool[idx].constant = false;
    return idx;
}

Forest
makeForest(Rng &rng)
{
    Forest f;
    f.pool.reserve(treePoolSize);
    while (f.pool.size() < treePoolSize) {
        f.roots.push_back(buildTree(
            f, rng, 2 + rng.nextRange(5),
            static_cast<std::uint8_t>(4 + rng.nextRange(8))));
    }
    return f;
}

/** Recursive constant folding with per-kind dispatch. */
std::int32_t
fold(Tracer &t, Forest &f, std::int32_t idx)
{
    TreeNode &n = f.pool[static_cast<std::size_t>(idx)];
    t.load(static_cast<Addr>(idx) * sizeof(TreeNode));
    t.alu(3); // unpack node fields

    if (t.condBranch(n.left < 0 && n.right < 0)) {
        t.alu(2);
        return n.value;
    }

    const std::int32_t lv = t.condBranch(n.left >= 0)
                                ? fold(t, f, n.left)
                                : 0;
    const std::int32_t rv = t.condBranch(n.right >= 0)
                                ? fold(t, f, n.right)
                                : 0;

    // Per-kind dispatch, as a compiled sparse switch: a short range
    // test tree narrows to a group, then each kind in the group has
    // its own static test site (mimicking gcc's giant switches,
    // which dominate its static branch working set).
    std::int32_t result = 0;
    bool handled = false;
    const std::uint8_t group = n.kind / 8; // 0..4
    for (std::uint8_t g = 0; g < numKinds / 8 && !handled; ++g) {
        t.alu(1);
        if (!t.condBranchAt(900u + g, group == g))
            continue;
        for (std::uint8_t k = g * 8; k < (g + 1u) * 8; ++k) {
            t.alu(1);
            if (!t.condBranchAt(1000u + k, n.kind == k))
                continue;
            switch (k % 6) {
              case 0:
                result = lv + rv;
                break;
              case 1:
                result = lv - rv;
                break;
              case 2:
                result = lv ^ rv;
                t.alu(1);
                break;
              case 3:
                result = (lv << 1) | (rv & 1);
                break;
              case 4:
                result = lv < rv ? lv : rv;
                t.alu(1);
                break;
              default:
                result = lv * 3 + rv;
                t.mul();
                break;
            }
            t.alu(4);
            handled = true;
            break;
        }
    }
    if (!t.condBranch(handled))
        result = lv;
    t.alu(3);

    // Algebraic simplifications: biased pattern-test branches.
    if (t.condBranch(rv == 0 && n.kind % 6 == 0)) {
        result = lv; // x + 0 => x
        t.alu(1);
    }
    if (t.condBranch(lv == rv && n.kind % 6 == 1)) {
        result = 0; // x - x => 0
        t.alu(1);
    }

    n.value = result;
    n.constant = true;
    t.store(static_cast<Addr>(idx) * sizeof(TreeNode));
    return result;
}

} // namespace

std::string
GccKernel::name() const
{
    return "176.gcc";
}

std::string
GccKernel::description() const
{
    return "tree constant folding and peephole passes with wide dispatch";
}

void
GccKernel::run(Tracer &t, std::uint64_t seed) const
{
    Rng rng(seed ^ 0x676363ULL);
    for (;;) {
        Forest f = makeForest(rng);

        // Pass 1: fold every tree.
        for (std::size_t r = 0;
             t.condBranch(r < f.roots.size(), BranchHint::Backward); ++r)
            fold(t, f, f.roots[r]);

        // Pass 2: peephole over a linear "instruction list" — many
        // independent, mostly-biased pattern tests, a large static
        // branch footprint with short inter-branch distances.
        // The instruction list comes from a Markov source: real RTL
        // streams repeat idioms (load-op-store, compare-branch), so
        // consecutive opcodes are correlated and the pattern tests
        // below run in recognizable sequences.
        std::vector<std::uint16_t> insns(2048);
        std::uint16_t istate = 0;
        for (auto &i : insns) {
            if (rng.nextBool(0.85))
                istate = static_cast<std::uint16_t>((istate + 1) % 24);
            else
                istate = static_cast<std::uint16_t>(
                    rng.nextRange(512));
            i = istate;
        }
        for (std::size_t i = 0;
             t.condBranch(i + 2 < insns.size(), BranchHint::Backward);
             ++i) {
            t.load(0x40000 + i * 2);
            const unsigned op = insns[i] & 31;
            // A spread of pattern tests, each its own static site.
            if (t.condBranchAt(2000, op == 0))
                t.alu(2);
            if (t.condBranchAt(2001, op == 1 && (insns[i + 1] & 31) == 1))
                t.alu(3);
            if (t.condBranchAt(2002, (insns[i] & 256) != 0))
                t.alu(1);
            if (t.condBranchAt(2003 + op, (insns[i + 1] & 64) != 0)) {
                insns[i + 1] ^= 64;
                t.store(0x40000 + (i + 1) * 2);
            }
            if (t.condBranchAt(2040 + op,
                               insns[i] % (op + 2) == 0))
                t.alu(3);
            t.alu(4);
        }
    }
}

} // namespace bpsim
