/**
 * @file
 * 253.perlbmk stand-in: regex matching with backtracking plus an
 * interpreter dispatch loop.
 *
 * perlbmk runs the Perl interpreter, whose branch behaviour mixes
 * opcode-dispatch indirection with the regex engine's backtracking
 * matcher. Matcher branches are state- and history-correlated over
 * long distances (whether an alternative fails here depends on what
 * matched many characters ago), which rewards long-history
 * predictors. We compile small patterns (literals, classes, stars,
 * alternations) into programs and run a backtracking matcher over
 * generated text, interleaved with a bytecode-ish dispatch loop.
 */

#include "workloads/kernels.hh"

#include <vector>

#include "common/rng.hh"

namespace bpsim {

namespace {

enum Op : std::uint8_t {
    OpChar,   ///< match a literal byte
    OpClass,  ///< match a character class (bitmask)
    OpAny,    ///< match any byte
    OpStar,   ///< zero-or-more of the next op (greedy)
    OpAlt,    ///< alternation: try body, else skip
    OpEnd,    ///< accept
};

struct Insn
{
    Op op;
    std::uint8_t arg;
    std::uint32_t classMask; // for OpClass: mask over 'a'..'z'
};

using Pattern = std::vector<Insn>;

Pattern
makePattern(Rng &rng, const std::vector<std::uint8_t> &text)
{
    // Patterns are derived from substrings of the text itself (the
    // common use of a regex over a log/genome/document): literal
    // prefixes frequently part-match, so the matcher recurses deep
    // and its compare/backtrack branches carry most of the action.
    Pattern p;
    const std::size_t anchor = rng.nextRange(text.size() - 16);
    const unsigned len = 4 + rng.nextRange(5);
    for (unsigned i = 0; i < len; ++i) {
        Insn in{};
        const std::uint8_t c = text[anchor + i];
        const unsigned kind = static_cast<unsigned>(rng.nextRange(10));
        if (kind < 6) {
            in.op = OpChar;
            in.arg = c;
        } else if (kind < 8) {
            in.op = OpClass;
            // Class containing c plus a few neighbours.
            in.classMask = (1u << (c - 'a')) |
                           (1u << ((c - 'a' + 1) % 26)) |
                           (1u << ((c - 'a' + 7) % 26));
        } else if (kind < 9) {
            in.op = OpStar;
            in.arg = c;
        } else {
            in.op = OpAlt;
            in.arg = c;
        }
        p.push_back(in);
    }
    p.push_back({OpEnd, 0, 0});
    return p;
}

std::vector<std::uint8_t>
makeText(Rng &rng)
{
    std::vector<std::uint8_t> text(4096);
    std::uint8_t prev = 'a';
    for (auto &c : text) {
        // Small-alphabet order-1 source: character tests stay
        // genuinely ambiguous, so the matcher backtracks often.
        prev = static_cast<std::uint8_t>(
            'a' + (prev - 'a' + 1 + rng.nextZipf(5, 0.7)) % 6);
        c = prev;
    }
    return text;
}

/** Backtracking matcher: pattern @p pi at text position @p ti. */
bool
matchHere(Tracer &t, const Pattern &p, const std::vector<std::uint8_t> &text,
          std::size_t pi, std::size_t ti, unsigned depth)
{
    if (t.condBranch(depth > 24))
        return false;
    const Insn &in = p[pi];
    t.load(0x8000 + pi * sizeof(Insn));
    t.alu(4); // interpreter dispatch + state save

    if (t.condBranch(in.op == OpEnd))
        return true;
    if (t.condBranch(ti >= text.size()))
        return false;

    t.load(ti);
    const std::uint8_t c = text[ti];

    if (t.condBranch(in.op == OpChar)) {
        if (t.condBranch(c == in.arg))
            return matchHere(t, p, text, pi + 1, ti + 1, depth + 1);
        return false;
    }
    if (t.condBranch(in.op == OpClass)) {
        const bool hit = (in.classMask >> (c - 'a')) & 1;
        t.alu(2);
        if (t.condBranch(hit))
            return matchHere(t, p, text, pi + 1, ti + 1, depth + 1);
        return false;
    }
    if (t.condBranch(in.op == OpAny))
        return matchHere(t, p, text, pi + 1, ti + 1, depth + 1);
    if (t.condBranch(in.op == OpStar)) {
        // Greedy star with backtracking: consume as many as
        // possible, then retreat until the rest matches.
        std::size_t n = ti;
        while (t.condBranch(n < text.size() && text[n] == in.arg,
                            BranchHint::Backward)) {
            t.load(n);
            ++n;
        }
        for (;;) {
            if (t.condBranch(
                    matchHere(t, p, text, pi + 1, n, depth + 1)))
                return true;
            if (t.condBranch(n == ti))
                return false;
            --n;
            t.alu(1);
        }
    }
    // OpAlt: try matching the alternative literal first.
    if (t.condBranch(c == in.arg)) {
        if (t.condBranch(
                matchHere(t, p, text, pi + 1, ti + 1, depth + 1)))
            return true;
    }
    return matchHere(t, p, text, pi + 1, ti, depth + 1);
}

} // namespace

std::string
PerlbmkKernel::name() const
{
    return "253.perlbmk";
}

std::string
PerlbmkKernel::description() const
{
    return "backtracking regex matching over generated text";
}

void
PerlbmkKernel::run(Tracer &t, std::uint64_t seed) const
{
    Rng rng(seed ^ 0x7065726cULL);
    for (;;) {
        const auto text = makeText(rng);
        for (unsigned pat = 0;
             t.condBranch(pat < 12, BranchHint::Backward); ++pat) {
            const Pattern p = makePattern(rng, text);
            unsigned matches = 0;
            // Interpreter-ish outer loop: scan every anchor.
            for (std::size_t ti = 0;
                 t.condBranch(ti < text.size(), BranchHint::Backward);
                 ti += 3) {
                t.alu(3); // opcode fetch/decode of the interpreter
                if (t.condBranch(matchHere(t, p, text, 0, ti, 0))) {
                    ++matches;
                    t.alu(4); // capture-group bookkeeping
                    t.store(0x10000 + matches * 4);
                }
                t.alu(3);
            }
        }
    }
}

} // namespace bpsim
