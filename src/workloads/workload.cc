#include "workloads/workload.hh"

#include <functional>

namespace bpsim {

TraceBuffer
generateTrace(const Workload &w, Counter max_ops, std::uint64_t seed)
{
    TraceBuffer buf;
    buf.reserve(max_ops);
    // Give each kernel a disjoint synthetic code and data region so
    // traces from different kernels never alias.
    const Addr code_base =
        0x400000 + (std::hash<std::string>{}(w.name()) & 0xff) * 0x100000;
    const Addr data_base = 0x10000000;
    Tracer t(buf, code_base, data_base, max_ops, seed);
    try {
        w.run(t, seed);
    } catch (const TraceLimit &) {
        // Expected: the op budget was reached mid-algorithm.
    }
    return buf;
}

} // namespace bpsim
