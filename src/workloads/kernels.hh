/**
 * @file
 * Declarations of the twelve SPECint-2000 stand-in kernels.
 *
 * Each class is defined in its own translation unit. See the
 * per-file comments for the algorithm each kernel runs and which
 * branch behaviours it contributes to the suite.
 */

#ifndef BPSIM_WORKLOADS_KERNELS_HH
#define BPSIM_WORKLOADS_KERNELS_HH

#include "workloads/workload.hh"

namespace bpsim {

#define BPSIM_DECLARE_KERNEL(Cls)                                      \
    class Cls : public Workload                                        \
    {                                                                  \
      public:                                                          \
        std::string name() const override;                             \
        std::string description() const override;                      \
        void run(Tracer &t, std::uint64_t seed) const override;        \
    }

BPSIM_DECLARE_KERNEL(GzipKernel);
BPSIM_DECLARE_KERNEL(VprKernel);
BPSIM_DECLARE_KERNEL(GccKernel);
BPSIM_DECLARE_KERNEL(McfKernel);
BPSIM_DECLARE_KERNEL(CraftyKernel);
BPSIM_DECLARE_KERNEL(ParserKernel);
BPSIM_DECLARE_KERNEL(EonKernel);
BPSIM_DECLARE_KERNEL(PerlbmkKernel);
BPSIM_DECLARE_KERNEL(GapKernel);
BPSIM_DECLARE_KERNEL(VortexKernel);
BPSIM_DECLARE_KERNEL(Bzip2Kernel);
BPSIM_DECLARE_KERNEL(TwolfKernel);

#undef BPSIM_DECLARE_KERNEL

} // namespace bpsim

#endif // BPSIM_WORKLOADS_KERNELS_HH
