/**
 * @file
 * 197.parser stand-in: dictionary lookup plus recursive-descent
 * sentence parsing.
 *
 * The link-grammar parser alternates dictionary hash probes with
 * deeply nested, grammar-directed control flow. Its branches are
 * strongly *history-correlated*: which production fires next depends
 * on the recent sequence of token classes, which is exactly the
 * pattern global-history predictors exploit. We generate a corpus
 * of sentences from a small, heavily skewed grammar and parse the
 * corpus in repeated passes (a dictionary batch job, like the real
 * benchmark's workload), so the token-class tests see recurring
 * grammatical patterns rather than fresh noise.
 */

#include "workloads/kernels.hh"

#include <vector>

#include "common/rng.hh"

namespace bpsim {

namespace {

enum Tok : std::uint8_t {
    TokDet,
    TokAdj,
    TokNoun,
    TokVerb,
    TokAdv,
    TokPrep,
    TokConj,
    TokEnd,
};

constexpr unsigned dictSize = 512;
constexpr unsigned corpusSentences = 96;
constexpr unsigned passesPerCorpus = 6;

struct Sentence
{
    std::vector<std::uint8_t> toks;
    std::vector<std::uint16_t> words; // dictionary ids
};

/** Generate one sentence from the grammar the parser expects. */
Sentence
makeSentence(Rng &rng)
{
    Sentence s;
    auto word = [&](Tok t) {
        s.toks.push_back(t);
        // Zipf-distributed vocabulary, like natural text.
        s.words.push_back(
            static_cast<std::uint16_t>(rng.nextZipf(4096, 1.1)));
    };
    auto np = [&]() {
        if (rng.nextBool(0.85))
            word(TokDet);
        if (rng.nextBool(0.3))
            word(TokAdj);
        word(TokNoun);
        if (rng.nextBool(0.15)) { // prepositional attachment
            word(TokPrep);
            word(TokDet);
            word(TokNoun);
        }
    };
    auto vp = [&]() {
        word(TokVerb);
        if (rng.nextBool(0.2))
            word(TokAdv);
        if (rng.nextBool(0.85))
            np();
    };
    np();
    vp();
    if (rng.nextBool(0.15)) { // conjoined clause
        word(TokConj);
        np();
        vp();
    }
    s.toks.push_back(TokEnd);
    s.words.push_back(0);
    return s;
}

/** Parser state: a cursor over the token stream. */
struct Cursor
{
    const Sentence *s;
    std::size_t i = 0;
    std::uint8_t tok() const { return s->toks[i]; }
};

/**
 * Chained-bucket dictionary probe. Chain depth is a deterministic
 * function of the word: frequent (low-id) words sit at the front of
 * their chains, as a real frequency-ordered dictionary would have.
 */
void
dictLookup(Tracer &t, std::uint16_t word)
{
    const unsigned bucket = word % dictSize;
    t.alu(3); // hash
    t.load(bucket * 8);
    // Frequent words sit at the head of their chains; only the rare
    // tail of the vocabulary walks one link.
    const unsigned chain = word < 3584 ? 0 : 1;
    unsigned step = 0;
    while (t.condBranch(step < chain, BranchHint::Backward)) {
        t.load(0x2000 + bucket * 64 + step * 8);
        t.alu(2);
        ++step;
    }
    t.alu(3); // morphology flags
}

bool parseNp(Tracer &t, Cursor &c);

bool
parseVp(Tracer &t, Cursor &c)
{
    if (!t.condBranch(c.tok() == TokVerb))
        return false;
    dictLookup(t, c.s->words[c.i]);
    ++c.i;
    t.alu(2);
    if (t.condBranch(c.tok() == TokAdv)) {
        dictLookup(t, c.s->words[c.i]);
        ++c.i;
    }
    t.alu(2);
    if (t.condBranch(c.tok() == TokDet || c.tok() == TokAdj ||
                     c.tok() == TokNoun))
        return parseNp(t, c);
    return true;
}

bool
parseNp(Tracer &t, Cursor &c)
{
    if (t.condBranch(c.tok() == TokDet)) {
        dictLookup(t, c.s->words[c.i]);
        ++c.i;
    }
    t.alu(2);
    if (t.condBranch(c.tok() == TokAdj)) {
        dictLookup(t, c.s->words[c.i]);
        ++c.i;
    }
    t.alu(1);
    if (!t.condBranch(c.tok() == TokNoun))
        return false;
    dictLookup(t, c.s->words[c.i]);
    ++c.i;
    t.alu(2);
    if (t.condBranch(c.tok() == TokPrep)) {
        ++c.i;
        if (t.condBranch(c.tok() == TokDet))
            ++c.i;
        if (t.condBranch(c.tok() == TokNoun)) {
            dictLookup(t, c.s->words[c.i]);
            ++c.i;
        }
    }
    t.alu(3); // build linkage node
    t.store(0x8000 + (c.i % 512) * 8);
    return true;
}

} // namespace

std::string
ParserKernel::name() const
{
    return "197.parser";
}

std::string
ParserKernel::description() const
{
    return "recursive-descent parsing with dictionary hash probes";
}

void
ParserKernel::run(Tracer &t, std::uint64_t seed) const
{
    Rng rng(seed ^ 0x706172ULL);
    for (;;) {
        std::vector<Sentence> corpus;
        corpus.reserve(corpusSentences);
        for (unsigned i = 0; i < corpusSentences; ++i)
            corpus.push_back(makeSentence(rng));

        for (unsigned pass = 0;
             t.condBranch(pass < passesPerCorpus, BranchHint::Backward);
             ++pass) {
            for (std::size_t si = 0;
                 t.condBranch(si < corpus.size(), BranchHint::Backward);
                 ++si) {
                Cursor c{&corpus[si], 0};
                bool ok = parseNp(t, c);
                t.alu(2);
                if (t.condBranch(ok))
                    ok = parseVp(t, c);
                t.alu(2);
                if (t.condBranch(ok && c.tok() == TokConj)) {
                    ++c.i;
                    ok = parseNp(t, c);
                    if (t.condBranch(ok))
                        ok = parseVp(t, c);
                }
                if (t.condBranch(!ok || c.tok() != TokEnd)) {
                    // Error-recovery scan: skip to end of sentence.
                    while (t.condBranch(c.tok() != TokEnd,
                                        BranchHint::Backward)) {
                        ++c.i;
                        t.alu(2);
                    }
                }
                t.alu(6); // emit linkage
            }
        }
    }
}

} // namespace bpsim
