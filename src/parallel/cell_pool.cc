#include "parallel/cell_pool.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "obs/span_trace.hh"

namespace bpsim::parallel {

namespace {

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

} // namespace

double
PoolStats::utilization() const
{
    const double capacity = wallMs * static_cast<double>(jobs);
    return capacity > 0.0 ? busyMs / capacity : 0.0;
}

void
PoolStats::publish(obs::MetricRegistry &reg,
                   const std::string &prefix) const
{
    reg.counter(prefix + ".cells_completed").set(cellsCompleted);
    reg.counter(prefix + ".runs").set(runs);
    reg.gauge(prefix + ".jobs").set(static_cast<double>(jobs));
    reg.gauge(prefix + ".max_queue_depth")
        .set(static_cast<double>(maxQueueDepth));
    reg.gauge(prefix + ".wall_ms").set(wallMs);
    reg.gauge(prefix + ".busy_ms").set(busyMs);
    reg.gauge(prefix + ".utilization").set(utilization());
    auto &hist = reg.histogram(prefix + ".cell_wall_ms");
    for (double ms : cellMs)
        hist.record(static_cast<std::uint64_t>(ms < 0.0 ? 0.0 : ms));
}

unsigned
hardwareJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

unsigned
envJobs()
{
    const char *env = std::getenv("BPSIM_JOBS");
    if (!env || *env == '\0')
        return 0;
    char *end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || v <= 0)
        return 0;
    return static_cast<unsigned>(v);
}

unsigned
resolveJobs(unsigned requested)
{
    if (requested > 0)
        return requested;
    if (const unsigned env = envJobs())
        return env;
    return hardwareJobs();
}

CellPool::CellPool(unsigned jobs, std::string label)
    : jobs_(resolveJobs(jobs)), label_(std::move(label))
{
    stats_.jobs = jobs_;
}

void
CellPool::runSerial(std::size_t count,
                    const std::function<void(std::size_t)> &compute,
                    const std::function<void(std::size_t)> &commit)
{
    for (std::size_t i = 0; i < count; ++i) {
        const auto t0 = Clock::now();
        {
            obs::SpanScope cellSpan("cell", label_, "cell", i);
            compute(i);
        }
        const double ms = msSince(t0);
        stats_.busyMs += ms;
        stats_.cellMs.push_back(ms);
        ++stats_.cellsCompleted;
        if (commit)
            commit(i);
    }
}

void
CellPool::run(std::size_t count,
              const std::function<void(std::size_t)> &compute,
              const std::function<void(std::size_t)> &commit)
{
    ++stats_.runs;
    const auto runStart = Clock::now();
    if (jobs_ <= 1 || count <= 1) {
        runSerial(count, compute, commit);
        stats_.wallMs += msSince(runStart);
        return;
    }

    if (count > jobs_)
        stats_.maxQueueDepth =
            std::max(stats_.maxQueueDepth, count - jobs_);

    struct Slot
    {
        bool ready = false; ///< guarded by mu
        double ms = 0.0;
        std::exception_ptr error;
    };
    std::vector<Slot> slots(count);
    std::mutex mu;
    std::condition_variable ready;
    std::atomic<std::size_t> next{0};
    std::atomic<bool> cancel{false};

    auto workerLoop = [&] {
        for (;;) {
            if (cancel.load(std::memory_order_relaxed))
                return;
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                return;
            Slot s;
            const auto t0 = Clock::now();
            try {
                obs::SpanScope cellSpan("cell", label_, "cell", i);
                compute(i);
            } catch (...) {
                s.error = std::current_exception();
            }
            s.ms = msSince(t0);
            s.ready = true;
            {
                std::lock_guard<std::mutex> lock(mu);
                slots[i] = std::move(s);
            }
            ready.notify_all();
        }
    };

    std::vector<std::thread> workers;
    const std::size_t nThreads =
        std::min<std::size_t>(jobs_, count);
    workers.reserve(nThreads);
    for (std::size_t t = 0; t < nThreads; ++t)
        workers.emplace_back(workerLoop);

    // In-order committer: the calling thread waits for each cell in
    // index order, so rows/metrics/checkpoints land in exactly the
    // serial sequence no matter how the workers interleave.
    std::exception_ptr failure;
    for (std::size_t i = 0; i < count && !failure; ++i) {
        Slot s;
        {
            std::unique_lock<std::mutex> lock(mu);
            if (!slots[i].ready) {
                obs::SpanScope waitSpan("commit_wait", label_, "cell",
                                        i);
                ready.wait(lock, [&] { return slots[i].ready; });
            }
            s = std::move(slots[i]);
        }
        if (s.error) {
            failure = s.error;
            break;
        }
        stats_.busyMs += s.ms;
        stats_.cellMs.push_back(s.ms);
        ++stats_.cellsCompleted;
        if (commit) {
            try {
                commit(i);
            } catch (...) {
                failure = std::current_exception();
            }
        }
    }

    if (failure)
        cancel.store(true, std::memory_order_relaxed);
    for (auto &w : workers)
        w.join();
    stats_.wallMs += msSince(runStart);
    if (failure)
        std::rethrow_exception(failure);
}

} // namespace bpsim::parallel
