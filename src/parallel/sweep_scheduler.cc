#include "parallel/sweep_scheduler.hh"

#include <algorithm>
#include <chrono>
#include <exception>
#include <utility>

#include "obs/span_trace.hh"

namespace bpsim::parallel {

namespace {

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

} // namespace

void
SweepSchedulerStats::publish(obs::MetricRegistry &reg,
                             const std::string &prefix) const
{
    reg.gauge(prefix + ".jobs").set(static_cast<double>(jobs));
    reg.counter(prefix + ".cells").set(cells);
    reg.counter(prefix + ".steals").set(steals);
    reg.gauge(prefix + ".peak_active_queues")
        .set(static_cast<double>(peakActiveQueues));
}

SweepScheduler::SweepScheduler(unsigned jobs)
    : jobs_(resolveJobs(jobs))
{
    workers_.reserve(jobs_);
    for (unsigned t = 0; t < jobs_; ++t)
        workers_.emplace_back([this, t] { workerLoop(t); });
}

SweepScheduler::~SweepScheduler()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    work_.notify_all();
    for (auto &w : workers_)
        w.join();
}

SweepSchedulerStats
SweepScheduler::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    SweepSchedulerStats s;
    s.jobs = jobs_;
    s.cells = cells_;
    s.steals = steals_;
    s.peakActiveQueues = peakActiveQueues_;
    return s;
}

SweepScheduler::QueuePtr
SweepScheduler::addQueue(std::string label)
{
    auto q = std::make_shared<Queue>();
    q->label = std::move(label);
    std::lock_guard<std::mutex> lock(mu_);
    queues_.push_back(q);
    return q;
}

void
SweepScheduler::removeQueue(const QueuePtr &q)
{
    std::lock_guard<std::mutex> lock(mu_);
    queues_.erase(std::remove(queues_.begin(), queues_.end(), q),
                  queues_.end());
}

SweepProgress
SweepScheduler::progress() const
{
    std::lock_guard<std::mutex> lock(mu_);
    SweepProgress p;
    p.jobs = jobs_;
    p.cellsDone = 0;
    for (const auto &q : queues_) {
        SweepQueueProgress qp;
        qp.label = q->label;
        qp.enqueued = q->enqueued;
        qp.done = q->done;
        qp.pending = q->tasks.size();
        qp.inFlight = q->inFlight;
        p.busyWorkers += q->inFlight;
        p.queues.push_back(std::move(qp));
    }
    // cells_ counts claims, including cells still in flight; "done"
    // for the human-facing meter means finished.
    Counter inFlight = 0;
    for (const auto &q : queues_)
        inFlight += q->inFlight;
    p.cellsDone = cells_ >= inFlight ? cells_ - inFlight : 0;
    return p;
}

void
SweepScheduler::enqueue(Queue &q,
                        std::vector<std::function<void()>> tasks)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        q.enqueued += tasks.size();
        for (auto &t : tasks)
            q.tasks.push_back(std::move(t));
        std::size_t active = 0;
        for (const auto &qp : queues_)
            if (!qp->tasks.empty() || qp->inFlight > 0)
                ++active;
        peakActiveQueues_ = std::max(peakActiveQueues_, active);
    }
    work_.notify_all();
}

std::size_t
SweepScheduler::cancelPending(Queue &q)
{
    std::lock_guard<std::mutex> lock(mu_);
    const std::size_t dropped = q.tasks.size();
    q.tasks.clear();
    return dropped;
}

void
SweepScheduler::drain(Queue &q)
{
    std::unique_lock<std::mutex> lock(mu_);
    idle_.wait(lock,
               [&] { return q.tasks.empty() && q.inFlight == 0; });
}

SweepScheduler::QueuePtr
SweepScheduler::pickLocked(const QueuePtr &served) const
{
    if (served && !served->tasks.empty())
        return served;
    QueuePtr best;
    for (const auto &q : queues_)
        if (!q->tasks.empty() &&
            (!best || q->tasks.size() > best->tasks.size()))
            best = q;
    return best;
}

void
SweepScheduler::workerLoop(unsigned index)
{
    obs::SpanRecorder::nameThisThread("worker " +
                                      std::to_string(index));
    std::unique_lock<std::mutex> lock(mu_);
    QueuePtr served;
    for (;;) {
        QueuePtr q = pickLocked(served);
        if (!q) {
            if (stop_)
                return;
            // An empty-deque wait is exactly the idle gap the
            // timeline should show; recording is two thread-local
            // stores, so doing it with mu_ held is harmless.
            if (obs::SpanRecorder *rec = obs::SpanRecorder::current()) {
                const std::uint64_t t0 = rec->nowNs();
                work_.wait(lock);
                rec->span("sched", "idle", t0, rec->nowNs() - t0);
            } else {
                work_.wait(lock);
            }
            continue;
        }
        if (served && q != served) {
            ++steals_;
            obs::spanInstant("steal", q->label);
        }
        served = q;
        auto task = std::move(q->tasks.front());
        q->tasks.pop_front();
        ++q->inFlight;
        ++cells_;
        lock.unlock();
        task();
        lock.lock();
        ++q->done;
        if (--q->inFlight == 0 && q->tasks.empty())
            idle_.notify_all();
    }
}

SweepPool::SweepPool(SweepScheduler &scheduler, std::string label)
    : CellPool(scheduler.jobs()),
      sched_(scheduler),
      queue_(scheduler.addQueue(std::move(label)))
{
}

SweepPool::~SweepPool()
{
    // run() always drains before returning, so the deque is idle.
    sched_.removeQueue(queue_);
}

void
SweepPool::run(std::size_t count,
               const std::function<void(std::size_t)> &compute,
               const std::function<void(std::size_t)> &commit)
{
    ++stats_.runs;
    const auto runStart = Clock::now();
    if (count == 0) {
        stats_.wallMs += msSince(runStart);
        return;
    }
    // Same backlog accounting as a standalone CellPool at this
    // worker budget, so the published gauges stay comparable.
    if (jobs() > 1 && count > jobs())
        stats_.maxQueueDepth =
            std::max(stats_.maxQueueDepth, count - jobs());

    struct Slot
    {
        bool ready = false; ///< guarded by st.mu
        double ms = 0.0;
        std::exception_ptr error;
    };
    struct RunState
    {
        std::mutex mu;
        std::condition_variable ready;
        std::vector<Slot> slots;
    };
    RunState st;
    st.slots.resize(count);

    // The enqueued closures reference st/compute on this frame; run()
    // never returns before every claimed task finished (drain below),
    // and cancelled tasks are dropped unexecuted.
    std::vector<std::function<void()>> tasks;
    tasks.reserve(count);
    const std::string &label = queue_->label;
    for (std::size_t i = 0; i < count; ++i)
        tasks.push_back([i, &st, &compute, &label] {
            Slot s;
            const auto t0 = Clock::now();
            try {
                obs::SpanScope cellSpan("cell", label, "cell", i);
                compute(i);
            } catch (...) {
                s.error = std::current_exception();
            }
            s.ms = msSince(t0);
            s.ready = true;
            {
                std::lock_guard<std::mutex> lock(st.mu);
                st.slots[i] = std::move(s);
            }
            st.ready.notify_all();
        });
    sched_.enqueue(*queue_, std::move(tasks));

    // In-order committer on the artifact's driver thread — the same
    // loop a standalone CellPool runs, against scheduler-fed slots.
    std::exception_ptr failure;
    for (std::size_t i = 0; i < count && !failure; ++i) {
        Slot s;
        {
            std::unique_lock<std::mutex> lock(st.mu);
            if (!st.slots[i].ready) {
                // The driver is stalled on an out-of-order cell —
                // the commit-order wait the timeline attributes.
                obs::SpanScope waitSpan("commit_wait", label, "cell",
                                        i);
                st.ready.wait(lock,
                              [&] { return st.slots[i].ready; });
            }
            s = std::move(st.slots[i]);
        }
        if (s.error) {
            failure = s.error;
            break;
        }
        stats_.busyMs += s.ms;
        stats_.cellMs.push_back(s.ms);
        ++stats_.cellsCompleted;
        if (commit) {
            try {
                commit(i);
            } catch (...) {
                failure = std::current_exception();
            }
        }
    }

    if (failure)
        sched_.cancelPending(*queue_);
    sched_.drain(*queue_);
    stats_.wallMs += msSince(runStart);
    if (failure)
        std::rethrow_exception(failure);
}

} // namespace bpsim::parallel
