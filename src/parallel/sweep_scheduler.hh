/**
 * @file
 * Cross-artifact work stealing for one-process sweeps (bpsweep).
 *
 * A SweepScheduler owns the process's worker threads. Each artifact
 * participating in the sweep gets a SweepPool — a CellPool whose
 * run() enqueues its cells onto the artifact's own deque inside the
 * scheduler instead of spawning private workers. Workers are sticky:
 * a worker keeps draining the deque it last served (warm predictor
 * code, warm traces) and steals from the deque with the most pending
 * cells only when its own runs dry, so long-pole artifacts (fig7's
 * 576 timing cells) keep every core busy while short ones drain.
 *
 * Determinism is inherited from the CellPool contract, per artifact:
 * compute(i) runs on whichever worker claims the cell, commit(i)
 * runs on the artifact's driver thread in strict index order. Which
 * worker computed a cell, and in which global interleaving, is
 * invisible to the committed rows — so each artifact's RunReport is
 * byte-identical to its standalone `--jobs N` run (the report-diff
 * gate in CI holds this).
 *
 * Exception semantics also match CellPool exactly: a compute or
 * commit failure cancels the artifact's unclaimed cells, waits out
 * its in-flight ones, and rethrows the lowest-index failure. Other
 * artifacts sharing the scheduler are unaffected.
 *
 * Observability: when a flight recorder is installed
 * (obs::SpanRecorder::install, bpsweep --timeline) the workers name
 * their timeline tracks, record an idle span for every empty-deque
 * wait and a steal instant for every deque switch, and SweepPool
 * wraps each cell compute in a span tagged artifact + cell index.
 * None of it is observable to the committed rows; without a recorder
 * each site is a branch on a null pointer.
 *
 * Lifetime: every SweepPool must be destroyed before its scheduler.
 */

#ifndef BPSIM_PARALLEL_SWEEP_SCHEDULER_HH
#define BPSIM_PARALLEL_SWEEP_SCHEDULER_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/types.hh"
#include "obs/metrics.hh"
#include "parallel/cell_pool.hh"

namespace bpsim::parallel {

/** Aggregate scheduler statistics (across all participants). */
struct SweepSchedulerStats
{
    unsigned jobs = 1;     ///< global worker budget
    Counter cells = 0;     ///< cells executed by the workers
    Counter steals = 0;    ///< cells taken after switching deques
    /** Most participant deques that simultaneously held work. */
    std::size_t peakActiveQueues = 0;

    /** Export as `<prefix>.*` gauges/counters. */
    void publish(obs::MetricRegistry &reg,
                 const std::string &prefix = "sweep.scheduler") const;
};

/** Point-in-time view of one participant's deque (for live progress
 *  display; values race the workers and are only for humans). */
struct SweepQueueProgress
{
    std::string label;
    Counter enqueued = 0;     ///< cells ever enqueued on this deque
    Counter done = 0;         ///< cells finished on this deque
    std::size_t pending = 0;  ///< enqueued, not yet claimed
    std::size_t inFlight = 0; ///< claimed, not yet finished
};

/** Point-in-time view of the whole scheduler. */
struct SweepProgress
{
    unsigned jobs = 1;            ///< worker budget
    std::size_t busyWorkers = 0;  ///< workers executing a cell now
    Counter cellsDone = 0;        ///< cells finished, all deques ever
    std::vector<SweepQueueProgress> queues; ///< live deques only
};

class SweepPool;

/** Shared worker pool with per-participant deques; see file
 *  comment. */
class SweepScheduler
{
  public:
    /** @param jobs Global worker budget; 0 resolves via
     *  resolveJobs() (--jobs / BPSIM_JOBS / hardware). */
    explicit SweepScheduler(unsigned jobs = 0);

    SweepScheduler(const SweepScheduler &) = delete;
    SweepScheduler &operator=(const SweepScheduler &) = delete;

    /** Joins the workers; all SweepPools must be gone by now. */
    ~SweepScheduler();

    unsigned jobs() const { return jobs_; }

    /** Snapshot of the aggregate counters. */
    SweepSchedulerStats stats() const;

    /** Racy-but-consistent snapshot for live progress display. */
    SweepProgress progress() const;

  private:
    friend class SweepPool;

    /** One participant's deque. Guarded by the scheduler mutex. */
    struct Queue
    {
        std::string label;
        std::deque<std::function<void()>> tasks;
        std::size_t inFlight = 0; ///< claimed, not yet finished
        Counter enqueued = 0;     ///< cells ever enqueued
        Counter done = 0;         ///< cells finished
    };
    using QueuePtr = std::shared_ptr<Queue>;

    QueuePtr addQueue(std::string label);
    void removeQueue(const QueuePtr &q);
    void enqueue(Queue &q, std::vector<std::function<void()>> tasks);
    /** Drop @p q's unclaimed tasks; returns how many were dropped. */
    std::size_t cancelPending(Queue &q);
    /** Block until @p q has no pending or in-flight tasks. */
    void drain(Queue &q);

    void workerLoop(unsigned index);
    /** Next deque to serve: the sticky one while it has work, else
     *  the one with the most pending cells (the long pole). Must be
     *  called with mu_ held; nullptr when everything is empty. */
    QueuePtr pickLocked(const QueuePtr &served) const;

    mutable std::mutex mu_;
    std::condition_variable work_; ///< workers: new tasks / stop
    std::condition_variable idle_; ///< drivers: a queue drained
    std::vector<QueuePtr> queues_;
    std::vector<std::thread> workers_;
    unsigned jobs_;
    bool stop_ = false;
    Counter cells_ = 0;
    Counter steals_ = 0;
    std::size_t peakActiveQueues_ = 0;
};

/**
 * A CellPool view onto one participant's deque of a SweepScheduler.
 * Drop-in for every suite helper taking a CellPool*: jobs() reports
 * the scheduler's global budget, run() keeps the CellPool commit
 * order and exception contract, and stats() accumulates the same
 * deterministic fields (cellsCompleted/runs/jobs/maxQueueDepth) a
 * standalone CellPool at the same budget would report.
 *
 * Unlike CellPool, cells always execute on the scheduler's workers —
 * even a 1-cell run and even at jobs == 1, where the single global
 * worker serializes the whole sweep. Must not outlive the scheduler.
 */
class SweepPool final : public CellPool
{
  public:
    SweepPool(SweepScheduler &scheduler, std::string label);
    ~SweepPool() override;

    void run(std::size_t count,
             const std::function<void(std::size_t)> &compute,
             const std::function<void(std::size_t)> &commit =
                 {}) override;

  private:
    SweepScheduler &sched_;
    SweepScheduler::QueuePtr queue_;
};

} // namespace bpsim::parallel

#endif // BPSIM_PARALLEL_SWEEP_SCHEDULER_HH
