/**
 * @file
 * Deterministic task-pool execution of suite cells.
 *
 * Every reproduction artifact walks a (predictor x budget x workload)
 * grid whose cells are embarrassingly parallel: each cell constructs
 * its own predictor, reads a shared immutable trace and produces one
 * RunReport row. The CellPool runs those cells on N worker threads
 * while keeping every observable output identical to a serial run:
 *
 *  - cells are enumerated with stable indices [0, count);
 *  - compute(i) runs concurrently on the workers and must only write
 *    cell-private state (its result slot);
 *  - commit(i) runs on the *calling* thread in strict index order, so
 *    report rows, metric publication and manifest checkpoints happen
 *    in exactly the serial sequence.
 *
 * With jobs == 1 (or a single cell) no threads are spawned at all —
 * compute/commit alternate inline, byte-for-byte the serial code path.
 * A compute or commit failure cancels the remaining unclaimed cells,
 * joins the workers and rethrows the first failure in index order,
 * matching where a serial loop would have stopped.
 */

#ifndef BPSIM_PARALLEL_CELL_POOL_HH
#define BPSIM_PARALLEL_CELL_POOL_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "obs/metrics.hh"

namespace bpsim::parallel {

/**
 * Accumulated execution statistics of a CellPool, across every run()
 * it has served. jobs / cellsCompleted / runs / maxQueueDepth are
 * deterministic for a given campaign; the wall-clock figures are not
 * (and therefore are only ever published into bench-level reports,
 * never compared by the determinism gates).
 */
struct PoolStats
{
    unsigned jobs = 1;          ///< worker budget of the pool
    Counter cellsCompleted = 0; ///< compute() calls that finished OK
    Counter runs = 0;           ///< run() invocations served
    /** Largest backlog beyond the worker budget a run started with
     *  (cells that had to queue behind a busy worker). */
    std::size_t maxQueueDepth = 0;
    double wallMs = 0.0; ///< total wall time inside run()
    double busyMs = 0.0; ///< summed per-cell compute wall time
    /** Per-cell compute wall times, in completion-commit order. */
    std::vector<double> cellMs;

    /** busyMs / (wallMs * jobs): 1.0 = every worker always busy. */
    double utilization() const;

    /** Export as `<prefix>.*` gauges/counters/histograms. */
    void publish(obs::MetricRegistry &reg,
                 const std::string &prefix = "parallel.pool") const;
};

/** max(1, std::thread::hardware_concurrency()). */
unsigned hardwareJobs();

/** Parse BPSIM_JOBS; 0 when unset or not a positive integer. */
unsigned envJobs();

/**
 * Worker budget to use for @p requested: a positive request wins,
 * otherwise BPSIM_JOBS, otherwise the hardware concurrency.
 */
unsigned resolveJobs(unsigned requested);

/** Runs indexed cells with deterministic commit order; see file
 *  comment. run() is virtual so executors with a different worker
 *  organization (the cross-artifact SweepPool in sweep_scheduler.hh)
 *  can slot into every suite helper that takes a CellPool*. */
class CellPool
{
  public:
    /** @param jobs Worker budget; 0 resolves via resolveJobs().
     *  @param label Name cell spans carry when a flight recorder
     *  (obs::SpanRecorder) is installed; typically the artifact. */
    explicit CellPool(unsigned jobs = 0, std::string label = "pool");

    CellPool(const CellPool &) = delete;
    CellPool &operator=(const CellPool &) = delete;

    virtual ~CellPool() = default;

    unsigned jobs() const { return jobs_; }
    const std::string &label() const { return label_; }

    /**
     * Execute @p compute for every index in [0, @p count) across the
     * workers, invoking @p commit (when non-empty) on the calling
     * thread in strict index order as results become ready. Either
     * callback throwing cancels outstanding cells and rethrows the
     * lowest-index failure after the workers are joined.
     */
    virtual void run(std::size_t count,
                     const std::function<void(std::size_t)> &compute,
                     const std::function<void(std::size_t)> &commit = {});

    /** Stats accumulated over every run() so far. */
    const PoolStats &stats() const { return stats_; }

  protected:
    PoolStats stats_;

  private:
    void runSerial(std::size_t count,
                   const std::function<void(std::size_t)> &compute,
                   const std::function<void(std::size_t)> &commit);

    unsigned jobs_;
    std::string label_;
};

} // namespace bpsim::parallel

#endif // BPSIM_PARALLEL_CELL_POOL_HH
