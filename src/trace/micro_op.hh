/**
 * @file
 * The dynamic instruction record consumed by predictors and the
 * timing simulator.
 *
 * Traces are execution-driven: workload kernels (src/workloads) run
 * real algorithms and emit one MicroOp per dynamic instruction
 * through a Tracer. Predictor-accuracy runs look only at conditional
 * branches; the timing simulator consumes every record.
 */

#ifndef BPSIM_TRACE_MICRO_OP_HH
#define BPSIM_TRACE_MICRO_OP_HH

#include <cstdint>

#include "common/types.hh"

namespace bpsim {

/** Dynamic instruction classes (SPECint-flavoured integer mix). */
enum class InstClass : std::uint8_t {
    IntAlu,     ///< single-cycle integer op
    IntMul,     ///< multi-cycle integer multiply/divide
    Load,       ///< memory read
    Store,      ///< memory write
    CondBranch, ///< conditional direct branch (the predictor's prey)
    UncondBranch, ///< unconditional jump/call/return
};

/** True for either branch class. */
constexpr bool
isBranch(InstClass c)
{
    return c == InstClass::CondBranch || c == InstClass::UncondBranch;
}

/** True for loads and stores. */
constexpr bool
isMemory(InstClass c)
{
    return c == InstClass::Load || c == InstClass::Store;
}

/**
 * One dynamic instruction.
 *
 * Register identifiers are synthetic architectural registers in
 * [1, 63]; 0 means "no register". @c extra carries the effective
 * address for memory ops and the (taken-path) target for branches.
 */
struct MicroOp
{
    Addr pc = 0;
    Addr extra = 0;
    InstClass cls = InstClass::IntAlu;
    bool taken = false;   ///< branch outcome (conditional branches)
    std::uint8_t dst = 0;
    std::uint8_t srcA = 0;
    std::uint8_t srcB = 0;
};

} // namespace bpsim

#endif // BPSIM_TRACE_MICRO_OP_HH
