/**
 * @file
 * In-memory dynamic trace storage and iteration.
 *
 * A trace is generated once per (workload, seed, length) and then
 * replayed against many predictor configurations, mirroring the
 * paper's methodology where every predictor sees the same SPECint
 * instruction stream.
 */

#ifndef BPSIM_TRACE_TRACE_BUFFER_HH
#define BPSIM_TRACE_TRACE_BUFFER_HH

#include <cassert>
#include <cstddef>
#include <vector>

#include "common/types.hh"
#include "trace/micro_op.hh"

namespace bpsim {

/** One conditional branch, dense for accuracy replay. */
struct BranchRecord
{
    Addr pc = 0;
    bool taken = false;
};

/** A replayable buffer of dynamic instructions. */
class TraceBuffer
{
  public:
    TraceBuffer() = default;

    /** Reserve capacity for @p ops instructions up front. */
    void reserve(std::size_t ops) { ops_.reserve(ops); }

    /** Append one instruction. */
    void
    push(const MicroOp &op)
    {
        ops_.push_back(op);
        if (op.cls == InstClass::CondBranch) {
            branches_.push_back({op.pc, op.taken});
            ++condBranches_;
        }
    }

    /** Number of dynamic instructions. */
    std::size_t size() const { return ops_.size(); }
    bool empty() const { return ops_.empty(); }

    /** Number of dynamic conditional branches. */
    Counter condBranches() const { return condBranches_; }

    /** Dynamic conditional-branch density (branches / instruction). */
    double
    branchDensity() const
    {
        return ops_.empty() ? 0.0
                            : static_cast<double>(condBranches_) /
                                  static_cast<double>(ops_.size());
    }

    const MicroOp &operator[](std::size_t i) const { return ops_[i]; }

    /**
     * Mutable record access, for fault injection (src/robust). The
     * caller must not change @c cls — the cached conditional-branch
     * count assumes the instruction mix is fixed. Marks the branch
     * view stale; the mutator must call rebuildBranchView() before
     * the buffer is replayed or shared again.
     */
    MicroOp &
    mutableOp(std::size_t i)
    {
        branchesDirty_ = true;
        return ops_[i];
    }

    /**
     * Recompute the dense branch index after mutation through
     * mutableOp(). Must be called from a single thread at
     * trace-publish time, before any replay. Making the rebuild an
     * explicit mutating step (instead of lazily rebuilding inside
     * const branchView()) keeps branchView() genuinely read-only, so
     * pool workers sharing a trace never write it — the previous
     * lazy scheme was a data race the moment a corrupted trace
     * reached the parallel executor before its first serial view.
     */
    void
    rebuildBranchView()
    {
        branches_.clear();
        for (const MicroOp &op : ops_)
            if (op.cls == InstClass::CondBranch)
                branches_.push_back({op.pc, op.taken});
        branchesDirty_ = false;
    }

    /**
     * Dense conditional-branch index: the {pc, taken} stream every
     * accuracy run replays, without skipping over non-branch ops.
     * Maintained incrementally by push().
     *
     * The view is frozen: requesting it on a buffer left stale by
     * mutableOp() is a bug (asserted), not a trigger for a hidden
     * rebuild. Safe for any number of concurrent readers — it never
     * mutates the buffer.
     */
    const std::vector<BranchRecord> &
    branchView() const
    {
        assert(!branchesDirty_ &&
               "stale branch view: call rebuildBranchView() after "
               "mutableOp() before replaying the trace");
        return branches_;
    }

    auto begin() const { return ops_.begin(); }
    auto end() const { return ops_.end(); }

    /** Drop all contents (keeps capacity). */
    void
    clear()
    {
        ops_.clear();
        branches_.clear();
        branchesDirty_ = false;
        condBranches_ = 0;
    }

  private:
    std::vector<MicroOp> ops_;
    std::vector<BranchRecord> branches_;
    bool branchesDirty_ = false;
    Counter condBranches_ = 0;
};

} // namespace bpsim

#endif // BPSIM_TRACE_TRACE_BUFFER_HH
