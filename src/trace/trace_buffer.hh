/**
 * @file
 * In-memory dynamic trace storage and iteration.
 *
 * A trace is generated once per (workload, seed, length) and then
 * replayed against many predictor configurations, mirroring the
 * paper's methodology where every predictor sees the same SPECint
 * instruction stream.
 */

#ifndef BPSIM_TRACE_TRACE_BUFFER_HH
#define BPSIM_TRACE_TRACE_BUFFER_HH

#include <cstddef>
#include <vector>

#include "common/types.hh"
#include "trace/micro_op.hh"

namespace bpsim {

/** A replayable buffer of dynamic instructions. */
class TraceBuffer
{
  public:
    TraceBuffer() = default;

    /** Reserve capacity for @p ops instructions up front. */
    void reserve(std::size_t ops) { ops_.reserve(ops); }

    /** Append one instruction. */
    void
    push(const MicroOp &op)
    {
        ops_.push_back(op);
        if (op.cls == InstClass::CondBranch)
            ++condBranches_;
    }

    /** Number of dynamic instructions. */
    std::size_t size() const { return ops_.size(); }
    bool empty() const { return ops_.empty(); }

    /** Number of dynamic conditional branches. */
    Counter condBranches() const { return condBranches_; }

    /** Dynamic conditional-branch density (branches / instruction). */
    double
    branchDensity() const
    {
        return ops_.empty() ? 0.0
                            : static_cast<double>(condBranches_) /
                                  static_cast<double>(ops_.size());
    }

    const MicroOp &operator[](std::size_t i) const { return ops_[i]; }

    /**
     * Mutable record access, for fault injection (src/robust). The
     * caller must not change @c cls — the cached conditional-branch
     * count assumes the instruction mix is fixed.
     */
    MicroOp &mutableOp(std::size_t i) { return ops_[i]; }

    auto begin() const { return ops_.begin(); }
    auto end() const { return ops_.end(); }

    /** Drop all contents (keeps capacity). */
    void
    clear()
    {
        ops_.clear();
        condBranches_ = 0;
    }

  private:
    std::vector<MicroOp> ops_;
    Counter condBranches_ = 0;
};

} // namespace bpsim

#endif // BPSIM_TRACE_TRACE_BUFFER_HH
