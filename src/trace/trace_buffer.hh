/**
 * @file
 * In-memory dynamic trace storage and iteration.
 *
 * A trace is generated once per (workload, seed, length) and then
 * replayed against many predictor configurations, mirroring the
 * paper's methodology where every predictor sees the same SPECint
 * instruction stream.
 *
 * Storage is columnar where it matters: the dense conditional-branch
 * index every accuracy run replays is kept as two parallel columns
 * (pc, taken) rather than an array of structs, so the replay loop
 * streams 9 bytes per branch instead of 16 and the batched ensemble
 * engine (src/core/ensemble) can hand the raw columns to its
 * structure-of-arrays kernels. A buffer can also be *backed*: a
 * trace loaded from a v3 columnar file (trace_io) keeps the branch
 * columns pointing straight into the mapped file — zero copy, zero
 * decode — and materializes the full micro-op stream lazily, only
 * when a consumer (the timing simulator, trace rewriting, fault
 * injection) actually touches it.
 */

#ifndef BPSIM_TRACE_TRACE_BUFFER_HH
#define BPSIM_TRACE_TRACE_BUFFER_HH

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "trace/micro_op.hh"

namespace bpsim {

/** One conditional branch, dense for accuracy replay. */
struct BranchRecord
{
    Addr pc = 0;
    bool taken = false;
};

/**
 * A non-owning structure-of-arrays view over the conditional-branch
 * columns of a trace: @c n parallel (pc, taken) entries. taken bytes
 * are 0 or 1. Iteration yields BranchRecord values so existing
 * record-oriented loops keep working; hot kernels read the column
 * pointers directly.
 */
class BranchSpan
{
  public:
    BranchSpan() = default;
    BranchSpan(const Addr *pc, const std::uint8_t *taken,
               std::size_t n)
        : pc_(pc), taken_(taken), n_(n)
    {
    }

    std::size_t size() const { return n_; }
    bool empty() const { return n_ == 0; }

    /** Raw column pointers (SoA kernels). */
    const Addr *pcData() const { return pc_; }
    const std::uint8_t *takenData() const { return taken_; }

    Addr pc(std::size_t i) const { return pc_[i]; }
    bool taken(std::size_t i) const { return taken_[i] != 0; }

    BranchRecord
    operator[](std::size_t i) const
    {
        return {pc_[i], taken_[i] != 0};
    }

    /** Index-based iterator; operator* materializes a BranchRecord. */
    class Iterator
    {
      public:
        Iterator(const BranchSpan *s, std::size_t i) : s_(s), i_(i) {}
        BranchRecord operator*() const { return (*s_)[i_]; }
        Iterator &
        operator++()
        {
            ++i_;
            return *this;
        }
        bool
        operator!=(const Iterator &o) const
        {
            return i_ != o.i_;
        }

      private:
        const BranchSpan *s_;
        std::size_t i_;
    };

    Iterator begin() const { return {this, 0}; }
    Iterator end() const { return {this, n_}; }

  private:
    const Addr *pc_ = nullptr;
    const std::uint8_t *taken_ = nullptr;
    std::size_t n_ = 0;
};

/**
 * Backing store for a trace loaded without decoding: the v3 columnar
 * reader (trace_io) implements this over a memory-mapped file. The
 * branch columns are served in place; the op stream is decoded only
 * on demand via decodeOps(). Implementations are immutable and
 * therefore safe to share across threads.
 */
class TraceBacking
{
  public:
    virtual ~TraceBacking() = default;

    /** Branch pc column, 64-byte aligned, branchCount() entries. */
    virtual const Addr *branchPc() const = 0;
    /** Branch taken column (bytes 0/1), branchCount() entries. */
    virtual const std::uint8_t *branchTaken() const = 0;
    virtual std::size_t branchCount() const = 0;
    virtual std::size_t opCount() const = 0;

    /** Decode the full micro-op stream. Called at most once per
     *  buffer (lazily); throws TraceIoError on malformed columns. */
    virtual std::vector<MicroOp> decodeOps() const = 0;
};

/** A replayable buffer of dynamic instructions. */
class TraceBuffer
{
  public:
    TraceBuffer() = default;

    // The atomic materialization flag makes copy/move user-provided;
    // semantics are plain member-wise copies (trace_buffer.cc).
    TraceBuffer(const TraceBuffer &other);
    TraceBuffer(TraceBuffer &&other) noexcept;
    TraceBuffer &operator=(const TraceBuffer &other);
    TraceBuffer &operator=(TraceBuffer &&other) noexcept;

    /** Reserve capacity for @p ops instructions up front. */
    void reserve(std::size_t ops) { ops_.reserve(ops); }

    /** Append one instruction. */
    void
    push(const MicroOp &op)
    {
        if (backing_)
            detachFromBacking();
        ops_.push_back(op);
        ++opCount_;
        if (op.cls == InstClass::CondBranch) {
            branchPcs_.push_back(op.pc);
            branchTaken_.push_back(op.taken ? 1 : 0);
            ++condBranches_;
        }
    }

    /**
     * Adopt @p backing as this buffer's contents: the branch view is
     * served zero-copy from the backing's columns and the op stream
     * stays encoded until first use. Replaces any prior contents.
     */
    void adoptBacking(std::shared_ptr<const TraceBacking> backing);

    /** Number of dynamic instructions. */
    std::size_t size() const { return opCount_; }
    bool empty() const { return opCount_ == 0; }

    /** Number of dynamic conditional branches. */
    Counter condBranches() const { return condBranches_; }

    /** Dynamic conditional-branch density (branches / instruction). */
    double
    branchDensity() const
    {
        return opCount_ == 0 ? 0.0
                             : static_cast<double>(condBranches_) /
                                   static_cast<double>(opCount_);
    }

    const MicroOp &operator[](std::size_t i) const
    {
        return opsVec()[i];
    }

    /**
     * Mutable record access, for fault injection (src/robust). The
     * caller must not change @c cls — the cached conditional-branch
     * count assumes the instruction mix is fixed. Marks the branch
     * view stale; the mutator must call rebuildBranchView() before
     * the buffer is replayed or shared again. On a backed buffer
     * this materializes the op stream first (copy-on-write).
     */
    MicroOp &
    mutableOp(std::size_t i)
    {
        opsVec();
        branchesDirty_ = true;
        return ops_[i];
    }

    /**
     * Recompute the dense branch columns after mutation through
     * mutableOp(). Must be called from a single thread at
     * trace-publish time, before any replay. Making the rebuild an
     * explicit mutating step (instead of lazily rebuilding inside
     * const branchView()) keeps branchView() genuinely read-only, so
     * pool workers sharing a trace never write it — the previous
     * lazy scheme was a data race the moment a corrupted trace
     * reached the parallel executor before its first serial view.
     * A backed buffer detaches: the rebuilt columns are owned, not
     * the mapped file's.
     */
    void rebuildBranchView();

    /**
     * Dense conditional-branch columns: the {pc, taken} stream every
     * accuracy run replays, without skipping over non-branch ops.
     * Maintained incrementally by push(); served straight from the
     * mapped file for a backed buffer.
     *
     * The view is frozen: requesting it on a buffer left stale by
     * mutableOp() is a bug (asserted), not a trigger for a hidden
     * rebuild. Safe for any number of concurrent readers — it never
     * mutates the buffer.
     */
    BranchSpan
    branchView() const
    {
        assert(!branchesDirty_ &&
               "stale branch view: call rebuildBranchView() after "
               "mutableOp() before replaying the trace");
        if (backing_ && branchesFromBacking_)
            return {backing_->branchPc(), backing_->branchTaken(),
                    backing_->branchCount()};
        return {branchPcs_.data(), branchTaken_.data(),
                branchPcs_.size()};
    }

    /** True when the op stream is decoded and resident in memory;
     *  false while a backed buffer still holds it encoded (nothing
     *  has forced a decode yet). */
    bool
    opsMaterialized() const
    {
        return opsReady_.load(std::memory_order_acquire);
    }

    auto begin() const { return opsVec().begin(); }
    auto end() const { return opsVec().end(); }

    /**
     * Resident heap footprint estimate in bytes: op-stream and
     * owned branch-column capacities. A backed buffer whose ops are
     * still encoded charges only what is actually materialized —
     * the mapped file itself is page-cache, not heap, and is not
     * counted. Used by SharedTracePool's memory budget.
     */
    std::size_t
    memoryBytes() const
    {
        std::size_t bytes = 0;
        if (opsMaterialized())
            bytes += ops_.capacity() * sizeof(MicroOp);
        bytes += branchPcs_.capacity() * sizeof(Addr);
        bytes += branchTaken_.capacity() * sizeof(std::uint8_t);
        return bytes;
    }

    /** Drop all contents (keeps op capacity). */
    void clear();

  private:
    /** Op stream, materializing from the backing on first use. */
    const std::vector<MicroOp> &
    opsVec() const
    {
        if (!opsReady_.load(std::memory_order_acquire))
            materializeOps();
        return ops_;
    }

    void materializeOps() const;
    void detachFromBacking();
    void copyFrom(const TraceBuffer &other);
    void moveFrom(TraceBuffer &&other) noexcept;

    // ops_ is mutable because a backed buffer decodes it lazily
    // behind const accessors; materializeOps() synchronizes.
    mutable std::vector<MicroOp> ops_;
    std::vector<Addr> branchPcs_;
    std::vector<std::uint8_t> branchTaken_;
    std::shared_ptr<const TraceBacking> backing_;
    std::size_t opCount_ = 0;
    bool branchesFromBacking_ = false;
    bool branchesDirty_ = false;
    Counter condBranches_ = 0;
    mutable std::atomic<bool> opsReady_{true};
};

} // namespace bpsim

#endif // BPSIM_TRACE_TRACE_BUFFER_HH
