#include "trace/trace_io.hh"

#include <array>
#include <cstring>
#include <memory>
#include <vector>

namespace bpsim {

namespace {

constexpr char magic[8] = {'B', 'P', 'S', 'T', 'R', 'A', 'C', 'E'};
constexpr std::uint32_t version = 1;
constexpr std::uint32_t versionCompressed = 2;
constexpr std::size_t recordBytes = 20;
/** v2: 4 packed bytes + at least 1 byte per varint. */
constexpr std::size_t minCompressedRecordBytes = 6;
constexpr std::size_t checksumBytes = 8;

struct FileCloser
{
    void
    operator()(std::FILE *f) const
    {
        if (f)
            std::fclose(f);
    }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void
putU32(std::uint8_t *p, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void
putU64(std::uint8_t *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t
getU32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
getU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
fnv1a64(const std::uint8_t *p, std::size_t n)
{
    std::uint64_t h = 14695981039346656037ull;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

/** Signed delta -> small unsigned value (zigzag). */
std::uint64_t
zigzag(std::uint64_t delta)
{
    const std::int64_t s = static_cast<std::int64_t>(delta);
    return (static_cast<std::uint64_t>(s) << 1) ^
           static_cast<std::uint64_t>(s >> 63);
}

std::uint64_t
unzigzag(std::uint64_t z)
{
    return (z >> 1) ^ (~(z & 1) + 1);
}

void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

/** Strict LEB128 decode: advances @p pos, throws on truncation or a
 *  varint running past the 10-byte limit of a 64-bit value. */
std::uint64_t
getVarint(const std::uint8_t *p, std::size_t size, std::size_t &pos,
          const std::string &path)
{
    std::uint64_t v = 0;
    for (unsigned shift = 0; shift < 70; shift += 7) {
        if (pos >= size)
            throw TraceIoError("truncated varint in '" + path + "'");
        const std::uint8_t b = p[pos++];
        v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
        if (!(b & 0x80))
            return v;
    }
    throw TraceIoError("oversized varint in '" + path + "'");
}

} // namespace

void
writeTrace(const TraceBuffer &trace, const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        throw TraceIoError("cannot open '" + path + "' for writing");

    std::uint8_t header[24];
    std::memcpy(header, magic, 8);
    putU32(header + 8, version);
    putU32(header + 12, 0);
    putU64(header + 16, trace.size());
    if (std::fwrite(header, 1, sizeof(header), f.get()) !=
        sizeof(header))
        throw TraceIoError("short write on header");

    // Buffered record writes, 4K records at a time.
    std::vector<std::uint8_t> buf;
    buf.reserve(4096 * recordBytes);
    auto flush = [&] {
        if (buf.empty())
            return;
        if (std::fwrite(buf.data(), 1, buf.size(), f.get()) !=
            buf.size())
            throw TraceIoError("short write on records");
        buf.clear();
    };

    for (const MicroOp &op : trace) {
        std::uint8_t rec[recordBytes];
        putU64(rec, op.pc);
        putU64(rec + 8, op.extra);
        rec[16] = static_cast<std::uint8_t>(op.cls);
        rec[17] = op.taken ? 1 : 0;
        rec[18] = op.dst;
        // srcA/srcB are 6-bit register ids: pack both in one byte
        // plus the low bits of 17.
        rec[19] = static_cast<std::uint8_t>(op.srcA & 0x3f);
        rec[17] |= static_cast<std::uint8_t>((op.srcB & 0x3f) << 1);
        rec[19] |= static_cast<std::uint8_t>((op.srcB & 0x40) << 1);
        buf.insert(buf.end(), rec, rec + recordBytes);
        if (buf.size() >= 4096 * recordBytes)
            flush();
    }
    flush();
}

void
writeTraceCompressed(const TraceBuffer &trace, const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        throw TraceIoError("cannot open '" + path + "' for writing");

    std::uint8_t header[24];
    std::memcpy(header, magic, 8);
    putU32(header + 8, versionCompressed);
    putU32(header + 12, 0);
    putU64(header + 16, trace.size());
    if (std::fwrite(header, 1, sizeof(header), f.get()) !=
        sizeof(header))
        throw TraceIoError("short write on header");

    std::vector<std::uint8_t> payload;
    payload.reserve(trace.size() * minCompressedRecordBytes +
                    checksumBytes);

    std::uint64_t prevPc = 0;
    std::uint64_t prevExtra[6] = {};
    for (const MicroOp &op : trace) {
        const auto cls = static_cast<std::uint8_t>(op.cls);
        // Same field domain as v1: srcA is 6 bits, srcB 7 bits.
        const std::uint8_t srcA = op.srcA & 0x3f;
        const std::uint8_t srcB = op.srcB & 0x7f;
        const std::uint8_t b0 = static_cast<std::uint8_t>(
            (cls & 0x07) | (op.taken ? 0x08 : 0) |
            ((op.dst & 0x0f) << 4));
        const std::uint8_t b1 = static_cast<std::uint8_t>(
            ((op.dst >> 4) & 0x0f) | ((srcA & 0x0f) << 4));
        const std::uint8_t b2 = static_cast<std::uint8_t>(
            ((srcA >> 4) & 0x03) | ((srcB & 0x3f) << 2));
        const std::uint8_t b3 =
            static_cast<std::uint8_t>((srcB >> 6) & 0x01);
        payload.push_back(b0);
        payload.push_back(b1);
        payload.push_back(b2);
        payload.push_back(b3);
        putVarint(payload, zigzag(op.pc - prevPc));
        putVarint(payload, zigzag(op.extra - prevExtra[cls]));
        prevPc = op.pc;
        prevExtra[cls] = op.extra;
    }

    std::uint8_t sum[checksumBytes];
    putU64(sum, fnv1a64(payload.data(), payload.size()));
    payload.insert(payload.end(), sum, sum + checksumBytes);

    if (!payload.empty() &&
        std::fwrite(payload.data(), 1, payload.size(), f.get()) !=
            payload.size())
        throw TraceIoError("short write on records");
}

namespace {

TraceBuffer
readTraceCompressed(std::FILE *f, const std::string &path,
                    std::uint64_t count)
{
    if (std::fseek(f, 0, SEEK_END) != 0)
        throw TraceIoError("cannot seek in '" + path + "'");
    const long end = std::ftell(f);
    if (end < 0 || static_cast<std::uint64_t>(end) < 24 + checksumBytes)
        throw TraceIoError("truncated records in '" + path + "'");
    const std::size_t payloadSize =
        static_cast<std::size_t>(end) - 24 - checksumBytes;
    // Sanity-check the declared count against the smallest possible
    // record before reserving (see the v1 comment below).
    if (count > payloadSize / minCompressedRecordBytes)
        throw TraceIoError("record count in '" + path +
                           "' exceeds file size (corrupt header?)");
    if (std::fseek(f, 24, SEEK_SET) != 0)
        throw TraceIoError("cannot seek in '" + path + "'");

    std::vector<std::uint8_t> payload(payloadSize + checksumBytes);
    if (!payload.empty() &&
        std::fread(payload.data(), 1, payload.size(), f) !=
            payload.size())
        throw TraceIoError("truncated records in '" + path + "'");
    const std::uint64_t want = getU64(payload.data() + payloadSize);
    if (fnv1a64(payload.data(), payloadSize) != want)
        throw TraceIoError("checksum mismatch in '" + path + "'");

    TraceBuffer trace;
    trace.reserve(count);
    std::uint64_t prevPc = 0;
    std::uint64_t prevExtra[6] = {};
    std::size_t pos = 0;
    for (std::uint64_t r = 0; r < count; ++r) {
        if (pos + 4 > payloadSize)
            throw TraceIoError("truncated records in '" + path + "'");
        const std::uint8_t b0 = payload[pos];
        const std::uint8_t b1 = payload[pos + 1];
        const std::uint8_t b2 = payload[pos + 2];
        const std::uint8_t b3 = payload[pos + 3];
        pos += 4;
        MicroOp op;
        const std::uint8_t cls = b0 & 0x07;
        if (cls > static_cast<std::uint8_t>(InstClass::UncondBranch) ||
            (b3 & 0xfe) != 0)
            throw TraceIoError("corrupt record in '" + path + "'");
        op.cls = static_cast<InstClass>(cls);
        op.taken = (b0 >> 3) & 1;
        op.dst = static_cast<std::uint8_t>((b0 >> 4) |
                                           ((b1 & 0x0f) << 4));
        op.srcA =
            static_cast<std::uint8_t>((b1 >> 4) | ((b2 & 0x03) << 4));
        op.srcB = static_cast<std::uint8_t>(((b2 >> 2) & 0x3f) |
                                            ((b3 & 0x01) << 6));
        op.pc = prevPc + unzigzag(getVarint(payload.data(),
                                            payloadSize, pos, path));
        op.extra =
            prevExtra[cls] + unzigzag(getVarint(payload.data(),
                                                payloadSize, pos,
                                                path));
        prevPc = op.pc;
        prevExtra[cls] = op.extra;
        trace.push(op);
    }
    if (pos != payloadSize)
        throw TraceIoError("trailing garbage in '" + path + "'");
    return trace;
}

} // namespace

TraceBuffer
readTrace(const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        throw TraceIoError("cannot open '" + path + "' for reading");

    std::uint8_t header[24];
    if (std::fread(header, 1, sizeof(header), f.get()) !=
        sizeof(header))
        throw TraceIoError("truncated header in '" + path + "'");
    if (std::memcmp(header, magic, 8) != 0)
        throw TraceIoError("'" + path + "' is not a bpsim trace");
    const std::uint32_t ver = getU32(header + 8);
    const std::uint64_t count = getU64(header + 16);
    if (ver == versionCompressed)
        return readTraceCompressed(f.get(), path, count);
    if (ver != version)
        throw TraceIoError("unsupported trace version in '" + path +
                           "'");

    // Validate the declared count against the actual file size
    // before reserving: a corrupt count field must produce a clean
    // TraceIoError, not a multi-gigabyte allocation.
    if (std::fseek(f.get(), 0, SEEK_END) != 0)
        throw TraceIoError("cannot seek in '" + path + "'");
    const long end = std::ftell(f.get());
    if (end < 0)
        throw TraceIoError("cannot seek in '" + path + "'");
    const std::uint64_t payload =
        static_cast<std::uint64_t>(end) - sizeof(header);
    if (count > payload / recordBytes)
        throw TraceIoError(
            "record count in '" + path +
            "' exceeds file size (corrupt header?)");
    if (std::fseek(f.get(), sizeof(header), SEEK_SET) != 0)
        throw TraceIoError("cannot seek in '" + path + "'");

    TraceBuffer trace;
    trace.reserve(count);
    std::vector<std::uint8_t> buf(4096 * recordBytes);
    std::uint64_t remaining = count;
    while (remaining > 0) {
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(remaining, 4096));
        const std::size_t got = std::fread(
            buf.data(), recordBytes, want, f.get());
        if (got == 0)
            throw TraceIoError("truncated records in '" + path + "'");
        for (std::size_t r = 0; r < got; ++r) {
            const std::uint8_t *rec = buf.data() + r * recordBytes;
            MicroOp op;
            op.pc = getU64(rec);
            op.extra = getU64(rec + 8);
            op.cls = static_cast<InstClass>(rec[16]);
            if (rec[16] > static_cast<std::uint8_t>(
                              InstClass::UncondBranch))
                throw TraceIoError("corrupt record in '" + path + "'");
            op.taken = rec[17] & 1;
            op.dst = rec[18];
            op.srcA = rec[19] & 0x3f;
            op.srcB = static_cast<std::uint8_t>(
                ((rec[17] >> 1) & 0x3f) | ((rec[19] >> 1) & 0x40));
            trace.push(op);
        }
        remaining -= got;
    }
    return trace;
}

} // namespace bpsim
