#include "trace/trace_io.hh"

#include <array>
#include <bit>
#include <cstring>
#include <memory>
#include <vector>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace bpsim {

namespace {

constexpr char magic[8] = {'B', 'P', 'S', 'T', 'R', 'A', 'C', 'E'};
constexpr std::uint32_t version = 1;
constexpr std::uint32_t versionCompressed = 2;
constexpr std::uint32_t versionColumnar = 3;
constexpr std::size_t recordBytes = 20;
/** v3 sections sit at multiples of this (cache-line) alignment. */
constexpr std::size_t v3Align = 64;
/** v3 checksum granularity: one FNV-1a-64 per 64 KiB block. */
constexpr std::size_t v3BlockBytes = 64 * 1024;
/** v3 section count: branchPc, branchTaken, opMeta, opPcDelta,
 *  opExtraDelta, blockSums. */
constexpr std::size_t v3NumSections = 6;
/** v3 directory: branchCount + section table + checksum. */
constexpr std::size_t v3DirOffset = 24;
constexpr std::size_t v3DirPayloadBytes = 8 + v3NumSections * 16;
constexpr std::size_t v3DirEnd =
    v3DirOffset + v3DirPayloadBytes + 8;

constexpr std::size_t
alignUp(std::size_t v, std::size_t a)
{
    return (v + a - 1) / a * a;
}
/** v2: 4 packed bytes + at least 1 byte per varint. */
constexpr std::size_t minCompressedRecordBytes = 6;
constexpr std::size_t checksumBytes = 8;

struct FileCloser
{
    void
    operator()(std::FILE *f) const
    {
        if (f)
            std::fclose(f);
    }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void
putU32(std::uint8_t *p, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void
putU64(std::uint8_t *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t
getU32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
getU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
fnv1a64(const std::uint8_t *p, std::size_t n)
{
    std::uint64_t h = 14695981039346656037ull;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

/**
 * Hash for v3 payload blocks: four independent multiply-rotate
 * lanes over little-endian 64-bit words (tail zero-padded, length
 * mixed into lane 0's seed), lanes folded with a final avalanche.
 *
 * FNV-1a is byte-serial — one multiply PER BYTE on the critical
 * path — which made checksum validation the dominant cost of a warm
 * cache load (~130 ms per figure run over a ~124 MB cache
 * directory). Four lanes of word-wide multiplies pipeline to
 * several bytes per cycle with the same corruption-detection power
 * for this purpose: any flipped or truncated byte perturbs its
 * lane, and the fold propagates it through the final value. v2
 * payloads and the tiny v3 directory keep FNV-1a (compatibility and
 * negligible size, respectively).
 */
std::uint64_t
blockHash64(const std::uint8_t *p, std::size_t n)
{
    constexpr std::uint64_t k1 = 0x9E3779B185EBCA87ull;
    constexpr std::uint64_t k2 = 0xC2B2AE3D27D4EB4Full;
    const auto round = [](std::uint64_t h, std::uint64_t w) {
        h ^= w * k1;
        return (h << 27 | h >> 37) * k2;
    };
    std::uint64_t h[4] = {0x736F6D6570736575ull ^ n,
                          0x646F72616E646F6Dull,
                          0x6C7967656E657261ull,
                          0x7465646279746573ull};
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32)
        for (int l = 0; l < 4; ++l)
            h[l] = round(h[l], getU64(p + i + 8 * l));
    if (i < n) {
        std::uint8_t tail[32] = {};
        std::memcpy(tail, p + i, n - i);
        for (int l = 0; l < 4; ++l)
            h[l] = round(h[l], getU64(tail + 8 * l));
    }
    std::uint64_t r = (h[0] ^ h[1]) * k1 ^ (h[2] ^ h[3]) * k2;
    r ^= r >> 29;
    r *= k1;
    r ^= r >> 32;
    return r;
}

/** Signed delta -> small unsigned value (zigzag). */
std::uint64_t
zigzag(std::uint64_t delta)
{
    const std::int64_t s = static_cast<std::int64_t>(delta);
    return (static_cast<std::uint64_t>(s) << 1) ^
           static_cast<std::uint64_t>(s >> 63);
}

std::uint64_t
unzigzag(std::uint64_t z)
{
    return (z >> 1) ^ (~(z & 1) + 1);
}

void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

/** Strict LEB128 decode: advances @p pos, throws on truncation or a
 *  varint running past the 10-byte limit of a 64-bit value. */
std::uint64_t
getVarint(const std::uint8_t *p, std::size_t size, std::size_t &pos,
          const std::string &path)
{
    std::uint64_t v = 0;
    for (unsigned shift = 0; shift < 70; shift += 7) {
        if (pos >= size)
            throw TraceIoError("truncated varint in '" + path + "'");
        const std::uint8_t b = p[pos++];
        v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
        if (!(b & 0x80))
            return v;
    }
    throw TraceIoError("oversized varint in '" + path + "'");
}

} // namespace

void
writeTrace(const TraceBuffer &trace, const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        throw TraceIoError("cannot open '" + path + "' for writing");

    std::uint8_t header[24];
    std::memcpy(header, magic, 8);
    putU32(header + 8, version);
    putU32(header + 12, 0);
    putU64(header + 16, trace.size());
    if (std::fwrite(header, 1, sizeof(header), f.get()) !=
        sizeof(header))
        throw TraceIoError("short write on header");

    // Buffered record writes, 4K records at a time.
    std::vector<std::uint8_t> buf;
    buf.reserve(4096 * recordBytes);
    auto flush = [&] {
        if (buf.empty())
            return;
        if (std::fwrite(buf.data(), 1, buf.size(), f.get()) !=
            buf.size())
            throw TraceIoError("short write on records");
        buf.clear();
    };

    for (const MicroOp &op : trace) {
        std::uint8_t rec[recordBytes];
        putU64(rec, op.pc);
        putU64(rec + 8, op.extra);
        rec[16] = static_cast<std::uint8_t>(op.cls);
        rec[17] = op.taken ? 1 : 0;
        rec[18] = op.dst;
        // srcA/srcB are 6-bit register ids: pack both in one byte
        // plus the low bits of 17.
        rec[19] = static_cast<std::uint8_t>(op.srcA & 0x3f);
        rec[17] |= static_cast<std::uint8_t>((op.srcB & 0x3f) << 1);
        rec[19] |= static_cast<std::uint8_t>((op.srcB & 0x40) << 1);
        buf.insert(buf.end(), rec, rec + recordBytes);
        if (buf.size() >= 4096 * recordBytes)
            flush();
    }
    flush();
}

void
writeTraceCompressed(const TraceBuffer &trace, const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        throw TraceIoError("cannot open '" + path + "' for writing");

    std::uint8_t header[24];
    std::memcpy(header, magic, 8);
    putU32(header + 8, versionCompressed);
    putU32(header + 12, 0);
    putU64(header + 16, trace.size());
    if (std::fwrite(header, 1, sizeof(header), f.get()) !=
        sizeof(header))
        throw TraceIoError("short write on header");

    std::vector<std::uint8_t> payload;
    payload.reserve(trace.size() * minCompressedRecordBytes +
                    checksumBytes);

    std::uint64_t prevPc = 0;
    std::uint64_t prevExtra[6] = {};
    for (const MicroOp &op : trace) {
        const auto cls = static_cast<std::uint8_t>(op.cls);
        // Same field domain as v1: srcA is 6 bits, srcB 7 bits.
        const std::uint8_t srcA = op.srcA & 0x3f;
        const std::uint8_t srcB = op.srcB & 0x7f;
        const std::uint8_t b0 = static_cast<std::uint8_t>(
            (cls & 0x07) | (op.taken ? 0x08 : 0) |
            ((op.dst & 0x0f) << 4));
        const std::uint8_t b1 = static_cast<std::uint8_t>(
            ((op.dst >> 4) & 0x0f) | ((srcA & 0x0f) << 4));
        const std::uint8_t b2 = static_cast<std::uint8_t>(
            ((srcA >> 4) & 0x03) | ((srcB & 0x3f) << 2));
        const std::uint8_t b3 =
            static_cast<std::uint8_t>((srcB >> 6) & 0x01);
        payload.push_back(b0);
        payload.push_back(b1);
        payload.push_back(b2);
        payload.push_back(b3);
        putVarint(payload, zigzag(op.pc - prevPc));
        putVarint(payload, zigzag(op.extra - prevExtra[cls]));
        prevPc = op.pc;
        prevExtra[cls] = op.extra;
    }

    std::uint8_t sum[checksumBytes];
    putU64(sum, fnv1a64(payload.data(), payload.size()));
    payload.insert(payload.end(), sum, sum + checksumBytes);

    if (!payload.empty() &&
        std::fwrite(payload.data(), 1, payload.size(), f.get()) !=
            payload.size())
        throw TraceIoError("short write on records");
}

namespace {

TraceBuffer
readTraceCompressed(std::FILE *f, const std::string &path,
                    std::uint64_t count)
{
    if (std::fseek(f, 0, SEEK_END) != 0)
        throw TraceIoError("cannot seek in '" + path + "'");
    const long end = std::ftell(f);
    if (end < 0 || static_cast<std::uint64_t>(end) < 24 + checksumBytes)
        throw TraceIoError("truncated records in '" + path + "'");
    const std::size_t payloadSize =
        static_cast<std::size_t>(end) - 24 - checksumBytes;
    // Sanity-check the declared count against the smallest possible
    // record before reserving (see the v1 comment below).
    if (count > payloadSize / minCompressedRecordBytes)
        throw TraceIoError("record count in '" + path +
                           "' exceeds file size (corrupt header?)");
    if (std::fseek(f, 24, SEEK_SET) != 0)
        throw TraceIoError("cannot seek in '" + path + "'");

    std::vector<std::uint8_t> payload(payloadSize + checksumBytes);
    if (!payload.empty() &&
        std::fread(payload.data(), 1, payload.size(), f) !=
            payload.size())
        throw TraceIoError("truncated records in '" + path + "'");
    const std::uint64_t want = getU64(payload.data() + payloadSize);
    if (fnv1a64(payload.data(), payloadSize) != want)
        throw TraceIoError("checksum mismatch in '" + path + "'");

    TraceBuffer trace;
    trace.reserve(count);
    std::uint64_t prevPc = 0;
    std::uint64_t prevExtra[6] = {};
    std::size_t pos = 0;
    for (std::uint64_t r = 0; r < count; ++r) {
        if (pos + 4 > payloadSize)
            throw TraceIoError("truncated records in '" + path + "'");
        const std::uint8_t b0 = payload[pos];
        const std::uint8_t b1 = payload[pos + 1];
        const std::uint8_t b2 = payload[pos + 2];
        const std::uint8_t b3 = payload[pos + 3];
        pos += 4;
        MicroOp op;
        const std::uint8_t cls = b0 & 0x07;
        if (cls > static_cast<std::uint8_t>(InstClass::UncondBranch) ||
            (b3 & 0xfe) != 0)
            throw TraceIoError("corrupt record in '" + path + "'");
        op.cls = static_cast<InstClass>(cls);
        op.taken = (b0 >> 3) & 1;
        op.dst = static_cast<std::uint8_t>((b0 >> 4) |
                                           ((b1 & 0x0f) << 4));
        op.srcA =
            static_cast<std::uint8_t>((b1 >> 4) | ((b2 & 0x03) << 4));
        op.srcB = static_cast<std::uint8_t>(((b2 >> 2) & 0x3f) |
                                            ((b3 & 0x01) << 6));
        op.pc = prevPc + unzigzag(getVarint(payload.data(),
                                            payloadSize, pos, path));
        op.extra =
            prevExtra[cls] + unzigzag(getVarint(payload.data(),
                                                payloadSize, pos,
                                                path));
        prevPc = op.pc;
        prevExtra[cls] = op.extra;
        trace.push(op);
    }
    if (pos != payloadSize)
        throw TraceIoError("trailing garbage in '" + path + "'");
    return trace;
}

} // namespace

// ---------------------------------------------------------------
// v3 columnar format

namespace {

/**
 * Read-only bytes of a whole file. Memory-mapped when requested and
 * the platform allows (the zero-copy path); read into an
 * 8-byte-aligned heap buffer otherwise. Immutable after open(), so
 * shareable across threads. Callers in shared directories must pass
 * allow_mmap = false: the heap path turns a concurrent in-place
 * truncation into a short read (a clean TraceIoError), where a
 * mapping would SIGBUS.
 */
class FileBytes
{
  public:
    static std::shared_ptr<const FileBytes>
    open(const std::string &path, bool allow_mmap)
    {
        auto fb = std::make_shared<FileBytes>();
        const int fd = ::open(path.c_str(), O_RDONLY);
        if (fd < 0)
            throw TraceIoError("cannot open '" + path +
                               "' for reading");
        struct stat st;
        if (::fstat(fd, &st) != 0 || st.st_size < 0) {
            ::close(fd);
            throw TraceIoError("cannot stat '" + path + "'");
        }
        fb->size_ = static_cast<std::size_t>(st.st_size);
        if (fb->size_ > 0) {
            void *m = allow_mmap
                          ? ::mmap(nullptr, fb->size_, PROT_READ,
                                   MAP_PRIVATE, fd, 0)
                          : MAP_FAILED;
            if (m != MAP_FAILED) {
                fb->map_ = static_cast<const std::uint8_t *>(m);
                fb->mapLen_ = fb->size_;
            } else {
                // Heap fallback, u64-backed so the branch pc column
                // stays suitably aligned for in-place reads.
                fb->heap_.resize((fb->size_ + 7) / 8);
                std::size_t done = 0;
                auto *dst =
                    reinterpret_cast<std::uint8_t *>(fb->heap_.data());
                while (done < fb->size_) {
                    const ssize_t n =
                        ::pread(fd, dst + done, fb->size_ - done,
                                static_cast<off_t>(done));
                    if (n <= 0) {
                        ::close(fd);
                        throw TraceIoError("cannot read '" + path +
                                           "'");
                    }
                    done += static_cast<std::size_t>(n);
                }
            }
        }
        ::close(fd);
        return fb;
    }

    ~FileBytes()
    {
        if (map_)
            ::munmap(const_cast<std::uint8_t *>(map_), mapLen_);
    }

    FileBytes() = default;
    FileBytes(const FileBytes &) = delete;
    FileBytes &operator=(const FileBytes &) = delete;

    const std::uint8_t *
    data() const
    {
        return map_ ? map_
                    : reinterpret_cast<const std::uint8_t *>(
                          heap_.data());
    }
    std::size_t size() const { return size_; }

  private:
    const std::uint8_t *map_ = nullptr;
    std::size_t mapLen_ = 0;
    std::vector<std::uint64_t> heap_;
    std::size_t size_ = 0;
};

/** Pack one op's non-delta fields into v2/v3's 4 meta bytes. */
void
packOpMeta(const MicroOp &op, std::uint8_t out[4])
{
    const auto cls = static_cast<std::uint8_t>(op.cls);
    const std::uint8_t srcA = op.srcA & 0x3f;
    const std::uint8_t srcB = op.srcB & 0x7f;
    out[0] = static_cast<std::uint8_t>((cls & 0x07) |
                                       (op.taken ? 0x08 : 0) |
                                       ((op.dst & 0x0f) << 4));
    out[1] = static_cast<std::uint8_t>(((op.dst >> 4) & 0x0f) |
                                       ((srcA & 0x0f) << 4));
    out[2] = static_cast<std::uint8_t>(((srcA >> 4) & 0x03) |
                                       ((srcB & 0x3f) << 2));
    out[3] = static_cast<std::uint8_t>((srcB >> 6) & 0x01);
}

/** Unpack 4 meta bytes; throws on non-canonical spare bits. */
MicroOp
unpackOpMeta(const std::uint8_t *b, const std::string &path)
{
    MicroOp op;
    const std::uint8_t cls = b[0] & 0x07;
    if (cls > static_cast<std::uint8_t>(InstClass::UncondBranch) ||
        (b[3] & 0xfe) != 0)
        throw TraceIoError("corrupt record in '" + path + "'");
    op.cls = static_cast<InstClass>(cls);
    op.taken = (b[0] >> 3) & 1;
    op.dst = static_cast<std::uint8_t>((b[0] >> 4) |
                                       ((b[1] & 0x0f) << 4));
    op.srcA =
        static_cast<std::uint8_t>((b[1] >> 4) | ((b[2] & 0x03) << 4));
    op.srcB = static_cast<std::uint8_t>(((b[2] >> 2) & 0x3f) |
                                        ((b[3] & 0x01) << 6));
    return op;
}

/** One v3 section: resolved location inside the file bytes. */
struct V3Section
{
    std::size_t offset = 0;
    std::size_t size = 0;
};

/** v3 backing: serves branch columns in place and decodes the op
 *  stream on demand (TraceBuffer materialization). */
class V3Backing final : public TraceBacking
{
  public:
    V3Backing(std::shared_ptr<const FileBytes> bytes,
              std::string path, std::size_t op_count,
              std::size_t branch_count,
              const V3Section (&sec)[v3NumSections])
        : bytes_(std::move(bytes)),
          path_(std::move(path)),
          opCount_(op_count),
          branchCount_(branch_count)
    {
        for (std::size_t i = 0; i < v3NumSections; ++i)
            sec_[i] = sec[i];
    }

    const Addr *
    branchPc() const override
    {
        return reinterpret_cast<const Addr *>(bytes_->data() +
                                              sec_[0].offset);
    }
    const std::uint8_t *
    branchTaken() const override
    {
        return bytes_->data() + sec_[1].offset;
    }
    std::size_t branchCount() const override { return branchCount_; }
    std::size_t opCount() const override { return opCount_; }

    std::vector<MicroOp>
    decodeOps() const override
    {
        std::vector<MicroOp> ops;
        ops.reserve(opCount_);
        const std::uint8_t *meta = bytes_->data() + sec_[2].offset;
        const std::uint8_t *pcs = bytes_->data() + sec_[3].offset;
        const std::uint8_t *extras = bytes_->data() + sec_[4].offset;
        std::size_t pcPos = 0, extraPos = 0;
        std::uint64_t prevPc = 0;
        std::uint64_t prevExtra[6] = {};
        for (std::size_t r = 0; r < opCount_; ++r) {
            MicroOp op = unpackOpMeta(meta + 4 * r, path_);
            const auto cls = static_cast<std::uint8_t>(op.cls);
            op.pc = prevPc + unzigzag(getVarint(pcs, sec_[3].size,
                                                pcPos, path_));
            op.extra =
                prevExtra[cls] +
                unzigzag(getVarint(extras, sec_[4].size, extraPos,
                                   path_));
            prevPc = op.pc;
            prevExtra[cls] = op.extra;
            ops.push_back(op);
        }
        if (pcPos != sec_[3].size || extraPos != sec_[4].size)
            throw TraceIoError("trailing garbage in '" + path_ +
                               "'");
        return ops;
    }

  private:
    std::shared_ptr<const FileBytes> bytes_;
    std::string path_;
    std::size_t opCount_;
    std::size_t branchCount_;
    V3Section sec_[v3NumSections];
};

TraceBuffer
readTraceV3(const std::string &path, bool allow_mmap)
{
    auto bytes = FileBytes::open(path, allow_mmap);
    const std::uint8_t *p = bytes->data();
    const std::size_t fileSize = bytes->size();
    if (fileSize < v3DirEnd)
        throw TraceIoError("truncated header in '" + path + "'");
    if (std::memcmp(p, magic, 8) != 0)
        throw TraceIoError("'" + path + "' is not a bpsim trace");
    if (getU32(p + 8) != versionColumnar)
        throw TraceIoError("unsupported trace version in '" + path +
                           "'");
    if (getU32(p + 12) != 0)
        throw TraceIoError("corrupt header in '" + path + "'");
    const std::uint64_t count64 = getU64(p + 16);

    // Directory: checksummed, then cross-checked structurally — the
    // section layout is fully determined by (count, branchCount), so
    // recompute it and demand an exact match, padding included. Any
    // cut or flip lands in a validated field, a checksummed block or
    // a zero-checked pad.
    if (getU64(p + v3DirOffset + v3DirPayloadBytes) !=
        fnv1a64(p + v3DirOffset, v3DirPayloadBytes))
        throw TraceIoError("checksum mismatch in '" + path + "'");
    const std::uint64_t branchCount64 = getU64(p + v3DirOffset);
    if (count64 > fileSize / 4 || branchCount64 > fileSize / 8 ||
        branchCount64 > count64)
        throw TraceIoError("record count in '" + path +
                           "' exceeds file size (corrupt header?)");
    const auto count = static_cast<std::size_t>(count64);
    const auto branchCount = static_cast<std::size_t>(branchCount64);

    V3Section sec[v3NumSections];
    for (std::size_t i = 0; i < v3NumSections; ++i) {
        sec[i].offset = static_cast<std::size_t>(
            getU64(p + v3DirOffset + 8 + 16 * i));
        sec[i].size = static_cast<std::size_t>(
            getU64(p + v3DirOffset + 8 + 16 * i + 8));
    }
    if (sec[0].size != branchCount * 8 ||
        sec[1].size != branchCount || sec[2].size != count * 4)
        throw TraceIoError("corrupt section table in '" + path +
                           "'");
    for (std::size_t i = 3; i <= 4; ++i) {
        if (count == 0 ? sec[i].size != 0 : sec[i].size < count)
            throw TraceIoError("corrupt section table in '" + path +
                               "'");
        if (sec[i].size > fileSize)
            throw TraceIoError("corrupt section table in '" + path +
                               "'");
    }
    std::size_t blocks = 0;
    for (std::size_t i = 0; i < 5; ++i)
        blocks += (sec[i].size + v3BlockBytes - 1) / v3BlockBytes;
    if (sec[5].size != blocks * 8)
        throw TraceIoError("corrupt section table in '" + path +
                           "'");
    std::size_t cursor = v3DirEnd;
    for (std::size_t i = 0; i < v3NumSections; ++i) {
        const std::size_t expect = alignUp(cursor, v3Align);
        if (sec[i].offset != expect ||
            sec[i].size > fileSize - expect)
            throw TraceIoError("corrupt section table in '" + path +
                               "'");
        // Canonical padding: the bytes between sections are zero.
        for (std::size_t b = cursor; b < expect; ++b)
            if (p[b] != 0)
                throw TraceIoError("corrupt padding in '" + path +
                                   "'");
        cursor = expect + sec[i].size;
    }
    if (cursor != fileSize)
        throw TraceIoError("truncated records in '" + path + "'");

    // Per-block payload checksums.
    const std::uint8_t *sums = p + sec[5].offset;
    std::size_t sumIdx = 0;
    for (std::size_t i = 0; i < 5; ++i) {
        for (std::size_t pos = 0; pos < sec[i].size;
             pos += v3BlockBytes, ++sumIdx) {
            const std::size_t n =
                std::min(v3BlockBytes, sec[i].size - pos);
            if (blockHash64(p + sec[i].offset + pos, n) !=
                getU64(sums + 8 * sumIdx))
                throw TraceIoError("checksum mismatch in '" + path +
                                   "'");
        }
    }

    // The taken column feeds bool comparisons; only 0/1 are
    // canonical.
    const std::uint8_t *taken = p + sec[1].offset;
    for (std::size_t i = 0; i < branchCount; ++i)
        if (taken[i] > 1)
            throw TraceIoError("corrupt record in '" + path + "'");

    auto backing = std::make_shared<const V3Backing>(
        bytes, path, count, branchCount, sec);
    TraceBuffer trace;
    if constexpr (std::endian::native == std::endian::little) {
        trace.adoptBacking(std::move(backing));
    } else {
        // Big-endian host: the raw u64 pc column cannot be served in
        // place; decode everything eagerly instead.
        trace.reserve(count);
        for (const MicroOp &op : backing->decodeOps())
            trace.push(op);
    }
    return trace;
}

} // namespace

void
writeTraceV3(const TraceBuffer &trace, const std::string &path)
{
    // Build the five data sections in memory, then the block-sum
    // table, then assemble the (deterministic, canonical) file image
    // and write it in one go.
    std::vector<std::uint8_t> branchPc, branchTaken, opMeta, opPc,
        opExtra;
    opMeta.reserve(trace.size() * 4);
    std::uint64_t prevPc = 0;
    std::uint64_t prevExtra[6] = {};
    for (const MicroOp &op : trace) {
        std::uint8_t meta[4];
        packOpMeta(op, meta);
        opMeta.insert(opMeta.end(), meta, meta + 4);
        putVarint(opPc, zigzag(op.pc - prevPc));
        const auto cls = static_cast<std::uint8_t>(op.cls);
        putVarint(opExtra, zigzag(op.extra - prevExtra[cls]));
        prevPc = op.pc;
        prevExtra[cls] = op.extra;
        if (op.cls == InstClass::CondBranch) {
            std::uint8_t pc[8];
            putU64(pc, op.pc);
            branchPc.insert(branchPc.end(), pc, pc + 8);
            branchTaken.push_back(op.taken ? 1 : 0);
        }
    }

    const std::vector<std::uint8_t> *data[5] = {
        &branchPc, &branchTaken, &opMeta, &opPc, &opExtra};
    std::vector<std::uint8_t> blockSums;
    for (const auto *d : data) {
        for (std::size_t pos = 0; pos < d->size();
             pos += v3BlockBytes) {
            const std::size_t n =
                std::min(v3BlockBytes, d->size() - pos);
            std::uint8_t sum[8];
            putU64(sum, blockHash64(d->data() + pos, n));
            blockSums.insert(blockSums.end(), sum, sum + 8);
        }
    }

    std::size_t offsets[v3NumSections];
    std::size_t sizes[v3NumSections];
    std::size_t cursor = v3DirEnd;
    for (std::size_t i = 0; i < v3NumSections; ++i) {
        sizes[i] = i < 5 ? data[i]->size() : blockSums.size();
        cursor = alignUp(cursor, v3Align);
        offsets[i] = cursor;
        cursor += sizes[i];
    }

    std::vector<std::uint8_t> file(cursor, 0);
    std::memcpy(file.data(), magic, 8);
    putU32(file.data() + 8, versionColumnar);
    putU32(file.data() + 12, 0);
    putU64(file.data() + 16, trace.size());
    putU64(file.data() + v3DirOffset, branchTaken.size());
    for (std::size_t i = 0; i < v3NumSections; ++i) {
        putU64(file.data() + v3DirOffset + 8 + 16 * i, offsets[i]);
        putU64(file.data() + v3DirOffset + 8 + 16 * i + 8, sizes[i]);
    }
    putU64(file.data() + v3DirOffset + v3DirPayloadBytes,
           fnv1a64(file.data() + v3DirOffset, v3DirPayloadBytes));
    for (std::size_t i = 0; i < 5; ++i)
        std::memcpy(file.data() + offsets[i], data[i]->data(),
                    sizes[i]);
    std::memcpy(file.data() + offsets[5], blockSums.data(),
                sizes[5]);

    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        throw TraceIoError("cannot open '" + path + "' for writing");
    if (!file.empty() &&
        std::fwrite(file.data(), 1, file.size(), f.get()) !=
            file.size())
        throw TraceIoError("short write on records");
}

TraceBuffer
readTrace(const std::string &path, TraceReadMode mode)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        throw TraceIoError("cannot open '" + path + "' for reading");

    std::uint8_t header[24];
    if (std::fread(header, 1, sizeof(header), f.get()) !=
        sizeof(header))
        throw TraceIoError("truncated header in '" + path + "'");
    if (std::memcmp(header, magic, 8) != 0)
        throw TraceIoError("'" + path + "' is not a bpsim trace");
    const std::uint32_t ver = getU32(header + 8);
    const std::uint64_t count = getU64(header + 16);
    if (ver == versionCompressed)
        return readTraceCompressed(f.get(), path, count);
    if (ver == versionColumnar) {
        f.reset(); // re-opened (and possibly mapped) by the v3 loader
        return readTraceV3(path,
                           mode == TraceReadMode::ZeroCopy);
    }
    if (ver != version)
        throw TraceIoError("unsupported trace version in '" + path +
                           "'");

    // Validate the declared count against the actual file size
    // before reserving: a corrupt count field must produce a clean
    // TraceIoError, not a multi-gigabyte allocation.
    if (std::fseek(f.get(), 0, SEEK_END) != 0)
        throw TraceIoError("cannot seek in '" + path + "'");
    const long end = std::ftell(f.get());
    if (end < 0)
        throw TraceIoError("cannot seek in '" + path + "'");
    const std::uint64_t payload =
        static_cast<std::uint64_t>(end) - sizeof(header);
    if (count > payload / recordBytes)
        throw TraceIoError(
            "record count in '" + path +
            "' exceeds file size (corrupt header?)");
    if (std::fseek(f.get(), sizeof(header), SEEK_SET) != 0)
        throw TraceIoError("cannot seek in '" + path + "'");

    TraceBuffer trace;
    trace.reserve(count);
    std::vector<std::uint8_t> buf(4096 * recordBytes);
    std::uint64_t remaining = count;
    while (remaining > 0) {
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(remaining, 4096));
        const std::size_t got = std::fread(
            buf.data(), recordBytes, want, f.get());
        if (got == 0)
            throw TraceIoError("truncated records in '" + path + "'");
        for (std::size_t r = 0; r < got; ++r) {
            const std::uint8_t *rec = buf.data() + r * recordBytes;
            MicroOp op;
            op.pc = getU64(rec);
            op.extra = getU64(rec + 8);
            op.cls = static_cast<InstClass>(rec[16]);
            if (rec[16] > static_cast<std::uint8_t>(
                              InstClass::UncondBranch))
                throw TraceIoError("corrupt record in '" + path + "'");
            op.taken = rec[17] & 1;
            op.dst = rec[18];
            op.srcA = rec[19] & 0x3f;
            op.srcB = static_cast<std::uint8_t>(
                ((rec[17] >> 1) & 0x3f) | ((rec[19] >> 1) & 0x40));
            trace.push(op);
        }
        remaining -= got;
    }
    return trace;
}

} // namespace bpsim
