#include "trace/trace_io.hh"

#include <array>
#include <cstring>
#include <memory>
#include <vector>

namespace bpsim {

namespace {

constexpr char magic[8] = {'B', 'P', 'S', 'T', 'R', 'A', 'C', 'E'};
constexpr std::uint32_t version = 1;
constexpr std::size_t recordBytes = 20;

struct FileCloser
{
    void
    operator()(std::FILE *f) const
    {
        if (f)
            std::fclose(f);
    }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void
putU32(std::uint8_t *p, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void
putU64(std::uint8_t *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t
getU32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
getU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

} // namespace

void
writeTrace(const TraceBuffer &trace, const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        throw TraceIoError("cannot open '" + path + "' for writing");

    std::uint8_t header[24];
    std::memcpy(header, magic, 8);
    putU32(header + 8, version);
    putU32(header + 12, 0);
    putU64(header + 16, trace.size());
    if (std::fwrite(header, 1, sizeof(header), f.get()) !=
        sizeof(header))
        throw TraceIoError("short write on header");

    // Buffered record writes, 4K records at a time.
    std::vector<std::uint8_t> buf;
    buf.reserve(4096 * recordBytes);
    auto flush = [&] {
        if (buf.empty())
            return;
        if (std::fwrite(buf.data(), 1, buf.size(), f.get()) !=
            buf.size())
            throw TraceIoError("short write on records");
        buf.clear();
    };

    for (const MicroOp &op : trace) {
        std::uint8_t rec[recordBytes];
        putU64(rec, op.pc);
        putU64(rec + 8, op.extra);
        rec[16] = static_cast<std::uint8_t>(op.cls);
        rec[17] = op.taken ? 1 : 0;
        rec[18] = op.dst;
        // srcA/srcB are 6-bit register ids: pack both in one byte
        // plus the low bits of 17.
        rec[19] = static_cast<std::uint8_t>(op.srcA & 0x3f);
        rec[17] |= static_cast<std::uint8_t>((op.srcB & 0x3f) << 1);
        rec[19] |= static_cast<std::uint8_t>((op.srcB & 0x40) << 1);
        buf.insert(buf.end(), rec, rec + recordBytes);
        if (buf.size() >= 4096 * recordBytes)
            flush();
    }
    flush();
}

TraceBuffer
readTrace(const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        throw TraceIoError("cannot open '" + path + "' for reading");

    std::uint8_t header[24];
    if (std::fread(header, 1, sizeof(header), f.get()) !=
        sizeof(header))
        throw TraceIoError("truncated header in '" + path + "'");
    if (std::memcmp(header, magic, 8) != 0)
        throw TraceIoError("'" + path + "' is not a bpsim trace");
    if (getU32(header + 8) != version)
        throw TraceIoError("unsupported trace version in '" + path +
                           "'");
    const std::uint64_t count = getU64(header + 16);

    // Validate the declared count against the actual file size
    // before reserving: a corrupt count field must produce a clean
    // TraceIoError, not a multi-gigabyte allocation.
    if (std::fseek(f.get(), 0, SEEK_END) != 0)
        throw TraceIoError("cannot seek in '" + path + "'");
    const long end = std::ftell(f.get());
    if (end < 0)
        throw TraceIoError("cannot seek in '" + path + "'");
    const std::uint64_t payload =
        static_cast<std::uint64_t>(end) - sizeof(header);
    if (count > payload / recordBytes)
        throw TraceIoError(
            "record count in '" + path +
            "' exceeds file size (corrupt header?)");
    if (std::fseek(f.get(), sizeof(header), SEEK_SET) != 0)
        throw TraceIoError("cannot seek in '" + path + "'");

    TraceBuffer trace;
    trace.reserve(count);
    std::vector<std::uint8_t> buf(4096 * recordBytes);
    std::uint64_t remaining = count;
    while (remaining > 0) {
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(remaining, 4096));
        const std::size_t got = std::fread(
            buf.data(), recordBytes, want, f.get());
        if (got == 0)
            throw TraceIoError("truncated records in '" + path + "'");
        for (std::size_t r = 0; r < got; ++r) {
            const std::uint8_t *rec = buf.data() + r * recordBytes;
            MicroOp op;
            op.pc = getU64(rec);
            op.extra = getU64(rec + 8);
            op.cls = static_cast<InstClass>(rec[16]);
            if (rec[16] > static_cast<std::uint8_t>(
                              InstClass::UncondBranch))
                throw TraceIoError("corrupt record in '" + path + "'");
            op.taken = rec[17] & 1;
            op.dst = rec[18];
            op.srcA = rec[19] & 0x3f;
            op.srcB = static_cast<std::uint8_t>(
                ((rec[17] >> 1) & 0x3f) | ((rec[19] >> 1) & 0x40));
            trace.push(op);
        }
        remaining -= got;
    }
    return trace;
}

} // namespace bpsim
