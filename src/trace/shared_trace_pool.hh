/**
 * @file
 * Process-wide pool of materialized traces.
 *
 * A sweep runs many artifacts in one process, and most of them replay
 * the same twelve workload traces at the same ops/seed. Without
 * sharing, every SuiteTraces would deserialize (or regenerate) its
 * own private copy — at paper scale that is gigabytes of redundant
 * memory and most of the cold start. The pool guarantees each
 * (workload, ops, seed) key is materialized at most once per process
 * and handed out as a shared read-only buffer:
 *
 *  - the first requester materializes inline, through the supplied
 *    TraceCache (disk hit) or generator (miss, then stored);
 *  - concurrent requesters for the same key block on the in-flight
 *    materialization instead of duplicating it;
 *  - later requesters get the cached buffer for free.
 *
 * Entries are held by weak_ptr: the pool keeps nothing alive. When
 * the last suite using a trace drops it, the memory is reclaimed and
 * a later request re-materializes. Failures propagate to every
 * blocked requester and are not cached — the next request retries.
 *
 * Sharing is opt-in per SuiteTraces (see runner.hh): suites that are
 * byte-compared against a private-copy baseline keep private copies.
 */

#ifndef BPSIM_TRACE_SHARED_TRACE_POOL_HH
#define BPSIM_TRACE_SHARED_TRACE_POOL_HH

#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/types.hh"
#include "obs/metrics.hh"
#include "trace/trace_buffer.hh"
#include "trace/trace_cache.hh"

namespace bpsim {

/** Once-per-process trace materialization; see file comment. */
class SharedTracePool
{
  public:
    /** How a fetch was served. */
    enum class Source
    {
        Memory,   ///< already materialized in this process
        Disk,      ///< first requester, served by the trace cache
        Generated, ///< first requester, generated (and stored)
    };

    struct Stats
    {
        Counter memoryHits = 0;
        Counter diskHits = 0;
        Counter generated = 0;

        /** Export as `<prefix>.*` counters. */
        void publish(obs::MetricRegistry &reg,
                     const std::string &prefix = "trace.pool") const;
    };

    /** The process-wide instance. */
    static SharedTracePool &global();

    SharedTracePool() = default;
    SharedTracePool(const SharedTracePool &) = delete;
    SharedTracePool &operator=(const SharedTracePool &) = delete;

    /**
     * The trace for a key, materializing it at most once per process
     * (via @p cache, falling back to @p generate). Blocks when
     * another thread is already materializing the same key.
     * @p source (when non-null) reports how this call was served.
     * Materialization failures rethrow to every waiting caller.
     */
    std::shared_ptr<const TraceBuffer>
    fetch(const std::string &workload, Counter ops,
          std::uint64_t seed, const TraceCache &cache,
          const std::function<TraceBuffer()> &generate,
          Source *source = nullptr);

    Stats stats() const;

    /** Drop every entry and zero the stats (test isolation only —
     *  buffers still referenced elsewhere stay alive). */
    void clear();

  private:
    using TracePtr = std::shared_ptr<const TraceBuffer>;

    struct Entry
    {
        std::weak_ptr<const TraceBuffer> cached;
        /** Valid while some thread is materializing this key. */
        std::shared_future<TracePtr> inflight;
    };

    mutable std::mutex mu_;
    std::map<std::string, Entry> entries_;
    Stats stats_;
};

} // namespace bpsim

#endif // BPSIM_TRACE_SHARED_TRACE_POOL_HH
