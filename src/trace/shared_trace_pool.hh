/**
 * @file
 * Process-wide pool of materialized traces.
 *
 * A sweep runs many artifacts in one process, and most of them replay
 * the same twelve workload traces at the same ops/seed. Without
 * sharing, every SuiteTraces would deserialize (or regenerate) its
 * own private copy — at paper scale that is gigabytes of redundant
 * memory and most of the cold start. The pool guarantees each
 * (workload, ops, seed) key is materialized at most once per process
 * and handed out as a shared read-only buffer:
 *
 *  - the first requester materializes inline, through the supplied
 *    TraceCache (disk hit) or generator (miss, then stored);
 *  - concurrent requesters for the same key block on the in-flight
 *    materialization instead of duplicating it;
 *  - later requesters get the cached buffer for free.
 *
 * Entries are held by weak_ptr: the pool itself keeps nothing alive
 * by default. When the last suite using a trace drops it, the memory
 * is reclaimed and a later request re-materializes. Failures
 * propagate to every blocked requester and are not cached — the next
 * request retries.
 *
 * Setting BPSIM_TRACE_POOL_MB adds a bounded strong-reference LRU on
 * top: the pool pins up to that many megabytes of recently used
 * traces so a sweep that cycles through more suites than fit in the
 * weak window stops thrashing re-materialization, while a long
 * server process keeps its resident set capped. Over-budget traces
 * are evicted least-recently-fetched first (the weak entry remains,
 * so suites still holding the buffer are unaffected) and counted in
 * stats().evictions. Unset or 0 means unlimited (no pinning —
 * today's behavior).
 *
 * Sharing is opt-in per SuiteTraces (see runner.hh): suites that are
 * byte-compared against a private-copy baseline keep private copies.
 */

#ifndef BPSIM_TRACE_SHARED_TRACE_POOL_HH
#define BPSIM_TRACE_SHARED_TRACE_POOL_HH

#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/types.hh"
#include "obs/metrics.hh"
#include "trace/trace_buffer.hh"
#include "trace/trace_cache.hh"

namespace bpsim {

/** Once-per-process trace materialization; see file comment. */
class SharedTracePool
{
  public:
    /** How a fetch was served. */
    enum class Source
    {
        Memory,   ///< already materialized in this process
        Disk,      ///< first requester, served by the trace cache
        Generated, ///< first requester, generated (and stored)
    };

    struct Stats
    {
        Counter memoryHits = 0;
        Counter diskHits = 0;
        Counter generated = 0;
        /** Strong LRU entries dropped to stay under the budget. */
        Counter evictions = 0;

        /** Export as `<prefix>.*` counters. */
        void publish(obs::MetricRegistry &reg,
                     const std::string &prefix = "trace.pool") const;
    };

    /** The process-wide instance. */
    static SharedTracePool &global();

    SharedTracePool();
    SharedTracePool(const SharedTracePool &) = delete;
    SharedTracePool &operator=(const SharedTracePool &) = delete;

    /**
     * The trace for a key, materializing it at most once per process
     * (via @p cache, falling back to @p generate). Blocks when
     * another thread is already materializing the same key.
     * @p source (when non-null) reports how this call was served.
     * Materialization failures rethrow to every waiting caller.
     */
    std::shared_ptr<const TraceBuffer>
    fetch(const std::string &workload, Counter ops,
          std::uint64_t seed, const TraceCache &cache,
          const std::function<TraceBuffer()> &generate,
          Source *source = nullptr);

    Stats stats() const;

    /** Drop every entry (weak and pinned) and zero the stats (test
     *  isolation only — buffers still referenced elsewhere stay
     *  alive). */
    void clear();

    /** Override the BPSIM_TRACE_POOL_MB budget, in bytes (0 =
     *  unlimited). Evicts immediately if the pinned set is already
     *  over the new budget. Tests and long-running servers only. */
    void setBudgetBytes(std::size_t bytes);

    /** Bytes currently pinned by the strong LRU. */
    std::size_t pinnedBytes() const;

  private:
    using TracePtr = std::shared_ptr<const TraceBuffer>;

    struct Entry
    {
        std::weak_ptr<const TraceBuffer> cached;
        /** Valid while some thread is materializing this key. */
        std::shared_future<TracePtr> inflight;
    };

    struct LruEntry
    {
        std::string key;
        TracePtr trace;
        std::size_t bytes = 0;
    };

    /** Pin @p sp at the LRU front and evict over-budget tails.
     *  Caller holds mu_. No-op when the budget is unlimited. */
    void touchLocked(const std::string &key, const TracePtr &sp);

    mutable std::mutex mu_;
    std::map<std::string, Entry> entries_;
    /** Most recently fetched first; holds strong refs up to
     *  budgetBytes_. */
    std::list<LruEntry> lru_;
    std::size_t lruBytes_ = 0;
    std::size_t budgetBytes_ = 0;
    Stats stats_;
};

} // namespace bpsim

#endif // BPSIM_TRACE_SHARED_TRACE_POOL_HH
