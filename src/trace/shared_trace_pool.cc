#include "trace/shared_trace_pool.hh"

#include <cstdlib>
#include <utility>

#include "obs/span_trace.hh"

namespace bpsim {

void
SharedTracePool::Stats::publish(obs::MetricRegistry &reg,
                                const std::string &prefix) const
{
    reg.counter(prefix + ".memory_hits").set(memoryHits);
    reg.counter(prefix + ".disk_hits").set(diskHits);
    reg.counter(prefix + ".generated").set(generated);
    reg.counter(prefix + ".evictions").set(evictions);
}

SharedTracePool::SharedTracePool()
{
    if (const char *env = std::getenv("BPSIM_TRACE_POOL_MB")) {
        const long long mb = std::atoll(env);
        if (mb > 0)
            budgetBytes_ =
                static_cast<std::size_t>(mb) * 1024 * 1024;
    }
}

SharedTracePool &
SharedTracePool::global()
{
    static SharedTracePool pool;
    return pool;
}

SharedTracePool::Stats
SharedTracePool::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

std::size_t
SharedTracePool::pinnedBytes() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return lruBytes_;
}

void
SharedTracePool::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    lru_.clear();
    lruBytes_ = 0;
    stats_ = Stats();
}

void
SharedTracePool::setBudgetBytes(std::size_t bytes)
{
    std::lock_guard<std::mutex> lock(mu_);
    budgetBytes_ = bytes;
    while (budgetBytes_ != 0 && lruBytes_ > budgetBytes_ &&
           !lru_.empty()) {
        lruBytes_ -= lru_.back().bytes;
        lru_.pop_back();
        ++stats_.evictions;
    }
}

void
SharedTracePool::touchLocked(const std::string &key,
                             const TracePtr &sp)
{
    if (budgetBytes_ == 0)
        return;
    for (auto it = lru_.begin(); it != lru_.end(); ++it) {
        if (it->key == key) {
            lru_.splice(lru_.begin(), lru_, it);
            return;
        }
    }
    const std::size_t bytes = sp->memoryBytes();
    lru_.push_front({key, sp, bytes});
    lruBytes_ += bytes;
    while (lruBytes_ > budgetBytes_ && !lru_.empty()) {
        // Least-recently-fetched first; the weak entry stays, so
        // suites still replaying the trace keep it alive and a
        // re-fetch before the last ref drops is still a memory hit.
        lruBytes_ -= lru_.back().bytes;
        lru_.pop_back();
        ++stats_.evictions;
    }
}

std::shared_ptr<const TraceBuffer>
SharedTracePool::fetch(const std::string &workload, Counter ops,
                       std::uint64_t seed, const TraceCache &cache,
                       const std::function<TraceBuffer()> &generate,
                       Source *source)
{
    const std::string key = workload + "|" + std::to_string(ops) +
                            "|" + std::to_string(seed);
    std::promise<TracePtr> mine;
    std::shared_future<TracePtr> theirs;
    {
        std::lock_guard<std::mutex> lock(mu_);
        Entry &e = entries_[key];
        if (TracePtr sp = e.cached.lock()) {
            ++stats_.memoryHits;
            touchLocked(key, sp);
            if (source)
                *source = Source::Memory;
            obs::spanInstant("pool.hit", workload);
            return sp;
        }
        if (e.inflight.valid())
            theirs = e.inflight;
        else
            e.inflight = mine.get_future().share();
    }

    if (theirs.valid()) {
        TracePtr sp;
        {
            // Blocked behind another thread's materialization of the
            // same trace — the contention the timeline attributes.
            obs::SpanScope waitSpan("pool.wait", workload);
            sp = theirs.get(); // rethrows the producer's failure
        }
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.memoryHits;
        touchLocked(key, sp);
        if (source)
            *source = Source::Memory;
        return sp;
    }

    // This thread owns the materialization for the key.
    try {
        bool hit = false;
        TracePtr sp;
        {
            obs::SpanScope matSpan("pool.materialize", workload,
                                   "ops", ops);
            sp = std::make_shared<const TraceBuffer>(
                cache.fetch(workload, ops, seed, generate, &hit));
        }
        {
            std::lock_guard<std::mutex> lock(mu_);
            Entry &e = entries_[key];
            e.cached = sp;
            e.inflight = std::shared_future<TracePtr>();
            touchLocked(key, sp);
            if (hit)
                ++stats_.diskHits;
            else
                ++stats_.generated;
        }
        if (source)
            *source = hit ? Source::Disk : Source::Generated;
        mine.set_value(sp);
        return sp;
    } catch (...) {
        {
            // Uncache the failure so the next request retries.
            std::lock_guard<std::mutex> lock(mu_);
            entries_[key].inflight = std::shared_future<TracePtr>();
        }
        mine.set_exception(std::current_exception());
        throw;
    }
}

} // namespace bpsim
