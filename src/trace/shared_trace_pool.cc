#include "trace/shared_trace_pool.hh"

#include <utility>

#include "obs/span_trace.hh"

namespace bpsim {

void
SharedTracePool::Stats::publish(obs::MetricRegistry &reg,
                                const std::string &prefix) const
{
    reg.counter(prefix + ".memory_hits").set(memoryHits);
    reg.counter(prefix + ".disk_hits").set(diskHits);
    reg.counter(prefix + ".generated").set(generated);
}

SharedTracePool &
SharedTracePool::global()
{
    static SharedTracePool pool;
    return pool;
}

SharedTracePool::Stats
SharedTracePool::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void
SharedTracePool::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    stats_ = Stats();
}

std::shared_ptr<const TraceBuffer>
SharedTracePool::fetch(const std::string &workload, Counter ops,
                       std::uint64_t seed, const TraceCache &cache,
                       const std::function<TraceBuffer()> &generate,
                       Source *source)
{
    const std::string key = workload + "|" + std::to_string(ops) +
                            "|" + std::to_string(seed);
    std::promise<TracePtr> mine;
    std::shared_future<TracePtr> theirs;
    {
        std::lock_guard<std::mutex> lock(mu_);
        Entry &e = entries_[key];
        if (TracePtr sp = e.cached.lock()) {
            ++stats_.memoryHits;
            if (source)
                *source = Source::Memory;
            obs::spanInstant("pool.hit", workload);
            return sp;
        }
        if (e.inflight.valid())
            theirs = e.inflight;
        else
            e.inflight = mine.get_future().share();
    }

    if (theirs.valid()) {
        TracePtr sp;
        {
            // Blocked behind another thread's materialization of the
            // same trace — the contention the timeline attributes.
            obs::SpanScope waitSpan("pool.wait", workload);
            sp = theirs.get(); // rethrows the producer's failure
        }
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.memoryHits;
        if (source)
            *source = Source::Memory;
        return sp;
    }

    // This thread owns the materialization for the key.
    try {
        bool hit = false;
        TracePtr sp;
        {
            obs::SpanScope matSpan("pool.materialize", workload,
                                   "ops", ops);
            sp = std::make_shared<const TraceBuffer>(
                cache.fetch(workload, ops, seed, generate, &hit));
        }
        {
            std::lock_guard<std::mutex> lock(mu_);
            Entry &e = entries_[key];
            e.cached = sp;
            e.inflight = std::shared_future<TracePtr>();
            if (hit)
                ++stats_.diskHits;
            else
                ++stats_.generated;
        }
        if (source)
            *source = hit ? Source::Disk : Source::Generated;
        mine.set_value(sp);
        return sp;
    } catch (...) {
        {
            // Uncache the failure so the next request retries.
            std::lock_guard<std::mutex> lock(mu_);
            entries_[key].inflight = std::shared_future<TracePtr>();
        }
        mine.set_exception(std::current_exception());
        throw;
    }
}

} // namespace bpsim
