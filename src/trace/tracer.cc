#include "trace/tracer.hh"

namespace bpsim {

namespace {

/** Bytes per static branch-site slot in the synthetic code layout. */
constexpr Addr slotBytes = 16;

} // namespace

Tracer::Tracer(TraceBuffer &buf, Addr code_base, Addr data_base,
               Counter max_ops, std::uint64_t seed)
    : buf_(buf),
      codeBase_(code_base),
      dataBase_(data_base),
      maxOps_(max_ops),
      rng_(seed),
      curSlotPc_(code_base)
{
}

Addr
Tracer::sitePc(std::uint32_t site) const
{
    return codeBase_ + static_cast<Addr>(site) * slotBytes;
}

std::uint32_t
Tracer::siteOf(const std::source_location &loc)
{
    // Line and column uniquely identify a call site within a kernel
    // source file; they are stable across runs of the same build.
    return loc.line() * 8u + (loc.column() & 7u);
}

void
Tracer::emit(MicroOp op)
{
    if (ops_ >= maxOps_)
        throw TraceLimit{};
    buf_.push(op);
    ++ops_;
}

std::uint8_t
Tracer::nextDst()
{
    // Cycle through registers 1..63; 0 is reserved for "none".
    regCursor_ = static_cast<std::uint8_t>(regCursor_ % 63 + 1);
    prevDst_ = lastDst_;
    lastDst_ = regCursor_;
    return regCursor_;
}

bool
Tracer::condBranch(bool cond, BranchHint hint, std::source_location loc)
{
    return condBranchAt(siteOf(loc), cond, hint);
}

bool
Tracer::condBranchAt(std::uint32_t site, bool cond, BranchHint hint)
{
    MicroOp op;
    op.pc = sitePc(site);
    op.cls = InstClass::CondBranch;
    op.taken = cond;
    // Loop branches jump backward, if/else branches forward; the
    // distance only matters to the BTB and I-cache models.
    op.extra = hint == BranchHint::Backward
                   ? (op.pc >= 16 * slotBytes ? op.pc - 16 * slotBytes
                                              : codeBase_)
                   : op.pc + 8 * slotBytes;
    // The branch consumes the most recent results, so in the timing
    // model its resolution naturally waits on the load or ALU chain
    // that computed the condition.
    op.srcA = lastDst_;
    op.srcB = lastLoadDst_;
    curSlotPc_ = op.pc;
    slotOffset_ = 0;
    emit(op);
    return cond;
}

void
Tracer::jump(std::uint32_t site)
{
    MicroOp op;
    op.pc = curSlotPc_ + 4 * ((slotOffset_++ % 3) + 1);
    op.cls = InstClass::UncondBranch;
    op.taken = true;
    op.extra = sitePc(site);
    curSlotPc_ = op.extra;
    slotOffset_ = 0;
    emit(op);
}

void
Tracer::alu(unsigned n)
{
    for (unsigned i = 0; i < n; ++i) {
        MicroOp op;
        op.pc = curSlotPc_ + 4 * ((slotOffset_++ % 3) + 1);
        op.cls = InstClass::IntAlu;
        // Mix short dependence chains with independent ops so the
        // OoO core sees realistic ILP (~3-4 independent chains in
        // flight, like compiled integer code).
        const unsigned shape = static_cast<unsigned>(rng_.nextRange(10));
        if (shape < 4)
            op.srcA = lastDst_;
        else if (shape < 7)
            op.srcA = prevDst_;
        else
            op.srcA = 0; // immediate/loop-invariant operand
        op.srcB = rng_.nextBool(0.2) ? lastLoadDst_ : 0;
        op.dst = nextDst();
        emit(op);
    }
}

void
Tracer::mul()
{
    MicroOp op;
    op.pc = curSlotPc_ + 4 * ((slotOffset_++ % 3) + 1);
    op.cls = InstClass::IntMul;
    op.srcA = lastDst_;
    op.srcB = prevDst_;
    op.dst = nextDst();
    emit(op);
}

void
Tracer::load(Addr addr)
{
    MicroOp op;
    op.pc = curSlotPc_ + 4 * ((slotOffset_++ % 3) + 1);
    op.cls = InstClass::Load;
    op.extra = dataBase_ + addr;
    // Addresses usually come from an induction variable or base
    // register rather than the immediately preceding result.
    op.srcA = rng_.nextBool(0.35) ? lastDst_ : 0;
    op.dst = nextDst();
    lastLoadDst_ = op.dst;
    emit(op);
}

void
Tracer::store(Addr addr)
{
    MicroOp op;
    op.pc = curSlotPc_ + 4 * ((slotOffset_++ % 3) + 1);
    op.cls = InstClass::Store;
    op.extra = dataBase_ + addr;
    op.srcA = lastDst_;
    op.srcB = lastLoadDst_;
    emit(op);
}

} // namespace bpsim
