/**
 * @file
 * Binary trace file I/O.
 *
 * Traces can be expensive to generate at paper scale, and external
 * traces (e.g. converted ChampSim/SimpleScalar traces) are the other
 * way to feed this simulator. Two little-endian formats share one
 * header; readTrace() dispatches on the version field:
 *
 *   offset  size  field
 *   0       8     magic "BPSTRACE"
 *   8       4     version (1 = raw, 2 = compressed)
 *   12      4     reserved (0)
 *   16      8     record count
 *
 * Version 1 (writeTrace) is a fixed record stream, 20 bytes each:
 *   pc (8), extra (8), class (1),
 *   flags (1: bit0 = taken, bits1-6 = srcB low),
 *   dst (1), srcA low 6 bits + srcB bit6 (1)
 * Register ids are 6 bits (0..63), so the two sources pack into the
 * spare flag bits (srcB carries a 7th bit).
 *
 * Version 2 (writeTraceCompressed) delta+varint encodes the same
 * field domain — the trace cache's on-disk format. Per record:
 *   4 packed bytes: class (3b), taken (1b), dst (8b), srcA (6b),
 *                   srcB (7b); the top 7 bits must be zero
 *   LEB128 varint:  zigzag(pc - previous pc)
 *   LEB128 varint:  zigzag(extra - previous extra *of this class*)
 * The per-class extra baseline keeps interleaved streams (branch
 * targets vs memory addresses vs constant-zero ALU extras) each
 * delta-small. The payload ends with a FNV-1a-64 checksum (8 bytes),
 * so truncation and bit flips surface as TraceIoError instead of a
 * silently wrong trace; decode also rejects non-canonical spare
 * bits, oversized varints and trailing garbage.
 */

#ifndef BPSIM_TRACE_TRACE_IO_HH
#define BPSIM_TRACE_TRACE_IO_HH

#include <cstdio>
#include <stdexcept>
#include <string>

#include "trace/trace_buffer.hh"

namespace bpsim {

/** Thrown on malformed trace files or I/O failures. */
class TraceIoError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Write @p trace to @p path (raw v1); throws TraceIoError. */
void writeTrace(const TraceBuffer &trace, const std::string &path);

/** Write @p trace delta+varint compressed (v2) with a trailing
 *  checksum; throws TraceIoError on failure. Reading it back yields
 *  a bit-identical trace (same domain as the v1 format). */
void writeTraceCompressed(const TraceBuffer &trace,
                          const std::string &path);

/** Read a trace written by either writer; throws TraceIoError. */
TraceBuffer readTrace(const std::string &path);

} // namespace bpsim

#endif // BPSIM_TRACE_TRACE_IO_HH
