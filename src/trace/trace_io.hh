/**
 * @file
 * Binary trace file I/O.
 *
 * Traces can be expensive to generate at paper scale, and external
 * traces (e.g. converted ChampSim/SimpleScalar traces) are the other
 * way to feed this simulator. The format is a fixed little-endian
 * record stream with a small header:
 *
 *   offset  size  field
 *   0       8     magic "BPSTRACE"
 *   8       4     version (currently 1)
 *   12      4     reserved (0)
 *   16      8     record count
 *   24      ...   records, 20 bytes each:
 *                   pc (8), extra (8), class (1),
 *                   flags (1: bit0 = taken, bits1-6 = srcB low),
 *                   dst (1), srcA low 6 bits + srcB bit6 (1)
 *
 * Register ids are 6 bits (0..63), so the two sources pack into the
 * spare flag bits.
 */

#ifndef BPSIM_TRACE_TRACE_IO_HH
#define BPSIM_TRACE_TRACE_IO_HH

#include <cstdio>
#include <stdexcept>
#include <string>

#include "trace/trace_buffer.hh"

namespace bpsim {

/** Thrown on malformed trace files or I/O failures. */
class TraceIoError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Write @p trace to @p path; throws TraceIoError on failure. */
void writeTrace(const TraceBuffer &trace, const std::string &path);

/** Read a trace written by writeTrace; throws TraceIoError. */
TraceBuffer readTrace(const std::string &path);

} // namespace bpsim

#endif // BPSIM_TRACE_TRACE_IO_HH
