/**
 * @file
 * Binary trace file I/O.
 *
 * Traces can be expensive to generate at paper scale, and external
 * traces (e.g. converted ChampSim/SimpleScalar traces) are the other
 * way to feed this simulator. Three little-endian formats share one
 * header; readTrace() dispatches on the version field:
 *
 *   offset  size  field
 *   0       8     magic "BPSTRACE"
 *   8       4     version (1 = raw, 2 = compressed, 3 = columnar)
 *   12      4     reserved (0)
 *   16      8     record count
 *
 * Version 1 (writeTrace) is a fixed record stream, 20 bytes each:
 *   pc (8), extra (8), class (1),
 *   flags (1: bit0 = taken, bits1-6 = srcB low),
 *   dst (1), srcA low 6 bits + srcB bit6 (1)
 * Register ids are 6 bits (0..63), so the two sources pack into the
 * spare flag bits (srcB carries a 7th bit).
 *
 * Version 2 (writeTraceCompressed) delta+varint encodes the same
 * field domain — a compact archival/interchange format. Per record:
 *   4 packed bytes: class (3b), taken (1b), dst (8b), srcA (6b),
 *                   srcB (7b); the top 7 bits must be zero
 *   LEB128 varint:  zigzag(pc - previous pc)
 *   LEB128 varint:  zigzag(extra - previous extra *of this class*)
 * The per-class extra baseline keeps interleaved streams (branch
 * targets vs memory addresses vs constant-zero ALU extras) each
 * delta-small. The payload ends with a FNV-1a-64 checksum (8 bytes),
 * so truncation and bit flips surface as TraceIoError instead of a
 * silently wrong trace; decode also rejects non-canonical spare
 * bits, oversized varints and trailing garbage.
 *
 * Version 3 (writeTraceV3) is columnar and mmap-able — the trace
 * cache's on-disk format. After the common header, a directory
 * (branch count, section table, FNV-1a-64 directory checksum) names
 * six sections, each at a 64-byte-aligned offset, zero-padded
 * between:
 *
 *   0  branchPc     raw u64 LE per conditional branch
 *   1  branchTaken  one byte (0/1) per conditional branch
 *   2  opMeta       4 packed bytes per op (v2's packing)
 *   3  opPcDelta    LEB128 zigzag(pc delta) stream
 *   4  opExtraDelta LEB128 zigzag(per-class extra delta) stream
 *   5  blockSums    64-bit block hash per 64 KiB block of sections
 *                   0-4 (four-lane word-wise multiply-rotate — see
 *                   blockHash64 in trace_io.cc; FNV-1a would cost
 *                   one multiply per byte on every warm cache load)
 *
 * Sections 0-1 duplicate the conditional-branch columns of the op
 * stream so accuracy replay never decodes ops at all: readTrace()
 * memory-maps the file, validates structure, padding and every block
 * checksum, and returns a TraceBuffer whose branchView() points
 * straight into the mapping (zero copy, zero decode). The op stream
 * (sections 2-4) is decoded lazily, only when a consumer touches
 * micro-ops. The encoding is canonical: re-encoding a decoded trace
 * reproduces the file byte for byte.
 */

#ifndef BPSIM_TRACE_TRACE_IO_HH
#define BPSIM_TRACE_TRACE_IO_HH

#include <cstdio>
#include <stdexcept>
#include <string>

#include "trace/trace_buffer.hh"

namespace bpsim {

/** Thrown on malformed trace files or I/O failures. */
class TraceIoError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Write @p trace to @p path (raw v1); throws TraceIoError. */
void writeTrace(const TraceBuffer &trace, const std::string &path);

/** Write @p trace delta+varint compressed (v2) with a trailing
 *  checksum; throws TraceIoError on failure. Reading it back yields
 *  a bit-identical trace (same domain as the v1 format). */
void writeTraceCompressed(const TraceBuffer &trace,
                          const std::string &path);

/** Write @p trace in the columnar mmap-able v3 layout (see file
 *  comment); throws TraceIoError on failure. Reading it back yields
 *  a bit-identical trace served zero-copy. */
void writeTraceV3(const TraceBuffer &trace, const std::string &path);

/**
 * How readTrace may back the returned buffer.
 *
 * ZeroCopy memory-maps a v3 file: branchView() is served from the
 * file and the op stream decodes lazily on first use. That is only
 * safe for files the caller owns for the buffer's lifetime — a
 * mapping's pages track the inode, so an external in-place truncate
 * (a stomping writer in a shared cache directory) turns every later
 * access into SIGBUS, not an error return. PrivateCopy reads the
 * bytes into an owned buffer instead: a concurrent truncation
 * surfaces as a short read and throws TraceIoError, which shared
 * consumers (the trace cache) heal by regenerating.
 */
enum class TraceReadMode { ZeroCopy, PrivateCopy };

/** Read a trace written by any writer; throws TraceIoError. */
TraceBuffer readTrace(const std::string &path,
                      TraceReadMode mode = TraceReadMode::ZeroCopy);

} // namespace bpsim

#endif // BPSIM_TRACE_TRACE_IO_HH
