/**
 * @file
 * Tracer: the instrumentation interface workload kernels use to emit
 * dynamic instructions.
 *
 * A kernel is ordinary C++ that runs a real algorithm; every
 * conditional branch the algorithm makes goes through condBranch(),
 * which (a) assigns the branch a stable synthetic PC derived from
 * the call site, (b) records the outcome into the trace, and (c)
 * returns the condition so the kernel's own control flow follows it.
 * This keeps the generated outcome stream genuinely data-dependent —
 * the same property SPEC traces have — instead of being sampled from
 * a statistical model.
 *
 * PC model: each static branch site occupies a 16-byte slot at
 * kernel_code_base + site * 16; non-branch instructions are placed
 * in the slot of the most recent site. The static-site working set
 * therefore determines the I-cache footprint, which kernels shape by
 * how many distinct sites they touch.
 */

#ifndef BPSIM_TRACE_TRACER_HH
#define BPSIM_TRACE_TRACER_HH

#include <cstdint>
#include <source_location>

#include "common/rng.hh"
#include "common/types.hh"
#include "trace/trace_buffer.hh"

namespace bpsim {

/**
 * Thrown by the Tracer when the requested trace length is reached;
 * unwinds the kernel so generation stops cleanly mid-algorithm.
 */
struct TraceLimit
{
};

/** Direction hint for synthesizing a conditional branch's target. */
enum class BranchHint : std::uint8_t {
    Forward,  ///< if/else-style branch: taken target is ahead
    Backward, ///< loop-style branch: taken target is behind
};

/** Instrumentation front-end that kernels emit instructions through. */
class Tracer
{
  public:
    /**
     * @param buf Destination trace.
     * @param code_base Base PC of this kernel's synthetic code region.
     * @param data_base Base address of its synthetic data region.
     * @param max_ops Generation stops (via TraceLimit) at this many ops.
     * @param seed Seed for register/dependence synthesis.
     */
    Tracer(TraceBuffer &buf, Addr code_base, Addr data_base,
           Counter max_ops, std::uint64_t seed);

    /**
     * Emit a conditional branch at the current call site and return
     * @p cond so the kernel can branch on it.
     */
    bool condBranch(bool cond, BranchHint hint = BranchHint::Forward,
                    std::source_location loc =
                        std::source_location::current());

    /**
     * Emit a conditional branch at an explicitly numbered site.
     * Used when one source line stands for many static branches
     * (e.g. the arms of a generated switch).
     */
    bool condBranchAt(std::uint32_t site, bool cond,
                      BranchHint hint = BranchHint::Forward);

    /** Emit an unconditional branch to the slot of @p site. */
    void jump(std::uint32_t site);

    /** Emit @p n single-cycle ALU instructions. */
    void alu(unsigned n = 1);

    /** Emit one multi-cycle multiply. */
    void mul();

    /** Emit a load of synthetic data address @p addr. */
    void load(Addr addr);

    /** Emit a store to synthetic data address @p addr. */
    void store(Addr addr);

    /** Instructions emitted so far. */
    Counter ops() const { return ops_; }

    /** True once the op budget is exhausted. */
    bool done() const { return ops_ >= maxOps_; }

    /** Base PC of the kernel's code region. */
    Addr codeBase() const { return codeBase_; }

    /** Base address of the kernel's data region. */
    Addr dataBase() const { return dataBase_; }

  private:
    /** PC of the 16-byte slot for static site @p site. */
    Addr sitePc(std::uint32_t site) const;

    /** Derive a stable site number from a source location. */
    static std::uint32_t siteOf(const std::source_location &loc);

    /** Append @p op, bumping counters; throws TraceLimit when full. */
    void emit(MicroOp op);

    /** Allocate the next destination register. */
    std::uint8_t nextDst();

    TraceBuffer &buf_;
    Addr codeBase_;
    Addr dataBase_;
    Counter maxOps_;
    Counter ops_ = 0;
    Rng rng_;

    Addr curSlotPc_;
    unsigned slotOffset_ = 0;
    std::uint8_t regCursor_ = 0;
    std::uint8_t lastDst_ = 0;
    std::uint8_t prevDst_ = 0;
    std::uint8_t lastLoadDst_ = 0;
};

} // namespace bpsim

#endif // BPSIM_TRACE_TRACER_HH
