#include "trace/trace_cache.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <system_error>
#include <thread>

#include "obs/span_trace.hh"
#include "trace/trace_io.hh"

namespace bpsim {

namespace fs = std::filesystem;

namespace {

// Process-wide (TraceCache is a value type copied into every
// SuiteTraces): a cache that cannot be written to is one condition,
// so it earns one warning, not one per trace per bench.
std::atomic<Counter> storeFailureCount{0};
std::atomic<bool> storeFailureWarned{false};

void
noteStoreFailure(const std::string &what)
{
    storeFailureCount.fetch_add(1, std::memory_order_relaxed);
    if (!storeFailureWarned.exchange(true,
                                     std::memory_order_relaxed))
        std::fprintf(stderr,
                     "trace-cache: %s; continuing without the cache "
                     "(further store failures suppressed)\n",
                     what.c_str());
}

} // namespace

Counter
TraceCache::storeFailures()
{
    return storeFailureCount.load(std::memory_order_relaxed);
}

void
TraceCache::resetStoreFailuresForTest()
{
    storeFailureCount.store(0, std::memory_order_relaxed);
    storeFailureWarned.store(false, std::memory_order_relaxed);
}

TraceCache::TraceCache(std::string dir, int format_version)
    : dir_(std::move(dir)), formatVersion_(format_version)
{
}

TraceCache
TraceCache::fromEnv()
{
    const char *env = std::getenv("BPSIM_TRACE_CACHE");
    if (!env || *env == '\0')
        return TraceCache();
    return TraceCache(env);
}

std::string
TraceCache::entryPath(const std::string &workload, Counter ops,
                      std::uint64_t seed) const
{
    return entryPath(workload, ops, seed, formatVersion_);
}

std::string
TraceCache::entryPath(const std::string &workload, Counter ops,
                      std::uint64_t seed, int version) const
{
    return dir_ + "/" + workload + "_ops" + std::to_string(ops) +
           "_seed" + std::to_string(seed) + "_v" +
           std::to_string(version) + ".bptrace";
}

namespace {

/** readTrace + exact-length check, nullopt on any TraceIoError. */
std::optional<TraceBuffer>
loadEntry(const std::string &path, Counter ops)
{
    std::error_code ec;
    if (!fs::exists(path, ec))
        return std::nullopt;
    try {
        // PrivateCopy, not the mmap fast path: the cache directory
        // is shared with other processes, and an in-place stomp of a
        // mapped entry would SIGBUS at first touch instead of
        // failing validation. A short read through the copy path is
        // just a TraceIoError, healed below by regeneration.
        TraceBuffer trace = readTrace(path, TraceReadMode::PrivateCopy);
        // The header's count can validate while the payload was cut
        // short mid-record stream; demand the exact length too.
        if (trace.size() != ops)
            throw TraceIoError("cached trace '" + path +
                               "' has wrong length");
        return trace;
    } catch (const TraceIoError &e) {
        // Treat as a miss but do NOT unlink: between our failed read
        // and a remove(), another process may have atomically renamed
        // a good entry into place — deleting by path would throw that
        // away (check-then-act race). Our own regeneration store()
        // overwrites the corrupt file atomically instead.
        std::fprintf(stderr,
                     "trace-cache: ignoring corrupt entry: %s\n",
                     e.what());
        return std::nullopt;
    }
}

} // namespace

std::optional<TraceBuffer>
TraceCache::load(const std::string &workload, Counter ops,
                 std::uint64_t seed) const
{
    if (!enabled())
        return std::nullopt;
    if (auto trace = loadEntry(entryPath(workload, ops, seed), ops))
        return trace;
    // Migration: a v3 miss may be covered by a v2 entry from an older
    // build. Decode it, re-store under the current version (atomic,
    // self-healing like any store) and serve it as a hit; the v2 file
    // stays for any older binaries sharing the cache dir. The
    // re-store pays the decode exactly once — the next load maps the
    // v3 entry zero-copy.
    if (formatVersion_ >= 3) {
        if (auto trace = loadEntry(
                entryPath(workload, ops, seed, 2), ops)) {
            store(workload, ops, seed, *trace);
            return trace;
        }
    }
    return std::nullopt;
}

bool
TraceCache::store(const std::string &workload, Counter ops,
                  std::uint64_t seed, const TraceBuffer &trace) const
{
    if (!enabled())
        return false;
    std::error_code ec;
    fs::create_directories(dir_, ec);
    const std::string path = entryPath(workload, ops, seed);
    // Process+thread-unique temp name: concurrent benches sharing a
    // cache dir write distinct temps and race only on the atomic
    // rename, where either winner is a valid entry.
    const std::string tmp =
        path + ".tmp." +
        std::to_string(static_cast<unsigned long long>(
            std::hash<std::thread::id>{}(
                std::this_thread::get_id()) ^
            static_cast<unsigned long long>(
                reinterpret_cast<std::uintptr_t>(&trace))));
    try {
        if (formatVersion_ >= 3)
            writeTraceV3(trace, tmp);
        else
            writeTraceCompressed(trace, tmp);
    } catch (const TraceIoError &e) {
        noteStoreFailure(std::string("store failed: ") + e.what());
        fs::remove(tmp, ec);
        return false;
    }
    fs::rename(tmp, path, ec);
    if (ec) {
        noteStoreFailure("cannot publish '" + path +
                         "': " + ec.message());
        fs::remove(tmp, ec);
        return false;
    }
    return true;
}

TraceBuffer
TraceCache::fetch(const std::string &workload, Counter ops,
                  std::uint64_t seed,
                  const std::function<TraceBuffer()> &generate,
                  bool *hit) const
{
    {
        obs::SpanScope loadSpan("cache.load", workload, "ops", ops);
        if (auto cached = load(workload, ops, seed)) {
            if (hit)
                *hit = true;
            return std::move(*cached);
        }
    }
    if (hit)
        *hit = false;
    TraceBuffer trace;
    {
        obs::SpanScope genSpan("trace.generate", workload, "ops", ops);
        trace = generate();
    }
    {
        obs::SpanScope storeSpan("cache.store", workload, "ops", ops);
        store(workload, ops, seed, trace);
    }
    return trace;
}

} // namespace bpsim
