// TraceBuffer is header-only; see trace_buffer.hh.
#include "trace/trace_buffer.hh"
