#include "trace/trace_buffer.hh"

#include <mutex>
#include <stdexcept>

namespace bpsim {

namespace {

/**
 * One mutex for all lazy op materializations. Materialization is a
 * once-per-buffer event (usually once per *process* per workload via
 * SharedTracePool), so contention is irrelevant; a shared mutex
 * keeps TraceBuffer copyable, which a per-instance std::once_flag
 * would not.
 */
std::mutex &
materializeMutex()
{
    static std::mutex m;
    return m;
}

} // namespace

void
TraceBuffer::materializeOps() const
{
    std::lock_guard<std::mutex> lock(materializeMutex());
    if (opsReady_.load(std::memory_order_relaxed))
        return;
    std::vector<MicroOp> decoded = backing_->decodeOps();
    if (decoded.size() != opCount_)
        throw std::runtime_error(
            "trace backing decoded wrong op count");
    ops_ = std::move(decoded);
    opsReady_.store(true, std::memory_order_release);
}

void
TraceBuffer::adoptBacking(std::shared_ptr<const TraceBacking> backing)
{
    clear();
    opCount_ = backing->opCount();
    condBranches_ = static_cast<Counter>(backing->branchCount());
    backing_ = std::move(backing);
    branchesFromBacking_ = true;
    opsReady_.store(false, std::memory_order_release);
}

void
TraceBuffer::detachFromBacking()
{
    opsVec(); // materialize before the backing reference goes away
    if (branchesFromBacking_) {
        branchPcs_.assign(backing_->branchPc(),
                          backing_->branchPc() +
                              backing_->branchCount());
        branchTaken_.assign(backing_->branchTaken(),
                            backing_->branchTaken() +
                                backing_->branchCount());
        branchesFromBacking_ = false;
    }
    backing_.reset();
}

void
TraceBuffer::rebuildBranchView()
{
    const std::vector<MicroOp> &ops = opsVec();
    branchPcs_.clear();
    branchTaken_.clear();
    for (const MicroOp &op : ops) {
        if (op.cls == InstClass::CondBranch) {
            branchPcs_.push_back(op.pc);
            branchTaken_.push_back(op.taken ? 1 : 0);
        }
    }
    branchesFromBacking_ = false;
    branchesDirty_ = false;
    condBranches_ = static_cast<Counter>(branchPcs_.size());
}

void
TraceBuffer::clear()
{
    ops_.clear();
    branchPcs_.clear();
    branchTaken_.clear();
    backing_.reset();
    opCount_ = 0;
    branchesFromBacking_ = false;
    branchesDirty_ = false;
    condBranches_ = 0;
    opsReady_.store(true, std::memory_order_release);
}

void
TraceBuffer::copyFrom(const TraceBuffer &other)
{
    // Snapshot the flag first. When the source has not materialized
    // yet, its ops_ is empty by contract and may be written by a
    // concurrent materialization — skip it entirely and
    // re-materialize later from the shared backing.
    const bool ready = other.opsReady_.load(std::memory_order_acquire);
    if (ready)
        ops_ = other.ops_;
    else
        ops_.clear();
    branchPcs_ = other.branchPcs_;
    branchTaken_ = other.branchTaken_;
    backing_ = other.backing_;
    opCount_ = other.opCount_;
    branchesFromBacking_ = other.branchesFromBacking_;
    branchesDirty_ = other.branchesDirty_;
    condBranches_ = other.condBranches_;
    opsReady_.store(ready, std::memory_order_release);
}

void
TraceBuffer::moveFrom(TraceBuffer &&other) noexcept
{
    const bool ready = other.opsReady_.load(std::memory_order_acquire);
    if (ready)
        ops_ = std::move(other.ops_);
    else
        ops_.clear();
    branchPcs_ = std::move(other.branchPcs_);
    branchTaken_ = std::move(other.branchTaken_);
    backing_ = std::move(other.backing_);
    opCount_ = other.opCount_;
    branchesFromBacking_ = other.branchesFromBacking_;
    branchesDirty_ = other.branchesDirty_;
    condBranches_ = other.condBranches_;
    opsReady_.store(ready, std::memory_order_release);
    other.clear();
}

TraceBuffer::TraceBuffer(const TraceBuffer &other)
{
    copyFrom(other);
}

TraceBuffer::TraceBuffer(TraceBuffer &&other) noexcept
{
    moveFrom(std::move(other));
}

TraceBuffer &
TraceBuffer::operator=(const TraceBuffer &other)
{
    if (this != &other)
        copyFrom(other);
    return *this;
}

TraceBuffer &
TraceBuffer::operator=(TraceBuffer &&other) noexcept
{
    if (this != &other)
        moveFrom(std::move(other));
    return *this;
}

} // namespace bpsim
