/**
 * @file
 * Shared on-disk cache of generated traces.
 *
 * Every bench binary replays the same twelve SPECint stand-in traces,
 * and regenerating them from the workload kernels dominates start-up
 * once BPSIM_OPS_PER_WORKLOAD grows toward paper-scale runs. The
 * cache stores each generated trace once per configuration:
 *
 *   <dir>/<workload>_ops<N>_seed<S>_v<version>.bptrace
 *
 * keyed by workload name, trace length, generation seed and the cache
 * format version (bumped whenever trace generation or the trace file
 * format changes meaning). Entries are columnar v3 trace_io files
 * (writeTraceV3), which load memory-mapped: branchView() is served
 * zero-copy from the file and micro-ops decode lazily, so a warm
 * accuracy run never pays a decode at all. Read-back reuses the
 * trace_io validation; a corrupt entry surfaces as TraceIoError and
 * is treated as a miss. A v2 (compressed) entry left by an older
 * build migrates transparently: the first v3 miss probes the v2
 * path, decodes it, re-stores it as v3 and serves it as a hit —
 * nothing is regenerated and the v2 file is left alone for any older
 * binaries still running. load()
 * never unlinks — deleting by path would race other processes that
 * may have already replaced the entry with a good one (classic
 * check-then-act). Instead the following regeneration store()
 * overwrites the corrupt file via its atomic rename; generation is
 * deterministic per key, so even two processes healing the same
 * entry concurrently rename identical bytes into place. Writes go to
 * a process-unique temp file followed by that rename, so concurrent
 * bench binaries can share one cache directory without ever
 * observing a partial entry.
 *
 * The cache is opt-in: it is enabled only when constructed with a
 * directory, and fromEnv() reads BPSIM_TRACE_CACHE. A disabled cache
 * reports every lookup as a miss and stores nothing.
 */

#ifndef BPSIM_TRACE_TRACE_CACHE_HH
#define BPSIM_TRACE_TRACE_CACHE_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "common/types.hh"
#include "trace/trace_buffer.hh"

namespace bpsim {

/** On-disk trace store; see file comment. */
class TraceCache
{
  public:
    /** Layout/meaning version of cache entries. Bump to invalidate
     *  every existing cache when generation semantics change.
     *  v2: entries switched from raw to compressed trace files.
     *  v3: columnar mmap-able entries (zero-copy branch replay);
     *      v2 entries migrate in place on first load. */
    static constexpr int kFormatVersion = 3;

    /** A disabled cache (all lookups miss, stores are no-ops). */
    TraceCache() = default;

    /** A cache rooted at @p dir (created on first store). */
    explicit TraceCache(std::string dir, int format_version =
                                             kFormatVersion);

    /** Cache at $BPSIM_TRACE_CACHE, or a disabled cache if unset. */
    static TraceCache fromEnv();

    bool enabled() const { return !dir_.empty(); }
    const std::string &dir() const { return dir_; }
    int formatVersion() const { return formatVersion_; }

    /** Entry path for a key (valid even when disabled, for tests). */
    std::string entryPath(const std::string &workload, Counter ops,
                          std::uint64_t seed) const;

    /** Entry path for a key under an explicit format version (the
     *  migration probe and tests). */
    std::string entryPath(const std::string &workload, Counter ops,
                          std::uint64_t seed, int version) const;

    /**
     * Load the cached trace for a key. Returns nullopt on a miss or
     * when the entry fails trace_io validation. Corrupt entries are
     * left in place (see file comment); the regeneration store()
     * atomically replaces them.
     */
    std::optional<TraceBuffer> load(const std::string &workload,
                                    Counter ops,
                                    std::uint64_t seed) const;

    /**
     * Atomically persist @p trace under a key. Returns false when
     * the cache is disabled or the write fails; a failed store never
     * leaves a partial entry behind. Write failures (read-only or
     * vanished cache dir, disk full) degrade gracefully: the run
     * continues on the in-memory trace, a warning is printed for the
     * FIRST failure only (the cause — a bad BPSIM_TRACE_CACHE — is
     * one condition, not one per trace), and every failure counts
     * into storeFailures().
     */
    bool store(const std::string &workload, Counter ops,
               std::uint64_t seed, const TraceBuffer &trace) const;

    /** Process-wide count of failed store() attempts. The warn-once
     *  state is process-wide too because TraceCache is copied freely
     *  (SuiteTraces holds it by value). */
    static Counter storeFailures();
    /** Reset the failure counter and re-arm the warning (tests). */
    static void resetStoreFailuresForTest();

    /**
     * load() or, on a miss, run @p generate and store the result.
     * @p hit (when non-null) reports whether the cache served it.
     */
    TraceBuffer fetch(const std::string &workload, Counter ops,
                      std::uint64_t seed,
                      const std::function<TraceBuffer()> &generate,
                      bool *hit = nullptr) const;

  private:
    std::string dir_;
    int formatVersion_ = kFormatVersion;
};

} // namespace bpsim

#endif // BPSIM_TRACE_TRACE_CACHE_HH
