/**
 * @file
 * Set-associative cache timing model with LRU replacement.
 *
 * Tag-array-only (no data contents): the simulator needs hit/miss
 * decisions and latencies, not values. Geometry defaults follow
 * Table 1 of the paper.
 */

#ifndef BPSIM_SIM_CACHE_HH
#define BPSIM_SIM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace bpsim {

/** LRU set-associative tag array. */
class Cache
{
  public:
    /**
     * @param size_bytes Total capacity (power of two).
     * @param line_bytes Line size (power of two).
     * @param assoc Associativity (1 = direct mapped).
     * @param name Label for stats output.
     */
    Cache(std::size_t size_bytes, std::size_t line_bytes,
          unsigned assoc, std::string name);

    /**
     * Access @p addr; allocate on miss. @return true on hit.
     */
    bool access(Addr addr);

    /** Probe without updating LRU or allocating (tests). */
    bool contains(Addr addr) const;

    const std::string &name() const { return name_; }
    std::size_t sizeBytes() const { return sizeBytes_; }
    std::size_t lineBytes() const { return lineBytes_; }
    unsigned associativity() const { return assoc_; }

    Counter accesses() const { return accesses_; }
    Counter misses() const { return misses_; }
    double missRate() const
    {
        return accesses_ ? static_cast<double>(misses_) /
                               static_cast<double>(accesses_)
                         : 0.0;
    }

  private:
    struct Way
    {
        Addr tag = 0;
        bool valid = false;
        std::uint64_t lastUse = 0;
    };

    std::size_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;

    std::size_t sizeBytes_;
    std::size_t lineBytes_;
    unsigned assoc_;
    std::size_t numSets_;
    std::string name_;
    std::vector<Way> ways_; // numSets_ * assoc_
    std::uint64_t useClock_ = 0;
    Counter accesses_ = 0;
    Counter misses_ = 0;
};

} // namespace bpsim

#endif // BPSIM_SIM_CACHE_HH
