/**
 * @file
 * Microarchitectural configuration of the timing simulator.
 *
 * The defaults reproduce Table 1 of the paper:
 *
 *   L1 I-cache      64 KB, 64-byte lines, direct mapped
 *   L1 D-cache      64 KB, 64-byte lines, direct mapped
 *   L2 cache        2 MB, 128-byte lines, 4-way set assoc.
 *   BTB             512 entries, 2-way set assoc.
 *   Issue width     8
 *   Pipeline depth  20
 *
 * Latency parameters the paper leaves implicit are set to values
 * conventional for its assumed 3.5 GHz / 100 nm design point and are
 * exposed here so sensitivity studies can vary them.
 */

#ifndef BPSIM_SIM_CORE_CONFIG_HH
#define BPSIM_SIM_CORE_CONFIG_HH

#include <cstddef>

namespace bpsim {

/** Timing-simulator configuration (defaults = paper's Table 1). */
struct CoreConfig
{
    // --- Table 1 parameters -------------------------------------
    std::size_t l1iSizeBytes = 64 * 1024;
    std::size_t l1iLineBytes = 64;
    unsigned l1iAssoc = 1;

    std::size_t l1dSizeBytes = 64 * 1024;
    std::size_t l1dLineBytes = 64;
    unsigned l1dAssoc = 1;

    std::size_t l2SizeBytes = 2 * 1024 * 1024;
    std::size_t l2LineBytes = 128;
    unsigned l2Assoc = 4;

    std::size_t btbEntries = 512;
    unsigned btbAssoc = 2;

    unsigned issueWidth = 8;
    unsigned pipelineDepth = 20;

    // --- Derived / conventional latencies -----------------------
    /** Stages between fetch and execute; instructions fetched at
     *  cycle t can execute no earlier than t + frontEndDepth. The
     *  branch misprediction penalty is dominated by this (a 20-deep
     *  pipeline resolves branches late). */
    unsigned frontEndDepth = 15;

    /** Load-to-use latency on an L1 hit. */
    unsigned l1dHitCycles = 2;
    /** Additional latency for an L2 hit. */
    unsigned l2HitCycles = 14;
    /** Additional latency for main memory (aggressive clock => many
     *  cycles). */
    unsigned memoryCycles = 220;
    /** Fetch stall on an L1I miss that hits in L2 / memory. */
    unsigned ifetchL2Cycles = 12;
    unsigned ifetchMemoryCycles = 210;

    /** Integer multiply latency. */
    unsigned mulCycles = 7;

    /** Fetch bubble when a taken branch misses in the BTB (target
     *  computed in decode). */
    unsigned btbMissPenalty = 3;

    /** Reorder buffer capacity. */
    std::size_t robEntries = 128;
    /** Fetch-to-dispatch buffer capacity. */
    std::size_t fetchBufferEntries = 64;

    // --- Simulator mechanics (no microarchitectural effect) ------
    /** Jump over cycles in which no pipeline stage can act (fetch
     *  stalled/blocked, back end waiting on a fixed completion time)
     *  instead of stepping them one by one. Pure simulator speedup:
     *  cycle counts, stall attribution and traced event streams are
     *  identical either way (test_cycle_skip.cc proves it). */
    bool cycleSkip = true;
};

} // namespace bpsim

#endif // BPSIM_SIM_CORE_CONFIG_HH
