#include "sim/btb.hh"

#include <cassert>

#include "common/bitutil.hh"
#include "robust/state_visitor.hh"

namespace bpsim {

Btb::Btb(std::size_t entries, unsigned assoc)
    : numSets_(entries / assoc), assoc_(assoc), entries_(entries)
{
    assert(assoc >= 1);
    assert(numSets_ >= 1 && isPowerOfTwo(numSets_));
}

std::size_t
Btb::setIndex(Addr pc) const
{
    return static_cast<std::size_t>(pc >> 4) & (numSets_ - 1);
}

Addr
Btb::tagOf(Addr pc) const
{
    return pc >> 4 >> floorLog2(numSets_);
}

std::optional<Addr>
Btb::lookup(Addr pc)
{
    ++lookups_;
    ++useClock_;
    Entry *set = &entries_[setIndex(pc) * assoc_];
    const Addr tag = tagOf(pc);
    for (unsigned w = 0; w < assoc_; ++w) {
        if (set[w].valid && set[w].tag == tag) {
            set[w].lastUse = useClock_;
            ++hits_;
            return set[w].target;
        }
    }
    return std::nullopt;
}

void
Btb::update(Addr pc, Addr target)
{
    ++useClock_;
    Entry *set = &entries_[setIndex(pc) * assoc_];
    const Addr tag = tagOf(pc);
    Entry *victim = &set[0];
    for (unsigned w = 0; w < assoc_; ++w) {
        if (set[w].valid && set[w].tag == tag) {
            set[w].target = target;
            set[w].lastUse = useClock_;
            return;
        }
        if (!set[w].valid ||
            (victim->valid && set[w].lastUse < victim->lastUse)) {
            victim = &set[w];
        }
    }
    victim->valid = true;
    victim->tag = tag;
    victim->target = target;
    victim->lastUse = useClock_;
}

void
Btb::visitState(robust::StateVisitor &v)
{
    // Tag SRAM width: the PC bits left after dropping the 4 slot-
    // alignment bits and the set-index bits (capped at 48, a
    // realistic VA width). LRU bookkeeping is replacement metadata,
    // not content SRAM, and stays out of the fault model.
    const unsigned tagBits = std::min(
        48u, 64u - 4u - floorLog2(std::uint64_t{numSets_}));
    auto &entries = entries_;
    v.visit({"btb.tags", entries.size(), tagBits,
             [&entries](std::size_t i) { return entries[i].tag; },
             [&entries, tagBits](std::size_t i, std::uint64_t x) {
                 entries[i].tag = x & loMask(tagBits);
             }});
    v.visit({"btb.targets", entries.size(), 48,
             [&entries](std::size_t i) { return entries[i].target; },
             [&entries](std::size_t i, std::uint64_t x) {
                 entries[i].target = x & loMask(48);
             }});
    v.visit({"btb.valid", entries.size(), 1,
             [&entries](std::size_t i) {
                 return std::uint64_t{entries[i].valid ? 1u : 0u};
             },
             [&entries](std::size_t i, std::uint64_t x) {
                 entries[i].valid = (x & 1) != 0;
             }});
}

} // namespace bpsim
