#include "sim/cache.hh"

#include <cassert>

#include "common/bitutil.hh"

namespace bpsim {

Cache::Cache(std::size_t size_bytes, std::size_t line_bytes,
             unsigned assoc, std::string name)
    : sizeBytes_(size_bytes),
      lineBytes_(line_bytes),
      assoc_(assoc),
      numSets_(size_bytes / (line_bytes * assoc)),
      name_(std::move(name)),
      ways_(numSets_ * assoc)
{
    assert(isPowerOfTwo(size_bytes));
    assert(isPowerOfTwo(line_bytes));
    assert(assoc >= 1);
    assert(numSets_ >= 1 && isPowerOfTwo(numSets_));
}

std::size_t
Cache::setIndex(Addr addr) const
{
    return static_cast<std::size_t>(addr / lineBytes_) & (numSets_ - 1);
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr / lineBytes_ / numSets_;
}

bool
Cache::access(Addr addr)
{
    ++accesses_;
    ++useClock_;
    Way *set = &ways_[setIndex(addr) * assoc_];
    const Addr tag = tagOf(addr);

    Way *victim = &set[0];
    for (unsigned w = 0; w < assoc_; ++w) {
        if (set[w].valid && set[w].tag == tag) {
            set[w].lastUse = useClock_;
            return true;
        }
        if (!set[w].valid ||
            (victim->valid && set[w].lastUse < victim->lastUse)) {
            victim = &set[w];
        }
    }
    ++misses_;
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = useClock_;
    return false;
}

bool
Cache::contains(Addr addr) const
{
    const Way *set = &ways_[setIndex(addr) * assoc_];
    const Addr tag = tagOf(addr);
    for (unsigned w = 0; w < assoc_; ++w)
        if (set[w].valid && set[w].tag == tag)
            return true;
    return false;
}

} // namespace bpsim
