/**
 * @file
 * Trace-driven out-of-order superscalar timing model.
 *
 * A decoupled-front-end simulator in the SimpleScalar sim-outorder
 * tradition (the paper's substrate, Section 4.1.3): fetch is guided
 * by the branch predictor and broken by taken branches, I-cache
 * misses, predictor bubbles and mispredictions; fetched instructions
 * traverse a front-end pipeline (whose depth dominates the
 * misprediction penalty), enter a reorder buffer, issue out of order
 * as operands become ready under an issue-width constraint, and
 * commit in order.
 *
 * Modelling choices and simplifications (all conservative w.r.t. the
 * paper's argument — they affect every predictor identically):
 *  - wrong-path instructions are not executed; a misprediction
 *    blocks correct-path fetch until the branch resolves, so the
 *    penalty = resolution delay + front-end refill, scaling with
 *    pipeline depth as in the paper;
 *  - predictor state updates at fetch with the actual outcome,
 *    implementing the optimistic speculative-update-with-perfect-
 *    recovery assumption (Section 4.1.2);
 *  - overriding-predictor disagreement bubbles stall fetch for the
 *    slow predictor's latency (Section 2.6.1).
 */

#ifndef BPSIM_SIM_OOO_CORE_HH
#define BPSIM_SIM_OOO_CORE_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "obs/event_trace.hh"
#include "obs/metrics.hh"
#include "pipeline/fetch_predictor.hh"
#include "sim/btb.hh"
#include "sim/cache.hh"
#include "sim/core_config.hh"
#include "trace/trace_buffer.hh"

namespace bpsim {

/** Aggregate results of one timing-simulation run. */
struct SimResult
{
    Counter cycles = 0;
    Counter instructions = 0;
    Counter condBranches = 0;
    Counter mispredictions = 0;
    Counter overridingBubbleCycles = 0;
    Counter btbMissPenaltyCycles = 0;
    /** Cycles fetch spent waiting on a mispredicted branch. */
    Counter mispredictWaitCycles = 0;
    /** Cycles fetch was stalled on I-cache misses. */
    Counter icacheStallCycles = 0;
    /** Cycles fetch was stalled on predictor bubbles / BTB misses. */
    Counter frontEndStallCycles = 0;
    /** frontEndStallCycles split by cause: overriding-disagreement
     *  squash stalls vs. BTB-miss stalls. Their sum equals
     *  frontEndStallCycles. */
    Counter overrideStallCycles = 0;
    Counter btbStallCycles = 0;
    /** Cycles dispatch was blocked by a full ROB with insts waiting. */
    Counter robStallCycles = 0;
    /** Front-end restarts: mispredictions + overriding squashes. */
    Counter flushes = 0;
    /** Fetch slots lost to flush-caused stalls (wrong-path /
     *  squashed micro-ops, counted as issueWidth per lost cycle).
     *  Invariant: squashedUops == issueWidth * flushCycles(). */
    Counter squashedUops = 0;
    double l1iMissRate = 0.0;
    double l1dMissRate = 0.0;
    double l2MissRate = 0.0;
    double btbHitRate = 0.0;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
    }
    double
    mispredictionRate() const
    {
        return condBranches ? static_cast<double>(mispredictions) /
                                  static_cast<double>(condBranches)
                            : 0.0;
    }
    double mispredictionPercent() const
    {
        return 100.0 * mispredictionRate();
    }
    /** Total cycles fetch lost to squash-causing flushes: the
     *  per-cause attribution (override + mispredict recovery) sums
     *  to this by construction. */
    Counter flushCycles() const
    {
        return overrideStallCycles + mispredictWaitCycles;
    }

    /**
     * Publish every counter into @p reg under the metric naming
     * convention (`sim.core.flush_cycles{cause=override}`, ...),
     * optionally tagging names with `{workload=...}`.
     */
    void publishMetrics(obs::MetricRegistry &reg,
                        const std::string &workload = "") const;
};

/** The out-of-order core. One instance simulates one trace run. */
class OooCore
{
  public:
    /**
     * @param cfg Microarchitecture parameters (Table 1 defaults).
     * @param predictor Fetch-side branch predictor (not owned).
     */
    OooCore(const CoreConfig &cfg, FetchPredictor &predictor);

    /** Run the whole @p trace to completion and return the stats. */
    SimResult run(const TraceBuffer &trace);

    // Incremental interface: run() is exactly
    //   begin(t); advance(t, t.size()); finish();
    // and the ensemble timing engine (core/ensemble.cc) interleaves
    // the middle step across members in fetch-index blocks. The
    // pause point only decides *when* advance() returns, never what
    // any stage executes, so a blocked member-major replay performs
    // the same per-member iteration sequence as a serial run —
    // byte-identical SimResults by construction.

    /** Reset per-run stats and arm the livelock guard for @p trace.
     *  Must precede the first advance() on a fresh core. */
    void begin(const TraceBuffer &trace);

    /**
     * Simulate until @p fetch_target trace ops have been fetched
     * (pausing at the cycle boundary where `fetchIndex_` first
     * reaches it) or, when @p fetch_target >= trace.size(), until
     * the pipeline fully drains.
     */
    void advance(const TraceBuffer &trace, std::size_t fetch_target);

    /** Stamp final cycle count and cache/BTB rates; returns stats. */
    SimResult finish();

    /**
     * Attach an event tracer (not owned; may be nullptr to detach).
     * When attached, the core records per-cycle pipeline events —
     * override disagreements, mispredict resolutions, ROB-full
     * stalls, i-cache and BTB misses — into its ring buffer. An
     * unattached core pays one null check per *event*, never per
     * cycle.
     */
    void attachTracer(obs::EventTracer *tracer) { tracer_ = tracer; }

  private:
    struct Producer
    {
        std::int32_t robSlot = -1;
        InstSeqNum seq = 0;
    };

    struct RobEntry
    {
        InstSeqNum seq = 0;
        std::uint32_t traceIndex = 0;
        Cycle completeCycle = 0;
        /** Producers of the two sources, captured at dispatch so a
         *  younger writer of the same register cannot be mistaken
         *  for the operand's producer. */
        Producer prodA;
        Producer prodB;
        bool issued = false;
        bool done = false;
        bool mispredictedBranch = false;
        bool valid = false;
    };

    struct FetchedInst
    {
        std::uint32_t traceIndex;
        Cycle dispatchReady;
        bool mispredictedBranch;
    };

    bool skipIdleCycles(const TraceBuffer &trace, Cycle max_cycles);
    void fetchStage(const TraceBuffer &trace);
    void dispatchStage(const TraceBuffer &trace);
    void issueStage(const TraceBuffer &trace);
    void completeStage(const TraceBuffer &trace);
    void commitStage(const TraceBuffer &trace);

    unsigned loadLatency(Addr addr);
    Producer producerOf(std::uint8_t reg) const;
    bool producerDone(const Producer &p) const;

    CoreConfig cfg_;
    FetchPredictor &predictor_;
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    Btb btb_;

    /** Why fetch is currently stalled (for cycle attribution). */
    enum class StallReason : std::uint8_t {
        None,
        Icache,
        Override, ///< overriding-predictor disagreement squash
        BtbMiss,  ///< taken branch without a BTB target
        Redirect, ///< post-resolution redirect gap
    };

    Cycle cycle_ = 0;
    std::size_t fetchIndex_ = 0;
    Cycle fetchStallUntil_ = 0;
    StallReason stallReason_ = StallReason::None;
    bool fetchBlocked_ = false; ///< waiting on a mispredicted branch

    std::deque<FetchedInst> fetchBuffer_;
    std::vector<RobEntry> rob_;
    std::size_t robHead_ = 0;
    std::size_t robTail_ = 0;
    std::size_t robCount_ = 0;
    InstSeqNum nextSeq_ = 1;

    std::vector<Producer> regProducer_;
    Addr lastFetchLine_ = ~Addr{0};

    /** Fast-path bookkeeping: issued-but-incomplete entry count and
     *  the earliest cycle one of them can complete. */
    std::size_t issuedNotDone_ = 0;
    Cycle nextCompleteCycle_ = 0;
    std::size_t unissuedCount_ = 0;

    /**
     * Min-heap of in-flight completions, keyed
     * `(completeCycle << 16) | robSlot`. Pushed once at issue,
     * popped when due, so completeStage touches only the entries
     * that actually finish instead of scanning the whole ROB every
     * completion cycle (the scan was ~half of timing-cell wall
     * clock). Entries are never stale: a slot can only be reused
     * after commit, and commit requires done, which requires the
     * pop. Keeping the slot in the low bits makes keys unique, so
     * pop order within a cycle is (cycle, slot) — benign, because
     * marking done is commutative and at most one unresolved
     * mispredicted branch is ever in flight.
     */
    std::vector<std::uint64_t> completeHeap_;
    /** Livelock guard captured by begin() for advance(). */
    Cycle maxCycles_ = 0;

    obs::EventTracer *tracer_ = nullptr;
    SimResult result_;
};

} // namespace bpsim

#endif // BPSIM_SIM_OOO_CORE_HH
