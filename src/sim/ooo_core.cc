#include "sim/ooo_core.hh"

#include <cassert>

namespace bpsim {

OooCore::OooCore(const CoreConfig &cfg, FetchPredictor &predictor)
    : cfg_(cfg),
      predictor_(predictor),
      l1i_(cfg.l1iSizeBytes, cfg.l1iLineBytes, cfg.l1iAssoc, "l1i"),
      l1d_(cfg.l1dSizeBytes, cfg.l1dLineBytes, cfg.l1dAssoc, "l1d"),
      l2_(cfg.l2SizeBytes, cfg.l2LineBytes, cfg.l2Assoc, "l2"),
      btb_(cfg.btbEntries, cfg.btbAssoc),
      rob_(cfg.robEntries),
      regProducer_(64)
{
}

OooCore::Producer
OooCore::producerOf(std::uint8_t reg) const
{
    if (reg == 0)
        return {};
    return regProducer_[reg];
}

bool
OooCore::producerDone(const Producer &p) const
{
    if (p.robSlot < 0)
        return true;
    const RobEntry &e = rob_[static_cast<std::size_t>(p.robSlot)];
    // The producing entry may have retired and its slot been reused;
    // the sequence number disambiguates.
    if (!e.valid || e.seq != p.seq)
        return true;
    return e.done && e.completeCycle <= cycle_;
}

unsigned
OooCore::loadLatency(Addr addr)
{
    if (l1d_.access(addr))
        return cfg_.l1dHitCycles;
    if (l2_.access(addr))
        return cfg_.l1dHitCycles + cfg_.l2HitCycles;
    return cfg_.l1dHitCycles + cfg_.l2HitCycles + cfg_.memoryCycles;
}

void
OooCore::fetchStage(const TraceBuffer &trace)
{
    if (fetchBlocked_) {
        ++result_.mispredictWaitCycles;
        return;
    }
    if (cycle_ < fetchStallUntil_) {
        if (stallReason_ == StallReason::Icache)
            ++result_.icacheStallCycles;
        else if (stallReason_ == StallReason::FrontEnd)
            ++result_.frontEndStallCycles;
        else if (stallReason_ == StallReason::Redirect)
            ++result_.mispredictWaitCycles;
        return;
    }
    stallReason_ = StallReason::None;

    for (unsigned n = 0; n < cfg_.issueWidth; ++n) {
        if (fetchIndex_ >= trace.size() ||
            fetchBuffer_.size() >= cfg_.fetchBufferEntries)
            return;

        const MicroOp &op = trace[fetchIndex_];

        // Instruction cache: one access per new line.
        const Addr line = op.pc / cfg_.l1iLineBytes;
        if (line != lastFetchLine_) {
            lastFetchLine_ = line;
            if (!l1i_.access(op.pc)) {
                const unsigned stall = l2_.access(op.pc)
                                           ? cfg_.ifetchL2Cycles
                                           : cfg_.ifetchMemoryCycles;
                fetchStallUntil_ = cycle_ + stall;
                stallReason_ = StallReason::Icache;
                return; // refetch this op after the miss resolves
            }
        }

        bool mispredicted = false;
        bool ends_fetch_block = false;

        if (op.cls == InstClass::CondBranch) {
            const FetchPrediction fp = predictor_.predict(op.pc);
            predictor_.update(op.pc, op.taken);
            ++result_.condBranches;
            if (fp.bubbleCycles > 0) {
                // Overriding disagreement (or stall-style delay):
                // the fetches behind this branch are squashed.
                fetchStallUntil_ = cycle_ + 1 + fp.bubbleCycles;
                stallReason_ = StallReason::FrontEnd;
                result_.overridingBubbleCycles += fp.bubbleCycles;
                ends_fetch_block = true;
            }
            if (fp.taken != op.taken) {
                ++result_.mispredictions;
                mispredicted = true;
                fetchBlocked_ = true;
                ends_fetch_block = true;
            } else if (fp.taken) {
                // Correctly predicted taken: need the target.
                const auto target = btb_.lookup(op.pc);
                if (!target || *target != op.extra) {
                    fetchStallUntil_ =
                        cycle_ + 1 + cfg_.btbMissPenalty;
                    stallReason_ = StallReason::FrontEnd;
                    result_.btbMissPenaltyCycles +=
                        cfg_.btbMissPenalty;
                }
                btb_.update(op.pc, op.extra);
                ends_fetch_block = true; // discontinuous fetch
            }
        } else if (op.cls == InstClass::UncondBranch) {
            const auto target = btb_.lookup(op.pc);
            if (!target || *target != op.extra) {
                fetchStallUntil_ = cycle_ + 1 + cfg_.btbMissPenalty;
                stallReason_ = StallReason::FrontEnd;
                result_.btbMissPenaltyCycles += cfg_.btbMissPenalty;
            }
            btb_.update(op.pc, op.extra);
            ends_fetch_block = true;
        }

        fetchBuffer_.push_back(
            {static_cast<std::uint32_t>(fetchIndex_),
             cycle_ + cfg_.frontEndDepth, mispredicted});
        ++fetchIndex_;

        if (ends_fetch_block)
            return;
    }
}

void
OooCore::dispatchStage(const TraceBuffer &trace)
{
    for (unsigned n = 0; n < cfg_.issueWidth; ++n) {
        if (fetchBuffer_.empty() || robCount_ >= rob_.size())
            return;
        const FetchedInst &fi = fetchBuffer_.front();
        if (fi.dispatchReady > cycle_)
            return;

        RobEntry &e = rob_[robTail_];
        e.seq = nextSeq_++;
        e.traceIndex = fi.traceIndex;
        e.completeCycle = 0;
        e.issued = false;
        e.done = false;
        e.mispredictedBranch = fi.mispredictedBranch;
        e.valid = true;

        const MicroOp &op = trace[fi.traceIndex];
        // Capture the operand producers *now*: dispatch order is
        // program order, so regProducer_ still names the youngest
        // older writer of each source register.
        e.prodA = producerOf(op.srcA);
        e.prodB = producerOf(op.srcB);
        if (op.dst != 0)
            regProducer_[op.dst] = {static_cast<std::int32_t>(robTail_),
                                    e.seq};

        robTail_ = (robTail_ + 1) % rob_.size();
        ++robCount_;
        ++unissuedCount_;
        fetchBuffer_.pop_front();
    }
}

void
OooCore::issueStage(const TraceBuffer &trace)
{
    // Oldest-first issue of ready instructions, bounded by issue
    // width. Scanning the whole ROB every cycle would be slow and
    // unrealistic; a bounded window over unissued entries
    // approximates a real issue queue.
    if (unissuedCount_ == 0)
        return;
    unsigned issued = 0;
    unsigned scanned = 0;
    const unsigned scan_limit = cfg_.issueWidth * 8;
    std::size_t slot = robHead_;
    for (std::size_t k = 0; k < robCount_ && issued < cfg_.issueWidth &&
                            scanned < scan_limit;
         ++k, slot = (slot + 1) % rob_.size()) {
        RobEntry &e = rob_[slot];
        if (e.issued)
            continue;
        ++scanned;
        if (!producerDone(e.prodA) || !producerDone(e.prodB))
            continue;
        const MicroOp &op = trace[e.traceIndex];

        unsigned latency = 1;
        switch (op.cls) {
          case InstClass::IntMul:
            latency = cfg_.mulCycles;
            break;
          case InstClass::Load:
            latency = loadLatency(op.extra);
            break;
          case InstClass::Store:
            latency = 1; // address generation; data written at commit
            break;
          default:
            latency = 1;
            break;
        }
        e.issued = true;
        e.completeCycle = cycle_ + latency;
        ++issued;
        ++issuedNotDone_;
        --unissuedCount_;
        if (issuedNotDone_ == 1 || e.completeCycle < nextCompleteCycle_)
            nextCompleteCycle_ = e.completeCycle;
    }
}

void
OooCore::completeStage()
{
    if (issuedNotDone_ == 0 || cycle_ < nextCompleteCycle_)
        return;
    Cycle next_min = ~Cycle{0};
    std::size_t slot = robHead_;
    for (std::size_t k = 0; k < robCount_;
         ++k, slot = (slot + 1) % rob_.size()) {
        RobEntry &e = rob_[slot];
        if (e.issued && !e.done && e.completeCycle > cycle_ &&
            e.completeCycle < next_min)
            next_min = e.completeCycle;
        if (e.issued && !e.done && e.completeCycle <= cycle_) {
            e.done = true;
            --issuedNotDone_;
            if (e.mispredictedBranch) {
                // Branch resolution redirects fetch next cycle; the
                // redirect gap is part of the misprediction cost.
                fetchBlocked_ = false;
                if (fetchStallUntil_ <= cycle_)
                    fetchStallUntil_ = cycle_ + 1;
                stallReason_ = StallReason::Redirect;
                // The refetched path starts a new cache line.
                lastFetchLine_ = ~Addr{0};
            }
        }
    }
    nextCompleteCycle_ = next_min;
}

void
OooCore::commitStage(const TraceBuffer &trace)
{
    for (unsigned n = 0; n < cfg_.issueWidth; ++n) {
        if (robCount_ == 0)
            return;
        RobEntry &e = rob_[robHead_];
        if (!e.done || e.completeCycle > cycle_)
            return;
        const MicroOp &op = trace[e.traceIndex];
        if (op.cls == InstClass::Store) {
            // Stores write the memory system at commit.
            if (!l1d_.access(op.extra))
                l2_.access(op.extra);
        }
        ++result_.instructions;
        e.valid = false;
        robHead_ = (robHead_ + 1) % rob_.size();
        --robCount_;
    }
}

SimResult
OooCore::run(const TraceBuffer &trace)
{
    result_ = SimResult{};
    // Guard against a livelocked configuration ever looping forever.
    const Cycle max_cycles =
        static_cast<Cycle>(trace.size()) * 64 + 100000;

    while ((fetchIndex_ < trace.size() || robCount_ > 0 ||
            !fetchBuffer_.empty()) &&
           cycle_ < max_cycles) {
        commitStage(trace);
        completeStage();
        issueStage(trace);
        dispatchStage(trace);
        fetchStage(trace);
        ++cycle_;
    }

    result_.cycles = cycle_;
    result_.l1iMissRate = l1i_.missRate();
    result_.l1dMissRate = l1d_.missRate();
    result_.l2MissRate = l2_.missRate();
    result_.btbHitRate = btb_.hitRate();
    return result_;
}

} // namespace bpsim
