#include "sim/ooo_core.hh"

#include <algorithm>
#include <cassert>
#include <functional>

namespace bpsim {

void
SimResult::publishMetrics(obs::MetricRegistry &reg,
                          const std::string &workload) const
{
    // `sim.core.<counter>{workload=w}` for plain counters and
    // `sim.core.<counter>{cause=c,workload=w}` for attributed ones;
    // counters accumulate, so publishing a whole suite into one
    // registry yields suite totals alongside the per-workload lines.
    const std::string wl =
        workload.empty() ? "" : "workload=" + workload;
    const auto plain = [&](const char *base) {
        return wl.empty() ? "sim.core." + std::string(base)
                          : "sim.core." + std::string(base) + "{" +
                                wl + "}";
    };
    const auto caused = [&](const char *base, const char *cause) {
        std::string labels = std::string("cause=") + cause;
        if (!wl.empty())
            labels += "," + wl;
        return "sim.core." + std::string(base) + "{" + labels + "}";
    };
    reg.counter(plain("cycles")).add(cycles);
    reg.counter(plain("instructions")).add(instructions);
    reg.counter(plain("cond_branches")).add(condBranches);
    reg.counter(plain("mispredictions")).add(mispredictions);
    reg.counter(plain("flushes")).add(flushes);
    reg.counter(plain("squashed_uops")).add(squashedUops);
    reg.counter(plain("overriding_bubbles")).add(overridingBubbleCycles);
    reg.counter(caused("flush_cycles", "override"))
        .add(overrideStallCycles);
    reg.counter(caused("flush_cycles", "mispredict"))
        .add(mispredictWaitCycles);
    reg.counter(caused("stall_cycles", "icache"))
        .add(icacheStallCycles);
    reg.counter(caused("stall_cycles", "btb")).add(btbStallCycles);
    reg.counter(caused("stall_cycles", "rob")).add(robStallCycles);
    reg.gauge(plain("ipc")).set(ipc());
    reg.gauge(plain("mispredict_percent")).set(mispredictionPercent());
}

OooCore::OooCore(const CoreConfig &cfg, FetchPredictor &predictor)
    : cfg_(cfg),
      predictor_(predictor),
      l1i_(cfg.l1iSizeBytes, cfg.l1iLineBytes, cfg.l1iAssoc, "l1i"),
      l1d_(cfg.l1dSizeBytes, cfg.l1dLineBytes, cfg.l1dAssoc, "l1d"),
      l2_(cfg.l2SizeBytes, cfg.l2LineBytes, cfg.l2Assoc, "l2"),
      btb_(cfg.btbEntries, cfg.btbAssoc),
      rob_(cfg.robEntries),
      regProducer_(64)
{
    // Completion-heap keys reserve 16 bits for the ROB slot.
    assert(rob_.size() <= (std::size_t{1} << 16));
    completeHeap_.reserve(rob_.size());
}

OooCore::Producer
OooCore::producerOf(std::uint8_t reg) const
{
    if (reg == 0)
        return {};
    return regProducer_[reg];
}

bool
OooCore::producerDone(const Producer &p) const
{
    if (p.robSlot < 0)
        return true;
    const RobEntry &e = rob_[static_cast<std::size_t>(p.robSlot)];
    // The producing entry may have retired and its slot been reused;
    // the sequence number disambiguates.
    if (!e.valid || e.seq != p.seq)
        return true;
    return e.done && e.completeCycle <= cycle_;
}

unsigned
OooCore::loadLatency(Addr addr)
{
    if (l1d_.access(addr))
        return cfg_.l1dHitCycles;
    if (l2_.access(addr))
        return cfg_.l1dHitCycles + cfg_.l2HitCycles;
    return cfg_.l1dHitCycles + cfg_.l2HitCycles + cfg_.memoryCycles;
}

void
OooCore::fetchStage(const TraceBuffer &trace)
{
    if (fetchBlocked_) {
        // Waiting on a mispredicted branch: these are misprediction
        // recovery cycles, and every one squashes a fetch group's
        // worth of wrong-path micro-ops.
        ++result_.mispredictWaitCycles;
        result_.squashedUops += cfg_.issueWidth;
        return;
    }
    if (cycle_ < fetchStallUntil_) {
        switch (stallReason_) {
          case StallReason::Icache:
            ++result_.icacheStallCycles;
            break;
          case StallReason::Override:
            ++result_.frontEndStallCycles;
            ++result_.overrideStallCycles;
            result_.squashedUops += cfg_.issueWidth;
            break;
          case StallReason::BtbMiss:
            ++result_.frontEndStallCycles;
            ++result_.btbStallCycles;
            break;
          case StallReason::Redirect:
            ++result_.mispredictWaitCycles;
            result_.squashedUops += cfg_.issueWidth;
            break;
          case StallReason::None:
            break;
        }
        return;
    }
    stallReason_ = StallReason::None;

    for (unsigned n = 0; n < cfg_.issueWidth; ++n) {
        if (fetchIndex_ >= trace.size() ||
            fetchBuffer_.size() >= cfg_.fetchBufferEntries)
            return;

        const MicroOp &op = trace[fetchIndex_];

        // Instruction cache: one access per new line.
        const Addr line = op.pc / cfg_.l1iLineBytes;
        if (line != lastFetchLine_) {
            lastFetchLine_ = line;
            if (!l1i_.access(op.pc)) {
                const unsigned stall = l2_.access(op.pc)
                                           ? cfg_.ifetchL2Cycles
                                           : cfg_.ifetchMemoryCycles;
                fetchStallUntil_ = cycle_ + stall;
                stallReason_ = StallReason::Icache;
                if (tracer_)
                    tracer_->record(cycle_, obs::SimEvent::CacheMiss,
                                    op.pc, stall);
                return; // refetch this op after the miss resolves
            }
        }

        bool mispredicted = false;
        bool ends_fetch_block = false;

        if (op.cls == InstClass::CondBranch) {
            const FetchPrediction fp = predictor_.predict(op.pc);
            predictor_.update(op.pc, op.taken);
            ++result_.condBranches;
            if (tracer_)
                tracer_->record(cycle_, obs::SimEvent::Predict,
                                op.pc, fp.taken == op.taken ? 0 : 1);
            if (fp.bubbleCycles > 0) {
                // Overriding disagreement (or stall-style delay):
                // the fetches behind this branch are squashed.
                fetchStallUntil_ = cycle_ + 1 + fp.bubbleCycles;
                stallReason_ = StallReason::Override;
                result_.overridingBubbleCycles += fp.bubbleCycles;
                ++result_.flushes;
                if (tracer_)
                    tracer_->record(cycle_,
                                    obs::SimEvent::OverrideDisagree,
                                    op.pc, fp.bubbleCycles);
                ends_fetch_block = true;
            }
            if (fp.taken != op.taken) {
                ++result_.mispredictions;
                ++result_.flushes;
                mispredicted = true;
                fetchBlocked_ = true;
                ends_fetch_block = true;
            } else if (fp.taken) {
                // Correctly predicted taken: need the target.
                const auto target = btb_.lookup(op.pc);
                if (!target || *target != op.extra) {
                    fetchStallUntil_ =
                        cycle_ + 1 + cfg_.btbMissPenalty;
                    stallReason_ = StallReason::BtbMiss;
                    result_.btbMissPenaltyCycles +=
                        cfg_.btbMissPenalty;
                    if (tracer_)
                        tracer_->record(cycle_,
                                        obs::SimEvent::BtbMiss,
                                        op.pc, cfg_.btbMissPenalty);
                }
                btb_.update(op.pc, op.extra);
                ends_fetch_block = true; // discontinuous fetch
            }
        } else if (op.cls == InstClass::UncondBranch) {
            const auto target = btb_.lookup(op.pc);
            if (!target || *target != op.extra) {
                fetchStallUntil_ = cycle_ + 1 + cfg_.btbMissPenalty;
                stallReason_ = StallReason::BtbMiss;
                result_.btbMissPenaltyCycles += cfg_.btbMissPenalty;
                if (tracer_)
                    tracer_->record(cycle_, obs::SimEvent::BtbMiss,
                                    op.pc, cfg_.btbMissPenalty);
            }
            btb_.update(op.pc, op.extra);
            ends_fetch_block = true;
        }

        if (tracer_ && n == 0)
            tracer_->record(cycle_, obs::SimEvent::Fetch, op.pc);
        fetchBuffer_.push_back(
            {static_cast<std::uint32_t>(fetchIndex_),
             cycle_ + cfg_.frontEndDepth, mispredicted});
        ++fetchIndex_;

        if (ends_fetch_block)
            return;
    }
}

void
OooCore::dispatchStage(const TraceBuffer &trace)
{
    if (robCount_ >= rob_.size() && !fetchBuffer_.empty() &&
        fetchBuffer_.front().dispatchReady <= cycle_) {
        ++result_.robStallCycles;
        if (tracer_)
            tracer_->record(
                cycle_, obs::SimEvent::RobStall,
                trace[fetchBuffer_.front().traceIndex].pc, robCount_);
    }
    for (unsigned n = 0; n < cfg_.issueWidth; ++n) {
        if (fetchBuffer_.empty() || robCount_ >= rob_.size())
            return;
        const FetchedInst &fi = fetchBuffer_.front();
        if (fi.dispatchReady > cycle_)
            return;

        RobEntry &e = rob_[robTail_];
        e.seq = nextSeq_++;
        e.traceIndex = fi.traceIndex;
        e.completeCycle = 0;
        e.issued = false;
        e.done = false;
        e.mispredictedBranch = fi.mispredictedBranch;
        e.valid = true;

        const MicroOp &op = trace[fi.traceIndex];
        // Capture the operand producers *now*: dispatch order is
        // program order, so regProducer_ still names the youngest
        // older writer of each source register.
        e.prodA = producerOf(op.srcA);
        e.prodB = producerOf(op.srcB);
        if (op.dst != 0)
            regProducer_[op.dst] = {static_cast<std::int32_t>(robTail_),
                                    e.seq};

        robTail_ = (robTail_ + 1) % rob_.size();
        ++robCount_;
        ++unissuedCount_;
        fetchBuffer_.pop_front();
    }
}

void
OooCore::issueStage(const TraceBuffer &trace)
{
    // Oldest-first issue of ready instructions, bounded by issue
    // width. Scanning the whole ROB every cycle would be slow and
    // unrealistic; a bounded window over unissued entries
    // approximates a real issue queue.
    if (unissuedCount_ == 0)
        return;
    unsigned issued = 0;
    unsigned scanned = 0;
    const unsigned scan_limit = cfg_.issueWidth * 8;
    std::size_t slot = robHead_;
    for (std::size_t k = 0; k < robCount_ && issued < cfg_.issueWidth &&
                            scanned < scan_limit;
         ++k, slot = (slot + 1) % rob_.size()) {
        RobEntry &e = rob_[slot];
        if (e.issued)
            continue;
        ++scanned;
        if (!producerDone(e.prodA) || !producerDone(e.prodB))
            continue;
        const MicroOp &op = trace[e.traceIndex];

        unsigned latency = 1;
        switch (op.cls) {
          case InstClass::IntMul:
            latency = cfg_.mulCycles;
            break;
          case InstClass::Load:
            latency = loadLatency(op.extra);
            break;
          case InstClass::Store:
            latency = 1; // address generation; data written at commit
            break;
          default:
            latency = 1;
            break;
        }
        e.issued = true;
        e.completeCycle = cycle_ + latency;
        ++issued;
        ++issuedNotDone_;
        --unissuedCount_;
        completeHeap_.push_back(
            (static_cast<std::uint64_t>(e.completeCycle) << 16) |
            static_cast<std::uint64_t>(slot));
        std::push_heap(completeHeap_.begin(), completeHeap_.end(),
                       std::greater<>{});
        nextCompleteCycle_ = completeHeap_.front() >> 16;
    }
}

void
OooCore::completeStage(const TraceBuffer &trace)
{
    (void)trace; // used only when a tracer is attached
    if (issuedNotDone_ == 0 || cycle_ < nextCompleteCycle_)
        return;
    // Pop every due completion off the min-heap. Heap entries can
    // only be issued-and-not-done (see the member comment), so no
    // liveness re-checks are needed.
    while (!completeHeap_.empty() &&
           (completeHeap_.front() >> 16) <= cycle_) {
        const std::size_t slot =
            static_cast<std::size_t>(completeHeap_.front() & 0xffff);
        std::pop_heap(completeHeap_.begin(), completeHeap_.end(),
                      std::greater<>{});
        completeHeap_.pop_back();
        RobEntry &e = rob_[slot];
        e.done = true;
        --issuedNotDone_;
        if (e.mispredictedBranch) {
            // Branch resolution redirects fetch next cycle; the
            // redirect gap is part of the misprediction cost.
            if (tracer_)
                tracer_->record(cycle_,
                                obs::SimEvent::MispredictResolve,
                                trace[e.traceIndex].pc);
            fetchBlocked_ = false;
            if (fetchStallUntil_ <= cycle_)
                fetchStallUntil_ = cycle_ + 1;
            stallReason_ = StallReason::Redirect;
            // The refetched path starts a new cache line.
            lastFetchLine_ = ~Addr{0};
        }
    }
    nextCompleteCycle_ = completeHeap_.empty()
                             ? ~Cycle{0}
                             : completeHeap_.front() >> 16;
}

void
OooCore::commitStage(const TraceBuffer &trace)
{
    for (unsigned n = 0; n < cfg_.issueWidth; ++n) {
        if (robCount_ == 0)
            return;
        RobEntry &e = rob_[robHead_];
        if (!e.done || e.completeCycle > cycle_)
            return;
        const MicroOp &op = trace[e.traceIndex];
        if (op.cls == InstClass::Store) {
            // Stores write the memory system at commit.
            if (!l1d_.access(op.extra))
                l2_.access(op.extra);
        }
        ++result_.instructions;
        e.valid = false;
        robHead_ = (robHead_ + 1) % rob_.size();
        --robCount_;
    }
}

bool
OooCore::skipIdleCycles(const TraceBuffer &trace, Cycle max_cycles)
{
    // The skip is sound only when every stage is provably a no-op
    // until a computable wake event. Back end first: with no
    // unissued entries and every ROB entry in flight, commit (head
    // not done), complete (before nextCompleteCycle_) and issue
    // (nothing to pick) all do nothing.
    if (unissuedCount_ != 0 || robCount_ != issuedNotDone_)
        return false;

    constexpr Cycle kNever = ~Cycle{0};
    const bool stalled = cycle_ < fetchStallUntil_;
    Cycle wake;
    if (fetchBlocked_) {
        // Only branch resolution (a completion) restarts fetch.
        wake = kNever;
    } else if (stalled) {
        wake = fetchStallUntil_;
    } else if (fetchIndex_ >= trace.size() ||
               fetchBuffer_.size() >= cfg_.fetchBufferEntries) {
        // Fetch has nothing to fetch / nowhere to put it; only a
        // dispatch drain (bounded below by dispatchReady) changes
        // that.
        wake = kNever;
    } else {
        return false; // fetch does real work this cycle
    }

    Cycle target = wake;
    if (issuedNotDone_ > 0 && nextCompleteCycle_ < target)
        target = nextCompleteCycle_;
    // Dispatch acts (or counts a ROB stall) once the head of the
    // fetch buffer matures; never skip past that point.
    if (!fetchBuffer_.empty() &&
        fetchBuffer_.front().dispatchReady < target)
        target = fetchBuffer_.front().dispatchReady;
    if (max_cycles < target)
        target = max_cycles;
    if (target == kNever || target <= cycle_ + 1)
        return false; // nothing to gain (or no bounded wake event)

    // Bulk-apply exactly the per-cycle accounting fetchStage would
    // have performed in each skipped cycle. No tracer events are
    // emitted in these cycles, so the event stream is unchanged.
    const Cycle n = target - cycle_;
    if (fetchBlocked_) {
        result_.mispredictWaitCycles += n;
        result_.squashedUops += n * cfg_.issueWidth;
    } else if (stalled) {
        switch (stallReason_) {
          case StallReason::Icache:
            result_.icacheStallCycles += n;
            break;
          case StallReason::Override:
            result_.frontEndStallCycles += n;
            result_.overrideStallCycles += n;
            result_.squashedUops += n * cfg_.issueWidth;
            break;
          case StallReason::BtbMiss:
            result_.frontEndStallCycles += n;
            result_.btbStallCycles += n;
            break;
          case StallReason::Redirect:
            result_.mispredictWaitCycles += n;
            result_.squashedUops += n * cfg_.issueWidth;
            break;
          case StallReason::None:
            break;
        }
    }
    cycle_ = target;
    return true;
}

void
OooCore::begin(const TraceBuffer &trace)
{
    result_ = SimResult{};
    // Guard against a livelocked configuration ever looping forever.
    maxCycles_ = static_cast<Cycle>(trace.size()) * 64 + 100000;
}

void
OooCore::advance(const TraceBuffer &trace, std::size_t fetch_target)
{
    const bool drain = fetch_target >= trace.size();
    while ((fetchIndex_ < trace.size() || robCount_ > 0 ||
            !fetchBuffer_.empty()) &&
           cycle_ < maxCycles_) {
        // Pause only at an iteration boundary: the check has no side
        // effects, so pausing cannot perturb what the stages do.
        if (!drain && fetchIndex_ >= fetch_target)
            return;
        if (cfg_.cycleSkip && skipIdleCycles(trace, maxCycles_))
            continue;
        commitStage(trace);
        completeStage(trace);
        issueStage(trace);
        dispatchStage(trace);
        fetchStage(trace);
        ++cycle_;
    }
}

SimResult
OooCore::finish()
{
    result_.cycles = cycle_;
    result_.l1iMissRate = l1i_.missRate();
    result_.l1dMissRate = l1d_.missRate();
    result_.l2MissRate = l2_.missRate();
    result_.btbHitRate = btb_.hitRate();
    return result_;
}

SimResult
OooCore::run(const TraceBuffer &trace)
{
    begin(trace);
    advance(trace, trace.size());
    return finish();
}

} // namespace bpsim
