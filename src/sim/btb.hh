/**
 * @file
 * Branch target buffer: a set-associative cache of branch targets.
 *
 * The direction predictor only says taken/not-taken; the BTB
 * supplies *where* (Section 3.3.3). Table 1 configures it as
 * 512-entry, 2-way.
 */

#ifndef BPSIM_SIM_BTB_HH
#define BPSIM_SIM_BTB_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace bpsim {

namespace robust {
class StateVisitor;
} // namespace robust

/** Set-associative branch target buffer. */
class Btb
{
  public:
    /**
     * @param entries Total entries (power of two).
     * @param assoc Associativity.
     */
    Btb(std::size_t entries, unsigned assoc);

    /** Look up @p pc; returns the stored target on hit. */
    std::optional<Addr> lookup(Addr pc);

    /** Install or refresh the mapping pc -> target. */
    void update(Addr pc, Addr target);

    /**
     * Expose tag/target/valid SRAM for fault injection
     * (robust/state_visitor.hh). A flipped valid or tag bit turns
     * into a miss or a wrong-target fetch the misprediction path
     * already recovers from — the BTB degrades, never breaks.
     */
    void visitState(robust::StateVisitor &v);

    Counter lookups() const { return lookups_; }
    Counter hits() const { return hits_; }
    double
    hitRate() const
    {
        return lookups_ ? static_cast<double>(hits_) /
                              static_cast<double>(lookups_)
                        : 0.0;
    }

  private:
    struct Entry
    {
        Addr tag = 0;
        Addr target = 0;
        bool valid = false;
        std::uint64_t lastUse = 0;
    };

    std::size_t setIndex(Addr pc) const;
    Addr tagOf(Addr pc) const;

    std::size_t numSets_;
    unsigned assoc_;
    std::vector<Entry> entries_;
    std::uint64_t useClock_ = 0;
    Counter lookups_ = 0;
    Counter hits_ = 0;
};

} // namespace bpsim

#endif // BPSIM_SIM_BTB_HH
