#include "core/runner.hh"

#include <cstdlib>
#include <limits>
#include <map>
#include <typeindex>

#include "common/stats.hh"
#include "core/dispatch.hh"
#include "core/ensemble.hh"
#include "obs/span_trace.hh"
#include "parallel/cell_pool.hh"
#include "trace/shared_trace_pool.hh"
#include "workloads/registry.hh"

namespace bpsim {

namespace {

/**
 * The one accuracy replay loop, shared by the poll and non-poll
 * entry points so they cannot diverge. Iterates the trace's dense
 * conditional-branch view instead of skipping non-branch micro-ops.
 *
 * Templated over the predictor's *static* type: instantiated once
 * per concrete (final) predictor class via withConcretePredictor so
 * predict/update inline, and once at Pred=DirectionPredictor as the
 * virtual fallback for unknown types.
 */
template <typename Pred, typename Poll>
AccuracyResult
runAccuracyLoop(Pred &pred, const TraceBuffer &trace, Poll &&poll,
                Counter poll_interval)
{
    AccuracyResult r;
    Counter untilPoll = poll_interval;
    for (const BranchRecord &b : trace.branchView()) {
        const bool predicted = pred.predict(b.pc);
        pred.update(b.pc, b.taken);
        ++r.branches;
        if (predicted != b.taken)
            ++r.mispredictions;
        if (--untilPoll == 0) {
            poll();
            untilPoll = poll_interval;
        }
    }
    return r;
}

/** Monomorphize on the concrete type when known, else run the
 *  virtual-dispatch loop. Both paths are the same template, so they
 *  cannot diverge semantically. */
template <typename Poll>
AccuracyResult
runAccuracyDispatch(DirectionPredictor &pred, const TraceBuffer &trace,
                    Poll &&poll, Counter poll_interval)
{
    AccuracyResult r;
    const bool matched =
        withConcretePredictor(pred, [&](auto &concrete) {
            r = runAccuracyLoop(concrete, trace, poll, poll_interval);
        });
    if (!matched)
        r = runAccuracyLoop(pred, trace, poll, poll_interval);
    return r;
}

/** Run the cells serially or on the pool when one was passed. */
void
forEachCell(parallel::CellPool *pool, std::size_t count,
            const std::function<void(std::size_t)> &compute,
            const std::function<void(std::size_t)> &commit)
{
    if (pool) {
        pool->run(count, compute, commit);
        return;
    }
    for (std::size_t i = 0; i < count; ++i) {
        compute(i);
        commit(i);
    }
}

} // namespace

AccuracyResult
runAccuracy(DirectionPredictor &pred, const TraceBuffer &trace)
{
    return runAccuracyDispatch(
        pred, trace, [] {}, std::numeric_limits<Counter>::max());
}

AccuracyResult
runAccuracy(DirectionPredictor &pred, const TraceBuffer &trace,
            const std::function<void()> &poll, Counter poll_interval)
{
    return runAccuracyDispatch(pred, trace, poll, poll_interval);
}

AccuracyResult
runAccuracyVirtual(DirectionPredictor &pred, const TraceBuffer &trace)
{
    return runAccuracyLoop(
        pred, trace, [] {}, std::numeric_limits<Counter>::max());
}

SimResult
runTiming(const CoreConfig &cfg, FetchPredictor &pred,
          const TraceBuffer &trace)
{
    return runTiming(cfg, pred, trace, nullptr);
}

SimResult
runTiming(const CoreConfig &cfg, FetchPredictor &pred,
          const TraceBuffer &trace, obs::EventTracer *tracer)
{
    OooCore core(cfg, pred);
    core.attachTracer(tracer);
    return core.run(trace);
}

obs::RunReport::Row
reportRow(const std::string &workload, const std::string &predictor,
          std::size_t budget_bytes, const AccuracyResult &r)
{
    obs::RunReport::Row row;
    row.workload = workload;
    row.predictor = predictor;
    row.budgetBytes = budget_bytes;
    row.branches = r.branches;
    row.mispredictions = r.mispredictions;
    return row;
}

obs::RunReport::Row
reportRow(const std::string &workload, const std::string &predictor,
          const std::string &mode, std::size_t budget_bytes,
          const CoreConfig &cfg, const SimResult &r)
{
    obs::RunReport::Row row;
    row.workload = workload;
    row.predictor = predictor;
    row.mode = mode;
    row.budgetBytes = budget_bytes;
    row.branches = r.condBranches;
    row.mispredictions = r.mispredictions;
    row.hasTiming = true;
    row.issueWidth = cfg.issueWidth;
    row.cycles = r.cycles;
    row.instructions = r.instructions;
    row.squashedUops = r.squashedUops;
    row.flushes = r.flushes;
    row.flushCyclesOverride = r.overrideStallCycles;
    row.flushCyclesMispredict = r.mispredictWaitCycles;
    row.stallCyclesIcache = r.icacheStallCycles;
    row.stallCyclesBtb = r.btbStallCycles;
    row.robStallCycles = r.robStallCycles;
    return row;
}

SuiteTraces::SuiteTraces(Counter ops_per_workload, std::uint64_t seed,
                         parallel::CellPool *pool)
    : SuiteTraces(ops_per_workload, seed, pool, TraceCache::fromEnv(),
                  false)
{
}

SuiteTraces::SuiteTraces(Counter ops_per_workload, std::uint64_t seed,
                         parallel::CellPool *pool, bool shared_pool)
    : SuiteTraces(ops_per_workload, seed, pool, TraceCache::fromEnv(),
                  shared_pool)
{
}

SuiteTraces::SuiteTraces(Counter ops_per_workload, std::uint64_t seed,
                         parallel::CellPool *pool, TraceCache cache)
    : SuiteTraces(ops_per_workload, seed, pool, std::move(cache),
                  false)
{
}

SuiteTraces::SuiteTraces(Counter ops_per_workload, std::uint64_t seed,
                         parallel::CellPool *pool, TraceCache cache,
                         bool shared_pool)
    : names_(specint2000Names()),
      opsPerWorkload_(ops_per_workload),
      seed_(seed),
      cache_(std::move(cache))
{
    traces_.resize(names_.size());
    std::vector<char> hit(names_.size(), 0);
    // Generation is deterministic per (workload, ops, seed) and each
    // cell writes only its own trace slot, so parallel construction
    // produces the exact traces serial construction would.
    const auto compute = [&](std::size_t i) {
        const auto generate = [&] {
            const auto w = makeWorkload(names_[i]);
            return generateTrace(*w, opsPerWorkload_, seed_);
        };
        if (shared_pool) {
            auto src = SharedTracePool::Source::Generated;
            traces_[i] = SharedTracePool::global().fetch(
                names_[i], opsPerWorkload_, seed_, cache_, generate,
                &src);
            hit[i] =
                src != SharedTracePool::Source::Generated ? 1 : 0;
        } else {
            bool fromCache = false;
            traces_[i] = std::make_shared<const TraceBuffer>(
                cache_.fetch(names_[i], opsPerWorkload_, seed_,
                             generate, &fromCache));
            hit[i] = fromCache ? 1 : 0;
        }
    };
    const auto commit = [&](std::size_t i) {
        if (hit[i])
            ++cacheHits_;
        else
            ++cacheMisses_;
    };
    forEachCell(pool, names_.size(), compute, commit);
}

void
SuiteTraces::describe(obs::RunReport &report) const
{
    report.opsPerWorkload = opsPerWorkload_;
    report.seed = seed_;
}

std::vector<AccuracyResult>
suiteAccuracy(const SuiteTraces &suite,
              const std::function<std::unique_ptr<DirectionPredictor>()>
                  &make,
              double *mean_percent, parallel::CellPool *pool)
{
    std::vector<AccuracyResult> results(suite.size());
    std::vector<double> percents(suite.size());
    forEachCell(
        pool, suite.size(),
        [&](std::size_t i) {
            auto pred = make();
            results[i] = runAccuracy(*pred, suite.trace(i));
            percents[i] = results[i].percent();
        },
        [](std::size_t) {});
    if (mean_percent)
        *mean_percent = arithmeticMean(percents);
    return results;
}

std::vector<SimResult>
suiteTiming(const SuiteTraces &suite, const CoreConfig &cfg,
            const std::function<std::unique_ptr<FetchPredictor>()>
                &make,
            double *harmonic_mean_ipc, parallel::CellPool *pool)
{
    std::vector<SimResult> results(suite.size());
    std::vector<double> ipcs(suite.size());
    forEachCell(
        pool, suite.size(),
        [&](std::size_t i) {
            auto pred = make();
            results[i] = runTiming(cfg, *pred, suite.trace(i));
            ipcs[i] = results[i].ipc();
        },
        [](std::size_t) {});
    if (harmonic_mean_ipc)
        *harmonic_mean_ipc = harmonicMean(ipcs);
    return results;
}

namespace {

/** Publish describeStats() gauges, tagging names with the workload. */
template <typename Pred>
void
publishPredictorStats(obs::MetricRegistry &reg, const Pred &pred,
                      const std::string &workload)
{
    for (const PredictorStat &s : pred.describeStats()) {
        // Splice the workload label into an existing {label} suffix
        // or append a fresh one.
        std::string name = s.name;
        if (!name.empty() && name.back() == '}')
            name.insert(name.size() - 1, ",workload=" + workload);
        else
            name += "{workload=" + workload + "}";
        reg.gauge(name).set(s.value);
    }
}

/** Trace-cache effectiveness gauges, stamped once per suite sweep. */
void
publishCacheStats(obs::MetricRegistry &reg, const SuiteTraces &suite)
{
    reg.gauge("trace.cache.hits")
        .set(static_cast<double>(suite.cacheHits()));
    reg.gauge("trace.cache.misses")
        .set(static_cast<double>(suite.cacheMisses()));
    reg.gauge("trace.cache.format_version")
        .set(static_cast<double>(suite.cacheFormatVersion()));
}

} // namespace

std::vector<AccuracyResult>
suiteAccuracyReport(const SuiteTraces &suite,
                    const std::function<
                        std::unique_ptr<DirectionPredictor>()> &make,
                    double *mean_percent, obs::RunReport &report,
                    const std::string &predictor_name,
                    std::size_t budget_bytes,
                    obs::MetricRegistry *metrics,
                    parallel::CellPool *pool)
{
    suite.describe(report);
    if (metrics)
        publishCacheStats(*metrics, suite);
    std::vector<AccuracyResult> results(suite.size());
    std::vector<double> percents(suite.size());
    // Predictors stay alive past compute so their describeStats()
    // gauges can be published in workload order at commit time.
    std::vector<std::unique_ptr<DirectionPredictor>> preds(
        suite.size());
    forEachCell(
        pool, suite.size(),
        [&](std::size_t i) {
            preds[i] = make();
            results[i] = runAccuracy(*preds[i], suite.trace(i));
            percents[i] = results[i].percent();
        },
        [&](std::size_t i) {
            report.rows.push_back(reportRow(suite.name(i),
                                            predictor_name,
                                            budget_bytes, results[i]));
            if (metrics)
                publishPredictorStats(*metrics, *preds[i],
                                      suite.name(i));
            preds[i].reset();
        });
    if (mean_percent)
        *mean_percent = arithmeticMean(percents);
    return results;
}

EnsembleStats
suiteAccuracyReportEnsemble(const SuiteTraces &suite,
                            std::vector<AccuracyCellConfig> &configs,
                            obs::RunReport &report,
                            obs::MetricRegistry *metrics,
                            parallel::CellPool *pool)
{
    suite.describe(report);
    if (metrics)
        publishCacheStats(*metrics, suite);
    const std::size_t nc = configs.size();
    const std::size_t nw = suite.size();

    // Per-cell predictor factory: the per-workload form wins when a
    // config carries one (fault-injection studies seed each cell's
    // plan by workload index).
    const auto makePred = [&configs](std::size_t c, std::size_t w) {
        return configs[c].makeForWorkload
                   ? configs[c].makeForWorkload(w)
                   : configs[c].make();
    };

    // Group configs by concrete *inner* predictor type using one
    // probe instance per config (construction is cheap next to
    // replay; the probes never see a branch). Wrapper chains may
    // differ inside a group — protected / fault-injecting variants
    // batch with their bare siblings via per-member hooks — so a
    // group is batched when every member unwraps to one known inner
    // type, width >= 2, and the escape hatch is off. Everything else
    // runs one (config, workload) cell at a time, exactly like
    // suiteAccuracyReport.
    std::vector<std::vector<std::size_t>> groups;
    std::vector<char> mixedFlags; // aligned with groups
    {
        std::vector<std::unique_ptr<DirectionPredictor>> probes(nc);
        std::vector<DirectionPredictor *> probePtrs(nc);
        for (std::size_t c = 0; c < nc; ++c) {
            probes[c] = makePred(c, 0);
            probePtrs[c] = probes[c].get();
        }
        std::map<std::type_index, std::size_t> byType;
        std::vector<std::vector<std::size_t>> candidates;
        const bool enabled = ensembleEnabled();
        for (std::size_t c = 0; c < nc; ++c) {
            const std::type_info *inner =
                ensembleAccuracyInnerType(*probePtrs[c]);
            if (!enabled || inner == nullptr) {
                groups.push_back({c});
                mixedFlags.push_back(0);
                continue;
            }
            const std::type_index t(*inner);
            const auto it = byType.find(t);
            if (it == byType.end()) {
                byType.emplace(t, candidates.size());
                candidates.push_back({c});
            } else {
                candidates[it->second].push_back(c);
            }
        }
        for (auto &g : candidates) {
            std::vector<DirectionPredictor *> ptrs;
            for (std::size_t c : g)
                ptrs.push_back(probePtrs[c]);
            if (g.size() >= 2 && ensembleBatchable(ptrs)) {
                // Mixed-wrapper when the members' dynamic types
                // differ (bare next to protected, say).
                bool mixed = false;
                for (DirectionPredictor *p : ptrs)
                    mixed = mixed || typeid(*p) != typeid(*ptrs[0]);
                groups.push_back(std::move(g));
                mixedFlags.push_back(mixed ? 1 : 0);
            } else {
                for (std::size_t c : g) {
                    groups.push_back({c});
                    mixedFlags.push_back(0);
                }
            }
        }
    }

    EnsembleStats stats;
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
        const auto &g = groups[gi];
        if (g.size() >= 2) {
            ++stats.groups;
            stats.batchedCells += g.size() * nw;
            stats.batchWidth = std::max(stats.batchWidth, g.size());
            if (mixedFlags[gi]) {
                ++stats.heteroGroups;
                stats.heteroCells += g.size() * nw;
                stats.heteroWidth =
                    std::max(stats.heteroWidth, g.size());
            }
        } else {
            stats.serialCells += nw;
        }
    }

    // Compute phase: one cell per (group, workload), fanned out on
    // the pool when one is passed. Each cell builds its own member
    // predictors, so cells stay independent; predictors are kept
    // until the emission phase publishes their describeStats().
    std::vector<std::vector<std::unique_ptr<DirectionPredictor>>>
        preds(nc);
    for (auto &row : preds)
        row.resize(nw);
    for (auto &cfg : configs)
        cfg.results.assign(nw, AccuracyResult{});
    const std::size_t cellCount = groups.size() * nw;
    forEachCell(
        pool, cellCount,
        [&](std::size_t cell) {
            const std::vector<std::size_t> &g =
                groups[cell / nw];
            const std::size_t w = cell % nw;
            std::vector<DirectionPredictor *> members;
            members.reserve(g.size());
            for (std::size_t c : g) {
                preds[c][w] = makePred(c, w);
                members.push_back(preds[c][w].get());
            }
            if (g.size() >= 2 && ensembleBatchable(members)) {
                const auto results =
                    runAccuracyEnsemble(members, suite.trace(w));
                for (std::size_t k = 0; k < g.size(); ++k)
                    configs[g[k]].results[w] = results[k];
            } else {
                for (std::size_t k = 0; k < g.size(); ++k)
                    configs[g[k]].results[w] = runAccuracy(
                        *members[k], suite.trace(w));
            }
        },
        [](std::size_t) {});

    // Emission phase, config-major / workload-minor: byte-identical
    // report rows and metrics to N sequential suiteAccuracyReport
    // calls in list order.
    for (std::size_t c = 0; c < nc; ++c) {
        std::vector<double> percents(nw);
        for (std::size_t w = 0; w < nw; ++w) {
            percents[w] = configs[c].results[w].percent();
            report.rows.push_back(
                reportRow(suite.name(w), configs[c].name,
                          configs[c].budgetBytes,
                          configs[c].results[w]));
            if (metrics)
                publishPredictorStats(*metrics, *preds[c][w],
                                      suite.name(w));
            preds[c][w].reset();
        }
        configs[c].meanPercent = arithmeticMean(percents);
    }

    if (metrics) {
        metrics->gauge("core.ensemble.batched_cells")
            .set(static_cast<double>(stats.batchedCells));
        metrics->gauge("core.ensemble.serial_cells")
            .set(static_cast<double>(stats.serialCells));
        metrics->gauge("core.ensemble.groups")
            .set(static_cast<double>(stats.groups));
        metrics->gauge("core.ensemble.batch_width")
            .set(static_cast<double>(stats.batchWidth));
    }
    return stats;
}

std::vector<SimResult>
suiteTimingReport(const SuiteTraces &suite, const CoreConfig &cfg,
                  const std::function<
                      std::unique_ptr<FetchPredictor>()> &make,
                  double *harmonic_mean_ipc, obs::RunReport &report,
                  const std::string &predictor_name,
                  const std::string &mode, std::size_t budget_bytes,
                  obs::MetricRegistry *metrics,
                  obs::EventTracer *tracer, parallel::CellPool *pool)
{
    suite.describe(report);
    if (metrics)
        publishCacheStats(*metrics, suite);
    std::vector<SimResult> results(suite.size());
    std::vector<double> ipcs(suite.size());
    std::vector<std::unique_ptr<FetchPredictor>> preds(suite.size());
    // An event tracer records a single ordered stream; never fan its
    // runs out across workers.
    parallel::CellPool *effPool = tracer ? nullptr : pool;
    forEachCell(
        effPool, suite.size(),
        [&](std::size_t i) {
            preds[i] = make();
            results[i] =
                runTiming(cfg, *preds[i], suite.trace(i), tracer);
            ipcs[i] = results[i].ipc();
        },
        [&](std::size_t i) {
            report.rows.push_back(reportRow(suite.name(i),
                                            predictor_name, mode,
                                            budget_bytes, cfg,
                                            results[i]));
            if (metrics) {
                results[i].publishMetrics(*metrics, suite.name(i));
                publishPredictorStats(*metrics, *preds[i],
                                      suite.name(i));
            }
            preds[i].reset();
        });
    if (harmonic_mean_ipc)
        *harmonic_mean_ipc = harmonicMean(ipcs);
    return results;
}

namespace {

/** core.ensemble.timing.* gauges — the one metrics difference the
 *  timing-equivalence contract allows. */
void
publishTimingEnsembleGauges(obs::MetricRegistry *metrics,
                            const EnsembleStats &stats)
{
    if (!metrics)
        return;
    metrics->gauge("core.ensemble.timing.batched_cells")
        .set(static_cast<double>(stats.batchedCells));
    metrics->gauge("core.ensemble.timing.serial_cells")
        .set(static_cast<double>(stats.serialCells));
    metrics->gauge("core.ensemble.timing.groups")
        .set(static_cast<double>(stats.groups));
    metrics->gauge("core.ensemble.timing.batch_width")
        .set(static_cast<double>(stats.batchWidth));
    metrics->gauge("core.ensemble.timing.hetero_groups")
        .set(static_cast<double>(stats.heteroGroups));
    metrics->gauge("core.ensemble.timing.hetero_cells")
        .set(static_cast<double>(stats.heteroCells));
    metrics->gauge("core.ensemble.timing.hetero_width")
        .set(static_cast<double>(stats.heteroWidth));
}

/** Serial sweep of one timing config, honouring the per-workload
 *  factory form that suiteTimingReport's free-function signature
 *  cannot express. Row/metric order matches suiteTimingReport. */
void
serialTimingSweepOne(const SuiteTraces &suite, TimingCellConfig &c,
                     obs::RunReport &report,
                     obs::MetricRegistry *metrics,
                     obs::EventTracer *tracer,
                     parallel::CellPool *pool)
{
    if (!c.makeForWorkload) {
        c.results = suiteTimingReport(suite, c.cfg, c.make,
                                      &c.harmonicMeanIpc, report,
                                      c.name, c.mode, c.budgetBytes,
                                      metrics, tracer, pool);
        return;
    }
    suite.describe(report);
    if (metrics)
        publishCacheStats(*metrics, suite);
    c.results.assign(suite.size(), SimResult{});
    std::vector<double> ipcs(suite.size());
    std::vector<std::unique_ptr<FetchPredictor>> preds(suite.size());
    parallel::CellPool *effPool = tracer ? nullptr : pool;
    forEachCell(
        effPool, suite.size(),
        [&](std::size_t i) {
            preds[i] = c.makeForWorkload(i);
            c.results[i] =
                runTiming(c.cfg, *preds[i], suite.trace(i), tracer);
            ipcs[i] = c.results[i].ipc();
        },
        [&](std::size_t i) {
            report.rows.push_back(reportRow(suite.name(i), c.name,
                                            c.mode, c.budgetBytes,
                                            c.cfg, c.results[i]));
            if (metrics) {
                c.results[i].publishMetrics(*metrics, suite.name(i));
                publishPredictorStats(*metrics, *preds[i],
                                      suite.name(i));
            }
            preds[i].reset();
        });
    c.harmonicMeanIpc = harmonicMean(ipcs);
}

} // namespace

EnsembleStats
suiteTimingReportEnsemble(const SuiteTraces &suite,
                          std::vector<TimingCellConfig> &configs,
                          obs::RunReport &report,
                          obs::MetricRegistry *metrics,
                          obs::EventTracer *tracer,
                          parallel::CellPool *pool)
{
    EnsembleStats stats;
    const std::size_t nc = configs.size();
    const std::size_t nw = suite.size();

    // An event tracer records a single ordered stream: delegate the
    // whole sweep, config by config, to the serial path (which also
    // refuses the pool) — byte-identical by definition.
    if (tracer) {
        for (TimingCellConfig &c : configs)
            serialTimingSweepOne(suite, c, report, metrics, tracer,
                                 pool);
        stats.serialCells = nc * nw;
        publishTimingEnsembleGauges(metrics, stats);
        return stats;
    }

    suite.describe(report);
    if (metrics)
        publishCacheStats(*metrics, suite);

    // Per-cell predictor factory (per-workload form wins, as on the
    // accuracy side).
    const auto makePred = [&configs](std::size_t c, std::size_t w) {
        return configs[c].makeForWorkload
                   ? configs[c].makeForWorkload(w)
                   : configs[c].make();
    };

    // Probe each config's timing key — wrapper chain plus inner
    // concrete predictor types — and merge every config with a
    // non-empty key into ONE group per workload: members own private
    // cores and pause at side-effect-free boundaries, so
    // heterogeneous kinds interleave freely and one merged group
    // means one trace pass instead of one per kind. The group is
    // heterogeneous when two members' exact keys differ. Protected
    // fetch predictors and unknown wrappers produce an empty key and
    // stay serial; so does everything when the escape hatch is on.
    std::vector<std::vector<std::size_t>> groups;
    bool merged_hetero = false;
    {
        std::vector<std::unique_ptr<FetchPredictor>> probes(nc);
        std::vector<std::size_t> batchable;
        std::vector<std::vector<std::type_index>> keys(nc);
        const bool enabled = ensembleEnabled();
        for (std::size_t c = 0; c < nc; ++c) {
            probes[c] = makePred(c, 0);
            keys[c] = ensembleTimingGroupKey(*probes[c]);
            if (!enabled || keys[c].empty())
                groups.push_back({c});
            else
                batchable.push_back(c);
        }
        if (batchable.size() >= 2) {
            for (std::size_t c : batchable)
                merged_hetero =
                    merged_hetero || keys[c] != keys[batchable[0]];
            groups.push_back(std::move(batchable));
        } else {
            for (std::size_t c : batchable)
                groups.push_back({c});
        }
    }

    for (const auto &g : groups) {
        if (g.size() >= 2) {
            ++stats.groups;
            stats.batchedCells += g.size() * nw;
            stats.batchWidth = std::max(stats.batchWidth, g.size());
            if (merged_hetero) {
                ++stats.heteroGroups;
                stats.heteroCells += g.size() * nw;
                stats.heteroWidth =
                    std::max(stats.heteroWidth, g.size());
            }
        } else {
            stats.serialCells += nw;
        }
    }

    // Compute phase: one cell per (group, workload) on the pool.
    // Predictors are kept until emission publishes describeStats().
    std::vector<std::vector<std::unique_ptr<FetchPredictor>>> preds(
        nc);
    for (auto &row : preds)
        row.resize(nw);
    for (TimingCellConfig &c : configs)
        c.results.assign(nw, SimResult{});
    forEachCell(
        pool, groups.size() * nw,
        [&](std::size_t cell) {
            const std::vector<std::size_t> &g = groups[cell / nw];
            const std::size_t w = cell % nw;
            std::vector<FetchPredictor *> members;
            members.reserve(g.size());
            for (std::size_t c : g) {
                preds[c][w] = makePred(c, w);
                members.push_back(preds[c][w].get());
            }
            if (g.size() >= 2 && ensembleTimingBatchable(members)) {
                // Nested inside the pool's "cell" span so bpstat
                // timeline can label batched timing cells — the
                // hetero category marks cross-kind groups.
                obs::SpanScope span(merged_hetero
                                        ? "cell.batched.hetero"
                                        : "cell.batched",
                                    configs[g[0]].name, "width",
                                    g.size());
                std::vector<EnsembleTimingReplay::Member> ms;
                ms.reserve(g.size());
                for (std::size_t k = 0; k < g.size(); ++k)
                    ms.push_back(
                        {configs[g[k]].cfg, members[k]});
                EnsembleTimingReplay replay(std::move(ms));
                const auto results = replay.run(suite.trace(w));
                for (std::size_t k = 0; k < g.size(); ++k)
                    configs[g[k]].results[w] = results[k];
            } else {
                for (std::size_t k = 0; k < g.size(); ++k)
                    configs[g[k]].results[w] =
                        runTiming(configs[g[k]].cfg, *members[k],
                                  suite.trace(w));
            }
        },
        [](std::size_t) {});

    // Emission phase, config-major / workload-minor: byte-identical
    // report rows and metrics to N sequential suiteTimingReport
    // calls in list order.
    for (std::size_t c = 0; c < nc; ++c) {
        std::vector<double> ipcs(nw);
        for (std::size_t w = 0; w < nw; ++w) {
            ipcs[w] = configs[c].results[w].ipc();
            report.rows.push_back(reportRow(
                suite.name(w), configs[c].name, configs[c].mode,
                configs[c].budgetBytes, configs[c].cfg,
                configs[c].results[w]));
            if (metrics) {
                configs[c].results[w].publishMetrics(*metrics,
                                                     suite.name(w));
                publishPredictorStats(*metrics, *preds[c][w],
                                      suite.name(w));
            }
            preds[c][w].reset();
        }
        configs[c].harmonicMeanIpc = harmonicMean(ipcs);
    }

    publishTimingEnsembleGauges(metrics, stats);
    return stats;
}

Counter
benchOpsPerWorkload(Counter fallback)
{
    if (const char *env = std::getenv("BPSIM_OPS_PER_WORKLOAD")) {
        const long long v = std::atoll(env);
        if (v > 0)
            return static_cast<Counter>(v);
    }
    return fallback;
}

} // namespace bpsim
