#include "core/runner.hh"

#include <cstdlib>

#include "common/stats.hh"
#include "workloads/registry.hh"

namespace bpsim {

AccuracyResult
runAccuracy(DirectionPredictor &pred, const TraceBuffer &trace)
{
    AccuracyResult r;
    for (const MicroOp &op : trace) {
        if (op.cls != InstClass::CondBranch)
            continue;
        const bool predicted = pred.predict(op.pc);
        pred.update(op.pc, op.taken);
        ++r.branches;
        if (predicted != op.taken)
            ++r.mispredictions;
    }
    return r;
}

AccuracyResult
runAccuracy(DirectionPredictor &pred, const TraceBuffer &trace,
            const std::function<void()> &poll, Counter poll_interval)
{
    AccuracyResult r;
    Counter untilPoll = poll_interval;
    for (const MicroOp &op : trace) {
        if (op.cls != InstClass::CondBranch)
            continue;
        const bool predicted = pred.predict(op.pc);
        pred.update(op.pc, op.taken);
        ++r.branches;
        if (predicted != op.taken)
            ++r.mispredictions;
        if (--untilPoll == 0) {
            poll();
            untilPoll = poll_interval;
        }
    }
    return r;
}

SimResult
runTiming(const CoreConfig &cfg, FetchPredictor &pred,
          const TraceBuffer &trace)
{
    return runTiming(cfg, pred, trace, nullptr);
}

SimResult
runTiming(const CoreConfig &cfg, FetchPredictor &pred,
          const TraceBuffer &trace, obs::EventTracer *tracer)
{
    OooCore core(cfg, pred);
    core.attachTracer(tracer);
    return core.run(trace);
}

obs::RunReport::Row
reportRow(const std::string &workload, const std::string &predictor,
          std::size_t budget_bytes, const AccuracyResult &r)
{
    obs::RunReport::Row row;
    row.workload = workload;
    row.predictor = predictor;
    row.budgetBytes = budget_bytes;
    row.branches = r.branches;
    row.mispredictions = r.mispredictions;
    return row;
}

obs::RunReport::Row
reportRow(const std::string &workload, const std::string &predictor,
          const std::string &mode, std::size_t budget_bytes,
          const CoreConfig &cfg, const SimResult &r)
{
    obs::RunReport::Row row;
    row.workload = workload;
    row.predictor = predictor;
    row.mode = mode;
    row.budgetBytes = budget_bytes;
    row.branches = r.condBranches;
    row.mispredictions = r.mispredictions;
    row.hasTiming = true;
    row.issueWidth = cfg.issueWidth;
    row.cycles = r.cycles;
    row.instructions = r.instructions;
    row.squashedUops = r.squashedUops;
    row.flushes = r.flushes;
    row.flushCyclesOverride = r.overrideStallCycles;
    row.flushCyclesMispredict = r.mispredictWaitCycles;
    row.stallCyclesIcache = r.icacheStallCycles;
    row.stallCyclesBtb = r.btbStallCycles;
    row.robStallCycles = r.robStallCycles;
    return row;
}

SuiteTraces::SuiteTraces(Counter ops_per_workload, std::uint64_t seed)
    : opsPerWorkload_(ops_per_workload), seed_(seed)
{
    for (const auto &name : specint2000Names()) {
        const auto w = makeWorkload(name);
        names_.push_back(name);
        traces_.push_back(generateTrace(*w, ops_per_workload, seed));
    }
}

void
SuiteTraces::describe(obs::RunReport &report) const
{
    report.opsPerWorkload = opsPerWorkload_;
    report.seed = seed_;
}

std::vector<AccuracyResult>
suiteAccuracy(const SuiteTraces &suite,
              const std::function<std::unique_ptr<DirectionPredictor>()>
                  &make,
              double *mean_percent)
{
    std::vector<AccuracyResult> results;
    std::vector<double> percents;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        auto pred = make();
        results.push_back(runAccuracy(*pred, suite.trace(i)));
        percents.push_back(results.back().percent());
    }
    if (mean_percent)
        *mean_percent = arithmeticMean(percents);
    return results;
}

std::vector<SimResult>
suiteTiming(const SuiteTraces &suite, const CoreConfig &cfg,
            const std::function<std::unique_ptr<FetchPredictor>()>
                &make,
            double *harmonic_mean_ipc)
{
    std::vector<SimResult> results;
    std::vector<double> ipcs;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        auto pred = make();
        results.push_back(runTiming(cfg, *pred, suite.trace(i)));
        ipcs.push_back(results.back().ipc());
    }
    if (harmonic_mean_ipc)
        *harmonic_mean_ipc = harmonicMean(ipcs);
    return results;
}

namespace {

/** Publish describeStats() gauges, tagging names with the workload. */
template <typename Pred>
void
publishPredictorStats(obs::MetricRegistry &reg, const Pred &pred,
                      const std::string &workload)
{
    for (const PredictorStat &s : pred.describeStats()) {
        // Splice the workload label into an existing {label} suffix
        // or append a fresh one.
        std::string name = s.name;
        if (!name.empty() && name.back() == '}')
            name.insert(name.size() - 1, ",workload=" + workload);
        else
            name += "{workload=" + workload + "}";
        reg.gauge(name).set(s.value);
    }
}

} // namespace

std::vector<AccuracyResult>
suiteAccuracyReport(const SuiteTraces &suite,
                    const std::function<
                        std::unique_ptr<DirectionPredictor>()> &make,
                    double *mean_percent, obs::RunReport &report,
                    const std::string &predictor_name,
                    std::size_t budget_bytes,
                    obs::MetricRegistry *metrics)
{
    suite.describe(report);
    std::vector<AccuracyResult> results;
    std::vector<double> percents;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        auto pred = make();
        results.push_back(runAccuracy(*pred, suite.trace(i)));
        percents.push_back(results.back().percent());
        report.rows.push_back(reportRow(suite.name(i),
                                        predictor_name, budget_bytes,
                                        results.back()));
        if (metrics)
            publishPredictorStats(*metrics, *pred, suite.name(i));
    }
    if (mean_percent)
        *mean_percent = arithmeticMean(percents);
    return results;
}

std::vector<SimResult>
suiteTimingReport(const SuiteTraces &suite, const CoreConfig &cfg,
                  const std::function<
                      std::unique_ptr<FetchPredictor>()> &make,
                  double *harmonic_mean_ipc, obs::RunReport &report,
                  const std::string &predictor_name,
                  const std::string &mode, std::size_t budget_bytes,
                  obs::MetricRegistry *metrics,
                  obs::EventTracer *tracer)
{
    suite.describe(report);
    std::vector<SimResult> results;
    std::vector<double> ipcs;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        auto pred = make();
        results.push_back(
            runTiming(cfg, *pred, suite.trace(i), tracer));
        ipcs.push_back(results.back().ipc());
        report.rows.push_back(reportRow(suite.name(i),
                                        predictor_name, mode,
                                        budget_bytes, cfg,
                                        results.back()));
        if (metrics) {
            results.back().publishMetrics(*metrics, suite.name(i));
            publishPredictorStats(*metrics, *pred, suite.name(i));
        }
    }
    if (harmonic_mean_ipc)
        *harmonic_mean_ipc = harmonicMean(ipcs);
    return results;
}

Counter
benchOpsPerWorkload(Counter fallback)
{
    if (const char *env = std::getenv("BPSIM_OPS_PER_WORKLOAD")) {
        const long long v = std::atoll(env);
        if (v > 0)
            return static_cast<Counter>(v);
    }
    return fallback;
}

} // namespace bpsim
