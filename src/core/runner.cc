#include "core/runner.hh"

#include <cstdlib>

#include "common/stats.hh"
#include "workloads/registry.hh"

namespace bpsim {

AccuracyResult
runAccuracy(DirectionPredictor &pred, const TraceBuffer &trace)
{
    AccuracyResult r;
    for (const MicroOp &op : trace) {
        if (op.cls != InstClass::CondBranch)
            continue;
        const bool predicted = pred.predict(op.pc);
        pred.update(op.pc, op.taken);
        ++r.branches;
        if (predicted != op.taken)
            ++r.mispredictions;
    }
    return r;
}

SimResult
runTiming(const CoreConfig &cfg, FetchPredictor &pred,
          const TraceBuffer &trace)
{
    OooCore core(cfg, pred);
    return core.run(trace);
}

SuiteTraces::SuiteTraces(Counter ops_per_workload, std::uint64_t seed)
{
    for (const auto &name : specint2000Names()) {
        const auto w = makeWorkload(name);
        names_.push_back(name);
        traces_.push_back(generateTrace(*w, ops_per_workload, seed));
    }
}

std::vector<AccuracyResult>
suiteAccuracy(const SuiteTraces &suite,
              const std::function<std::unique_ptr<DirectionPredictor>()>
                  &make,
              double *mean_percent)
{
    std::vector<AccuracyResult> results;
    std::vector<double> percents;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        auto pred = make();
        results.push_back(runAccuracy(*pred, suite.trace(i)));
        percents.push_back(results.back().percent());
    }
    if (mean_percent)
        *mean_percent = arithmeticMean(percents);
    return results;
}

std::vector<SimResult>
suiteTiming(const SuiteTraces &suite, const CoreConfig &cfg,
            const std::function<std::unique_ptr<FetchPredictor>()>
                &make,
            double *harmonic_mean_ipc)
{
    std::vector<SimResult> results;
    std::vector<double> ipcs;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        auto pred = make();
        results.push_back(runTiming(cfg, *pred, suite.trace(i)));
        ipcs.push_back(results.back().ipc());
    }
    if (harmonic_mean_ipc)
        *harmonic_mean_ipc = harmonicMean(ipcs);
    return results;
}

Counter
benchOpsPerWorkload(Counter fallback)
{
    if (const char *env = std::getenv("BPSIM_OPS_PER_WORKLOAD")) {
        const long long v = std::atoll(env);
        if (v > 0)
            return static_cast<Counter>(v);
    }
    return fallback;
}

} // namespace bpsim
