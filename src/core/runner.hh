/**
 * @file
 * Experiment runners: accuracy-only simulation (Figures 1, 5, 6) and
 * full timing simulation (Figures 2, 7, 8), plus suite-level
 * orchestration over the twelve SPECint stand-ins with the paper's
 * reductions (arithmetic-mean misprediction, harmonic-mean IPC).
 *
 * Every suite helper optionally takes a parallel::CellPool: when one
 * is passed, the per-workload cells execute concurrently on the
 * pool's workers while rows and metrics are committed in workload
 * order on the calling thread, so a parallel run's RunReport is
 * byte-identical to the serial one. The predictor factory closure is
 * then invoked concurrently and must be safe to call from multiple
 * threads (the stock makePredictor/makeFetchPredictor factories are).
 */

#ifndef BPSIM_CORE_RUNNER_HH
#define BPSIM_CORE_RUNNER_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/factory.hh"
#include "obs/event_trace.hh"
#include "obs/metrics.hh"
#include "obs/run_report.hh"
#include "pipeline/fetch_predictor.hh"
#include "predictors/predictor.hh"
#include "sim/core_config.hh"
#include "sim/ooo_core.hh"
#include "trace/trace_buffer.hh"
#include "trace/trace_cache.hh"
#include "workloads/workload.hh"

namespace bpsim {

namespace parallel {
class CellPool;
} // namespace parallel

/** Result of an accuracy-only run. */
struct AccuracyResult
{
    Counter branches = 0;
    Counter mispredictions = 0;

    double
    percent() const
    {
        return branches ? 100.0 * static_cast<double>(mispredictions) /
                              static_cast<double>(branches)
                        : 0.0;
    }
};

/** Replay every conditional branch of @p trace through @p pred. */
AccuracyResult runAccuracy(DirectionPredictor &pred,
                           const TraceBuffer &trace);

/**
 * As above, invoking @p poll every @p poll_interval conditional
 * branches. Intended for cooperative watchdogs: a suite cell passes
 * a closure that calls Deadline::check() so a wedged or oversized
 * run aborts with DeadlineExceeded instead of hanging the campaign.
 */
AccuracyResult runAccuracy(DirectionPredictor &pred,
                           const TraceBuffer &trace,
                           const std::function<void()> &poll,
                           Counter poll_interval = 65536);

/**
 * The virtual-dispatch replay loop, bypassing the monomorphic
 * fast path that runAccuracy() takes for factory-built predictor
 * types. Exists so equivalence tests and microbenchmarks can compare
 * the two paths; results are always identical.
 */
AccuracyResult runAccuracyVirtual(DirectionPredictor &pred,
                                  const TraceBuffer &trace);

/** Run the timing simulator over @p trace with @p pred. */
SimResult runTiming(const CoreConfig &cfg, FetchPredictor &pred,
                    const TraceBuffer &trace);

/** As above, with per-cycle events recorded into @p tracer
 *  (ignored when nullptr). */
SimResult runTiming(const CoreConfig &cfg, FetchPredictor &pred,
                    const TraceBuffer &trace,
                    obs::EventTracer *tracer);

/** Build a RunReport row from one accuracy run. */
obs::RunReport::Row reportRow(const std::string &workload,
                              const std::string &predictor,
                              std::size_t budget_bytes,
                              const AccuracyResult &r);

/** Build a RunReport row from one timing run. */
obs::RunReport::Row reportRow(const std::string &workload,
                              const std::string &predictor,
                              const std::string &mode,
                              std::size_t budget_bytes,
                              const CoreConfig &cfg,
                              const SimResult &r);

/**
 * Generates and caches one trace per SPECint workload so that every
 * predictor configuration in an experiment sees the same streams
 * (the paper's methodology). Trace length and seed are fixed at
 * construction.
 *
 * Traces come from the on-disk TraceCache when one is enabled
 * (BPSIM_TRACE_CACHE, or an explicit cache for tests) and are
 * generated — in parallel across workloads when a pool is passed —
 * otherwise. Generation is deterministic per (workload, ops, seed),
 * so cached, parallel and serial construction all yield identical
 * traces.
 *
 * When constructed with shared_pool = true, the buffers come from
 * the process-wide SharedTracePool: suites with the same key share
 * one read-only copy instead of each holding a private gigabyte.
 * The benches opt in; suites whose metrics are byte-compared against
 * a private-copy baseline (tests) keep the default private copies.
 * Either way a suite's traces are bitwise identical — only memory
 * ownership differs.
 */
class SuiteTraces
{
  public:
    /**
     * @param ops_per_workload Dynamic instructions per workload.
     * @param seed Generation seed.
     * @param pool Optional executor for parallel generation.
     */
    explicit SuiteTraces(Counter ops_per_workload,
                         std::uint64_t seed = 42,
                         parallel::CellPool *pool = nullptr);

    /** As above, sharing buffers through SharedTracePool::global()
     *  when @p shared_pool is true. A pool hit counts as a cache
     *  hit; only actual generation counts as a miss. */
    SuiteTraces(Counter ops_per_workload, std::uint64_t seed,
                parallel::CellPool *pool, bool shared_pool);

    /** As above with an explicit cache instead of BPSIM_TRACE_CACHE. */
    SuiteTraces(Counter ops_per_workload, std::uint64_t seed,
                parallel::CellPool *pool, TraceCache cache);

    std::size_t size() const { return traces_.size(); }
    const std::string &name(std::size_t i) const { return names_[i]; }
    const TraceBuffer &trace(std::size_t i) const
    {
        return *traces_[i];
    }
    Counter opsPerWorkload() const { return opsPerWorkload_; }
    std::uint64_t seed() const { return seed_; }

    /** Workloads served without generating: from the on-disk cache
     *  or (shared_pool mode) already materialized in-process. */
    Counter cacheHits() const { return cacheHits_; }
    /** Workloads generated (and stored when a cache is enabled). */
    Counter cacheMisses() const { return cacheMisses_; }

    /** On-disk entry format version of the suite's trace cache
     *  (surfaced as trace.cache.format_version in RunReports). */
    int cacheFormatVersion() const { return cache_.formatVersion(); }

    /** Stamp generation parameters into @p report 's header. */
    void describe(obs::RunReport &report) const;

  private:
    SuiteTraces(Counter ops_per_workload, std::uint64_t seed,
                parallel::CellPool *pool, TraceCache cache,
                bool shared_pool);

    std::vector<std::string> names_;
    std::vector<std::shared_ptr<const TraceBuffer>> traces_;
    Counter opsPerWorkload_;
    std::uint64_t seed_;
    TraceCache cache_;
    Counter cacheHits_ = 0;
    Counter cacheMisses_ = 0;
};

/**
 * Convenience: per-workload accuracy for a predictor built fresh per
 * workload by @p make. Returns one entry per suite workload plus
 * fills @p mean_percent with the arithmetic mean (the paper's
 * Figure 1/5/6 reduction).
 */
std::vector<AccuracyResult>
suiteAccuracy(const SuiteTraces &suite,
              const std::function<std::unique_ptr<DirectionPredictor>()>
                  &make,
              double *mean_percent = nullptr,
              parallel::CellPool *pool = nullptr);

/**
 * Per-workload timing runs for a fetch predictor built fresh per
 * workload by @p make. Fills @p harmonic_mean_ipc with the paper's
 * Figure 7/8 reduction.
 */
std::vector<SimResult>
suiteTiming(const SuiteTraces &suite, const CoreConfig &cfg,
            const std::function<std::unique_ptr<FetchPredictor>()>
                &make,
            double *harmonic_mean_ipc = nullptr,
            parallel::CellPool *pool = nullptr);

/**
 * suiteAccuracy plus reporting: appends one row per workload to
 * @p report under @p predictor_name / @p budget_bytes, publishes
 * each predictor instance's describeStats() gauges into @p metrics
 * when non-null, and stamps the suite's trace-cache hit/miss gauges.
 */
std::vector<AccuracyResult>
suiteAccuracyReport(const SuiteTraces &suite,
                    const std::function<
                        std::unique_ptr<DirectionPredictor>()> &make,
                    double *mean_percent, obs::RunReport &report,
                    const std::string &predictor_name,
                    std::size_t budget_bytes,
                    obs::MetricRegistry *metrics = nullptr,
                    parallel::CellPool *pool = nullptr);

/**
 * One cell of a batched accuracy sweep: a predictor configuration
 * plus its per-workload outputs. The sweep drivers (fig1/fig5/fig6)
 * build one of these per (kind, budget) and hand the whole list to
 * suiteAccuracyReportEnsemble, which groups same-family configs and
 * replays each group in one pass over every trace.
 */
struct AccuracyCellConfig
{
    AccuracyCellConfig() = default;
    /** Input-only construction, the form the sweep drivers use
     *  (output members start empty). */
    AccuracyCellConfig(
        std::function<std::unique_ptr<DirectionPredictor>()> make_,
        std::string name_, std::size_t budget_bytes)
        : make(std::move(make_)), name(std::move(name_)),
          budgetBytes(budget_bytes)
    {}

    /** Factory for this configuration (fresh instance per workload;
     *  must be callable from pool workers). */
    std::function<std::unique_ptr<DirectionPredictor>()> make;
    /**
     * Optional per-workload factory, taking the suite workload
     * index; wins over @c make when set. The fault-injection studies
     * use this to give every (config, workload) cell its own seeded
     * FaultPlan. The built type must not depend on the index — the
     * grouping probe keys on workload 0's instance.
     */
    std::function<std::unique_ptr<DirectionPredictor>(std::size_t)>
        makeForWorkload;
    /** Predictor name for report rows. */
    std::string name;
    /** Hardware budget for report rows. */
    std::size_t budgetBytes = 0;

    // Outputs, filled by suiteAccuracyReportEnsemble:
    /** Arithmetic-mean misprediction percent across the suite. */
    double meanPercent = 0.0;
    /** Per-workload results, in suite workload order. */
    std::vector<AccuracyResult> results;
};

/** How a batched sweep executed (published as core.ensemble.*). */
struct EnsembleStats
{
    /** (config x workload) cells replayed inside a batched group. */
    std::size_t batchedCells = 0;
    /** Cells replayed one-at-a-time (unbatchable or lone configs). */
    std::size_t serialCells = 0;
    /** Batched groups formed. */
    std::size_t groups = 0;
    /** Widest batched group (member count). */
    std::size_t batchWidth = 0;
    /** Batched groups whose members mix kinds or wrapper chains
     *  (timing: distinct ensembleTimingGroupKeys; accuracy: distinct
     *  dynamic member types around one inner kind). */
    std::size_t heteroGroups = 0;
    /** Cells replayed inside heterogeneous groups. */
    std::size_t heteroCells = 0;
    /** Widest heterogeneous group (member count). */
    std::size_t heteroWidth = 0;
};

/**
 * Run every configuration in @p configs over @p suite, batching
 * same-family groups through the ensemble engine (core/ensemble.hh)
 * so each group streams every trace once instead of once per config.
 *
 * Equivalence contract: the appended report rows, the published
 * metrics (bar the extra core.ensemble.* gauges) and each config's
 * results/meanPercent are byte-identical to calling
 * suiteAccuracyReport once per config in list order — rows are
 * emitted config-major, workload-minor after all cells compute.
 * Groups form per concrete *inner* type (ensembleAccuracyInnerType),
 * so protected / fault-injecting wrapper variants of one kind batch
 * together with their bare siblings. Configurations whose predictors
 * the ensemble probe rejects (unknown user types) and all configs
 * when BPSIM_ENSEMBLE=0 run through the serial path, with identical
 * output.
 */
EnsembleStats suiteAccuracyReportEnsemble(
    const SuiteTraces &suite,
    std::vector<AccuracyCellConfig> &configs,
    obs::RunReport &report, obs::MetricRegistry *metrics = nullptr,
    parallel::CellPool *pool = nullptr);

/**
 * One cell of a batched timing sweep: a fetch-predictor
 * configuration plus core parameters and per-workload outputs. The
 * timing sweep drivers (fig2/fig7/fig8 and the pipeline/delay
 * ablations) build one per (kind, mode, budget) — in the exact row
 * order their serial loops used — and hand the whole list to
 * suiteTimingReportEnsemble.
 */
struct TimingCellConfig
{
    TimingCellConfig() = default;
    /** Input-only construction, the form the sweep drivers use
     *  (output members start empty). */
    TimingCellConfig(
        std::function<std::unique_ptr<FetchPredictor>()> make_,
        std::string name_, std::string mode_,
        std::size_t budget_bytes, CoreConfig cfg_)
        : make(std::move(make_)), name(std::move(name_)),
          mode(std::move(mode_)), budgetBytes(budget_bytes),
          cfg(cfg_)
    {}

    /** Factory for this configuration (fresh instance per workload;
     *  must be callable from pool workers). */
    std::function<std::unique_ptr<FetchPredictor>()> make;
    /**
     * Optional per-workload factory, taking the suite workload
     * index; wins over @c make when set. The fault-injection studies
     * use this to give every (config, workload) cell its own seeded
     * FaultPlan. The built type must not depend on the index — the
     * grouping probe keys on workload 0's instance.
     */
    std::function<std::unique_ptr<FetchPredictor>(std::size_t)>
        makeForWorkload;
    /** Predictor name for report rows. */
    std::string name;
    /** Delay-mode string for report rows. */
    std::string mode;
    /** Hardware budget for report rows. */
    std::size_t budgetBytes = 0;
    /** Core parameters for this cell (per-cell: the pipeline-depth
     *  study batches cells whose cores differ). */
    CoreConfig cfg;

    // Outputs, filled by suiteTimingReportEnsemble:
    /** Harmonic-mean IPC across the suite (Figure 7/8 reduction). */
    double harmonicMeanIpc = 0.0;
    /** Per-workload results, in suite workload order. */
    std::vector<SimResult> results;
};

/**
 * Run every timing configuration in @p configs over @p suite,
 * batching every batchable config (non-empty ensembleTimingGroupKey)
 * into one — possibly heterogeneous — group per workload through
 * EnsembleTimingReplay, so the whole sweep streams every trace once
 * instead of once per config. Groups whose members mix kinds or
 * wrapper chains are counted in core.ensemble.timing.hetero_* and
 * traced under the `cell.batched.hetero` span category.
 *
 * Equivalence contract: the appended report rows, the published
 * metrics (bar the extra core.ensemble.timing.* gauges) and each
 * config's results/harmonicMeanIpc are byte-identical to calling
 * suiteTimingReport once per config in list order. A non-null
 * @p tracer forces the whole sweep down the serial path (the event
 * stream is ordered), as does BPSIM_ENSEMBLE=0; configurations whose
 * predictors the timing probe rejects (unknown user subclasses) and
 * lone configs run serially with identical output.
 */
EnsembleStats suiteTimingReportEnsemble(
    const SuiteTraces &suite, std::vector<TimingCellConfig> &configs,
    obs::RunReport &report, obs::MetricRegistry *metrics = nullptr,
    obs::EventTracer *tracer = nullptr,
    parallel::CellPool *pool = nullptr);

/**
 * suiteTiming plus reporting: appends one row per workload to
 * @p report, publishes each run's SimResult counters into
 * @p metrics (when non-null) under `{workload=...}` labels, records
 * events into @p tracer (when non-null), and publishes the fetch
 * predictor's describeStats() gauges. A non-null @p tracer forces
 * serial execution — the event stream is ordered.
 */
std::vector<SimResult>
suiteTimingReport(const SuiteTraces &suite, const CoreConfig &cfg,
                  const std::function<
                      std::unique_ptr<FetchPredictor>()> &make,
                  double *harmonic_mean_ipc, obs::RunReport &report,
                  const std::string &predictor_name,
                  const std::string &mode, std::size_t budget_bytes,
                  obs::MetricRegistry *metrics = nullptr,
                  obs::EventTracer *tracer = nullptr,
                  parallel::CellPool *pool = nullptr);

/**
 * Default trace length for benches; reads BPSIM_OPS_PER_WORKLOAD
 * from the environment (so the sweeps can be scaled up to
 * paper-length runs) and falls back to @p fallback.
 */
Counter benchOpsPerWorkload(Counter fallback = 400000);

} // namespace bpsim

#endif // BPSIM_CORE_RUNNER_HH
