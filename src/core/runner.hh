/**
 * @file
 * Experiment runners: accuracy-only simulation (Figures 1, 5, 6) and
 * full timing simulation (Figures 2, 7, 8), plus suite-level
 * orchestration over the twelve SPECint stand-ins with the paper's
 * reductions (arithmetic-mean misprediction, harmonic-mean IPC).
 */

#ifndef BPSIM_CORE_RUNNER_HH
#define BPSIM_CORE_RUNNER_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/factory.hh"
#include "obs/event_trace.hh"
#include "obs/metrics.hh"
#include "obs/run_report.hh"
#include "pipeline/fetch_predictor.hh"
#include "predictors/predictor.hh"
#include "sim/core_config.hh"
#include "sim/ooo_core.hh"
#include "trace/trace_buffer.hh"
#include "workloads/workload.hh"

namespace bpsim {

/** Result of an accuracy-only run. */
struct AccuracyResult
{
    Counter branches = 0;
    Counter mispredictions = 0;

    double
    percent() const
    {
        return branches ? 100.0 * static_cast<double>(mispredictions) /
                              static_cast<double>(branches)
                        : 0.0;
    }
};

/** Replay every conditional branch of @p trace through @p pred. */
AccuracyResult runAccuracy(DirectionPredictor &pred,
                           const TraceBuffer &trace);

/**
 * As above, invoking @p poll every @p poll_interval conditional
 * branches. Intended for cooperative watchdogs: a suite cell passes
 * a closure that calls Deadline::check() so a wedged or oversized
 * run aborts with DeadlineExceeded instead of hanging the campaign.
 */
AccuracyResult runAccuracy(DirectionPredictor &pred,
                           const TraceBuffer &trace,
                           const std::function<void()> &poll,
                           Counter poll_interval = 65536);

/** Run the timing simulator over @p trace with @p pred. */
SimResult runTiming(const CoreConfig &cfg, FetchPredictor &pred,
                    const TraceBuffer &trace);

/** As above, with per-cycle events recorded into @p tracer
 *  (ignored when nullptr). */
SimResult runTiming(const CoreConfig &cfg, FetchPredictor &pred,
                    const TraceBuffer &trace,
                    obs::EventTracer *tracer);

/** Build a RunReport row from one accuracy run. */
obs::RunReport::Row reportRow(const std::string &workload,
                              const std::string &predictor,
                              std::size_t budget_bytes,
                              const AccuracyResult &r);

/** Build a RunReport row from one timing run. */
obs::RunReport::Row reportRow(const std::string &workload,
                              const std::string &predictor,
                              const std::string &mode,
                              std::size_t budget_bytes,
                              const CoreConfig &cfg,
                              const SimResult &r);

/**
 * Generates and caches one trace per SPECint workload so that every
 * predictor configuration in an experiment sees the same streams
 * (the paper's methodology). Trace length and seed are fixed at
 * construction.
 */
class SuiteTraces
{
  public:
    /**
     * @param ops_per_workload Dynamic instructions per workload.
     * @param seed Generation seed.
     */
    explicit SuiteTraces(Counter ops_per_workload,
                         std::uint64_t seed = 42);

    std::size_t size() const { return traces_.size(); }
    const std::string &name(std::size_t i) const { return names_[i]; }
    const TraceBuffer &trace(std::size_t i) const { return traces_[i]; }
    Counter opsPerWorkload() const { return opsPerWorkload_; }
    std::uint64_t seed() const { return seed_; }

    /** Stamp generation parameters into @p report 's header. */
    void describe(obs::RunReport &report) const;

  private:
    std::vector<std::string> names_;
    std::vector<TraceBuffer> traces_;
    Counter opsPerWorkload_;
    std::uint64_t seed_;
};

/**
 * Convenience: per-workload accuracy for a predictor built fresh per
 * workload by @p make. Returns one entry per suite workload plus
 * fills @p mean_percent with the arithmetic mean (the paper's
 * Figure 1/5/6 reduction).
 */
std::vector<AccuracyResult>
suiteAccuracy(const SuiteTraces &suite,
              const std::function<std::unique_ptr<DirectionPredictor>()>
                  &make,
              double *mean_percent = nullptr);

/**
 * Per-workload timing runs for a fetch predictor built fresh per
 * workload by @p make. Fills @p harmonic_mean_ipc with the paper's
 * Figure 7/8 reduction.
 */
std::vector<SimResult>
suiteTiming(const SuiteTraces &suite, const CoreConfig &cfg,
            const std::function<std::unique_ptr<FetchPredictor>()>
                &make,
            double *harmonic_mean_ipc = nullptr);

/**
 * suiteAccuracy plus reporting: appends one row per workload to
 * @p report under @p predictor_name / @p budget_bytes, and (end of
 * suite) publishes the last predictor instance's describeStats()
 * gauges into @p metrics when non-null.
 */
std::vector<AccuracyResult>
suiteAccuracyReport(const SuiteTraces &suite,
                    const std::function<
                        std::unique_ptr<DirectionPredictor>()> &make,
                    double *mean_percent, obs::RunReport &report,
                    const std::string &predictor_name,
                    std::size_t budget_bytes,
                    obs::MetricRegistry *metrics = nullptr);

/**
 * suiteTiming plus reporting: appends one row per workload to
 * @p report, publishes each run's SimResult counters into
 * @p metrics (when non-null) under `{workload=...}` labels, records
 * events into @p tracer (when non-null), and publishes the fetch
 * predictor's describeStats() gauges.
 */
std::vector<SimResult>
suiteTimingReport(const SuiteTraces &suite, const CoreConfig &cfg,
                  const std::function<
                      std::unique_ptr<FetchPredictor>()> &make,
                  double *harmonic_mean_ipc, obs::RunReport &report,
                  const std::string &predictor_name,
                  const std::string &mode, std::size_t budget_bytes,
                  obs::MetricRegistry *metrics = nullptr,
                  obs::EventTracer *tracer = nullptr);

/**
 * Default trace length for benches; reads BPSIM_OPS_PER_WORKLOAD
 * from the environment (so the sweeps can be scaled up to
 * paper-length runs) and falls back to @p fallback.
 */
Counter benchOpsPerWorkload(Counter fallback = 400000);

} // namespace bpsim

#endif // BPSIM_CORE_RUNNER_HH
