/**
 * @file
 * Batched ensemble replay: N same-family predictor configurations in
 * one pass over a trace.
 *
 * A figure sweep replays the same branch stream through many
 * configurations of one predictor kind (every gshare budget of
 * Figure 1, say). Run serially, each configuration re-streams the
 * trace — the pc/taken columns are read from memory once per cell.
 * The ensemble engine instead walks the trace's dense branch columns
 * (BranchSpan, structure-of-arrays) once, stepping every member
 * predictor per branch: the stream is read once per *group*, the
 * per-branch (pc, taken) pair stays in registers across members, and
 * the inner step is monomorphized per concrete predictor type via
 * withConcretePredictor (core/dispatch.hh) so predict/update inline
 * exactly as they do in the serial fast path.
 *
 * Determinism contract: members are independent — no state is shared
 * between them, and each member sees the identical predict(pc) /
 * update(pc, taken) call sequence the serial loop would issue. Every
 * member therefore finishes in a state bit-identical to a serial
 * run, and the per-member AccuracyResults are byte-identical to
 * runAccuracy()'s (golden-tested across all kinds and budgets in
 * tests/test_ensemble.cc). The perceptron family additionally gets a
 * specialized kernel that shares the per-branch ±1 input vector
 * across members (the dominant per-branch cost); it asserts its
 * preconditions (fresh members, matching local geometry) and falls
 * back to the generic loop otherwise, preserving the same contract.
 *
 * Grouping rules (the capability probe): a member list is batchable
 * when it has at least two members and every member resolves — after
 * unwrapping the stock robustness decorators (FaultInjectingPredictor
 * and ProtectedPredictor, in any nesting) — to the *same* concrete
 * inner type, one the monomorphic dispatcher knows. Wrapped members
 * replay through the inner fast path plus a per-member hook chain
 * that re-fires each wrapper's post-update tail (injection cadence,
 * parity/SEC-DED check, scrub) at exactly the per-member update
 * counts the serial path would have used; since each wrapper's
 * cadence reads only its own member's counters and state, the
 * member-major interleaving is invisible to it and results stay
 * bit-identical. Unknown user subclasses still fail the probe and
 * run serially.
 */

#ifndef BPSIM_CORE_ENSEMBLE_HH
#define BPSIM_CORE_ENSEMBLE_HH

#include <memory>
#include <typeindex>
#include <vector>

#include "core/runner.hh"
#include "pipeline/fetch_predictor.hh"
#include "predictors/predictor.hh"
#include "sim/core_config.hh"
#include "sim/ooo_core.hh"
#include "trace/trace_buffer.hh"

namespace bpsim {

/**
 * True when @p members can be replayed as one batched group: at
 * least two, and every member — bare, or wrapped in any nesting of
 * the stock FaultInjecting/Protected decorators — unwrapping to the
 * same concrete inner type known to the monomorphic dispatcher.
 * Null entries, mixed inner families or unknown user subclasses
 * return false — the caller must run those serially.
 */
bool ensembleBatchable(
    const std::vector<DirectionPredictor *> &members);

/**
 * Accuracy grouping key: the concrete inner predictor type @p member
 * resolves to after unwrapping the stock robustness decorators, or
 * nullptr when the member is not batchable (unknown wrapper or inner
 * type). Two members with the same key may share a batched group
 * even when their wrapper chains differ — the mixed-wrapper case the
 * protection-surface studies sweep.
 */
const std::type_info *
ensembleAccuracyInnerType(DirectionPredictor &member);

/**
 * Replay every conditional branch of @p trace through all
 * @p members in one pass. Precondition: ensembleBatchable(members)
 * (unknown types still produce correct results through the virtual
 * interface, but then the pass only saves the trace re-streaming).
 * Returns one AccuracyResult per member, in member order, each
 * identical to what runAccuracy(member, trace) would have produced.
 */
std::vector<AccuracyResult>
runAccuracyEnsemble(const std::vector<DirectionPredictor *> &members,
                    const TraceBuffer &trace);

/** False when BPSIM_ENSEMBLE=0 — the escape hatch that forces every
 *  suite sweep down the serial path (A/B identity testing). */
bool ensembleEnabled();

/**
 * True when @p members — fetch-side predictors this time — can be
 * replayed as one batched *timing* group: at least two, and every
 * member individually batchable (non-empty ensembleTimingGroupKey).
 * Members need NOT share one key: each owns a private core and
 * advances at fetch-index boundaries that are side-effect-free, so
 * heterogeneous kinds and wrapper classes interleave without
 * observing each other (fig8's four distinct predictors form one
 * group). Null entries or members with unknown wrappers / inner
 * types return false — those cells must run serially.
 */
bool ensembleTimingBatchable(
    const std::vector<FetchPredictor *> &members);

/**
 * Per-member timing key: the wrapper chain's types followed by each
 * wrapped direction predictor's decorator chain and concrete type,
 * in wrapper order. A non-empty key means the member may join a
 * batched group; two equal keys mean "same-kind" (a group whose
 * members' keys all match is uniform, otherwise heterogeneous —
 * reported via core.ensemble.timing.hetero_*). The stock delay
 * wrappers (SingleCycle / Overriding / Stall / DualPath / Cascading)
 * are accepted, optionally under a FaultInjectingFetchPredictor, and
 * inner direction predictors may be wrapped in the stock
 * FaultInjecting/Protected decorators. Empty when any wrapper or
 * innermost predictor type is unknown (user subclasses) — such cells
 * run serially.
 */
std::vector<std::type_index>
ensembleTimingGroupKey(FetchPredictor &member);

/**
 * One member of a batched timing replay, as the engine drives it:
 * the incremental OooCore API behind a small vtable so user-supplied
 * core types can join a batched pass. advance() must pause at the
 * given fetch-index boundary without observable side effects (the
 * OooCore::begin/advance/finish contract), so member-major
 * interleaving stays bit-identical to a serial run per member.
 */
class CoreDriver
{
  public:
    virtual ~CoreDriver() = default;

    /** Reset and arm the member for one pass over @p trace. */
    virtual void begin(const TraceBuffer &trace) = 0;
    /** Simulate until @p fetch_target ops are fetched (or the trace
     *  ends); pausing must be side-effect-free. */
    virtual void advance(const TraceBuffer &trace,
                         std::size_t fetch_target) = 0;
    /** Drain and return the member's final SimResult. */
    virtual SimResult finish() = 0;
};

/**
 * Batched timing replay: N (fetch predictor, OooCore) cells of one
 * workload advanced through a single pass over the trace's op
 * stream. Each member owns a full private core (fetch wake state,
 * completion heap, ROB occupancy, stall attribution counters, cache
 * and BTB images) and is advanced member-major in fetch-index
 * blocks, so one block of trace ops is decoded from memory once per
 * group instead of once per cell while every member still executes
 * its exact serial cycle loop — cycleSkip fast-forwarding included,
 * per member. Members may mix predictor kinds, wrapper classes and
 * core configurations freely: the fetch predictor is a virtual
 * interface inside each private core, so a heterogeneous group
 * advances exactly like a uniform one. Results are byte-identical to
 * runTiming() per member by construction (see OooCore::advance).
 *
 * Two construction forms: the Member form builds one stock OooCore
 * per member and runs them through the monomorphic member loop (the
 * fast path every suite sweep takes); the CoreDriver form accepts
 * user-supplied core types behind the vtable and advances them
 * member-major through the same block schedule.
 */
class EnsembleTimingReplay
{
  public:
    /** One member cell: a core configuration plus its fetch
     *  predictor (not owned; one predictor per member). */
    struct Member
    {
        CoreConfig cfg;
        FetchPredictor *predictor = nullptr;
    };

    explicit EnsembleTimingReplay(std::vector<Member> members);
    /** Virtual-capable form: drive caller-supplied cores. */
    explicit EnsembleTimingReplay(
        std::vector<std::unique_ptr<CoreDriver>> drivers);
    ~EnsembleTimingReplay();

    /** Replay @p trace through every member; one SimResult per
     *  member, in member order, each identical to what
     *  runTiming(member.cfg, *member.predictor, trace) returns (or
     *  to driving that member's CoreDriver alone). */
    std::vector<SimResult> run(const TraceBuffer &trace);

  private:
    std::vector<Member> members_;
    std::vector<std::unique_ptr<OooCore>> cores_;
    std::vector<std::unique_ptr<CoreDriver>> drivers_;
};

} // namespace bpsim

#endif // BPSIM_CORE_ENSEMBLE_HH
