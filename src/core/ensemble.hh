/**
 * @file
 * Batched ensemble replay: N same-family predictor configurations in
 * one pass over a trace.
 *
 * A figure sweep replays the same branch stream through many
 * configurations of one predictor kind (every gshare budget of
 * Figure 1, say). Run serially, each configuration re-streams the
 * trace — the pc/taken columns are read from memory once per cell.
 * The ensemble engine instead walks the trace's dense branch columns
 * (BranchSpan, structure-of-arrays) once, stepping every member
 * predictor per branch: the stream is read once per *group*, the
 * per-branch (pc, taken) pair stays in registers across members, and
 * the inner step is monomorphized per concrete predictor type via
 * withConcretePredictor (core/dispatch.hh) so predict/update inline
 * exactly as they do in the serial fast path.
 *
 * Determinism contract: members are independent — no state is shared
 * between them, and each member sees the identical predict(pc) /
 * update(pc, taken) call sequence the serial loop would issue. Every
 * member therefore finishes in a state bit-identical to a serial
 * run, and the per-member AccuracyResults are byte-identical to
 * runAccuracy()'s (golden-tested across all kinds and budgets in
 * tests/test_ensemble.cc). The perceptron family additionally gets a
 * specialized kernel that shares the per-branch ±1 input vector
 * across members (the dominant per-branch cost); it asserts its
 * preconditions (fresh members, matching local geometry) and falls
 * back to the generic loop otherwise, preserving the same contract.
 *
 * Grouping rules (the capability probe): a member list is batchable
 * when it has at least two members, all of the same concrete dynamic
 * type, and that type is one the monomorphic dispatcher knows.
 * Wrapped predictors — FaultInjectedPredictor, ProtectedPredictor,
 * user types — fail the probe and run serially: a fault plan or
 * protection policy targets one cell's state, and batching such
 * members would let an injector observe (or corrupt) state mid-pass
 * in an order the serial path never produces.
 */

#ifndef BPSIM_CORE_ENSEMBLE_HH
#define BPSIM_CORE_ENSEMBLE_HH

#include <memory>
#include <typeindex>
#include <vector>

#include "core/runner.hh"
#include "pipeline/fetch_predictor.hh"
#include "predictors/predictor.hh"
#include "sim/core_config.hh"
#include "sim/ooo_core.hh"
#include "trace/trace_buffer.hh"

namespace bpsim {

/**
 * True when @p members can be replayed as one batched group: at
 * least two, all the same concrete type, and that type known to the
 * monomorphic dispatcher. Null entries or mixed/wrapped types
 * (fault injection, protection, user predictors) return false — the
 * caller must run those serially.
 */
bool ensembleBatchable(
    const std::vector<DirectionPredictor *> &members);

/**
 * Replay every conditional branch of @p trace through all
 * @p members in one pass. Precondition: ensembleBatchable(members)
 * (unknown types still produce correct results through the virtual
 * interface, but then the pass only saves the trace re-streaming).
 * Returns one AccuracyResult per member, in member order, each
 * identical to what runAccuracy(member, trace) would have produced.
 */
std::vector<AccuracyResult>
runAccuracyEnsemble(const std::vector<DirectionPredictor *> &members,
                    const TraceBuffer &trace);

/** False when BPSIM_ENSEMBLE=0 — the escape hatch that forces every
 *  suite sweep down the serial path (A/B identity testing). */
bool ensembleEnabled();

/**
 * True when @p members — fetch-side predictors this time — can be
 * replayed as one batched *timing* group: at least two, all wrapped
 * by the same stock delay wrapper (SingleCycle / Overriding / Stall /
 * DualPath / Cascading), and every wrapped direction predictor of a
 * known concrete type, matching position-wise across members. Null
 * entries, unknown wrappers (protected fetch predictors, user types)
 * or mismatched inner families return false — those cells must run
 * serially, exactly like the accuracy probe refuses
 * FaultInjected/Protected direction predictors.
 */
bool ensembleTimingBatchable(
    const std::vector<FetchPredictor *> &members);

/**
 * Grouping key for timing ensembles: the delay wrapper's type
 * followed by each wrapped direction predictor's concrete type, in
 * wrapper order. Two cells with equal keys are "same-kind" and may
 * share a batched pass. Empty when the wrapper is not a stock delay
 * wrapper or an inner predictor's type is unknown to the monomorphic
 * dispatcher (fault injection, protection, user types) — such cells
 * run serially.
 */
std::vector<std::type_index>
ensembleTimingGroupKey(FetchPredictor &member);

/**
 * Batched timing replay: N (fetch predictor, OooCore) cells of one
 * workload advanced through a single pass over the trace's op
 * stream. Each member owns a full private core (fetch wake state,
 * completion heap, ROB occupancy, stall attribution counters, cache
 * and BTB images) and is advanced member-major in fetch-index
 * blocks, so one block of trace ops is decoded from memory once per
 * group instead of once per cell while every member still executes
 * its exact serial cycle loop — cycleSkip fast-forwarding included,
 * per member. Results are byte-identical to runTiming() per member
 * by construction (see OooCore::advance).
 */
class EnsembleTimingReplay
{
  public:
    /** One member cell: a core configuration plus its fetch
     *  predictor (not owned; one predictor per member). */
    struct Member
    {
        CoreConfig cfg;
        FetchPredictor *predictor = nullptr;
    };

    explicit EnsembleTimingReplay(std::vector<Member> members);
    ~EnsembleTimingReplay();

    /** Replay @p trace through every member; one SimResult per
     *  member, in member order, each identical to what
     *  runTiming(member.cfg, *member.predictor, trace) returns. */
    std::vector<SimResult> run(const TraceBuffer &trace);

  private:
    std::vector<Member> members_;
    std::vector<std::unique_ptr<OooCore>> cores_;
};

} // namespace bpsim

#endif // BPSIM_CORE_ENSEMBLE_HH
