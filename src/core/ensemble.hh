/**
 * @file
 * Batched ensemble replay: N same-family predictor configurations in
 * one pass over a trace.
 *
 * A figure sweep replays the same branch stream through many
 * configurations of one predictor kind (every gshare budget of
 * Figure 1, say). Run serially, each configuration re-streams the
 * trace — the pc/taken columns are read from memory once per cell.
 * The ensemble engine instead walks the trace's dense branch columns
 * (BranchSpan, structure-of-arrays) once, stepping every member
 * predictor per branch: the stream is read once per *group*, the
 * per-branch (pc, taken) pair stays in registers across members, and
 * the inner step is monomorphized per concrete predictor type via
 * withConcretePredictor (core/dispatch.hh) so predict/update inline
 * exactly as they do in the serial fast path.
 *
 * Determinism contract: members are independent — no state is shared
 * between them, and each member sees the identical predict(pc) /
 * update(pc, taken) call sequence the serial loop would issue. Every
 * member therefore finishes in a state bit-identical to a serial
 * run, and the per-member AccuracyResults are byte-identical to
 * runAccuracy()'s (golden-tested across all kinds and budgets in
 * tests/test_ensemble.cc). The perceptron family additionally gets a
 * specialized kernel that shares the per-branch ±1 input vector
 * across members (the dominant per-branch cost); it asserts its
 * preconditions (fresh members, matching local geometry) and falls
 * back to the generic loop otherwise, preserving the same contract.
 *
 * Grouping rules (the capability probe): a member list is batchable
 * when it has at least two members, all of the same concrete dynamic
 * type, and that type is one the monomorphic dispatcher knows.
 * Wrapped predictors — FaultInjectedPredictor, ProtectedPredictor,
 * user types — fail the probe and run serially: a fault plan or
 * protection policy targets one cell's state, and batching such
 * members would let an injector observe (or corrupt) state mid-pass
 * in an order the serial path never produces.
 */

#ifndef BPSIM_CORE_ENSEMBLE_HH
#define BPSIM_CORE_ENSEMBLE_HH

#include <vector>

#include "core/runner.hh"
#include "predictors/predictor.hh"
#include "trace/trace_buffer.hh"

namespace bpsim {

/**
 * True when @p members can be replayed as one batched group: at
 * least two, all the same concrete type, and that type known to the
 * monomorphic dispatcher. Null entries or mixed/wrapped types
 * (fault injection, protection, user predictors) return false — the
 * caller must run those serially.
 */
bool ensembleBatchable(
    const std::vector<DirectionPredictor *> &members);

/**
 * Replay every conditional branch of @p trace through all
 * @p members in one pass. Precondition: ensembleBatchable(members)
 * (unknown types still produce correct results through the virtual
 * interface, but then the pass only saves the trace re-streaming).
 * Returns one AccuracyResult per member, in member order, each
 * identical to what runAccuracy(member, trace) would have produced.
 */
std::vector<AccuracyResult>
runAccuracyEnsemble(const std::vector<DirectionPredictor *> &members,
                    const TraceBuffer &trace);

/** False when BPSIM_ENSEMBLE=0 — the escape hatch that forces every
 *  suite sweep down the serial path (A/B identity testing). */
bool ensembleEnabled();

} // namespace bpsim

#endif // BPSIM_CORE_ENSEMBLE_HH
