#include "core/ensemble.hh"

#include <cstdlib>
#include <cstring>
#include <optional>
#include <typeinfo>

#include "common/bitutil.hh"
#include "common/vec_kernels.hh"
#include "core/dispatch.hh"
#include "pipeline/alt_delay_hiding.hh"
#include "predictors/multicomponent.hh"
#include "predictors/perceptron.hh"
#include "robust/fault_injector.hh"
#include "robust/protection.hh"

namespace bpsim {

namespace {

/**
 * One wrapper's post-update tail, to be re-fired per member inside
 * the batched loop. Kept std::function-free: a two-way kind switch
 * over the stock robustness decorators, both resolved to direct
 * (inlineable) calls on the concrete wrapper type.
 */
struct ReplayHook
{
    enum class Kind : std::uint8_t { Fault, Protect };

    Kind kind;
    void *wrapper;

    void
    fire() const
    {
        if (kind == Kind::Fault)
            static_cast<robust::FaultInjectingPredictor *>(wrapper)
                ->afterInnerUpdate();
        else
            static_cast<robust::ProtectedPredictor *>(wrapper)
                ->afterInnerUpdate();
    }
};

/**
 * Peel the stock robustness decorators off @p p and return the
 * innermost predictor. Each peeled wrapper appends its post-update
 * hook to @p hooks (outermost first — callers fire them in reverse,
 * matching the nested update() call order: innermost tail first) and
 * its dynamic type to @p chain, when either is non-null.
 */
DirectionPredictor *
unwrapDirection(DirectionPredictor *p, std::vector<ReplayHook> *hooks,
                std::vector<std::type_index> *chain)
{
    for (;;) {
        if (auto *f =
                dynamic_cast<robust::FaultInjectingPredictor *>(p)) {
            if (hooks)
                hooks->push_back({ReplayHook::Kind::Fault, f});
            if (chain)
                chain->emplace_back(typeid(*f));
            p = &f->inner();
            continue;
        }
        if (auto *pr = dynamic_cast<robust::ProtectedPredictor *>(p)) {
            if (hooks)
                hooks->push_back({ReplayHook::Kind::Protect, pr});
            if (chain)
                chain->emplace_back(typeid(*pr));
            p = &pr->inner();
            continue;
        }
        return p;
    }
}

/**
 * The generic batched loop, blocked member-major: each member
 * replays a block of branches before the next member starts on it.
 * Members are fully independent (each step reads and writes only
 * that member's state plus the read-only trace), so any interleaving
 * produces bit-identical counters and final state; this one is
 * chosen for cache behaviour. Branch-major order cycles the
 * *combined* table working set of the whole group through the cache
 * on every branch — for a nine-budget family that sum exceeds L2
 * and every PHT probe pays an LLC round trip. Member-major over a
 * block keeps one member's tables resident while the block's slice
 * of the trace columns stays hot in L1. Instantiated per concrete
 * (final) predictor type so the member step inlines.
 */
template <typename Pred>
std::vector<AccuracyResult>
genericEnsembleLoop(const std::vector<Pred *> &members,
                    const BranchSpan &view)
{
    // 16K branches: the trace slice is 16K * 9 bytes, well inside
    // L1+L2, and long enough that switching members' table sets is
    // amortized over the block.
    constexpr std::size_t kBlock = 16384;
    const std::size_t width = members.size();
    const std::size_t n = view.size();
    const Addr *pcs = view.pcData();
    const std::uint8_t *takens = view.takenData();
    std::vector<Counter> misp(width, 0);
    for (std::size_t base = 0; base < n; base += kBlock) {
        const std::size_t end = std::min(n, base + kBlock);
        for (std::size_t j = 0; j < width; ++j) {
            Pred *const p = members[j];
            Counter m = 0;
            for (std::size_t i = base; i < end; ++i) {
                const bool taken = takens[i] != 0;
                const bool predicted = p->predict(pcs[i]);
                p->update(pcs[i], taken);
                m += predicted != taken ? 1 : 0;
            }
            misp[j] += m;
        }
    }
    std::vector<AccuracyResult> results(width);
    for (std::size_t j = 0; j < width; ++j) {
        results[j].branches = static_cast<Counter>(n);
        results[j].mispredictions = misp[j];
    }
    return results;
}

/**
 * The mixed-wrapper variant of the generic loop: members share one
 * inner concrete type (predict/update inline as usual) but may carry
 * per-member wrapper hooks, fired after every update exactly where
 * the serial wrapper.update() would have fired them. A member's
 * hooks read and mutate only that member's own wrapper state
 * (injector RNG, update counters, protection ledger) and the
 * member's own inner predictor, so the member-major block order
 * produces the identical flip/repair stream per member as a serial
 * run. Members without hooks (bare cells sharing a group with
 * protected siblings) take the plain tight loop per block.
 */
template <typename Pred>
std::vector<AccuracyResult>
hookedEnsembleLoop(const std::vector<Pred *> &inners,
                   const std::vector<std::vector<ReplayHook>> &hooks,
                   const BranchSpan &view)
{
    constexpr std::size_t kBlock = 16384;
    const std::size_t width = inners.size();
    const std::size_t n = view.size();
    const Addr *pcs = view.pcData();
    const std::uint8_t *takens = view.takenData();
    std::vector<Counter> misp(width, 0);
    for (std::size_t base = 0; base < n; base += kBlock) {
        const std::size_t end = std::min(n, base + kBlock);
        for (std::size_t j = 0; j < width; ++j) {
            Pred *const p = inners[j];
            const ReplayHook *hb = hooks[j].data();
            const std::size_t nh = hooks[j].size();
            Counter m = 0;
            if (nh == 0) {
                for (std::size_t i = base; i < end; ++i) {
                    const bool taken = takens[i] != 0;
                    const bool predicted = p->predict(pcs[i]);
                    p->update(pcs[i], taken);
                    m += predicted != taken ? 1 : 0;
                }
            } else {
                for (std::size_t i = base; i < end; ++i) {
                    const bool taken = takens[i] != 0;
                    const bool predicted = p->predict(pcs[i]);
                    p->update(pcs[i], taken);
                    // Innermost wrapper's tail first (hooks are
                    // collected outermost-first), matching the
                    // nested update() unwind order.
                    for (std::size_t k = nh; k-- > 0;)
                        hb[k].fire();
                    m += predicted != taken ? 1 : 0;
                }
            }
            misp[j] += m;
        }
    }
    std::vector<AccuracyResult> results(width);
    for (std::size_t j = 0; j < width; ++j) {
        results[j].branches = static_cast<Counter>(n);
        results[j].mispredictions = misp[j];
    }
    return results;
}

} // namespace

/**
 * Specialized perceptron group kernel (friend of
 * PerceptronPredictor).
 *
 * Same-family perceptron members see the identical update stream, so
 * their global history registers and local history tables evolve
 * identically (the factory gives every budget the same local
 * geometry). The kernel exploits that: it maintains ONE shared ±1
 * global input array and ONE shared local history table, computes
 * the per-branch input vector once, and each member only pays its
 * own dot product and (conditional) training sweep — the fillInputs
 * pass that dominated the serial per-member cost is amortized across
 * the group. Member weight tables stay fully independent, and the
 * shared history state is written back to every member at the end,
 * so final member state matches a serial run bit for bit. (The one
 * exception is the inputs_ scratch vector, which is dead state — it
 * is never read before being overwritten and is not exposed by
 * visitState/describeStats.)
 *
 * Preconditions, checked by tryRun (falls back to the generic loop
 * when violated): every member fresh (all-zero histories, so the
 * shared state can start from zero), and every member that has a
 * local component sharing the same local geometry (members without
 * one — the small budgets — just skip the local term).
 */
struct PerceptronBatch
{
    static std::optional<std::vector<AccuracyResult>>
    tryRun(const std::vector<PerceptronPredictor *> &members,
           const BranchSpan &view)
    {
        // Members without a local component (small budgets) just
        // skip the local term; every member that has one must share
        // its geometry so the one local-history table serves all.
        unsigned lb = 0;
        std::size_t localMask = 0;
        unsigned maxGb = 0;
        for (const PerceptronPredictor *p : members) {
            if (p->localBits_ > 0) {
                if (lb == 0) {
                    lb = p->localBits_;
                    localMask = p->localMask_;
                } else if (p->localBits_ != lb ||
                           p->localMask_ != localMask) {
                    return std::nullopt;
                }
            }
            if (!(p->globalHistory_ ==
                  HistoryRegister(p->globalBits_)))
                return std::nullopt;
            for (std::uint64_t lh : p->localHistories_)
                if (lh != 0)
                    return std::nullopt;
            if (p->lastOutput_ != 0)
                return std::nullopt;
            maxGb = std::max(maxGb, p->globalBits_);
        }
        return run(members, view, maxGb, lb, localMask);
    }

  private:
    static std::vector<AccuracyResult>
    run(const std::vector<PerceptronPredictor *> &members,
        const BranchSpan &view, unsigned maxGb, unsigned lb,
        std::size_t localMask)
    {
        const std::size_t width = members.size();

        // Shared history state: xw[i] is the ±1 input for global
        // history bit i (newest first), lh the one local-history
        // table every member with a local component would have
        // computed identically. The global inputs live in a
        // double-length sliding window: inserting the newest bit is
        // one decrement-and-store, and only when the window hits the
        // buffer's front is it relocated — an amortized two bytes
        // per branch instead of shifting all maxGb entries each
        // time.
        std::vector<std::int16_t> xbuf(2 * std::size_t{maxGb}, -1);
        std::size_t xpos = maxGb;
        std::vector<std::int16_t> lx(lb, 0);
        std::vector<std::uint64_t> lh(lb > 0 ? localMask + 1 : 0, 0);

        // Per-member hot fields, unpacked once.
        struct Member
        {
            std::int16_t *weights;
            std::size_t rowStride;
            std::size_t numRows;
            double invRows;
            unsigned gb;
            unsigned lb;
            int threshold;
            int wmin;
            int wmax;
            int lastOut = 0;
            Counter misp = 0;
            std::int16_t *row = nullptr;

            // idx % numRows via a precomputed reciprocal: the row
            // counts are not powers of two, and one serialized
            // hardware divide per member per branch costs more than
            // the dot product it feeds. The fixup loops absorb the
            // double product's +-1 rounding, so the row is exact
            // for any idx.
            std::int16_t *
            rowFor(Addr idx) const
            {
                const std::uint64_t q = static_cast<std::uint64_t>(
                    static_cast<double>(idx) * invRows);
                std::int64_t rem =
                    static_cast<std::int64_t>(idx) -
                    static_cast<std::int64_t>(q * numRows);
                const std::int64_t rows =
                    static_cast<std::int64_t>(numRows);
                while (rem < 0)
                    rem += rows;
                while (rem >= rows)
                    rem -= rows;
                return weights +
                       static_cast<std::size_t>(rem) * rowStride;
            }
        };
        std::vector<Member> ms(width);
        for (std::size_t j = 0; j < width; ++j) {
            PerceptronPredictor &p = *members[j];
            ms[j] = {p.weights_.data(),
                     p.rowStride_,
                     p.numRows_,
                     1.0 / static_cast<double>(p.numRows_),
                     p.globalBits_,
                     p.localBits_,
                     p.threshold_,
                     p.weightMin_,
                     p.weightMax_,
                     0,
                     0};
        }

        const std::size_t n = view.size();
        const Addr *pcs = view.pcData();
        const std::uint8_t *takens = view.takenData();
        if (n > 0) {
            const Addr idx0 =
                PerceptronPredictor::indexPc(pcs[0]);
            for (Member &m : ms)
                m.row = m.rowFor(idx0);
        }
        for (std::size_t i = 0; i < n; ++i) {
            const Addr idx =
                PerceptronPredictor::indexPc(pcs[i]);
            // Branch i+1's row index is already known, so each
            // member's row pointer is computed one branch ahead:
            // the reciprocal-modulo latency overlaps the current
            // dot product instead of serializing in front of the
            // next one, and the prefetch pulls the next row while
            // this branch trains.
            const Addr idxNext =
                i + 1 < n
                    ? PerceptronPredictor::indexPc(pcs[i + 1])
                    : 0;
            const bool haveNext = i + 1 < n;
            const bool taken = takens[i] != 0;
            const std::int16_t *xw = xbuf.data() + xpos;
            std::uint64_t lhv = 0;
            std::size_t li = 0;
            if (lb > 0) {
                li = static_cast<std::size_t>(idx) & localMask;
                lhv = lh[li];
                for (unsigned b = 0; b < lb; ++b)
                    lx[b] = ((lhv >> b) & 1) ? 1 : -1;
            }
            for (Member &m : ms) {
                std::int16_t *row = m.row;
                if (haveNext) {
                    m.row = m.rowFor(idxNext);
                    __builtin_prefetch(m.row, 1);
                }
                int dot = static_cast<int>(row[0]) +
                          dotSignedI16Wide(row + 1, xw, m.gb);
                if (m.lb > 0)
                    dot += dotSignedI16Wide(row + 1 + m.gb,
                                            lx.data(), m.lb);
                const bool predicted = dot >= 0;
                m.misp += predicted != taken ? 1 : 0;
                const int magnitude = dot >= 0 ? dot : -dot;
                if (predicted != taken ||
                    magnitude <= m.threshold) {
                    const int dir = taken ? 1 : -1;
                    int bias = static_cast<int>(row[0]) + dir;
                    bias = bias < m.wmin
                               ? m.wmin
                               : (bias > m.wmax ? m.wmax : bias);
                    row[0] = static_cast<std::int16_t>(bias);
                    trainSignedI16Wide(row + 1, xw, m.gb, dir,
                                       m.wmin, m.wmax);
                    if (m.lb > 0)
                        trainSignedI16Wide(row + 1 + m.gb, lx.data(),
                                           m.lb, dir, m.wmin,
                                           m.wmax);
                }
                m.lastOut = dot;
            }
            // Advance the shared history state exactly as every
            // member's update() would have.
            if (maxGb > 0) {
                if (xpos == 0) {
                    std::memcpy(xbuf.data() + maxGb, xbuf.data(),
                                maxGb * sizeof(std::int16_t));
                    xpos = maxGb;
                }
                xbuf[--xpos] = taken ? 1 : -1;
            }
            if (lb > 0)
                lh[li] = ((lhv << 1) | (taken ? 1 : 0)) & loMask(lb);
        }

        // Write the shared state back into each member so its final
        // SRAM image (visitState) matches the serial run bit for
        // bit.
        std::vector<AccuracyResult> results(width);
        for (std::size_t j = 0; j < width; ++j) {
            PerceptronPredictor &p = *members[j];
            for (unsigned b = 0; b < p.globalBits_; ++b)
                p.globalHistory_.setBit(b, xbuf[xpos + b] > 0);
            if (p.localBits_ > 0)
                p.localHistories_ = lh;
            p.lastOutput_ = ms[j].lastOut;
            results[j].branches = static_cast<Counter>(n);
            results[j].mispredictions = ms[j].misp;
        }
        return results;
    }
};

/**
 * Specialized multi-component group kernel (friend of
 * MultiComponentPredictor and its typed components).
 *
 * MC's per-branch cost is dominated by scattered table probes — the
 * selector row plus one PHT row per component, five-plus dependent
 * cache accesses whose addresses the hardware prefetcher cannot
 * guess. Unlike the perceptron there is no shared input vector to
 * amortize, but the *next* branch's indices are fully computable the
 * moment this branch's updates land (updates use the actual trace
 * outcome, so every component's history after branch i is exactly
 * its state when branch i+1 is predicted). The kernel exploits that:
 * the member-major block loop calls the same inline predict/update
 * pair the generic loop would, then issues one software prefetch per
 * table for branch i+1 — selector row, bimodal row, local history
 * word, every global component's PHT row — overlapping the miss
 * latency with the current branch's selection scan. Prefetches are
 * side-effect-free, so counters and final state stay bit-identical
 * to the serial run (golden-tested in tests/test_ensemble.cc).
 */
struct MulticomponentBatch
{
    static std::vector<AccuracyResult>
    run(const std::vector<MultiComponentPredictor *> &members,
        const BranchSpan &view)
    {
        constexpr std::size_t kBlock = 16384;
        const std::size_t width = members.size();
        const std::size_t n = view.size();
        const Addr *pcs = view.pcData();
        const std::uint8_t *takens = view.takenData();
        std::vector<Counter> misp(width, 0);
        for (std::size_t base = 0; base < n; base += kBlock) {
            const std::size_t end = std::min(n, base + kBlock);
            for (std::size_t j = 0; j < width; ++j) {
                MultiComponentPredictor *const p = members[j];
                Counter m = 0;
                for (std::size_t i = base; i < end; ++i) {
                    const bool taken = takens[i] != 0;
                    const bool predicted = p->predict(pcs[i]);
                    p->update(pcs[i], taken);
                    m += predicted != taken ? 1 : 0;
                    if (i + 1 < end)
                        prefetchNext(*p, pcs[i + 1]);
                }
                misp[j] += m;
            }
        }
        std::vector<AccuracyResult> results(width);
        for (std::size_t j = 0; j < width; ++j) {
            results[j].branches = static_cast<Counter>(n);
            results[j].mispredictions = misp[j];
        }
        return results;
    }

  private:
    static void
    prefetchNext(MultiComponentPredictor &p, Addr pc)
    {
        // Valid post-update: every component's index function reads
        // state already advanced past the current branch.
        __builtin_prefetch(&p.selector_[p.selectorIndex(pc)]);
        p.bimodal_.pht_.prefetch(p.bimodal_.index(pc));
        if (p.local_) {
            LocalPredictor &l = *p.local_;
            __builtin_prefetch(&l.histories_[l.historyIndex(pc)]);
        }
        for (GsharePredictor &g : p.globals_)
            g.pht_.prefetch(g.index(pc));
    }
};

const std::type_info *
ensembleAccuracyInnerType(DirectionPredictor &member)
{
    DirectionPredictor *inner =
        unwrapDirection(&member, nullptr, nullptr);
    if (!withConcretePredictor(*inner, [](auto &) {}))
        return nullptr;
    return &typeid(*inner);
}

bool
ensembleBatchable(const std::vector<DirectionPredictor *> &members)
{
    if (members.size() < 2 || members[0] == nullptr)
        return false;
    // Members may differ in wrapper chains but must share one known
    // concrete inner type; unknown user predictors fail here and
    // stay on the serial path.
    const std::type_info *t = ensembleAccuracyInnerType(*members[0]);
    if (t == nullptr)
        return false;
    for (DirectionPredictor *p : members)
        if (p == nullptr || ensembleAccuracyInnerType(*p) != t)
            return false;
    return true;
}

std::vector<AccuracyResult>
runAccuracyEnsemble(const std::vector<DirectionPredictor *> &members,
                    const TraceBuffer &trace)
{
    if (members.empty())
        return {};
    const BranchSpan view = trace.branchView();
    // The monomorphizing cast below requires a uniform known inner
    // type; re-verify instead of trusting the caller (a mixed group
    // would be undefined behaviour, not just slow). Anything the
    // probe refuses falls back to the virtual loop on the original
    // wrapped members, which is always correct.
    const std::size_t width = members.size();
    std::vector<DirectionPredictor *> inners(width);
    std::vector<std::vector<ReplayHook>> hooks(width);
    bool anyHooks = false;
    for (std::size_t j = 0; j < width; ++j) {
        if (members[j] == nullptr)
            return genericEnsembleLoop(members, view);
        inners[j] = unwrapDirection(members[j], &hooks[j], nullptr);
        anyHooks = anyHooks || !hooks[j].empty();
    }
    const std::type_info &t0 = typeid(*inners[0]);
    for (DirectionPredictor *p : inners)
        if (typeid(*p) != t0)
            return genericEnsembleLoop(members, view);
    std::vector<AccuracyResult> results;
    const bool matched =
        withConcretePredictor(*inners[0], [&](auto &firstInner) {
            using P = std::decay_t<decltype(firstInner)>;
            std::vector<P *> typed;
            typed.reserve(width);
            for (DirectionPredictor *p : inners)
                typed.push_back(static_cast<P *>(p));
            if (anyHooks) {
                // Wrapped members get the hooked loop: the
                // specialized kernels below share history state
                // across members, which an injected flip would
                // desynchronize, so they serve all-bare groups only.
                results = hookedEnsembleLoop(typed, hooks, view);
                return;
            }
            if constexpr (std::is_same_v<P, PerceptronPredictor>) {
                if (auto r = PerceptronBatch::tryRun(typed, view)) {
                    results = std::move(*r);
                    return;
                }
            }
            if constexpr (std::is_same_v<P,
                                         MultiComponentPredictor>) {
                results = MulticomponentBatch::run(typed, view);
                return;
            }
            results = genericEnsembleLoop(typed, view);
        });
    if (!matched)
        results = genericEnsembleLoop(members, view);
    return results;
}

bool
ensembleEnabled()
{
    const char *env = std::getenv("BPSIM_ENSEMBLE");
    return !(env && env[0] == '0' && env[1] == '\0');
}

namespace {

/**
 * Collect the direction predictors inside a stock delay wrapper, in
 * a fixed per-wrapper order. Returns false for unknown wrapper types
 * (protected fetch predictors, user wrappers) — those cells must
 * stay serial, mirroring the accuracy probe's refusal of wrapped
 * direction predictors.
 */
bool
innerPredictorsOf(FetchPredictor &fp,
                  std::vector<DirectionPredictor *> &out)
{
    if (auto *p = dynamic_cast<SingleCycleFetchPredictor *>(&fp)) {
        out.push_back(&p->inner());
        return true;
    }
    if (auto *p = dynamic_cast<OverridingFetchPredictor *>(&fp)) {
        out.push_back(&p->quick());
        out.push_back(&p->slow());
        return true;
    }
    if (auto *p = dynamic_cast<DelayedFetchPredictor *>(&fp)) {
        out.push_back(&p->inner());
        return true;
    }
    if (auto *p = dynamic_cast<DualPathFetchPredictor *>(&fp)) {
        out.push_back(&p->slow());
        return true;
    }
    if (auto *p = dynamic_cast<CascadingFetchPredictor *>(&fp)) {
        out.push_back(&p->quick());
        out.push_back(&p->slow());
        return true;
    }
    return false;
}

} // namespace

std::vector<std::type_index>
ensembleTimingGroupKey(FetchPredictor &member)
{
    std::vector<std::type_index> key;
    // Peel fetch-side fault decorators (study_soft_error's timing
    // slice): their injection cadence reads only the member's own
    // update count, so they batch like any other member state.
    FetchPredictor *fp = &member;
    while (auto *fi =
               dynamic_cast<robust::FaultInjectingFetchPredictor *>(
                   fp)) {
        key.emplace_back(typeid(*fi));
        fp = &fi->inner();
    }
    std::vector<DirectionPredictor *> inner;
    if (!innerPredictorsOf(*fp, inner))
        return {};
    key.emplace_back(typeid(*fp));
    for (DirectionPredictor *p : inner) {
        // Direction-side decorators (protected slow predictors in
        // the protection-surface timing slice) join the key; the
        // innermost type must still be dispatcher-known.
        DirectionPredictor *in = unwrapDirection(p, nullptr, &key);
        if (!withConcretePredictor(*in, [](auto &) {}))
            return {};
        key.emplace_back(typeid(*in));
    }
    return key;
}

bool
ensembleTimingBatchable(const std::vector<FetchPredictor *> &members)
{
    if (members.size() < 2)
        return false;
    // Heterogeneous keys are fine — each member owns a private core
    // and pauses at side-effect-free boundaries — but every member
    // must be individually batchable (known wrapper chain and inner
    // types).
    for (FetchPredictor *fp : members)
        if (fp == nullptr || ensembleTimingGroupKey(*fp).empty())
            return false;
    return true;
}

EnsembleTimingReplay::EnsembleTimingReplay(std::vector<Member> members)
    : members_(std::move(members))
{
    // One private core per member — OooCore holds the predictor by
    // reference, so the cores live behind stable heap slots.
    cores_.reserve(members_.size());
    for (Member &m : members_)
        cores_.push_back(
            std::make_unique<OooCore>(m.cfg, *m.predictor));
}

EnsembleTimingReplay::EnsembleTimingReplay(
    std::vector<std::unique_ptr<CoreDriver>> drivers)
    : drivers_(std::move(drivers))
{
}

EnsembleTimingReplay::~EnsembleTimingReplay() = default;

std::vector<SimResult>
EnsembleTimingReplay::run(const TraceBuffer &trace)
{
    // 8K trace ops per block: the slice of the op stream every
    // member re-decodes stays L2-resident across the whole group,
    // while each member's table/cache working set is touched once
    // per block instead of once per cell-sized pass.
    constexpr std::size_t kOpBlock = 8192;
    const std::size_t n = trace.size();
    if (!drivers_.empty()) {
        // Virtual-capable member loop for caller-supplied cores;
        // the vtable dispatch is per block, not per op, so it costs
        // nothing next to the simulation itself.
        for (auto &d : drivers_)
            d->begin(trace);
        for (std::size_t target = kOpBlock;; target += kOpBlock) {
            const std::size_t t = std::min(target, n);
            for (auto &d : drivers_)
                d->advance(trace, t);
            if (t >= n)
                break; // final advance drained every member
        }
        std::vector<SimResult> results;
        results.reserve(drivers_.size());
        for (auto &d : drivers_)
            results.push_back(d->finish());
        return results;
    }
    // Stock-core fast path: the member loop stays monomorphic over
    // OooCore (heterogeneity lives behind the FetchPredictor
    // interface inside each core).
    for (auto &core : cores_)
        core->begin(trace);
    for (std::size_t target = kOpBlock;; target += kOpBlock) {
        const std::size_t t = std::min(target, n);
        for (auto &core : cores_)
            core->advance(trace, t);
        if (t >= n)
            break; // final advance drained every member
    }
    std::vector<SimResult> results;
    results.reserve(cores_.size());
    for (auto &core : cores_)
        results.push_back(core->finish());
    return results;
}

} // namespace bpsim
