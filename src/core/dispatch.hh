/**
 * @file
 * Monomorphic dispatch over the concrete predictor types.
 *
 * The accuracy replay loop calls predict() and update() once per
 * conditional branch — hundreds of millions of virtual calls in a
 * paper-scale sweep, none of which can inline. Since a suite cell
 * uses exactly one predictor for its whole trace, the type can be
 * resolved *once per cell*: withConcretePredictor() probes the
 * DirectionPredictor against every concrete type the factory can
 * build and invokes the functor with the derived reference, letting
 * the compiler instantiate one replay loop per type with predict and
 * update inlined (all concrete predictor classes are `final`, so the
 * calls devirtualize statically inside the functor body).
 *
 * Unknown types — user-defined predictors from examples/, test
 * doubles — simply return false, and callers fall back to the
 * virtual-dispatch loop, which stays bit-identical (the golden
 * equivalence tests compare the two paths per kind).
 */

#ifndef BPSIM_CORE_DISPATCH_HH
#define BPSIM_CORE_DISPATCH_HH

#include "predictors/bimodal.hh"
#include "predictors/bimode.hh"
#include "predictors/gshare.hh"
#include "predictors/gshare_fast.hh"
#include "predictors/gskew.hh"
#include "predictors/local.hh"
#include "predictors/multicomponent.hh"
#include "predictors/perceptron.hh"
#include "predictors/predictor.hh"
#include "predictors/tournament.hh"
#include "predictors/yags.hh"

namespace bpsim {

/**
 * Resolve @p pred 's dynamic type and call fn(concrete&) with the
 * derived reference. Returns true when a concrete type matched,
 * false when the caller must use the virtual interface. The probe
 * order follows the factory's sweep frequency (gshare-family first).
 */
template <typename Fn>
bool
withConcretePredictor(DirectionPredictor &pred, Fn &&fn)
{
    if (auto *p = dynamic_cast<GsharePredictor *>(&pred)) {
        fn(*p);
        return true;
    }
    if (auto *p = dynamic_cast<GshareFastPredictor *>(&pred)) {
        fn(*p);
        return true;
    }
    if (auto *p = dynamic_cast<BimodalPredictor *>(&pred)) {
        fn(*p);
        return true;
    }
    if (auto *p = dynamic_cast<BiModePredictor *>(&pred)) {
        fn(*p);
        return true;
    }
    if (auto *p = dynamic_cast<YagsPredictor *>(&pred)) {
        fn(*p);
        return true;
    }
    if (auto *p = dynamic_cast<GskewPredictor *>(&pred)) {
        fn(*p);
        return true;
    }
    if (auto *p = dynamic_cast<TournamentPredictor *>(&pred)) {
        fn(*p);
        return true;
    }
    if (auto *p = dynamic_cast<PerceptronPredictor *>(&pred)) {
        fn(*p);
        return true;
    }
    if (auto *p = dynamic_cast<LocalPredictor *>(&pred)) {
        fn(*p);
        return true;
    }
    if (auto *p = dynamic_cast<MultiComponentPredictor *>(&pred)) {
        fn(*p);
        return true;
    }
    return false;
}

} // namespace bpsim

#endif // BPSIM_CORE_DISPATCH_HH
