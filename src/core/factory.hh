/**
 * @file
 * Predictor factory: builds every predictor the paper evaluates at a
 * given hardware budget, and computes its access latency with the
 * CACTI-lite model (Table 2).
 *
 * Budget conventions follow Section 4.1.4: gshare-family predictors
 * use all of the budget as one PHT with history length log2(entries);
 * 2Bc-gskew splits the budget across its four banks; the perceptron
 * and multi-component configurations are re-derived from their
 * source papers' descriptions, scaled so total state matches each
 * budget point (see DESIGN.md §4).
 */

#ifndef BPSIM_CORE_FACTORY_HH
#define BPSIM_CORE_FACTORY_HH

#include <memory>
#include <string>
#include <vector>

#include "delay/clock_model.hh"
#include "delay/sram_model.hh"
#include "pipeline/fetch_predictor.hh"
#include "predictors/predictor.hh"
#include "robust/fault_injector.hh"
#include "robust/protection.hh"

namespace bpsim {

/** The predictors the paper's figures sweep. */
enum class PredictorKind {
    Bimodal,
    Gshare,
    BiMode,
    Yags,           ///< tagged exception caches (Eden/Mudge)
    Gskew,          ///< 2Bc-gskew (EV8-style)
    Tournament,     ///< EV6 global/local hybrid
    Perceptron,     ///< global+local perceptron
    MultiComponent, ///< Evers multi-component hybrid
    GshareFast,     ///< the paper's pipelined predictor
};

/** Printable predictor name (matches the figures' legends). */
std::string kindName(PredictorKind kind);

/** All kinds, in a stable order. */
const std::vector<PredictorKind> &allKinds();

/** The four large predictors of Figures 5-8. */
const std::vector<PredictorKind> &largePredictorKinds();

/** Construct @p kind at (approximately) @p budget_bytes of state. */
std::unique_ptr<DirectionPredictor>
makePredictor(PredictorKind kind, std::size_t budget_bytes);

/**
 * Access latency in cycles for @p kind at @p budget_bytes under the
 * default CACTI-lite calibration and 8 FO4 clock: the largest table
 * component's access time plus the predictor's computation time
 * (one FO4 for table-combining predictors, one full optimistic cycle
 * for the perceptron's dot product — Section 4.1.5).
 */
unsigned predictorLatencyCycles(PredictorKind kind,
                                std::size_t budget_bytes,
                                const SramModel &sram = SramModel{},
                                const ClockModel &clock = ClockModel{});

/** How a predictor's delay is presented to the fetch engine. */
enum class DelayMode {
    Ideal,      ///< zero-delay (the paper's "No Delay" curves)
    Overriding, ///< quick 2K gshare + slow predictor (realistic)
    Stall,      ///< no hiding: fetch stalls for the full latency
    Pipelined,  ///< single-cycle by construction (gshare.fast only)
    DualPath,   ///< fetch both paths at half bandwidth (Section 2.6.2)
    Cascading,  ///< bank the slow answer for the next instance
};

/** Printable delay-mode name. */
std::string delayModeName(DelayMode mode);

/**
 * Build the fetch-side wrapper the timing simulator consumes.
 * GshareFast always presents as single-cycle (its pipelining hides
 * the delay); other kinds honour @p mode. Note that requesting
 * DelayMode::Pipelined for a predictor that cannot be pipelined
 * (everything except GshareFast — the paper's Section 2.2 complexity
 * sources are exactly what prevents it) is treated as the Ideal
 * zero-delay assumption: you get an upper bound, not a buildable
 * design.
 */
std::unique_ptr<FetchPredictor>
makeFetchPredictor(PredictorKind kind, std::size_t budget_bytes,
                   DelayMode mode,
                   const SramModel &sram = SramModel{},
                   const ClockModel &clock = ClockModel{});

/**
 * Protected variant of makeFetchPredictor: the slow predictor is a
 * ProtectedPredictor built at the effective budget (the quick 2K
 * front predictor, where the mode has one, stays unprotected and
 * unbombarded — the policy protects the big table), and the fetch
 * wrapper is sized with protectedPredictorLatencyCycles so the delay
 * tax reaches the timing core.
 */
std::unique_ptr<FetchPredictor>
makeProtectedFetchPredictor(PredictorKind kind,
                            std::size_t budget_bytes, DelayMode mode,
                            const robust::ProtectionConfig &prot,
                            const robust::FaultPlan &plan,
                            const SramModel &sram = SramModel{},
                            const ClockModel &clock = ClockModel{});

/**
 * Build @p kind protected by @p prot and bombarded per @p plan. The
 * protection's storage tax is charged here: the inner predictor is
 * built at protectedEffectiveBudget(@p budget_bytes, @p prot) so the
 * nominal budget pays for data plus check bits. Policy None with a
 * zero-rate plan is byte-equivalent to the bare predictor.
 */
std::unique_ptr<robust::ProtectedPredictor>
makeProtectedPredictor(PredictorKind kind, std::size_t budget_bytes,
                       const robust::ProtectionConfig &prot,
                       const robust::FaultPlan &plan);

/**
 * predictorLatencyCycles for a protected predictor: the largest
 * table is re-derived at the effective (post-tax) budget, widened by
 * its check bits (wire term), and the policy's check/correct FO4s
 * land on the read path before the cycle ceiling.
 */
unsigned protectedPredictorLatencyCycles(
    PredictorKind kind, std::size_t budget_bytes,
    const robust::ProtectionConfig &prot,
    const SramModel &sram = SramModel{},
    const ClockModel &clock = ClockModel{});

/** Entries in the single-cycle quick predictor (Section 4.1.2: a
 *  2K-entry gshare, optimistically assumed single-cycle). */
constexpr std::size_t quickPredictorEntries = 2048;

/** The paper's large-budget sweep points (Figures 2, 5, 7). */
const std::vector<std::size_t> &largeBudgetsBytes();

/** The paper's full sweep for Figure 1 (2KB .. 512KB). */
const std::vector<std::size_t> &figure1BudgetsBytes();

/** The standard budget sweep every predictor kind supports — the
 *  full 2KB .. 512KB Figure 1 range. Equivalence and property tests
 *  iterate this so each kind is exercised at every table geometry
 *  the artifacts can request. */
const std::vector<std::size_t> &standardBudgets();

} // namespace bpsim

#endif // BPSIM_CORE_FACTORY_HH
