#include "core/factory.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/bitutil.hh"
#include "pipeline/alt_delay_hiding.hh"
#include "predictors/bimodal.hh"
#include "predictors/bimode.hh"
#include "predictors/gshare.hh"
#include "predictors/gshare_fast.hh"
#include "predictors/gskew.hh"
#include "predictors/multicomponent.hh"
#include "predictors/perceptron.hh"
#include "predictors/tournament.hh"
#include "predictors/yags.hh"

namespace bpsim {

namespace {

/** Largest power of two <= v (v >= 1). */
std::size_t
prevPow2(std::size_t v)
{
    assert(v >= 1);
    return std::size_t{1} << floorLog2(v);
}

/** Two-bit-counter entries affordable in @p budget_bytes. */
std::size_t
phtEntriesFor(std::size_t budget_bytes)
{
    return prevPow2(budget_bytes * 4);
}

struct PerceptronConfig
{
    std::size_t rows;
    unsigned globalBits;
    unsigned localBits;
    std::size_t localEntries;
};

/**
 * Global+local perceptron configuration at a budget, following the
 * TOCS paper's trend of longer histories at larger budgets.
 */
PerceptronConfig
perceptronConfigFor(std::size_t budget_bytes)
{
    PerceptronConfig cfg;
    const double kb = static_cast<double>(budget_bytes) / 1024.0;
    const int steps =
        std::max(0, static_cast<int>(std::log2(kb / 16.0) + 0.5));
    cfg.globalBits =
        std::min(24u + 4u * static_cast<unsigned>(steps), 44u);
    cfg.localBits = budget_bytes >= 8 * 1024 ? 10 : 0;
    cfg.localEntries = 2048;
    const std::size_t local_table_bytes =
        cfg.localBits ? cfg.localEntries * cfg.localBits / 8 : 0;
    const std::size_t weights_budget =
        budget_bytes > local_table_bytes
            ? budget_bytes - local_table_bytes
            : budget_bytes;
    const std::size_t row_bytes = 1 + cfg.globalBits + cfg.localBits;
    // Rows need not be a power of two, so the configuration uses the
    // whole budget (as the paper's cited configurations do).
    cfg.rows = std::max<std::size_t>(weights_budget / row_bytes, 64);
    return cfg;
}

struct MultiComponentConfig
{
    std::vector<MultiComponentPredictor::ComponentSpec> globals;
    std::size_t selectorEntries;
    std::size_t localEntries;
    std::size_t bimodalEntries;
    std::size_t largestEntries;
};

/**
 * Evers-style multi-component configuration: three global two-level
 * components with geometrically spread history lengths — the
 * longest-history one taking half the budget, as in Evers'
 * configurations where one large component dominates — plus a
 * local-history two-level component, a bimodal component, and a
 * selector table.
 */
MultiComponentConfig
multiComponentConfigFor(std::size_t budget_bytes)
{
    MultiComponentConfig cfg;
    // Largest global component: ~half the budget.
    const std::size_t big =
        prevPow2(std::max<std::size_t>(budget_bytes * 4 / 2, 512));
    const std::size_t mid = std::max<std::size_t>(big / 4, 256);
    const std::size_t small = std::max<std::size_t>(big / 8, 128);
    const unsigned n = floorLog2(big);
    cfg.globals = {
        {small, n / 3},
        {mid, 2 * n / 3},
        {big, n},
    };
    cfg.largestEntries = big;
    cfg.selectorEntries = std::max<std::size_t>(big / 8, 64);
    cfg.localEntries = std::max<std::size_t>(big / 16, 64);
    cfg.bimodalEntries = std::max<std::size_t>(big / 8, 64);
    return cfg;
}

} // namespace

std::string
kindName(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::Bimodal:
        return "bimodal";
      case PredictorKind::Gshare:
        return "gshare";
      case PredictorKind::BiMode:
        return "bimode";
      case PredictorKind::Yags:
        return "yags";
      case PredictorKind::Gskew:
        return "2bc-gskew";
      case PredictorKind::Tournament:
        return "ev6-tournament";
      case PredictorKind::Perceptron:
        return "perceptron";
      case PredictorKind::MultiComponent:
        return "multicomponent";
      case PredictorKind::GshareFast:
        return "gshare.fast";
    }
    return "unknown";
}

const std::vector<PredictorKind> &
allKinds()
{
    static const std::vector<PredictorKind> kinds = {
        PredictorKind::Bimodal,       PredictorKind::Gshare,
        PredictorKind::BiMode,        PredictorKind::Yags,
        PredictorKind::Gskew,
        PredictorKind::Tournament,    PredictorKind::Perceptron,
        PredictorKind::MultiComponent, PredictorKind::GshareFast,
    };
    return kinds;
}

const std::vector<PredictorKind> &
largePredictorKinds()
{
    static const std::vector<PredictorKind> kinds = {
        PredictorKind::MultiComponent,
        PredictorKind::Gskew,
        PredictorKind::Perceptron,
        PredictorKind::GshareFast,
    };
    return kinds;
}

const std::vector<std::size_t> &
largeBudgetsBytes()
{
    static const std::vector<std::size_t> budgets = {
        16 * 1024,  32 * 1024,  64 * 1024,
        128 * 1024, 256 * 1024, 512 * 1024,
    };
    return budgets;
}

const std::vector<std::size_t> &
figure1BudgetsBytes()
{
    static const std::vector<std::size_t> budgets = {
        2 * 1024,   4 * 1024,   8 * 1024,  16 * 1024, 32 * 1024,
        64 * 1024,  128 * 1024, 256 * 1024, 512 * 1024,
    };
    return budgets;
}

const std::vector<std::size_t> &
standardBudgets()
{
    return figure1BudgetsBytes();
}

std::unique_ptr<DirectionPredictor>
makePredictor(PredictorKind kind, std::size_t budget_bytes)
{
    assert(budget_bytes >= 64);
    switch (kind) {
      case PredictorKind::Bimodal:
        return std::make_unique<BimodalPredictor>(
            phtEntriesFor(budget_bytes));
      case PredictorKind::Gshare:
        return std::make_unique<GsharePredictor>(
            phtEntriesFor(budget_bytes));
      case PredictorKind::BiMode: {
        // Three equal tables (two direction banks + choice).
        const std::size_t per_table =
            prevPow2(budget_bytes * 8 / (3 * 2));
        return std::make_unique<BiModePredictor>(per_table, per_table);
      }
      case PredictorKind::Yags: {
        // Half the budget in the choice PHT, half split across the
        // two tagged exception caches (2 + 8 tag + 1 valid bits per
        // entry).
        const std::size_t choice = prevPow2(budget_bytes * 8 / 2 / 2);
        const std::size_t cache =
            prevPow2(std::max<std::size_t>(
                budget_bytes * 8 / 2 / (2 * 11), 64));
        return std::make_unique<YagsPredictor>(choice, cache);
      }
      case PredictorKind::Gskew:
        // Four equal banks.
        return std::make_unique<GskewPredictor>(
            prevPow2(budget_bytes * 8 / (4 * 2)));
      case PredictorKind::Tournament: {
        // EV6 shape scaled to the budget: global and chooser tables
        // of E entries, local predictor with E/4 histories.
        const std::size_t e = prevPow2(budget_bytes * 8 / 8);
        return std::make_unique<TournamentPredictor>(
            e, std::max<std::size_t>(e / 4, 64),
            10, e);
      }
      case PredictorKind::Perceptron: {
        const PerceptronConfig c = perceptronConfigFor(budget_bytes);
        return std::make_unique<PerceptronPredictor>(
            c.rows, c.globalBits, c.localBits, c.localEntries);
      }
      case PredictorKind::MultiComponent: {
        const MultiComponentConfig c =
            multiComponentConfigFor(budget_bytes);
        return std::make_unique<MultiComponentPredictor>(
            c.globals, c.selectorEntries, c.localEntries,
            c.bimodalEntries);
      }
      case PredictorKind::GshareFast: {
        const std::size_t entries = phtEntriesFor(budget_bytes);
        // Row staleness = PHT read latency - 1 (see the pipelined
        // engine's timing derivation in src/pipeline).
        SramGeometry g;
        g.entries = entries;
        g.bitsPerEntry = 2;
        const unsigned latency =
            SramModel{}.accessCycles(g, ClockModel{});
        return std::make_unique<GshareFastPredictor>(
            entries, latency >= 1 ? latency - 1 : 0, 0);
      }
    }
    return nullptr;
}

namespace {

/** The inputs predictorLatencyCycles combines: the largest table's
 *  geometry, the combining-logic FO4s, and any whole extra cycles
 *  (the perceptron's dot product). Shared with the protected path so
 *  both charge the same table. */
struct LatencyParts
{
    SramGeometry geom;
    double combineFo4 = 0.0;
    unsigned extraCycles = 0;
};

LatencyParts
latencyPartsFor(PredictorKind kind, std::size_t budget_bytes)
{
    // One fan-out-of-four inverter of combining logic for the
    // table-based predictors (Section 4.1.5).
    const double combine_fo4 = 1.0;
    LatencyParts p;
    p.geom.bitsPerEntry = 2;
    switch (kind) {
      case PredictorKind::Bimodal:
      case PredictorKind::Gshare:
      case PredictorKind::GshareFast:
        p.geom.entries = phtEntriesFor(budget_bytes);
        break;
      case PredictorKind::BiMode:
        p.geom.entries = prevPow2(budget_bytes * 8 / (3 * 2));
        p.combineFo4 = combine_fo4;
        break;
      case PredictorKind::Yags:
        // The choice PHT is the largest structure; tag compare adds
        // the combining FO4.
        p.geom.entries = prevPow2(budget_bytes * 8 / 2 / 2);
        p.combineFo4 = combine_fo4;
        break;
      case PredictorKind::Gskew:
        // Majority + meta selection adds the combining FO4.
        p.geom.entries = prevPow2(budget_bytes * 8 / (4 * 2));
        p.combineFo4 = combine_fo4;
        break;
      case PredictorKind::Tournament:
        p.geom.entries = prevPow2(budget_bytes * 8 / 8);
        p.combineFo4 = combine_fo4;
        break;
      case PredictorKind::MultiComponent:
        p.geom.entries =
            multiComponentConfigFor(budget_bytes).largestEntries;
        p.combineFo4 = combine_fo4;
        break;
      case PredictorKind::Perceptron: {
        const PerceptronConfig c = perceptronConfigFor(budget_bytes);
        p.geom.entries = c.rows;
        p.geom.bitsPerEntry = (1 + c.globalBits + c.localBits) * 8;
        // Table read plus one (optimistic) cycle for the dot
        // product (Section 4.1.2).
        p.extraCycles = 1;
        break;
      }
    }
    return p;
}

} // namespace

unsigned
predictorLatencyCycles(PredictorKind kind, std::size_t budget_bytes,
                       const SramModel &sram, const ClockModel &clock)
{
    const LatencyParts p = latencyPartsFor(kind, budget_bytes);
    return clock.cyclesForFo4(sram.accessFo4(p.geom) + p.combineFo4) +
           p.extraCycles;
}

std::unique_ptr<robust::ProtectedPredictor>
makeProtectedPredictor(PredictorKind kind, std::size_t budget_bytes,
                       const robust::ProtectionConfig &prot,
                       const robust::FaultPlan &plan)
{
    auto inner = makePredictor(
        kind, robust::protectedEffectiveBudget(budget_bytes, prot));
    return std::make_unique<robust::ProtectedPredictor>(
        std::move(inner), plan, prot);
}

unsigned
protectedPredictorLatencyCycles(PredictorKind kind,
                                std::size_t budget_bytes,
                                const robust::ProtectionConfig &prot,
                                const SramModel &sram,
                                const ClockModel &clock)
{
    LatencyParts p = latencyPartsFor(
        kind, robust::protectedEffectiveBudget(budget_bytes, prot));
    p.geom.checkBits = robust::protectionCheckBitsTotal(
        p.geom.entries * p.geom.bitsPerEntry, prot);
    return clock.cyclesForFo4(sram.accessFo4(p.geom) + p.combineFo4 +
                              robust::protectionCheckFo4(prot)) +
           p.extraCycles;
}

namespace {

/** Mode dispatch shared by the bare and protected fetch factories:
 *  wrap @p pred for @p mode at @p latency cycles. */
std::unique_ptr<FetchPredictor>
wrapFetchPredictor(std::unique_ptr<DirectionPredictor> pred,
                   PredictorKind kind, DelayMode mode,
                   unsigned latency)
{
    // gshare.fast is pipelined: single-cycle at any budget.
    if (kind == PredictorKind::GshareFast || mode == DelayMode::Ideal ||
        mode == DelayMode::Pipelined || latency <= 1) {
        return std::make_unique<SingleCycleFetchPredictor>(
            std::move(pred));
    }

    if (mode == DelayMode::Stall) {
        return std::make_unique<DelayedFetchPredictor>(std::move(pred),
                                                       latency);
    }
    if (mode == DelayMode::DualPath) {
        return std::make_unique<DualPathFetchPredictor>(
            std::move(pred), latency);
    }
    if (mode == DelayMode::Cascading) {
        auto quick =
            std::make_unique<GsharePredictor>(quickPredictorEntries);
        return std::make_unique<CascadingFetchPredictor>(
            std::move(quick), std::move(pred), latency);
    }

    // Overriding: quick 2K-entry single-cycle gshare in front.
    auto quick =
        std::make_unique<GsharePredictor>(quickPredictorEntries);
    return std::make_unique<OverridingFetchPredictor>(
        std::move(quick), std::move(pred), latency);
}

} // namespace

std::unique_ptr<FetchPredictor>
makeFetchPredictor(PredictorKind kind, std::size_t budget_bytes,
                   DelayMode mode, const SramModel &sram,
                   const ClockModel &clock)
{
    auto pred = makePredictor(kind, budget_bytes);
    assert(pred);
    const unsigned latency =
        predictorLatencyCycles(kind, budget_bytes, sram, clock);
    return wrapFetchPredictor(std::move(pred), kind, mode, latency);
}

std::unique_ptr<FetchPredictor>
makeProtectedFetchPredictor(PredictorKind kind,
                            std::size_t budget_bytes, DelayMode mode,
                            const robust::ProtectionConfig &prot,
                            const robust::FaultPlan &plan,
                            const SramModel &sram,
                            const ClockModel &clock)
{
    auto pred =
        makeProtectedPredictor(kind, budget_bytes, prot, plan);
    const unsigned latency = protectedPredictorLatencyCycles(
        kind, budget_bytes, prot, sram, clock);
    return wrapFetchPredictor(std::move(pred), kind, mode, latency);
}

std::string
delayModeName(DelayMode mode)
{
    switch (mode) {
      case DelayMode::Ideal:
        return "ideal";
      case DelayMode::Overriding:
        return "overriding";
      case DelayMode::Stall:
        return "stall";
      case DelayMode::Pipelined:
        return "pipelined";
      case DelayMode::DualPath:
        return "dual-path";
      case DelayMode::Cascading:
        return "cascading";
    }
    return "unknown";
}

} // namespace bpsim
