/**
 * @file
 * Host-side wall-clock profiling for the simulator's own hot paths
 * (how long does a suite sweep or a timing run take us, not the
 * simulated machine). A ProfileZone names a region; a ScopedTimer
 * measures one traversal of it and records the elapsed nanoseconds
 * into the zone's log2 histogram plus a total-time counter, so the
 * registry snapshot shows call count, total and mean latency, and
 * the latency distribution per zone:
 *
 *   obs::MetricRegistry reg;
 *   {
 *       obs::ScopedTimer t(reg, "suite.timing_sweep");
 *       ... work ...
 *   }   // records on scope exit
 *
 * Metric names: `profile.<zone>.ns` (histogram of per-call nanos)
 * and `profile.<zone>.total_ns` (counter). With the registry
 * disabled both land in the sinks — the clock reads remain, but no
 * state is kept and nothing is exported.
 */

#ifndef BPSIM_OBS_TIMER_HH
#define BPSIM_OBS_TIMER_HH

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "obs/metrics.hh"

namespace bpsim::obs {

/** A named profiling region: resolves its metrics once. */
class ProfileZone
{
  public:
    ProfileZone(MetricRegistry &registry, const std::string &zone)
        : hist_(registry.histogram("profile." + zone + ".ns")),
          total_(registry.counter("profile." + zone + ".total_ns"))
    {
    }

    void
    record(std::uint64_t nanos)
    {
        hist_.record(nanos);
        total_.add(nanos);
    }

  private:
    Log2Histogram &hist_;
    CounterMetric &total_;
};

/** RAII timer over a ProfileZone (or a registry + zone name). */
class ScopedTimer
{
  public:
    explicit ScopedTimer(ProfileZone &zone)
        : zone_(zone), start_(Clock::now())
    {
    }

    ScopedTimer(MetricRegistry &registry, const std::string &zone)
        : ownedZone_(std::in_place, registry, zone),
          zone_(*ownedZone_),
          start_(Clock::now())
    {
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    /** Nanoseconds elapsed so far. */
    std::uint64_t
    elapsedNs() const
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - start_)
                .count());
    }

    ~ScopedTimer() { zone_.record(elapsedNs()); }

  private:
    using Clock = std::chrono::steady_clock;

    // Engaged only by the registry+name convenience constructor;
    // zone_ refers into it then. Declared first so zone_ can bind.
    std::optional<ProfileZone> ownedZone_;
    ProfileZone &zone_;
    Clock::time_point start_;
};

} // namespace bpsim::obs

#endif // BPSIM_OBS_TIMER_HH
