/**
 * @file
 * Machine-readable run reports. Every bench/example binary can emit
 * one RunReport JSON alongside its stdout tables (--report PATH);
 * `bpstat` diffs two of them and validates their invariants, which
 * makes the report the standing regression artifact for perf PRs.
 *
 * The schema is versioned (kSchemaVersion); readers reject files
 * whose major version they do not understand. One report holds one
 * experiment's rows — a row is one (workload, predictor, mode,
 * budget) cell with its accuracy and, for timing runs, its IPC and
 * per-cause penalty attribution:
 *
 *   flush_cycles{cause=override}   cycles fetch lost to overriding-
 *                                  predictor disagreement squashes
 *   flush_cycles{cause=mispredict} cycles fetch waited on mispredict
 *                                  resolution + redirect
 *
 * Invariants a valid timing row satisfies (bpstat --check):
 *   flushCyclesTotal == override + mispredict causes
 *   squashedUops     == issueWidth * flushCyclesTotal
 */

#ifndef BPSIM_OBS_RUN_REPORT_HH
#define BPSIM_OBS_RUN_REPORT_HH

#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hh"
#include "obs/json.hh"

namespace bpsim::obs {

/** Thrown when a report file cannot be parsed or fails the schema. */
class RunReportError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** The file is missing or unreadable. */
class RunReportIoError : public RunReportError
{
  public:
    using RunReportError::RunReportError;
};

/** The file is not valid JSON or lacks required fields (truncation
 *  lands here too). */
class RunReportParseError : public RunReportError
{
  public:
    using RunReportError::RunReportError;
};

/** The file parsed but its schema_version is not supported. */
class RunReportSchemaError : public RunReportError
{
  public:
    using RunReportError::RunReportError;
};

/** One experiment's machine-readable results. */
struct RunReport
{
    static constexpr int kSchemaVersion = 1;

    /** One (workload, predictor, mode, budget) result cell. */
    struct Row
    {
        std::string workload;
        std::string predictor;
        std::string mode;          ///< delay mode; "" for accuracy-only
        std::size_t budgetBytes = 0;

        // accuracy
        Counter branches = 0;
        Counter mispredictions = 0;

        // timing (meaningful only when hasTiming)
        bool hasTiming = false;
        unsigned issueWidth = 0;
        Counter cycles = 0;
        Counter instructions = 0;
        Counter squashedUops = 0;
        Counter flushes = 0;
        Counter flushCyclesOverride = 0;
        Counter flushCyclesMispredict = 0;
        Counter stallCyclesIcache = 0;
        Counter stallCyclesBtb = 0;
        Counter robStallCycles = 0;

        double
        ipc() const
        {
            return cycles ? static_cast<double>(instructions) /
                                static_cast<double>(cycles)
                          : 0.0;
        }
        double
        mispredictPercent() const
        {
            return branches ? 100.0 *
                                  static_cast<double>(mispredictions) /
                                  static_cast<double>(branches)
                            : 0.0;
        }
        Counter
        flushCyclesTotal() const
        {
            return flushCyclesOverride + flushCyclesMispredict;
        }
        /** Key identifying this cell across two reports. */
        std::string key() const;

        /** Serialize this row alone (RunManifest cell caching). */
        Json toJson() const;
        /** Throws RunReportParseError on shape problems. */
        static Row fromJson(const Json &j);
    };

    /**
     * A per-cell failure note attached by hardened suite execution:
     * the cell's key plus what went wrong (timeout, exhausted
     * retries). A report with annotations is *partial* — the listed
     * cells have no row — but still validates and diffs.
     */
    struct Annotation
    {
        std::string key;
        std::string message;
    };

    int schemaVersion = kSchemaVersion;
    std::string tool = "bpsim";
    std::string experiment;
    Counter opsPerWorkload = 0;
    std::uint64_t seed = 0;
    std::vector<Row> rows;
    /** Failure annotations from hardened runs (usually empty). */
    std::vector<Annotation> annotations;
    /** Metric-registry snapshot (object), or null when absent. */
    Json metrics;

    Json toJson() const;
    /** Throws RunReportError on schema or shape problems. */
    static RunReport fromJson(const Json &j);

    /** Returns false (with a stderr message) on I/O failure. */
    bool writeFile(const std::string &path) const;
    /** Throws RunReportError on I/O, parse or schema failure. */
    static RunReport readFile(const std::string &path);

    /**
     * Internal-consistency problems (empty means valid): schema
     * version, duplicate row keys, and the timing-row invariants in
     * the file comment.
     */
    std::vector<std::string> validate() const;
};

} // namespace bpsim::obs

#endif // BPSIM_OBS_RUN_REPORT_HH
