/**
 * @file
 * The one shared way a binary grows observability flags. Every
 * bench, study and example accepts the same pair:
 *
 *   --report <path>   write a RunReport JSON when the run finishes
 *   --trace  <path>   record simulator events and write them out
 *                     (.jsonl -> JSONL, anything else Chrome trace)
 *
 * ReportSession::stripArgs() removes the pair from argv *in place*
 * before the binary's own argument handling runs, so no binary
 * hand-rolls these flags and unknown-argument checks keep working.
 * The session owns the RunReport, a MetricRegistry and (only when
 * --trace was given) an EventTracer; finish() writes the files and
 * is idempotent, and the destructor calls it as a backstop.
 */

#ifndef BPSIM_OBS_REPORT_SESSION_HH
#define BPSIM_OBS_REPORT_SESSION_HH

#include <memory>
#include <string>

#include "obs/event_trace.hh"
#include "obs/metrics.hh"
#include "obs/run_report.hh"

namespace bpsim::obs {

/**
 * Remove "--<flag> value" pairs and "--<flag>=value" forms from argv
 * in place; returns the value of the last occurrence (or "").
 * The primitive under ReportSession's flag stripping, public so
 * programmatic argv handling (BenchArgs) can share it.
 */
std::string takeFlag(int &argc, char **argv, const char *flag);

/** Per-binary observability session; see file comment. */
class ReportSession
{
  public:
    /**
     * Parses and strips --report/--trace from @p argv (mutating
     * @p argc), and names the report after @p experiment.
     */
    ReportSession(int &argc, char **argv,
                  const std::string &experiment);

    /**
     * Flag-free form for callers that already parsed their argv:
     * writes the report to @p report_path and the event trace to
     * @p trace_path when non-empty (a tracer exists only then).
     */
    ReportSession(std::string report_path, std::string trace_path,
                  const std::string &experiment);

    ReportSession(const ReportSession &) = delete;
    ReportSession &operator=(const ReportSession &) = delete;

    ~ReportSession();

    RunReport &report() { return report_; }
    MetricRegistry &metrics() { return metrics_; }

    /** Event sink for the timing core; nullptr without --trace. */
    EventTracer *tracer() { return tracer_.get(); }

    bool wantReport() const { return !reportPath_.empty(); }
    bool wantTrace() const { return !tracePath_.empty(); }
    const std::string &reportPath() const { return reportPath_; }
    const std::string &tracePath() const { return tracePath_; }

    /**
     * Write the requested files (report with the metric snapshot
     * attached, then the event trace). Returns false if any write
     * failed. Safe to call when nothing was requested; runs once.
     */
    bool finish();

  private:
    std::string reportPath_;
    std::string tracePath_;
    RunReport report_;
    MetricRegistry metrics_;
    std::unique_ptr<EventTracer> tracer_;
    bool finished_ = false;
};

} // namespace bpsim::obs

#endif // BPSIM_OBS_REPORT_SESSION_HH
