/**
 * @file
 * Named-metric registry for the simulator: counters, gauges and
 * log2-bucketed histograms, addressed by convention-structured names
 * such as `sim.core.flush_cycles{cause=override}` (dotted subsystem
 * path, optional {key=value} label suffix; see docs/OBSERVABILITY.md).
 *
 * Zero overhead when disabled: a disabled registry hands out a
 * shared *sink* metric of each type, so instrumented code increments
 * unconditionally (no branch on the hot path) while the sink never
 * registers, never exports and is periodically ignored. Handles
 * returned by counter()/gauge()/histogram() are stable for the
 * registry's lifetime, so call sites resolve the name once and keep
 * the reference.
 */

#ifndef BPSIM_OBS_METRICS_HH
#define BPSIM_OBS_METRICS_HH

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"
#include "obs/json.hh"

namespace bpsim::obs {

/** Monotonic event counter. */
class CounterMetric
{
  public:
    void add(std::uint64_t n = 1) { value_ += n; }
    void set(std::uint64_t v) { value_ = v; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Last-write-wins scalar (occupancy, rates, config echoes). */
class GaugeMetric
{
  public:
    void set(double v) { value_ = v; }
    double value() const { return value_; }
    void reset() { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/**
 * Power-of-two-bucketed histogram: bucket i counts samples whose
 * floor(log2(sample)) == i, with 0 and 1 sharing bucket 0. 64
 * buckets cover the full uint64 range, so record() never clamps.
 */
class Log2Histogram
{
  public:
    static constexpr unsigned kBuckets = 64;

    /** Bucket index a sample lands in. */
    static unsigned
    bucketOf(std::uint64_t sample)
    {
        if (sample < 2)
            return 0;
        unsigned b = 0;
        while (sample >>= 1)
            ++b;
        return b;
    }

    /** Smallest sample value bucket @p i holds. */
    static std::uint64_t
    bucketLow(unsigned i)
    {
        return i == 0 ? 0 : std::uint64_t{1} << i;
    }

    void
    record(std::uint64_t sample)
    {
        ++counts_[bucketOf(sample)];
        ++total_;
        sum_ += sample;
    }

    Counter count(unsigned bucket) const { return counts_[bucket]; }
    Counter total() const { return total_; }
    std::uint64_t sum() const { return sum_; }
    double
    mean() const
    {
        return total_ ? static_cast<double>(sum_) /
                            static_cast<double>(total_)
                      : 0.0;
    }
    /** Highest non-empty bucket index, or -1 when empty. */
    int maxBucket() const;
    void reset();

  private:
    Counter counts_[kBuckets] = {};
    Counter total_ = 0;
    std::uint64_t sum_ = 0;
};

/** Registry of named metrics; see file comment for the contract. */
class MetricRegistry
{
  public:
    explicit MetricRegistry(bool enabled = true) : enabled_(enabled) {}

    MetricRegistry(const MetricRegistry &) = delete;
    MetricRegistry &operator=(const MetricRegistry &) = delete;

    bool enabled() const { return enabled_; }
    void setEnabled(bool on) { enabled_ = on; }

    /** Find-or-create; the returned reference stays valid. */
    CounterMetric &counter(const std::string &name);
    GaugeMetric &gauge(const std::string &name);
    Log2Histogram &histogram(const std::string &name);

    /** nullptr when no metric of that name/type was registered. */
    const CounterMetric *findCounter(const std::string &name) const;
    const GaugeMetric *findGauge(const std::string &name) const;
    const Log2Histogram *findHistogram(const std::string &name) const;

    /** All registered metric names, sorted. */
    std::vector<std::string> names() const;
    std::size_t size() const
    {
        return counters_.size() + gauges_.size() + histograms_.size();
    }

    /**
     * Snapshot as a JSON object keyed by metric name. Counters and
     * gauges map to their value; histograms to
     * {"total", "sum", "mean", "buckets": {"<low>": count, ...}}.
     */
    Json toJson() const;

    /** Drop every registered metric (sinks are unaffected). */
    void clear();

  private:
    bool enabled_;
    // deques give pointer stability as metrics are added.
    std::deque<CounterMetric> counterStore_;
    std::deque<GaugeMetric> gaugeStore_;
    std::deque<Log2Histogram> histogramStore_;
    std::map<std::string, CounterMetric *> counters_;
    std::map<std::string, GaugeMetric *> gauges_;
    std::map<std::string, Log2Histogram *> histograms_;
    CounterMetric sinkCounter_;
    GaugeMetric sinkGauge_;
    Log2Histogram sinkHistogram_;
};

/** `base{key=value}` — the registry's label naming convention. */
inline std::string
labeledName(const std::string &base, const std::string &key,
            const std::string &value)
{
    return base + "{" + key + "=" + value + "}";
}

} // namespace bpsim::obs

#endif // BPSIM_OBS_METRICS_HH
