/**
 * @file
 * Per-cycle simulator event tracing. The timing core (and anything
 * else with a cycle notion) records discrete events — a predictor
 * override disagreement, a misprediction resolving, a ROB-full
 * dispatch stall, a cache miss — into a fixed-capacity ring buffer:
 * recording is a couple of stores, the buffer keeps the most recent
 * `capacity` events and counts what it overwrote, and nothing is
 * allocated after construction. The tracer is attached by pointer
 * and is nullptr by default, so an untraced run pays only a null
 * check at each event site (never per cycle).
 *
 * Export formats:
 *  - JSONL: one `{"cycle":..,"event":..,"pc":..,"arg":..}` per line,
 *    greppable and trivially loadable from Python;
 *  - Chrome trace_event JSON (`{"traceEvents":[...]}`), loadable in
 *    chrome://tracing and Perfetto: simulated cycles are mapped to
 *    microseconds, event rows are split per event type via the `tid`
 *    field, and duration events use `arg` as their cycle length.
 */

#ifndef BPSIM_OBS_EVENT_TRACE_HH
#define BPSIM_OBS_EVENT_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hh"

namespace bpsim::obs {

/** What happened. Values index eventName(); keep them dense. */
enum class SimEvent : std::uint8_t {
    Fetch,             ///< a fetch block started (arg = ops fetched)
    Predict,           ///< conditional branch predicted (arg = taken)
    OverrideDisagree,  ///< slow predictor overrode (arg = bubbles)
    MispredictResolve, ///< mispredicted branch resolved (arg = cycles blocked)
    RobStall,          ///< dispatch blocked on a full ROB
    CacheMiss,         ///< i-cache fetch miss (arg = stall cycles)
    BtbMiss,           ///< taken branch without a BTB target
    Flush,             ///< front-end restart (arg = squashed uops)
};

/** Printable event name ("override_disagree", ...). */
const char *eventName(SimEvent e);
constexpr unsigned kSimEventCount = 8;

/** One recorded event. */
struct TraceEvent
{
    Cycle cycle = 0;
    Addr pc = 0;
    std::uint64_t arg = 0;
    SimEvent type = SimEvent::Fetch;
};

/** Fixed-capacity most-recent-events ring buffer; see file comment. */
class EventTracer
{
  public:
    /** @param capacity Ring size in events (>= 1). */
    explicit EventTracer(std::size_t capacity = 1 << 16);

    void
    record(Cycle cycle, SimEvent type, Addr pc = 0,
           std::uint64_t arg = 0)
    {
        TraceEvent &e = ring_[head_];
        e.cycle = cycle;
        e.pc = pc;
        e.arg = arg;
        e.type = type;
        head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
        if (size_ < ring_.size())
            ++size_;
        else
            ++dropped_;
    }

    std::size_t capacity() const { return ring_.size(); }
    /** Events currently held (<= capacity). */
    std::size_t size() const { return size_; }
    /** Events overwritten after the ring filled. */
    std::uint64_t dropped() const { return dropped_; }
    /** Total events ever recorded. */
    std::uint64_t recorded() const { return size_ + dropped_; }

    /** @p i = 0 is the *oldest* retained event. */
    const TraceEvent &
    at(std::size_t i) const
    {
        const std::size_t start =
            size_ < ring_.size() ? 0 : head_;
        std::size_t idx = start + i;
        if (idx >= ring_.size())
            idx -= ring_.size();
        return ring_[idx];
    }

    void clear();

    /** One JSON object per line, oldest first. */
    void exportJsonl(std::ostream &os) const;

    /** Chrome trace_event format; see file comment. */
    void exportChromeTrace(std::ostream &os) const;

    /** Write to @p path, choosing format by extension: ".jsonl"
     *  exports JSONL, anything else the Chrome trace format.
     *  Returns false (with a stderr message) on I/O failure. */
    bool writeFile(const std::string &path) const;

  private:
    std::vector<TraceEvent> ring_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
    std::uint64_t dropped_ = 0;
};

} // namespace bpsim::obs

#endif // BPSIM_OBS_EVENT_TRACE_HH
