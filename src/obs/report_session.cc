#include "obs/report_session.hh"

#include <cstdio>
#include <cstring>

namespace bpsim::obs {

std::string
takeFlag(int &argc, char **argv, const char *flag)
{
    const std::size_t flagLen = std::strlen(flag);
    std::string value;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
            value = argv[i + 1];
            ++i;
            continue;
        }
        if (std::strncmp(argv[i], flag, flagLen) == 0 &&
            argv[i][flagLen] == '=') {
            value = argv[i] + flagLen + 1;
            continue;
        }
        argv[out++] = argv[i];
    }
    argc = out;
    return value;
}

ReportSession::ReportSession(int &argc, char **argv,
                             const std::string &experiment)
    : ReportSession(takeFlag(argc, argv, "--report"),
                    takeFlag(argc, argv, "--trace"), experiment)
{
}

ReportSession::ReportSession(std::string report_path,
                             std::string trace_path,
                             const std::string &experiment)
    : reportPath_(std::move(report_path)),
      tracePath_(std::move(trace_path)),
      metrics_(/*enabled=*/true)
{
    report_.experiment = experiment;
    if (!tracePath_.empty())
        tracer_ = std::make_unique<EventTracer>();
}

ReportSession::~ReportSession()
{
    finish();
}

bool
ReportSession::finish()
{
    if (finished_)
        return true;
    finished_ = true;
    bool ok = true;
    if (!reportPath_.empty()) {
        if (metrics_.size() > 0)
            report_.metrics = metrics_.toJson();
        ok = report_.writeFile(reportPath_) && ok;
        if (ok)
            std::fprintf(stderr, "obs: wrote report %s (%zu rows)\n",
                         reportPath_.c_str(), report_.rows.size());
    }
    if (tracer_ && !tracePath_.empty()) {
        const bool tok = tracer_->writeFile(tracePath_);
        if (tok)
            std::fprintf(
                stderr,
                "obs: wrote trace %s (%zu events, %llu dropped)\n",
                tracePath_.c_str(), tracer_->size(),
                static_cast<unsigned long long>(tracer_->dropped()));
        ok = tok && ok;
    }
    return ok;
}

} // namespace bpsim::obs
