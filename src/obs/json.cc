#include "obs/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace bpsim::obs {

namespace {

const char *
typeName(Json::Type t)
{
    switch (t) {
      case Json::Type::Null: return "null";
      case Json::Type::Bool: return "bool";
      case Json::Type::Number: return "number";
      case Json::Type::String: return "string";
      case Json::Type::Array: return "array";
      case Json::Type::Object: return "object";
    }
    return "?";
}

[[noreturn]] void
typeError(const char *want, Json::Type got)
{
    throw JsonError(std::string("expected ") + want + ", got " +
                    typeName(got));
}

void
escapeTo(std::string &out, const std::string &s)
{
    out += '"';
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c) & 0xff);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
numberTo(std::string &out, double v)
{
    if (!std::isfinite(v)) {
        // JSON has no inf/nan; emit null like most tools do.
        out += "null";
        return;
    }
    if (v == std::floor(v) && std::fabs(v) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
        out += buf;
    } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        out += buf;
    }
}

/** Recursive-descent JSON parser over a string_view. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    Json
    parse()
    {
        const Json v = value();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why) const
    {
        throw JsonError("JSON parse error at offset " +
                        std::to_string(pos_) + ": " + why);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeLiteral(std::string_view lit)
    {
        if (text_.substr(pos_, lit.size()) != lit)
            return false;
        pos_ += lit.size();
        return true;
    }

    Json
    value()
    {
        skipWs();
        const char c = peek();
        switch (c) {
          case '{': return object();
          case '[': return array();
          case '"': return Json(string());
          case 't':
            if (!consumeLiteral("true"))
                fail("bad literal");
            return Json(true);
          case 'f':
            if (!consumeLiteral("false"))
                fail("bad literal");
            return Json(false);
          case 'n':
            if (!consumeLiteral("null"))
                fail("bad literal");
            return Json();
          default:
            return number();
        }
    }

    Json
    number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            fail("expected a number");
        const std::string tok(text_.substr(start, pos_ - start));
        char *end = nullptr;
        const double v = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size())
            fail("malformed number '" + tok + "'");
        return Json(v);
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape digit");
                }
                // Encode the BMP code point as UTF-8 (surrogate
                // pairs are not joined; reports never emit them).
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xc0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (cp >> 12));
                    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                }
                break;
              }
              default:
                fail("bad escape character");
            }
        }
    }

    Json
    array()
    {
        expect('[');
        Json a = Json::array();
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return a;
        }
        while (true) {
            a.push(value());
            skipWs();
            const char c = peek();
            ++pos_;
            if (c == ']')
                return a;
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
    }

    Json
    object()
    {
        expect('{');
        Json o = Json::object();
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return o;
        }
        while (true) {
            skipWs();
            const std::string key = string();
            skipWs();
            expect(':');
            o.set(key, value());
            skipWs();
            const char c = peek();
            ++pos_;
            if (c == '}')
                return o;
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

} // namespace

bool
Json::asBool() const
{
    if (type_ != Type::Bool)
        typeError("bool", type_);
    return bool_;
}

double
Json::asNumber() const
{
    if (type_ != Type::Number)
        typeError("number", type_);
    return num_;
}

std::uint64_t
Json::asU64() const
{
    const double v = asNumber();
    if (v < 0)
        throw JsonError("expected a non-negative counter");
    return static_cast<std::uint64_t>(v);
}

const std::string &
Json::asString() const
{
    if (type_ != Type::String)
        typeError("string", type_);
    return str_;
}

void
Json::push(Json v)
{
    if (type_ != Type::Array)
        typeError("array", type_);
    arr_.push_back(std::move(v));
}

std::size_t
Json::size() const
{
    if (type_ == Type::Array)
        return arr_.size();
    if (type_ == Type::Object)
        return obj_.size();
    typeError("array or object", type_);
}

const Json &
Json::at(std::size_t i) const
{
    if (type_ != Type::Array)
        typeError("array", type_);
    if (i >= arr_.size())
        throw JsonError("array index out of range");
    return arr_[i];
}

const std::vector<Json> &
Json::items() const
{
    if (type_ != Type::Array)
        typeError("array", type_);
    return arr_;
}

void
Json::set(const std::string &key, Json v)
{
    if (type_ != Type::Object)
        typeError("object", type_);
    for (auto &[k, old] : obj_) {
        if (k == key) {
            old = std::move(v);
            return;
        }
    }
    obj_.emplace_back(key, std::move(v));
}

const Json *
Json::find(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (const auto &[k, v] : obj_)
        if (k == key)
            return &v;
    return nullptr;
}

const Json &
Json::get(const std::string &key) const
{
    if (const Json *v = find(key))
        return *v;
    throw JsonError("missing key '" + key + "'");
}

const std::vector<std::pair<std::string, Json>> &
Json::members() const
{
    if (type_ != Type::Object)
        typeError("object", type_);
    return obj_;
}

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    const auto newline = [&](int d) {
        if (indent > 0) {
            out += '\n';
            out.append(static_cast<std::size_t>(indent * d), ' ');
        }
    };
    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Type::Number:
        numberTo(out, num_);
        break;
      case Type::String:
        escapeTo(out, str_);
        break;
      case Type::Array:
        if (arr_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < arr_.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            arr_[i].dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += ']';
        break;
      case Type::Object:
        if (obj_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < obj_.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            escapeTo(out, obj_[i].first);
            out += indent > 0 ? ": " : ":";
            obj_[i].second.dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += '}';
        break;
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

Json
Json::parse(std::string_view text)
{
    return Parser(text).parse();
}

} // namespace bpsim::obs
