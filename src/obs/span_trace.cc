#include "obs/span_trace.hh"

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "obs/json.hh"

namespace bpsim::obs {

namespace {

/** The process sink. Acquire/release so a thread that loads the
 *  pointer sees the fully constructed recorder even without a
 *  thread-creation edge. */
std::atomic<SpanRecorder *> g_recorder{nullptr};

/** Generation stamp: bumped per recorder so a thread-local cached
 *  ring is never reused across recorder instances that happen to
 *  share an address. */
std::atomic<std::uint64_t> g_generation{0};

struct ThreadCache
{
    std::uint64_t generation = 0;
    SpanRecorder *owner = nullptr;
    SpanThreadLog *log = nullptr;
};

thread_local ThreadCache t_cache;

/** Escaped, quoted JSON string (reuses the Json dumper). */
std::string
quoted(std::string_view s)
{
    return Json(std::string(s)).dump();
}

/** Microseconds with nanosecond precision, as Chrome's "ts" wants. */
void
appendUs(std::string &out, std::uint64_t ns)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", ns / 1000,
                  static_cast<unsigned>(ns % 1000));
    out += buf;
}

} // namespace

SpanRecorder::SpanRecorder(std::size_t per_thread_capacity)
    : capacity_(per_thread_capacity ? per_thread_capacity : 1),
      epoch_(std::chrono::steady_clock::now()),
      generation_(
          g_generation.fetch_add(1, std::memory_order_relaxed) + 1)
{
}

SpanRecorder::~SpanRecorder()
{
    // Self-uninstall as a backstop; callers should have done this
    // (and joined their threads) already.
    SpanRecorder *self = this;
    g_recorder.compare_exchange_strong(self, nullptr,
                                       std::memory_order_acq_rel);
}

SpanRecorder *
SpanRecorder::current()
{
    return g_recorder.load(std::memory_order_acquire);
}

void
SpanRecorder::install(SpanRecorder *rec)
{
    g_recorder.store(rec, std::memory_order_release);
}

std::uint64_t
SpanRecorder::nowNs() const
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

SpanThreadLog &
SpanRecorder::localLog()
{
    ThreadCache &c = t_cache;
    if (c.owner == this && c.generation == generation_)
        return *c.log;
    std::lock_guard<std::mutex> lock(mu_);
    const auto tid = static_cast<std::uint32_t>(logs_.size() + 1);
    logs_.push_back(std::make_unique<SpanThreadLog>(
        tid, "thread " + std::to_string(tid), capacity_));
    c.owner = this;
    c.generation = generation_;
    c.log = logs_.back().get();
    return *c.log;
}

void
SpanRecorder::nameThisThread(std::string_view name)
{
    SpanRecorder *rec = current();
    if (!rec)
        return;
    SpanThreadLog &log = rec->localLog();
    std::lock_guard<std::mutex> lock(rec->mu_);
    log.setThreadName(std::string(name));
}

void
SpanRecorder::span(const char *cat, std::string_view name,
                   std::uint64_t start_ns, std::uint64_t dur_ns,
                   const char *arg_name, std::uint64_t arg)
{
    SpanEvent e;
    e.startNs = start_ns;
    e.durNs = dur_ns;
    e.arg = arg;
    e.cat = cat;
    e.argName = arg_name;
    e.setName(name);
    localLog().push(e);
}

void
SpanRecorder::instant(const char *cat, std::string_view name,
                      const char *arg_name, std::uint64_t arg)
{
    SpanEvent e;
    e.startNs = nowNs();
    e.arg = arg;
    e.cat = cat;
    e.argName = arg_name;
    e.setName(name);
    e.instant = true;
    localLog().push(e);
}

std::size_t
SpanRecorder::threadCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return logs_.size();
}

std::uint64_t
SpanRecorder::dropped() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t total = 0;
    for (const auto &log : logs_)
        total += log->dropped();
    return total;
}

void
SpanRecorder::exportChromeTrace(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::string out;
    out += "{\"traceEvents\":[\n";
    bool first = true;
    const auto emit = [&](const std::string &line) {
        if (!first)
            out += ",\n";
        first = false;
        out += line;
    };
    for (const auto &log : logs_) {
        std::string meta = "{\"ph\":\"M\",\"pid\":1,\"tid\":";
        meta += std::to_string(log->tid());
        meta += ",\"name\":\"thread_name\",\"args\":{\"name\":";
        meta += quoted(log->threadName());
        meta += "}}";
        emit(meta);
    }
    for (const auto &log : logs_) {
        const std::string tid = std::to_string(log->tid());
        for (std::size_t i = 0; i < log->size(); ++i) {
            const SpanEvent &e = log->at(i);
            std::string line = "{\"ph\":\"";
            line += e.instant ? "i" : "X";
            line += "\",\"pid\":1,\"tid\":";
            line += tid;
            line += ",\"cat\":";
            line += quoted(e.cat ? e.cat : "span");
            line += ",\"name\":";
            line += quoted(e.name);
            line += ",\"ts\":";
            appendUs(line, e.startNs);
            if (e.instant) {
                line += ",\"s\":\"t\""; // thread-scoped instant
            } else {
                line += ",\"dur\":";
                appendUs(line, e.durNs);
            }
            if (e.argName) {
                line += ",\"args\":{";
                line += quoted(e.argName);
                line += ":";
                line += std::to_string(e.arg);
                line += "}";
            }
            line += "}";
            emit(line);
        }
    }
    out += "\n]}\n";
    os << out;
}

bool
SpanRecorder::writeFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "obs: cannot open timeline file '%s'\n",
                     path.c_str());
        return false;
    }
    exportChromeTrace(os);
    return static_cast<bool>(os);
}

} // namespace bpsim::obs
