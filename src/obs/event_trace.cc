#include "obs/event_trace.hh"

#include <cstdio>
#include <fstream>
#include <ostream>

#include "obs/json.hh"

namespace bpsim::obs {

const char *
eventName(SimEvent e)
{
    switch (e) {
      case SimEvent::Fetch: return "fetch";
      case SimEvent::Predict: return "predict";
      case SimEvent::OverrideDisagree: return "override_disagree";
      case SimEvent::MispredictResolve: return "mispredict_resolve";
      case SimEvent::RobStall: return "rob_stall";
      case SimEvent::CacheMiss: return "cache_miss";
      case SimEvent::BtbMiss: return "btb_miss";
      case SimEvent::Flush: return "flush";
    }
    return "unknown";
}

EventTracer::EventTracer(std::size_t capacity)
    : ring_(capacity ? capacity : 1)
{
}

void
EventTracer::clear()
{
    head_ = 0;
    size_ = 0;
    dropped_ = 0;
}

void
EventTracer::exportJsonl(std::ostream &os) const
{
    for (std::size_t i = 0; i < size_; ++i) {
        const TraceEvent &e = at(i);
        Json line = Json::object();
        line.set("cycle", Json(e.cycle));
        line.set("event", Json(eventName(e.type)));
        line.set("pc", Json(e.pc));
        line.set("arg", Json(e.arg));
        os << line.dump() << '\n';
    }
}

void
EventTracer::exportChromeTrace(std::ostream &os) const
{
    Json events = Json::array();
    // One metadata row per event type so Perfetto shows a named
    // track for each.
    for (unsigned t = 0; t < kSimEventCount; ++t) {
        Json meta = Json::object();
        meta.set("name", Json("thread_name"));
        meta.set("ph", Json("M"));
        meta.set("pid", Json(1));
        meta.set("tid", Json(t + 1));
        Json args = Json::object();
        args.set("name",
                 Json(eventName(static_cast<SimEvent>(t))));
        meta.set("args", std::move(args));
        events.push(std::move(meta));
    }
    for (std::size_t i = 0; i < size_; ++i) {
        const TraceEvent &e = at(i);
        Json ev = Json::object();
        ev.set("name", Json(eventName(e.type)));
        ev.set("cat", Json("sim"));
        // Complete ("X") events need a duration; point events get
        // one cycle, stall-style events carry theirs in arg.
        ev.set("ph", Json("X"));
        ev.set("ts", Json(e.cycle));         // 1 cycle -> 1 us
        ev.set("dur", Json(e.arg ? e.arg : 1));
        ev.set("pid", Json(1));
        ev.set("tid", Json(static_cast<unsigned>(e.type) + 1));
        Json args = Json::object();
        args.set("pc", Json(e.pc));
        args.set("arg", Json(e.arg));
        ev.set("args", std::move(args));
        events.push(std::move(ev));
    }
    Json doc = Json::object();
    doc.set("traceEvents", std::move(events));
    doc.set("displayTimeUnit", Json("ms"));
    os << doc.dump(2) << '\n';
}

bool
EventTracer::writeFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "obs: cannot open trace file '%s'\n",
                     path.c_str());
        return false;
    }
    const bool jsonl =
        path.size() >= 6 &&
        path.compare(path.size() - 6, 6, ".jsonl") == 0;
    if (jsonl)
        exportJsonl(os);
    else
        exportChromeTrace(os);
    return static_cast<bool>(os);
}

} // namespace bpsim::obs
