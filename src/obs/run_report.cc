#include "obs/run_report.hh"

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

namespace bpsim::obs {

std::string
RunReport::Row::key() const
{
    return workload + "|" + predictor + "|" + mode + "|" +
           std::to_string(budgetBytes);
}

Json
RunReport::Row::toJson() const
{
    const Row &r = *this;
    Json j = Json::object();
    j.set("workload", Json(r.workload));
    j.set("predictor", Json(r.predictor));
    j.set("mode", Json(r.mode));
    j.set("budget_bytes", Json(static_cast<std::uint64_t>(r.budgetBytes)));
    j.set("branches", Json(r.branches));
    j.set("mispredictions", Json(r.mispredictions));
    j.set("mispredict_percent", Json(r.mispredictPercent()));
    if (r.hasTiming) {
        Json t = Json::object();
        t.set("issue_width", Json(r.issueWidth));
        t.set("cycles", Json(r.cycles));
        t.set("instructions", Json(r.instructions));
        t.set("ipc", Json(r.ipc()));
        t.set("squashed_uops", Json(r.squashedUops));
        t.set("flushes", Json(r.flushes));
        Json fc = Json::object();
        fc.set("override", Json(r.flushCyclesOverride));
        fc.set("mispredict", Json(r.flushCyclesMispredict));
        fc.set("total", Json(r.flushCyclesTotal()));
        t.set("flush_cycles", std::move(fc));
        Json sc = Json::object();
        sc.set("icache", Json(r.stallCyclesIcache));
        sc.set("btb", Json(r.stallCyclesBtb));
        sc.set("rob", Json(r.robStallCycles));
        t.set("stall_cycles", std::move(sc));
        j.set("timing", std::move(t));
    }
    return j;
}

RunReport::Row
RunReport::Row::fromJson(const Json &j)
try {
    RunReport::Row r;
    r.workload = j.get("workload").asString();
    r.predictor = j.get("predictor").asString();
    r.mode = j.get("mode").asString();
    r.budgetBytes =
        static_cast<std::size_t>(j.get("budget_bytes").asU64());
    r.branches = j.get("branches").asU64();
    r.mispredictions = j.get("mispredictions").asU64();
    if (const Json *t = j.find("timing")) {
        r.hasTiming = true;
        r.issueWidth =
            static_cast<unsigned>(t->get("issue_width").asU64());
        r.cycles = t->get("cycles").asU64();
        r.instructions = t->get("instructions").asU64();
        r.squashedUops = t->get("squashed_uops").asU64();
        r.flushes = t->get("flushes").asU64();
        const Json &fc = t->get("flush_cycles");
        r.flushCyclesOverride = fc.get("override").asU64();
        r.flushCyclesMispredict = fc.get("mispredict").asU64();
        const Json &sc = t->get("stall_cycles");
        r.stallCyclesIcache = sc.get("icache").asU64();
        r.stallCyclesBtb = sc.get("btb").asU64();
        r.robStallCycles = sc.get("rob").asU64();
    }
    return r;
} catch (const JsonError &e) {
    throw RunReportParseError(std::string("malformed row: ") +
                              e.what());
}

Json
RunReport::toJson() const
{
    Json j = Json::object();
    j.set("schema_version", Json(schemaVersion));
    j.set("tool", Json(tool));
    j.set("experiment", Json(experiment));
    j.set("ops_per_workload", Json(opsPerWorkload));
    j.set("seed", Json(seed));
    Json arr = Json::array();
    for (const Row &r : rows)
        arr.push(r.toJson());
    j.set("rows", std::move(arr));
    if (!annotations.empty()) {
        Json ann = Json::array();
        for (const Annotation &a : annotations) {
            Json e = Json::object();
            e.set("key", Json(a.key));
            e.set("message", Json(a.message));
            ann.push(std::move(e));
        }
        j.set("annotations", std::move(ann));
    }
    if (!metrics.isNull())
        j.set("metrics", metrics);
    return j;
}

RunReport
RunReport::fromJson(const Json &j)
{
    try {
        RunReport rep;
        rep.schemaVersion =
            static_cast<int>(j.get("schema_version").asNumber());
        if (rep.schemaVersion != kSchemaVersion)
            throw RunReportSchemaError(
                "unsupported schema_version " +
                std::to_string(rep.schemaVersion) + " (reader is v" +
                std::to_string(kSchemaVersion) + ")");
        rep.tool = j.get("tool").asString();
        rep.experiment = j.get("experiment").asString();
        rep.opsPerWorkload = j.get("ops_per_workload").asU64();
        rep.seed = j.get("seed").asU64();
        for (const Json &row : j.get("rows").items())
            rep.rows.push_back(Row::fromJson(row));
        if (const Json *ann = j.find("annotations"))
            for (const Json &e : ann->items())
                rep.annotations.push_back(
                    {e.get("key").asString(),
                     e.get("message").asString()});
        if (const Json *m = j.find("metrics"))
            rep.metrics = *m;
        return rep;
    } catch (const JsonError &e) {
        throw RunReportParseError(std::string("malformed report: ") +
                                  e.what());
    }
}

bool
RunReport::writeFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "obs: cannot open report file '%s'\n",
                     path.c_str());
        return false;
    }
    os << toJson().dump(2) << '\n';
    return static_cast<bool>(os);
}

RunReport
RunReport::readFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        throw RunReportIoError("cannot open report file '" + path +
                               "'");
    std::ostringstream buf;
    buf << is.rdbuf();
    try {
        return fromJson(Json::parse(buf.str()));
    } catch (const JsonError &e) {
        throw RunReportParseError(path + ": " + e.what());
    }
}

std::vector<std::string>
RunReport::validate() const
{
    std::vector<std::string> problems;
    if (schemaVersion != kSchemaVersion)
        problems.push_back("schema_version " +
                           std::to_string(schemaVersion) +
                           " != " + std::to_string(kSchemaVersion));
    if (experiment.empty())
        problems.push_back("empty experiment name");
    std::set<std::string> seen;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        const std::string where =
            "row " + std::to_string(i) + " (" + r.key() + "): ";
        if (!seen.insert(r.key()).second)
            problems.push_back(where + "duplicate row key");
        if (r.mispredictions > r.branches)
            problems.push_back(where +
                               "mispredictions exceed branches");
        if (!r.hasTiming)
            continue;
        if (r.issueWidth == 0) {
            problems.push_back(where + "timing row with issue_width 0");
            continue;
        }
        if (r.squashedUops !=
            static_cast<Counter>(r.issueWidth) * r.flushCyclesTotal())
            problems.push_back(
                where + "squashed_uops != issue_width * flush cycles (" +
                std::to_string(r.squashedUops) + " vs " +
                std::to_string(static_cast<Counter>(r.issueWidth) *
                               r.flushCyclesTotal()) +
                ")");
        if (r.instructions > 0 && r.cycles == 0)
            problems.push_back(where + "instructions without cycles");
    }
    return problems;
}

} // namespace bpsim::obs
