#include "obs/metrics.hh"

#include <algorithm>

namespace bpsim::obs {

int
Log2Histogram::maxBucket() const
{
    for (int i = kBuckets - 1; i >= 0; --i)
        if (counts_[i])
            return i;
    return -1;
}

void
Log2Histogram::reset()
{
    std::fill(std::begin(counts_), std::end(counts_), Counter{0});
    total_ = 0;
    sum_ = 0;
}

CounterMetric &
MetricRegistry::counter(const std::string &name)
{
    if (!enabled_)
        return sinkCounter_;
    const auto it = counters_.find(name);
    if (it != counters_.end())
        return *it->second;
    counterStore_.emplace_back();
    counters_[name] = &counterStore_.back();
    return counterStore_.back();
}

GaugeMetric &
MetricRegistry::gauge(const std::string &name)
{
    if (!enabled_)
        return sinkGauge_;
    const auto it = gauges_.find(name);
    if (it != gauges_.end())
        return *it->second;
    gaugeStore_.emplace_back();
    gauges_[name] = &gaugeStore_.back();
    return gaugeStore_.back();
}

Log2Histogram &
MetricRegistry::histogram(const std::string &name)
{
    if (!enabled_)
        return sinkHistogram_;
    const auto it = histograms_.find(name);
    if (it != histograms_.end())
        return *it->second;
    histogramStore_.emplace_back();
    histograms_[name] = &histogramStore_.back();
    return histogramStore_.back();
}

const CounterMetric *
MetricRegistry::findCounter(const std::string &name) const
{
    const auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : it->second;
}

const GaugeMetric *
MetricRegistry::findGauge(const std::string &name) const
{
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? nullptr : it->second;
}

const Log2Histogram *
MetricRegistry::findHistogram(const std::string &name) const
{
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : it->second;
}

std::vector<std::string>
MetricRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(size());
    for (const auto &[n, m] : counters_)
        out.push_back(n);
    for (const auto &[n, m] : gauges_)
        out.push_back(n);
    for (const auto &[n, m] : histograms_)
        out.push_back(n);
    std::sort(out.begin(), out.end());
    return out;
}

Json
MetricRegistry::toJson() const
{
    Json out = Json::object();
    for (const auto &[name, m] : counters_)
        out.set(name, Json(m->value()));
    for (const auto &[name, m] : gauges_)
        out.set(name, Json(m->value()));
    for (const auto &[name, m] : histograms_) {
        Json h = Json::object();
        h.set("total", Json(m->total()));
        h.set("sum", Json(m->sum()));
        h.set("mean", Json(m->mean()));
        Json buckets = Json::object();
        for (unsigned b = 0; b < Log2Histogram::kBuckets; ++b)
            if (m->count(b))
                buckets.set(
                    std::to_string(Log2Histogram::bucketLow(b)),
                    Json(m->count(b)));
        h.set("buckets", std::move(buckets));
        out.set(name, std::move(h));
    }
    return out;
}

void
MetricRegistry::clear()
{
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
    counterStore_.clear();
    gaugeStore_.clear();
    histogramStore_.clear();
}

} // namespace bpsim::obs
