/**
 * @file
 * Minimal JSON document model for the observability layer: enough to
 * emit RunReports, metric snapshots and Chrome trace files, and to
 * parse them back (bpstat, round-trip tests). Insertion order of
 * object keys is preserved so emitted reports are stable and
 * diffable. Numbers are stored as double; simulator counters stay
 * exact up to 2^53, far beyond any run length we simulate.
 */

#ifndef BPSIM_OBS_JSON_HH
#define BPSIM_OBS_JSON_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bpsim::obs {

/** Thrown on malformed JSON input or type-mismatched access. */
class JsonError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** A JSON value: null, bool, number, string, array or object. */
class Json
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    Json() : type_(Type::Null) {}
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(double n) : type_(Type::Number), num_(n) {}
    Json(int n) : type_(Type::Number), num_(n) {}
    Json(unsigned n) : type_(Type::Number), num_(n) {}
    Json(std::int64_t n)
        : type_(Type::Number), num_(static_cast<double>(n))
    {
    }
    Json(std::uint64_t n)
        : type_(Type::Number), num_(static_cast<double>(n))
    {
    }
    Json(const char *s) : type_(Type::String), str_(s) {}
    Json(std::string s) : type_(Type::String), str_(std::move(s)) {}

    static Json array() { Json j; j.type_ = Type::Array; return j; }
    static Json object() { Json j; j.type_ = Type::Object; return j; }

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    bool asBool() const;
    double asNumber() const;
    /** Number as an unsigned counter (negative values throw). */
    std::uint64_t asU64() const;
    const std::string &asString() const;

    // --- array access -------------------------------------------------
    void push(Json v);
    std::size_t size() const;
    const Json &at(std::size_t i) const;
    const std::vector<Json> &items() const;

    // --- object access ------------------------------------------------
    void set(const std::string &key, Json v);
    /** nullptr when @p key is absent (or not an object). */
    const Json *find(const std::string &key) const;
    /** Throws JsonError when @p key is absent. */
    const Json &get(const std::string &key) const;
    bool has(const std::string &key) const { return find(key); }
    const std::vector<std::pair<std::string, Json>> &members() const;

    /** Serialize; indent > 0 pretty-prints with that many spaces. */
    std::string dump(int indent = 0) const;

    /** Parse @p text; throws JsonError on malformed input. */
    static Json parse(std::string_view text);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Type type_;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<Json> arr_;
    std::vector<std::pair<std::string, Json>> obj_;
};

} // namespace bpsim::obs

#endif // BPSIM_OBS_JSON_HH
