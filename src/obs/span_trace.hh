/**
 * @file
 * Flight recorder for the sweep harness: wall-clock span/instant
 * tracing of the machinery *around* the simulation — scheduler
 * workers, cell execution, steal decisions, trace-pool waits,
 * trace-cache I/O — exported as Chrome trace-event JSON loadable in
 * Perfetto / chrome://tracing and summarized offline by
 * `bpstat timeline`.
 *
 * This is the harness-side sibling of EventTracer (which records
 * *simulated* cycles). Design constraints, in order:
 *
 *  1. The simulation is never observed: spans wrap harness code
 *     (pool runs, queue waits, cache loads), so RunReports are
 *     byte-identical with the recorder on or off.
 *  2. Disabled is a branch on a null sink: every record site loads
 *     one process-global pointer and bails when it is null. No
 *     allocation, no clock read, no lock.
 *  3. Enabled is lock-free per thread: each recording thread owns a
 *     fixed-capacity ring of POD events (registered once under a
 *     mutex, appended to with plain stores). The ring keeps the most
 *     recent events and counts what it overwrote.
 *
 * Lifecycle contract (what makes the lock-free part safe):
 * install() the recorder *before* starting the threads that record,
 * and drain — install(nullptr), then exportChromeTrace()/writeFile()
 * — only *after* those threads have been joined. Thread rings are
 * owned by the recorder, so threads may exit before the drain.
 */

#ifndef BPSIM_OBS_SPAN_TRACE_HH
#define BPSIM_OBS_SPAN_TRACE_HH

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace bpsim::obs {

/** One recorded harness event. POD so rings never allocate after
 *  construction; the name is a truncated inline copy (labels can be
 *  shorter-lived than the recorder), the category and argument name
 *  must be string literals (static storage). */
struct SpanEvent
{
    static constexpr std::size_t kNameCap = 32;

    std::uint64_t startNs = 0; ///< relative to the recorder's epoch
    std::uint64_t durNs = 0;   ///< 0 and instant=true => point event
    std::uint64_t arg = 0;     ///< meaning given by argName
    const char *cat = nullptr; ///< static literal: "cell", "steal", ...
    const char *argName = nullptr; ///< static literal; nullptr = no arg
    char name[kNameCap] = {};      ///< NUL-terminated truncated copy
    bool instant = false;

    void
    setName(std::string_view n)
    {
        const std::size_t len =
            n.size() < kNameCap - 1 ? n.size() : kNameCap - 1;
        std::memcpy(name, n.data(), len);
        name[len] = '\0';
    }
};

/** One thread's fixed-capacity most-recent-events ring. Owned by the
 *  recorder; written only by its registered thread, read only at
 *  drain time (after that thread stopped recording). */
class SpanThreadLog
{
  public:
    SpanThreadLog(std::uint32_t tid, std::string name,
                  std::size_t capacity)
        : ring_(capacity ? capacity : 1),
          tid_(tid),
          name_(std::move(name))
    {
    }

    void
    push(const SpanEvent &e)
    {
        ring_[head_] = e;
        head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
        if (size_ < ring_.size())
            ++size_;
        else
            ++dropped_;
    }

    std::uint32_t tid() const { return tid_; }
    const std::string &threadName() const { return name_; }
    void setThreadName(std::string name) { name_ = std::move(name); }
    std::size_t size() const { return size_; }
    std::uint64_t dropped() const { return dropped_; }

    /** @p i = 0 is the *oldest* retained event (ring order — spans
     *  are recorded at close, so this is completion order). */
    const SpanEvent &
    at(std::size_t i) const
    {
        const std::size_t start = size_ < ring_.size() ? 0 : head_;
        std::size_t idx = start + i;
        if (idx >= ring_.size())
            idx -= ring_.size();
        return ring_[idx];
    }

  private:
    std::vector<SpanEvent> ring_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint32_t tid_;
    std::string name_;
};

/** Process-wide span recorder; see file comment for the contract. */
class SpanRecorder
{
  public:
    /** @param per_thread_capacity Ring size, in events, given to each
     *  recording thread (>= 1). */
    explicit SpanRecorder(std::size_t per_thread_capacity = 1 << 13);

    SpanRecorder(const SpanRecorder &) = delete;
    SpanRecorder &operator=(const SpanRecorder &) = delete;

    ~SpanRecorder();

    /** The installed recorder, nullptr when tracing is off. This is
     *  the disabled-path branch: one relaxed-ish atomic load. */
    static SpanRecorder *current();

    /** Install @p rec as the process sink (nullptr to uninstall).
     *  Call before starting recording threads / after joining them. */
    static void install(SpanRecorder *rec);

    /** Name the calling thread's Perfetto track ("worker 3",
     *  "driver fig7_ipc_budget"). No-op when no recorder is
     *  installed; threads that record without naming themselves get
     *  "thread N". */
    static void nameThisThread(std::string_view name);

    /** Nanoseconds since the recorder's construction. */
    std::uint64_t nowNs() const;

    /** Record a completed span on the calling thread's ring. */
    void span(const char *cat, std::string_view name,
              std::uint64_t start_ns, std::uint64_t dur_ns,
              const char *arg_name = nullptr, std::uint64_t arg = 0);

    /** Record a point event on the calling thread's ring. */
    void instant(const char *cat, std::string_view name,
                 const char *arg_name = nullptr, std::uint64_t arg = 0);

    /** Threads that have registered a ring so far. */
    std::size_t threadCount() const;
    /** Events overwritten across all rings. */
    std::uint64_t dropped() const;

    /** Chrome trace-event JSON ({"traceEvents": [...]}): one
     *  thread_name metadata row per registered thread, "X" complete
     *  events for spans, "i" instants; timestamps in microseconds
     *  with nanosecond precision. Drain-time only. */
    void exportChromeTrace(std::ostream &os) const;

    /** exportChromeTrace() to @p path; false (with a stderr message)
     *  on I/O failure. */
    bool writeFile(const std::string &path) const;

  private:
    SpanThreadLog &localLog();

    mutable std::mutex mu_; ///< guards logs_ registration/iteration
    std::vector<std::unique_ptr<SpanThreadLog>> logs_;
    std::size_t capacity_;
    std::chrono::steady_clock::time_point epoch_;
    std::uint64_t generation_; ///< distinguishes recorder instances
                               ///< for the thread-local ring cache
};

/**
 * RAII span over the enclosing scope:
 *
 *     obs::SpanScope span("cell", label, "cell", i);
 *
 * When no recorder is installed the constructor is the null-pointer
 * check and the destructor a branch — nothing else happens. The name
 * is captured by reference and read at close; it must outlive the
 * scope (queue labels and artifact names do).
 */
class SpanScope
{
  public:
    SpanScope(const char *cat, std::string_view name,
              const char *arg_name = nullptr, std::uint64_t arg = 0)
        : rec_(SpanRecorder::current()),
          cat_(cat),
          argName_(arg_name),
          name_(name),
          arg_(arg)
    {
        if (rec_)
            start_ = rec_->nowNs();
    }

    SpanScope(const SpanScope &) = delete;
    SpanScope &operator=(const SpanScope &) = delete;

    ~SpanScope()
    {
        if (rec_)
            rec_->span(cat_, name_, start_, rec_->nowNs() - start_,
                       argName_, arg_);
    }

  private:
    SpanRecorder *rec_;
    const char *cat_;
    const char *argName_;
    std::string_view name_;
    std::uint64_t arg_;
    std::uint64_t start_ = 0;
};

/** Point event; a null-sink branch when tracing is off. */
inline void
spanInstant(const char *cat, std::string_view name,
            const char *arg_name = nullptr, std::uint64_t arg = 0)
{
    if (SpanRecorder *rec = SpanRecorder::current())
        rec->instant(cat, name, arg_name, arg);
}

} // namespace bpsim::obs

#endif // BPSIM_OBS_SPAN_TRACE_HH
