/**
 * @file
 * CACTI-lite: an analytic SRAM access-time model.
 *
 * The paper estimates pattern-history-table access times with a
 * modified CACTI 3.0 at 100 nm (Section 4.1.5). We reproduce the
 * *functional form* of that model rather than its full circuit
 * detail: access time decomposes into a decoder term that grows
 * logarithmically with the number of addressable entries, and a
 * wire/bitline term that grows with the physical array dimension
 * (i.e. with the square root of total capacity, made slightly
 * super-linear to reflect the global-interconnect penalty CACTI 3.0
 * models for large arrays).
 *
 * The model is calibrated against the paper's anchor points:
 *  - a 1K-entry PHT is the largest table readable in one 8 FO4 cycle
 *    (Jimenez/Keckler/Lin, MICRO-33), and the 2K-entry quick
 *    predictor is (optimistically) still single-cycle;
 *  - a 512 KB two-bit-counter array takes 11 cycles (Table 2);
 *  - intermediate budgets land on 2/3/4/5/7 cycles at
 *    16/32/64/128/256 KB.
 *
 * The decoder term is why a PHT is slower than a same-capacity
 * cache: a 4 KB PHT selects among 16K two-bit entries while a 4 KB
 * cache with 32-byte lines selects among 128 lines (Section 2.3.1).
 */

#ifndef BPSIM_DELAY_SRAM_MODEL_HH
#define BPSIM_DELAY_SRAM_MODEL_HH

#include <cstdint>

#include "delay/clock_model.hh"

namespace bpsim {

/** Geometry of a simulated SRAM structure. */
struct SramGeometry
{
    /** Number of addressable entries (decoder fan-in). */
    std::uint64_t entries = 0;
    /** Bits per addressable entry. */
    unsigned bitsPerEntry = 2;
    /** Read/write port count; extra ports add area and wire delay. */
    unsigned ports = 1;
    /** ECC/parity check bits stored alongside the data array. They
     *  are not addressable (the decoder fans into data entries) but
     *  widen the physical array, so they count toward the wire term
     *  via totalBits(). */
    std::uint64_t checkBits = 0;

    /** Total capacity in bits (data plus check bits). */
    std::uint64_t totalBits() const
    {
        return entries * bitsPerEntry + checkBits;
    }
    /** Total capacity in bytes (rounded up). */
    std::uint64_t totalBytes() const { return (totalBits() + 7) / 8; }
};

/**
 * Analytic access-time model for SRAM tables.
 *
 * All returned delays are in FO4 units; use a ClockModel to convert
 * to cycles.
 */
class SramModel
{
  public:
    /** Construct with default calibration (see file comment). */
    SramModel();

    /** Construct with explicit coefficients (for sensitivity
     *  studies): t = fixed + decode*log2(entries)
     *                 + wire*(KB*portScale)^wireExp. */
    SramModel(double fixed, double decode_per_level, double wire,
              double wire_exponent, double port_area_factor);

    /** Access time of @p geom in FO4 delays. */
    double accessFo4(const SramGeometry &geom) const;

    /** Access time of @p geom in whole cycles under @p clock. */
    unsigned accessCycles(const SramGeometry &geom,
                          const ClockModel &clock) const;

    /**
     * Largest power-of-two entry count with @p bits_per_entry whose
     * access fits in @p cycles cycles under @p clock. Returns 0 when
     * even a 2-entry table does not fit.
     */
    std::uint64_t maxEntriesForCycles(unsigned bits_per_entry,
                                      unsigned cycles,
                                      const ClockModel &clock) const;

  private:
    double fixed_;
    double decodePerLevel_;
    double wire_;
    double wireExponent_;
    double portAreaFactor_;
};

} // namespace bpsim

#endif // BPSIM_DELAY_SRAM_MODEL_HH
