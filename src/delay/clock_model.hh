/**
 * @file
 * Technology and clock model.
 *
 * The paper assumes an aggressive clock period of 8 fan-out-of-four
 * (FO4) inverter delays — the optimum found by Hrishikesh et al.
 * (ISCA 2002): 6 FO4 of useful work plus 2 FO4 of latch overhead per
 * stage — which yields roughly 3.5 GHz in 100 nm technology. All
 * structure access times in this library are expressed in FO4 so
 * they scale across process generations, then converted to cycles
 * through this model.
 */

#ifndef BPSIM_DELAY_CLOCK_MODEL_HH
#define BPSIM_DELAY_CLOCK_MODEL_HH

namespace bpsim {

/** Clock/technology parameters expressed in FO4 delays. */
class ClockModel
{
  public:
    /**
     * @param technology_nm Drawn gate length in nanometres.
     * @param period_fo4 Clock period in FO4 delays (paper: 8).
     */
    explicit ClockModel(double technology_nm = 100.0,
                        double period_fo4 = 8.0);

    /** One FO4 inverter delay in picoseconds for this technology. */
    double fo4Ps() const { return fo4Ps_; }

    /** Clock period in picoseconds. */
    double periodPs() const { return periodFo4_ * fo4Ps_; }

    /** Clock period in FO4 delays. */
    double periodFo4() const { return periodFo4_; }

    /** Clock frequency in GHz. */
    double frequencyGHz() const { return 1000.0 / periodPs(); }

    /** Convert a delay in FO4 units to whole clock cycles (ceiling,
     *  minimum 1: every access occupies at least one cycle). */
    unsigned cyclesForFo4(double fo4) const;

  private:
    double fo4Ps_;
    double periodFo4_;
};

} // namespace bpsim

#endif // BPSIM_DELAY_CLOCK_MODEL_HH
