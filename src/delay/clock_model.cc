#include "delay/clock_model.hh"

#include <cassert>
#include <cmath>

namespace bpsim {

ClockModel::ClockModel(double technology_nm, double period_fo4)
    : periodFo4_(period_fo4)
{
    assert(technology_nm > 0.0 && period_fo4 >= 1.0);
    // The standard rule of thumb: one FO4 delay is about 360 ps per
    // micron of drawn gate length (Ho/Mai/Horowitz). At 100 nm this
    // gives 36 ps, so an 8 FO4 period is 288 ps ~= 3.5 GHz, matching
    // the paper's Section 4.1.2 assumption.
    fo4Ps_ = 360.0 * (technology_nm / 1000.0);
}

unsigned
ClockModel::cyclesForFo4(double fo4) const
{
    if (fo4 <= 0.0)
        return 1;
    const double cycles = fo4 / periodFo4_;
    const unsigned whole = static_cast<unsigned>(std::ceil(cycles));
    return whole == 0 ? 1 : whole;
}

} // namespace bpsim
