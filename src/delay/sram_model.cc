#include "delay/sram_model.hh"

#include <cassert>
#include <cmath>

#include "common/bitutil.hh"

namespace bpsim {

SramModel::SramModel()
    : SramModel(0.5, 0.65, 0.5, 0.8, 0.5)
{
}

SramModel::SramModel(double fixed, double decode_per_level, double wire,
                     double wire_exponent, double port_area_factor)
    : fixed_(fixed),
      decodePerLevel_(decode_per_level),
      wire_(wire),
      wireExponent_(wire_exponent),
      portAreaFactor_(port_area_factor)
{
}

double
SramModel::accessFo4(const SramGeometry &geom) const
{
    assert(geom.entries > 0 && geom.bitsPerEntry > 0 && geom.ports > 0);
    const double levels =
        static_cast<double>(ceilLog2(geom.entries));
    const double kb =
        static_cast<double>(geom.totalBits()) / (8.0 * 1024.0);
    // Each extra port roughly doubles cell area, lengthening word
    // and bit lines; model as a multiplicative area factor inside
    // the wire term.
    const double area_kb =
        kb * (1.0 + portAreaFactor_ * (geom.ports - 1));
    return fixed_ + decodePerLevel_ * levels +
           wire_ * std::pow(area_kb, wireExponent_);
}

unsigned
SramModel::accessCycles(const SramGeometry &geom,
                        const ClockModel &clock) const
{
    return clock.cyclesForFo4(accessFo4(geom));
}

std::uint64_t
SramModel::maxEntriesForCycles(unsigned bits_per_entry, unsigned cycles,
                               const ClockModel &clock) const
{
    std::uint64_t best = 0;
    for (unsigned lg = 1; lg <= 32; ++lg) {
        SramGeometry g;
        g.entries = std::uint64_t{1} << lg;
        g.bitsPerEntry = bits_per_entry;
        if (accessCycles(g, clock) <= cycles)
            best = g.entries;
        else
            break;
    }
    return best;
}

} // namespace bpsim
