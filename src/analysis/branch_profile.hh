/**
 * @file
 * Branch-stream characterization.
 *
 * The paper explains its performance results through branch-stream
 * properties: which branches are biased, which are history-
 * predictable, and where mispredictions concentrate (Section 4.5).
 * This module computes those properties for any trace, and is what
 * the workload kernels were validated against.
 */

#ifndef BPSIM_ANALYSIS_BRANCH_PROFILE_HH
#define BPSIM_ANALYSIS_BRANCH_PROFILE_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "trace/trace_buffer.hh"

namespace bpsim {

/** Aggregate statistics for one static branch site. */
struct SiteStats
{
    Addr pc = 0;
    Counter executions = 0;
    Counter taken = 0;

    double
    takenRate() const
    {
        return executions ? static_cast<double>(taken) /
                                static_cast<double>(executions)
                          : 0.0;
    }

    /** Bias: how far from 50/50 this site is, in [0, 1]. */
    double
    bias() const
    {
        const double t = takenRate();
        return t > 0.5 ? 2.0 * (t - 0.5) : 2.0 * (0.5 - t);
    }

    /** Bernoulli entropy of the outcome (bits); 0 = fully biased. */
    double entropyBits() const;
};

/** Whole-stream branch profile. */
class BranchProfile
{
  public:
    /** Observe one dynamic conditional branch. */
    void observe(Addr pc, bool taken);

    Counter dynamicBranches() const { return dynamic_; }
    std::size_t staticSites() const { return sites_.size(); }

    /** Fraction of dynamic branches that were taken. */
    double takenFraction() const;

    /**
     * Execution-weighted mean per-site entropy in bits: an upper
     * bound proxy for how well a per-branch (bimodal) predictor can
     * do. 0 = every site fully biased.
     */
    double meanSiteEntropyBits() const;

    /** Fraction of dynamic branches from sites with bias >= @p b. */
    double biasedFraction(double b = 0.9) const;

    /** The @p n most-executed sites, descending. */
    std::vector<SiteStats> hottestSites(std::size_t n) const;

    /** Per-site stats lookup (zeros if never seen). */
    SiteStats site(Addr pc) const;

  private:
    std::unordered_map<Addr, SiteStats> sites_;
    Counter dynamic_ = 0;
    Counter taken_ = 0;
};

/** Build a profile from every conditional branch in @p trace. */
BranchProfile profileTrace(const TraceBuffer &trace);

/**
 * Misprediction attribution: which sites a given predictor gets
 * wrong. Feed it (pc, mispredicted) pairs while running any
 * predictor, then ask for the top offenders — the methodology behind
 * per-benchmark explanations like the paper's twolf discussion.
 */
class MispredictProfile
{
  public:
    void observe(Addr pc, bool mispredicted);

    Counter branches() const { return branches_; }
    Counter mispredictions() const { return mispredicts_; }
    double percent() const;

    struct SiteMisses
    {
        Addr pc = 0;
        Counter executions = 0;
        Counter misses = 0;
        /** Share of all mispredictions from this site, in [0,1]. */
        double shareOfAllMisses = 0.0;
        double localRate() const
        {
            return executions ? static_cast<double>(misses) /
                                    static_cast<double>(executions)
                              : 0.0;
        }
    };

    /** The @p n sites contributing the most mispredictions. */
    std::vector<SiteMisses> topOffenders(std::size_t n) const;

  private:
    struct Cell
    {
        Counter executions = 0;
        Counter misses = 0;
    };
    std::unordered_map<Addr, Cell> cells_;
    Counter branches_ = 0;
    Counter mispredicts_ = 0;
};

} // namespace bpsim

#endif // BPSIM_ANALYSIS_BRANCH_PROFILE_HH
