#include "analysis/branch_profile.hh"

#include <algorithm>
#include <cmath>

namespace bpsim {

double
SiteStats::entropyBits() const
{
    const double p = takenRate();
    if (p <= 0.0 || p >= 1.0)
        return 0.0;
    return -(p * std::log2(p) + (1.0 - p) * std::log2(1.0 - p));
}

void
BranchProfile::observe(Addr pc, bool taken)
{
    SiteStats &s = sites_[pc];
    s.pc = pc;
    ++s.executions;
    s.taken += taken ? 1 : 0;
    ++dynamic_;
    taken_ += taken ? 1 : 0;
}

double
BranchProfile::takenFraction() const
{
    return dynamic_ ? static_cast<double>(taken_) /
                          static_cast<double>(dynamic_)
                    : 0.0;
}

double
BranchProfile::meanSiteEntropyBits() const
{
    if (dynamic_ == 0)
        return 0.0;
    double acc = 0.0;
    for (const auto &[pc, s] : sites_)
        acc += s.entropyBits() * static_cast<double>(s.executions);
    return acc / static_cast<double>(dynamic_);
}

double
BranchProfile::biasedFraction(double b) const
{
    if (dynamic_ == 0)
        return 0.0;
    Counter n = 0;
    for (const auto &[pc, s] : sites_)
        if (s.bias() >= b)
            n += s.executions;
    return static_cast<double>(n) / static_cast<double>(dynamic_);
}

std::vector<SiteStats>
BranchProfile::hottestSites(std::size_t n) const
{
    std::vector<SiteStats> v;
    v.reserve(sites_.size());
    for (const auto &[pc, s] : sites_)
        v.push_back(s);
    std::sort(v.begin(), v.end(),
              [](const SiteStats &a, const SiteStats &b) {
                  return a.executions > b.executions;
              });
    if (v.size() > n)
        v.resize(n);
    return v;
}

SiteStats
BranchProfile::site(Addr pc) const
{
    const auto it = sites_.find(pc);
    return it == sites_.end() ? SiteStats{pc, 0, 0} : it->second;
}

BranchProfile
profileTrace(const TraceBuffer &trace)
{
    BranchProfile p;
    for (const MicroOp &op : trace)
        if (op.cls == InstClass::CondBranch)
            p.observe(op.pc, op.taken);
    return p;
}

void
MispredictProfile::observe(Addr pc, bool mispredicted)
{
    Cell &c = cells_[pc];
    ++c.executions;
    c.misses += mispredicted ? 1 : 0;
    ++branches_;
    mispredicts_ += mispredicted ? 1 : 0;
}

double
MispredictProfile::percent() const
{
    return branches_ ? 100.0 * static_cast<double>(mispredicts_) /
                           static_cast<double>(branches_)
                     : 0.0;
}

std::vector<MispredictProfile::SiteMisses>
MispredictProfile::topOffenders(std::size_t n) const
{
    std::vector<SiteMisses> v;
    v.reserve(cells_.size());
    for (const auto &[pc, c] : cells_) {
        SiteMisses m;
        m.pc = pc;
        m.executions = c.executions;
        m.misses = c.misses;
        m.shareOfAllMisses =
            mispredicts_ ? static_cast<double>(c.misses) /
                               static_cast<double>(mispredicts_)
                         : 0.0;
        v.push_back(m);
    }
    std::sort(v.begin(), v.end(),
              [](const SiteMisses &a, const SiteMisses &b) {
                  return a.misses > b.misses;
              });
    if (v.size() > n)
        v.resize(n);
    return v;
}

} // namespace bpsim
