/**
 * @file
 * Saturating counters — the fundamental storage element of almost
 * every table-based branch predictor.
 */

#ifndef BPSIM_COMMON_SAT_COUNTER_HH
#define BPSIM_COMMON_SAT_COUNTER_HH

#include <cassert>
#include <cstdint>

namespace bpsim {

/**
 * An n-bit unsigned saturating counter.
 *
 * The counter counts in [0, 2^n - 1]. For direction prediction the
 * conventional interpretation is: values >= 2^(n-1) predict taken.
 * The counter is stored in a single byte, so predictors can pack
 * millions of them in contiguous arrays with good cache behaviour in
 * the *host* machine (the simulated SRAM geometry is modelled
 * separately by the delay library).
 */
class SatCounter
{
  public:
    /** Construct an @p bits wide counter with initial @p value. */
    explicit SatCounter(unsigned bits = 2, std::uint8_t value = 0)
        : value_(value), max_(static_cast<std::uint8_t>((1u << bits) - 1))
    {
        assert(bits >= 1 && bits <= 8);
        assert(value <= max_);
    }

    /** Current raw value. */
    std::uint8_t value() const { return value_; }

    /** Maximum representable value (2^bits - 1). */
    std::uint8_t maxValue() const { return max_; }

    /** Direction hint: true when in the taken half of the range. */
    bool taken() const { return value_ > max_ / 2; }

    /**
     * Whether the counter is in a weak state (adjacent to the
     * taken/not-taken boundary). Used by choosers and by the bi-mode
     * predictor's partial-update rule.
     */
    bool
    weak() const
    {
        return value_ == max_ / 2 || value_ == max_ / 2 + 1;
    }

    /** Increment with saturation. */
    void
    increment()
    {
        if (value_ < max_)
            ++value_;
    }

    /** Decrement with saturation. */
    void
    decrement()
    {
        if (value_ > 0)
            --value_;
    }

    /** Train toward @p taken (increment if taken, else decrement). */
    void
    update(bool taken)
    {
        if (taken)
            increment();
        else
            decrement();
    }

    /** Reset to a specific raw value. */
    void
    set(std::uint8_t value)
    {
        assert(value <= max_);
        value_ = value;
    }

  private:
    std::uint8_t value_;
    std::uint8_t max_;
};

/**
 * A compact two-bit counter for bulk PHT storage.
 *
 * Unlike SatCounter this has no per-counter width field, so a
 * 2^21-entry PHT costs exactly 2 MB of host memory instead of 4.
 * Semantics match SatCounter(2): 0,1 predict not-taken; 2,3 taken.
 */
class TwoBitCounter
{
  public:
    /** Construct weakly not-taken by default (value 1). */
    explicit TwoBitCounter(std::uint8_t value = 1) : value_(value) {}

    std::uint8_t value() const { return value_; }
    bool taken() const { return value_ >= 2; }
    bool weak() const { return value_ == 1 || value_ == 2; }

    void
    update(bool taken)
    {
        if (taken) {
            if (value_ < 3)
                ++value_;
        } else {
            if (value_ > 0)
                --value_;
        }
    }

    void set(std::uint8_t value) { value_ = value & 3; }

  private:
    std::uint8_t value_;
};

/**
 * A signed saturating weight for perceptron predictors.
 *
 * An @p bits wide two's-complement integer in
 * [-2^(bits-1), 2^(bits-1) - 1], trained with +/-1 steps.
 */
class SignedWeight
{
  public:
    explicit SignedWeight(unsigned bits = 8, std::int16_t value = 0)
        : value_(value),
          min_(static_cast<std::int16_t>(-(1 << (bits - 1)))),
          max_(static_cast<std::int16_t>((1 << (bits - 1)) - 1))
    {
        assert(bits >= 2 && bits <= 16);
    }

    std::int16_t value() const { return value_; }
    std::int16_t minValue() const { return min_; }
    std::int16_t maxValue() const { return max_; }

    /** Move one step toward @p up (true: +1, false: -1), saturating. */
    void
    train(bool up)
    {
        if (up) {
            if (value_ < max_)
                ++value_;
        } else {
            if (value_ > min_)
                --value_;
        }
    }

    /** Overwrite the raw value (fault injection / tests). */
    void
    set(std::int16_t value)
    {
        assert(value >= min_ && value <= max_);
        value_ = value;
    }

  private:
    std::int16_t value_;
    std::int16_t min_;
    std::int16_t max_;
};

} // namespace bpsim

#endif // BPSIM_COMMON_SAT_COUNTER_HH
