// HistoryRegister is header-only; this translation unit exists so the
// common library always has at least one object file per module and
// to hold any future out-of-line definitions.
#include "common/history.hh"
