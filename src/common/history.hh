/**
 * @file
 * Branch history shift registers.
 *
 * Global history registers are the backbone of two-level and neural
 * predictors. The register here supports up to 256 bits so it can
 * serve the longest histories used by the perceptron and
 * multi-component predictors, with cheap snapshot/restore for
 * misprediction recovery (the paper's "speculative update with
 * checkpointing" policy, Skadron et al. JILP 2000).
 */

#ifndef BPSIM_COMMON_HISTORY_HH
#define BPSIM_COMMON_HISTORY_HH

#include <array>
#include <cassert>
#include <cstdint>

#include "common/bitutil.hh"

namespace bpsim {

/**
 * A fixed-capacity (256-bit) branch history shift register.
 *
 * Bit 0 is always the most recently inserted outcome. Only the low
 * @p length bits are meaningful; higher bits are kept zero so that
 * value comparison and hashing are well defined.
 */
class HistoryRegister
{
  public:
    /** Maximum supported history length in bits. */
    static constexpr unsigned maxLength = 256;

    /** Construct an all-zero history of @p length bits. */
    explicit HistoryRegister(unsigned length = 0) : length_(length)
    {
        assert(length <= maxLength);
        words_.fill(0);
    }

    /** Configured history length in bits. */
    unsigned length() const { return length_; }

    /** Shift in one outcome; the oldest bit falls off the end. */
    void
    shiftIn(bool taken)
    {
        std::uint64_t carry = taken ? 1 : 0;
        if (length_ <= 64) {
            // Single-word fast path. Histories of <= 64 bits keep
            // words_[1..] zero by construction (maskTop, setBit's
            // bounds assert), so only the low word moves. Every
            // two-level component in the factory configurations
            // lands here, and the full four-word ripple was the
            // single largest cost in the multi-component replay
            // loop (three shifts per branch).
            std::uint64_t w = (words_[0] << 1) | carry;
            if (length_ < 64)
                w &= loMask(length_);
            words_[0] = w;
            return;
        }
        for (auto &w : words_) {
            const std::uint64_t out = w >> 63;
            w = (w << 1) | carry;
            carry = out;
        }
        maskTop();
    }

    /** Outcome @p i branches ago (0 = most recent). */
    bool
    bit(unsigned i) const
    {
        assert(i < length_);
        return (words_[i / 64] >> (i % 64)) & 1;
    }

    /**
     * Overwrite one history bit in place. Normal operation only ever
     * shifts; this exists for fault injection (soft-error studies)
     * and state-audit tooling, which need to corrupt or patch
     * arbitrary positions.
     */
    void
    setBit(unsigned i, bool v)
    {
        assert(i < length_);
        const std::uint64_t mask = std::uint64_t{1} << (i % 64);
        if (v)
            words_[i / 64] |= mask;
        else
            words_[i / 64] &= ~mask;
    }

    /** The newest min(64, length) history bits as an integer. */
    std::uint64_t
    low64() const
    {
        return length_ >= 64 ? words_[0] : words_[0] & loMask(length_);
    }

    /** The newest @p n bits (n <= 64) as an integer. */
    std::uint64_t
    low(unsigned n) const
    {
        assert(n <= 64);
        return words_[0] & loMask(n);
    }

    /**
     * XOR-fold the entire live history down to @p out_bits bits.
     * Lets short index widths still observe long histories.
     */
    std::uint64_t
    fold(unsigned out_bits) const
    {
        if (out_bits == 0)
            return 0;
        if (length_ <= 64) {
            // Fixed-trip-count fold for single-word histories (every
            // factory configuration that folds lands here). The
            // generic foldBits loop exits when the remaining value
            // is zero, so its trip count follows the history
            // contents — a branch the host mispredicts constantly in
            // replay loops. Walking to length_ instead does the same
            // XORs with a trip count that never changes.
            const std::uint64_t v = words_[0];
            std::uint64_t r = v & loMask(out_bits);
            for (unsigned s = out_bits; s < length_; s += out_bits)
                r ^= (v >> s) & loMask(out_bits);
            return r & loMask(out_bits);
        }
        std::uint64_t r = 0;
        for (unsigned w = 0; w * 64 < length_; ++w)
            r ^= foldBits(words_[w], out_bits);
        return r & loMask(out_bits);
    }

    /** Zero all history bits (used at recovery to a known state). */
    void
    clear()
    {
        words_.fill(0);
    }

    /** Copy-assignable snapshot semantics: the whole class is POD-ish. */
    bool
    operator==(const HistoryRegister &other) const
    {
        return length_ == other.length_ && words_ == other.words_;
    }

  private:
    void
    maskTop()
    {
        if (length_ == maxLength)
            return;
        const unsigned full = length_ / 64;
        const unsigned rem = length_ % 64;
        if (full < words_.size())
            words_[full] &= loMask(rem);
        for (unsigned w = full + 1; w < words_.size(); ++w)
            words_[w] = 0;
    }

    std::array<std::uint64_t, maxLength / 64> words_;
    unsigned length_;
};

} // namespace bpsim

#endif // BPSIM_COMMON_HISTORY_HH
