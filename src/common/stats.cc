#include "common/stats.hh"

#include <cassert>
#include <cmath>

namespace bpsim {

void
RunningStat::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        if (x < min_)
            min_ = x;
        if (x > max_)
            max_ = x;
    }
    ++n_;
    sum_ += x;
    sumSq_ += x * x;
}

double
RunningStat::variance() const
{
    if (n_ == 0)
        return 0.0;
    const double m = mean();
    return sumSq_ / static_cast<double>(n_) - m * m;
}

double
arithmeticMean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
harmonicMean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs) {
        assert(x > 0.0 && "harmonic mean requires positive samples");
        s += 1.0 / x;
    }
    return static_cast<double>(xs.size()) / s;
}

double
geometricMean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs) {
        assert(x > 0.0 && "geometric mean requires positive samples");
        s += std::log(x);
    }
    return std::exp(s / static_cast<double>(xs.size()));
}

void
Histogram::add(std::size_t bucket)
{
    if (bucket >= counts_.size())
        bucket = counts_.size() - 1;
    ++counts_[bucket];
    ++total_;
}

double
Histogram::cdf(std::size_t bucket) const
{
    if (total_ == 0)
        return 0.0;
    Counter acc = 0;
    for (std::size_t i = 0; i <= bucket && i < counts_.size(); ++i)
        acc += counts_[i];
    return static_cast<double>(acc) / static_cast<double>(total_);
}

} // namespace bpsim
