/**
 * @file
 * Tiny dense kernels for the perceptron's hot loops.
 *
 * The perceptron predict is a dot product of a signed weight row with
 * a ±1 input vector, and training is a saturating add of the scaled
 * input vector into the row. Stored as SignedWeight the row was an
 * array of 6-byte structs (value + per-element min/max), whose stride
 * defeats auto-vectorization; over contiguous int16 both loops below
 * compile to packed integer code at -O2 (GCC 12 enables the
 * vectorizer there), which bench/microbench pins with a dedicated
 * BM_PerceptronKernel benchmark.
 *
 * Saturation note: inputs are ±1 and @p dir is ±1, so a single
 * clamped add per element is exactly SignedWeight::train()'s
 * increment/decrement-with-saturation.
 *
 * Two flavors: the inline versions below, which the serial
 * perceptron calls once per branch (inlining into its predict/update
 * lets the compiler blend the loop with fillInputs), and the *Wide
 * versions in vec_kernels.cc under target_clones("avx2", "default")
 * for the ensemble batch kernel, which issues one call per member
 * per branch over shared inputs — there the ifunc dispatch picks the
 * 256-bit clone at load time (the baseline x86-64 build only
 * vectorizes at SSE2 width) and the call overhead is amortized
 * across the group's row loads.
 */

#ifndef BPSIM_COMMON_VEC_KERNELS_HH
#define BPSIM_COMMON_VEC_KERNELS_HH

#include <cstddef>
#include <cstdint>

namespace bpsim {

/** Dot product of an int16 weight row with a ±1 int16 input vector,
 *  accumulated in int (no overflow: |w| < 2^15, n <= a few hundred). */
inline int
dotSignedI16(const std::int16_t *w, const std::int16_t *x,
             std::size_t n)
{
    int acc = 0;
    for (std::size_t i = 0; i < n; ++i)
        acc += static_cast<int>(w[i]) * static_cast<int>(x[i]);
    return acc;
}

/** w[i] += dir * x[i], clamped to [lo, hi]. With ±1 inputs this is
 *  the perceptron training step over a whole row. */
inline void
trainSignedI16(std::int16_t *w, const std::int16_t *x, std::size_t n,
               int dir, int lo, int hi)
{
    for (std::size_t i = 0; i < n; ++i) {
        int v = static_cast<int>(w[i]) + dir * static_cast<int>(x[i]);
        v = v < lo ? lo : (v > hi ? hi : v);
        w[i] = static_cast<std::int16_t>(v);
    }
}

/** Same kernels, out of line and multiversioned (AVX2 ifunc clone on
 *  hardware that has it) — see the header comment. */
int dotSignedI16Wide(const std::int16_t *w, const std::int16_t *x,
                     std::size_t n);
void trainSignedI16Wide(std::int16_t *w, const std::int16_t *x,
                        std::size_t n, int dir, int lo, int hi);

} // namespace bpsim

#endif // BPSIM_COMMON_VEC_KERNELS_HH
