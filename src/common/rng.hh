/**
 * @file
 * Deterministic pseudo-random number generation for workload
 * synthesis.
 *
 * We deliberately avoid std::mt19937 on hot paths: xorshift128+ is
 * several times faster and its statistical quality is more than
 * sufficient for driving synthetic workloads. Determinism matters:
 * the same seed must produce bit-identical traces on every platform
 * so that experiments are reproducible, which is why we do not use
 * std::uniform_int_distribution (its algorithm is
 * implementation-defined).
 */

#ifndef BPSIM_COMMON_RNG_HH
#define BPSIM_COMMON_RNG_HH

#include <cstdint>

namespace bpsim {

/**
 * xorshift128+ generator with convenience distributions.
 *
 * All distribution helpers are implemented from first principles so
 * their output depends only on the seed, never on the C++ standard
 * library implementation.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; any seed (including 0) is valid. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t nextRange(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextBetween(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial: true with probability @p p. */
    bool nextBool(double p = 0.5);

    /**
     * Geometric-ish distribution: number of failures before the
     * first success with success probability @p p, capped at @p cap.
     * Used for dependence-distance and run-length synthesis.
     */
    unsigned nextGeometric(double p, unsigned cap = 64);

    /**
     * Approximate Zipf sample in [0, n) with exponent @p s, via
     * inverse-power transform. Used for address-stream locality and
     * hot-branch working sets.
     */
    std::uint64_t nextZipf(std::uint64_t n, double s = 1.0);

    /** Gaussian sample (Box-Muller), mean 0, stddev 1. */
    double nextGaussian();

  private:
    std::uint64_t s0_;
    std::uint64_t s1_;
    bool haveSpareGaussian_ = false;
    double spareGaussian_ = 0.0;
};

} // namespace bpsim

#endif // BPSIM_COMMON_RNG_HH
