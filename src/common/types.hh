/**
 * @file
 * Fundamental scalar type aliases shared across the simulator.
 *
 * These mirror the conventions of execution-driven architecture
 * simulators: addresses are 64-bit, cycle counts are unsigned 64-bit,
 * and instruction sequence numbers are monotonically increasing.
 */

#ifndef BPSIM_COMMON_TYPES_HH
#define BPSIM_COMMON_TYPES_HH

#include <cstdint>

namespace bpsim {

/** A virtual address (branch PC, load/store effective address). */
using Addr = std::uint64_t;

/** A simulated clock cycle count. */
using Cycle = std::uint64_t;

/** A dynamic instruction sequence number (fetch order). */
using InstSeqNum = std::uint64_t;

/** A count of things (instructions, branches, events). */
using Counter = std::uint64_t;

} // namespace bpsim

#endif // BPSIM_COMMON_TYPES_HH
