#include "common/rng.hh"

#include <cmath>

namespace bpsim {

namespace {

/** splitmix64: expands one seed word into well-mixed state words. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    s0_ = splitmix64(x);
    s1_ = splitmix64(x);
    if (s0_ == 0 && s1_ == 0)
        s1_ = 1;
}

std::uint64_t
Rng::next()
{
    std::uint64_t x = s0_;
    const std::uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
}

std::uint64_t
Rng::nextRange(std::uint64_t bound)
{
    // Multiply-shift reduction: unbiased enough for workload
    // synthesis and much faster than rejection sampling.
    const std::uint64_t v = next();
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(v) * bound) >> 64);
}

std::int64_t
Rng::nextBetween(std::int64_t lo, std::int64_t hi)
{
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextRange(span));
}

double
Rng::nextDouble()
{
    // 53 high bits -> [0,1) double.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

unsigned
Rng::nextGeometric(double p, unsigned cap)
{
    if (p >= 1.0)
        return 0;
    if (p <= 0.0)
        return cap;
    unsigned n = 0;
    while (n < cap && !nextBool(p))
        ++n;
    return n;
}

std::uint64_t
Rng::nextZipf(std::uint64_t n, double s)
{
    if (n <= 1)
        return 0;
    // Inverse-power transform approximation of a Zipf law: cheap and
    // deterministic; exactness is unnecessary for locality synthesis.
    const double u = nextDouble();
    const double exponent = 1.0 / (1.0 + s);
    const double v = std::pow(u, 1.0 / exponent);
    auto idx = static_cast<std::uint64_t>(v * static_cast<double>(n));
    return idx >= n ? n - 1 : idx;
}

double
Rng::nextGaussian()
{
    if (haveSpareGaussian_) {
        haveSpareGaussian_ = false;
        return spareGaussian_;
    }
    double u, v, s;
    do {
        u = 2.0 * nextDouble() - 1.0;
        v = 2.0 * nextDouble() - 1.0;
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spareGaussian_ = v * m;
    haveSpareGaussian_ = true;
    return u * m;
}

} // namespace bpsim
