/**
 * @file
 * Out-of-line bodies for the perceptron dense kernels; see the
 * header for why they are multiversioned.
 */

#include "common/vec_kernels.hh"

namespace bpsim {

// target_clones needs the definitions out of line so the compiler
// can emit one symbol per ISA plus the ifunc resolver. Both loops
// are written so the vectorizer sees a plain reduction / elementwise
// min-max pattern at any width.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)
#define BPSIM_VEC_CLONES \
    __attribute__((target_clones("avx2", "default")))
#else
#define BPSIM_VEC_CLONES
#endif

BPSIM_VEC_CLONES
int
dotSignedI16Wide(const std::int16_t *w, const std::int16_t *x,
                 std::size_t n)
{
    int acc = 0;
    for (std::size_t i = 0; i < n; ++i)
        acc += static_cast<int>(w[i]) * static_cast<int>(x[i]);
    return acc;
}

BPSIM_VEC_CLONES
void
trainSignedI16Wide(std::int16_t *w, const std::int16_t *x,
                   std::size_t n, int dir, int lo, int hi)
{
    for (std::size_t i = 0; i < n; ++i) {
        int v = static_cast<int>(w[i]) + dir * static_cast<int>(x[i]);
        v = v < lo ? lo : (v > hi ? hi : v);
        w[i] = static_cast<std::int16_t>(v);
    }
}

#undef BPSIM_VEC_CLONES

} // namespace bpsim
