/**
 * @file
 * Bit-packed saturating-counter tables for PHT storage.
 *
 * The seed implementation stored every two-bit counter in its own
 * byte (TwoBitCounter), so a 2^21-entry PHT occupied 2 MB of host
 * memory — 4× the simulated SRAM. At the paper's large budgets
 * (Figures 5-8 sweep up to 512 KB of predictor state) the replay
 * working set then blows past the host L2, and the accuracy loop
 * becomes a cache-miss benchmark. PackedPhtStorage packs four
 * counters per byte so the host working set matches the simulated
 * budget exactly; PackedSatStorage generalizes to any 1..8-bit
 * counter width (the EV6 local predictor uses 3-bit counters) with
 * bit-granular packing.
 *
 * Semantics are bit-identical to the byte-per-counter classes in
 * sat_counter.hh (verified by tests/test_packed_pht.cc and the
 * golden-equivalence suite): taken/weak thresholds, saturation and
 * reset values all match, so predictors switching to packed storage
 * produce exactly the prediction stream they did before.
 */

#ifndef BPSIM_COMMON_PACKED_PHT_HH
#define BPSIM_COMMON_PACKED_PHT_HH

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bitutil.hh"

namespace bpsim {

/**
 * A table of two-bit saturating counters, four per byte.
 *
 * Counter i lives at bits [2*(i%4), 2*(i%4)+2) of byte i/4.
 * Semantics match TwoBitCounter exactly: 0,1 predict not-taken;
 * 2,3 taken; 1,2 are the weak states.
 */
class PackedPhtStorage
{
  public:
    /** @param entries Counter count. @param init Reset value (0..3);
     *  the conventional reset is 1, weakly not-taken. */
    explicit PackedPhtStorage(std::size_t entries,
                              std::uint8_t init = 1)
        : entries_(entries),
          bytes_((entries + 3) / 4,
                 static_cast<std::uint8_t>((init & 3) * 0x55u))
    {
    }

    std::size_t size() const { return entries_; }

    /** Raw counter value (0..3). */
    std::uint8_t
    value(std::size_t i) const
    {
        return (bytes_[i >> 2] >> ((i & 3) * 2)) & 3;
    }

    /** Direction hint: counters 2,3 predict taken. */
    bool taken(std::size_t i) const { return value(i) >= 2; }

    /** Weak (boundary-adjacent) state, as TwoBitCounter::weak(). */
    bool
    weak(std::size_t i) const
    {
        const std::uint8_t v = value(i);
        return v == 1 || v == 2;
    }

    /** Train counter @p i toward @p taken with saturation. */
    void
    update(std::size_t i, bool taken)
    {
        const unsigned shift = (i & 3) * 2;
        std::uint8_t &b = bytes_[i >> 2];
        std::uint8_t v = (b >> shift) & 3;
        if (taken) {
            if (v < 3)
                ++v;
        } else {
            if (v > 0)
                --v;
        }
        b = static_cast<std::uint8_t>(
            (b & ~(3u << shift)) | (v << shift));
    }

    /** Overwrite counter @p i (fault injection / tests). */
    void
    set(std::size_t i, std::uint8_t v)
    {
        const unsigned shift = (i & 3) * 2;
        std::uint8_t &b = bytes_[i >> 2];
        b = static_cast<std::uint8_t>(
            (b & ~(3u << shift)) | ((v & 3u) << shift));
    }

    /** SRAM bits this table charges the hardware budget. */
    std::size_t storageBits() const { return entries_ * 2; }

    /** Hint the cache to pull counter @p i's byte (batch kernels
     *  prefetch the next branch's rows while this one trains). */
    void
    prefetch(std::size_t i) const
    {
        __builtin_prefetch(&bytes_[i >> 2]);
    }

  private:
    std::size_t entries_;
    std::vector<std::uint8_t> bytes_;
};

/**
 * A table of @p bits wide (1..8) unsigned saturating counters packed
 * bit-granularly into 64-bit words, so an n-bit counter costs
 * exactly n bits of host memory even when n does not divide 8.
 *
 * Semantics match SatCounter(bits): the counter saturates in
 * [0, 2^bits - 1], taken() is value > max/2 and weak() is the two
 * boundary-adjacent values.
 */
class PackedSatStorage
{
  public:
    PackedSatStorage(std::size_t entries, unsigned bits,
                     std::uint8_t init = 0)
        : entries_(entries),
          bits_(bits),
          max_(static_cast<std::uint8_t>((1u << bits) - 1)),
          // One pad word so a straddling access never reads past the
          // end.
          words_((entries * bits + 63) / 64 + 1, 0)
    {
        assert(bits >= 1 && bits <= 8);
        assert(init <= max_);
        for (std::size_t i = 0; i < entries_; ++i)
            set(i, init);
    }

    std::size_t size() const { return entries_; }
    unsigned bits() const { return bits_; }
    std::uint8_t maxValue() const { return max_; }

    std::uint8_t
    value(std::size_t i) const
    {
        const std::size_t bitpos = i * bits_;
        const std::size_t w = bitpos >> 6;
        const unsigned off = bitpos & 63;
        // Unconditional straddle merge: the double shift is
        // (64 - off) split as 1 + (63 - off) so off == 0 stays
        // defined, and when the counter does not straddle the
        // contribution lands above bits_ and the & max_ drops it.
        // The branchy form mispredicted constantly — off is
        // index-derived, effectively random in replay loops — and
        // the pad word makes words_[w + 1] always readable.
        const std::uint64_t v =
            (words_[w] >> off) |
            ((words_[w + 1] << 1) << (63 - off));
        return static_cast<std::uint8_t>(v & max_);
    }

    bool taken(std::size_t i) const { return value(i) > max_ / 2; }

    bool
    weak(std::size_t i) const
    {
        const std::uint8_t v = value(i);
        return v == max_ / 2 || v == max_ / 2 + 1;
    }

    void
    update(std::size_t i, bool taken)
    {
        std::uint8_t v = value(i);
        if (taken) {
            if (v < max_)
                ++v;
        } else {
            if (v > 0)
                --v;
        }
        set(i, v);
    }

    void
    set(std::size_t i, std::uint8_t v)
    {
        const std::size_t bitpos = i * bits_;
        const std::size_t w = bitpos >> 6;
        const unsigned off = bitpos & 63;
        const std::uint64_t m = std::uint64_t{max_};
        const std::uint64_t vv = v & max_;
        words_[w] = (words_[w] & ~(m << off)) | (vv << off);
        // Unconditional straddle write-back (same double-shift trick
        // as value()): when nothing straddles, mhi is zero and the
        // read-modify-write leaves the pad/next word untouched.
        const std::uint64_t mhi = (m >> 1) >> (63 - off);
        words_[w + 1] =
            (words_[w + 1] & ~mhi) | ((vv >> 1) >> (63 - off));
    }

    std::size_t storageBits() const { return entries_ * bits_; }

    /** Hint the cache to pull counter @p i's word. */
    void
    prefetch(std::size_t i) const
    {
        __builtin_prefetch(&words_[(i * bits_) >> 6]);
    }

  private:
    std::size_t entries_;
    unsigned bits_;
    std::uint8_t max_;
    std::vector<std::uint64_t> words_;
};

} // namespace bpsim

#endif // BPSIM_COMMON_PACKED_PHT_HH
