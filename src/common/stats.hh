/**
 * @file
 * Statistics accumulators used by predictors, the timing simulator
 * and the experiment drivers.
 *
 * The paper reports arithmetic-mean misprediction rates (Figures 1,
 * 5, 6) and harmonic-mean IPCs (Figures 7, 8); both reductions live
 * here so every bench computes them identically.
 */

#ifndef BPSIM_COMMON_STATS_HH
#define BPSIM_COMMON_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace bpsim {

/** Running scalar statistic: count, mean, min, max, variance. */
class RunningStat
{
  public:
    void add(double x);

    Counter count() const { return n_; }
    double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
    double sum() const { return sum_; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    /** Population variance. */
    double variance() const;

  private:
    Counter n_ = 0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** A ratio statistic (e.g. mispredictions / branches). */
class RateStat
{
  public:
    void event(bool hit) { ++total_; hits_ += hit ? 1 : 0; }
    void addEvents(Counter hits, Counter total) { hits_ += hits; total_ += total; }

    Counter hits() const { return hits_; }
    Counter total() const { return total_; }
    double rate() const
    {
        return total_ ? static_cast<double>(hits_) /
                            static_cast<double>(total_)
                      : 0.0;
    }
    /** Rate expressed in percent, as the paper's figures report. */
    double percent() const { return 100.0 * rate(); }

  private:
    Counter hits_ = 0;
    Counter total_ = 0;
};

/** Arithmetic mean of a sample vector. */
double arithmeticMean(const std::vector<double> &xs);

/** Harmonic mean of a sample vector (all entries must be > 0). */
double harmonicMean(const std::vector<double> &xs);

/** Geometric mean of a sample vector (all entries must be > 0). */
double geometricMean(const std::vector<double> &xs);

/**
 * A fixed-bucket histogram over [0, buckets); out-of-range samples
 * clamp into the last bucket. Used for run-length and dependence
 * distance diagnostics of synthesized workloads.
 */
class Histogram
{
  public:
    explicit Histogram(std::size_t buckets) : counts_(buckets, 0) {}

    void add(std::size_t bucket);

    Counter count(std::size_t bucket) const { return counts_.at(bucket); }
    std::size_t buckets() const { return counts_.size(); }
    Counter total() const { return total_; }

    /** Fraction of samples at or below @p bucket. */
    double cdf(std::size_t bucket) const;

  private:
    std::vector<Counter> counts_;
    Counter total_ = 0;
};

} // namespace bpsim

#endif // BPSIM_COMMON_STATS_HH
