/**
 * @file
 * Small bit-manipulation helpers used by predictors, caches and the
 * delay model. All functions are constexpr and branch-free where
 * possible since they sit on the simulator's hot paths.
 */

#ifndef BPSIM_COMMON_BITUTIL_HH
#define BPSIM_COMMON_BITUTIL_HH

#include <bit>
#include <cassert>
#include <cstdint>

namespace bpsim {

/** Return a mask with the low @p bits bits set. @p bits may be 0..64. */
constexpr std::uint64_t
loMask(unsigned bits)
{
    return bits >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << bits) - 1);
}

/** Extract bits [hi:lo] (inclusive) of @p v, right-justified. */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned hi, unsigned lo)
{
    return (v >> lo) & loMask(hi - lo + 1);
}

/** Number of set bits in @p v. */
constexpr unsigned
popcount64(std::uint64_t v)
{
    return static_cast<unsigned>(std::popcount(v));
}

/** True iff @p v is a power of two (0 is not). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log2(@p v); @p v must be nonzero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/** Ceiling of log2(@p v); @p v must be nonzero. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return isPowerOfTwo(v) ? floorLog2(v) : floorLog2(v) + 1;
}

/** Round @p v up to the next power of two (returns @p v if already). */
constexpr std::uint64_t
nextPowerOfTwo(std::uint64_t v)
{
    return v <= 1 ? 1 : std::uint64_t{1} << ceilLog2(v);
}

/**
 * Fold (XOR-reduce) a wide value down to @p out_bits bits.
 *
 * Used for hashing long histories into table indices, e.g. by the
 * bi-mode and gskew predictors when the history register is longer
 * than the index width.
 */
constexpr std::uint64_t
foldBits(std::uint64_t v, unsigned out_bits)
{
    if (out_bits == 0)
        return 0;
    std::uint64_t r = 0;
    while (v != 0) {
        r ^= v & loMask(out_bits);
        v >>= out_bits;
    }
    return r;
}

} // namespace bpsim

#endif // BPSIM_COMMON_BITUTIL_HH
