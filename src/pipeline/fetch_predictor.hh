/**
 * @file
 * Fetch-side predictor wrappers: how a direction predictor's access
 * delay presents itself to the fetch engine.
 *
 * The timing simulator consumes this interface. Every wrapper
 * returns a final direction plus the number of fetch-bubble cycles
 * the prediction costs *even when it is correct*:
 *
 *  - SingleCycleFetchPredictor: zero bubbles. Used for the paper's
 *    ideal (zero-delay) configurations and for gshare.fast, whose
 *    pipelining delivers every prediction in one cycle (Section 3).
 *  - OverridingFetchPredictor: a quick single-cycle predictor is
 *    overridden by a slow, accurate one; when they disagree the
 *    instructions fetched meanwhile are squashed, costing bubbles
 *    equal to the slow predictor's access latency (the paper's
 *    optimistic assumption, Section 4.1.2).
 *  - DelayedFetchPredictor: no delay hiding at all — every branch
 *    stalls fetch for (latency - 1) cycles. Used in ablations to
 *    show why overriding exists.
 */

#ifndef BPSIM_PIPELINE_FETCH_PREDICTOR_HH
#define BPSIM_PIPELINE_FETCH_PREDICTOR_HH

#include <cassert>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hh"
#include "predictors/predictor.hh"

namespace bpsim {

/** A direction prediction plus its fetch-bubble cost. */
struct FetchPrediction
{
    bool taken = false;
    /** Fetch bubbles charged even if the prediction is correct. */
    unsigned bubbleCycles = 0;
};

/** Fetch-engine view of a (possibly delay-hidden) predictor. */
class FetchPredictor
{
  public:
    virtual ~FetchPredictor() = default;

    virtual std::string name() const = 0;
    virtual std::size_t storageBits() const = 0;
    virtual FetchPrediction predict(Addr pc) = 0;
    virtual void update(Addr pc, bool taken) = 0;

    /**
     * Internal statistics for reports: wrappers forward their inner
     * predictor's describeStats() and add their own delay-hiding
     * counters (disagreements, pipeline restarts).
     */
    virtual std::vector<PredictorStat> describeStats() const
    {
        return {};
    }

    /**
     * Expose the wrapped predictors' SRAM state for fault injection
     * (robust/state_visitor.hh); wrappers forward to every inner
     * predictor. Default exposes nothing.
     */
    virtual void visitState(robust::StateVisitor &v) { (void)v; }
};

/** Zero-bubble wrapper: ideal predictors and gshare.fast. */
class SingleCycleFetchPredictor : public FetchPredictor
{
  public:
    explicit SingleCycleFetchPredictor(
        std::unique_ptr<DirectionPredictor> pred)
        : pred_(std::move(pred))
    {
        assert(pred_);
    }

    std::string name() const override { return pred_->name(); }
    std::size_t storageBits() const override
    {
        return pred_->storageBits();
    }

    FetchPrediction
    predict(Addr pc) override
    {
        return {pred_->predict(pc), 0};
    }

    void update(Addr pc, bool taken) override
    {
        pred_->update(pc, taken);
    }

    std::vector<PredictorStat> describeStats() const override
    {
        return pred_->describeStats();
    }

    void visitState(robust::StateVisitor &v) override
    {
        pred_->visitState(v);
    }

    DirectionPredictor &inner() { return *pred_; }

  private:
    std::unique_ptr<DirectionPredictor> pred_;
};

/**
 * Hierarchical overriding wrapper (Section 2.6.1): quick predictor
 * answers in one cycle; the slow predictor's answer arrives
 * slowLatency cycles later and, when it disagrees, squashes the
 * fetched instructions at a cost of slowLatency bubbles.
 */
class OverridingFetchPredictor : public FetchPredictor
{
  public:
    OverridingFetchPredictor(std::unique_ptr<DirectionPredictor> quick,
                             std::unique_ptr<DirectionPredictor> slow,
                             unsigned slow_latency)
        : quick_(std::move(quick)),
          slow_(std::move(slow)),
          slowLatency_(slow_latency)
    {
        assert(quick_ && slow_ && slow_latency >= 1);
    }

    std::string name() const override
    {
        return slow_->name() + "+overriding";
    }
    std::size_t storageBits() const override
    {
        return quick_->storageBits() + slow_->storageBits();
    }

    FetchPrediction
    predict(Addr pc) override
    {
        const bool q = quick_->predict(pc);
        const bool s = slow_->predict(pc);
        const bool disagree = q != s;
        disagreements_.event(disagree);
        // The slow predictor's answer is final; disagreement costs
        // its access latency in squashed fetch cycles.
        return {s, disagree ? slowLatency_ : 0};
    }

    void
    update(Addr pc, bool taken) override
    {
        quick_->update(pc, taken);
        slow_->update(pc, taken);
    }

    std::vector<PredictorStat>
    describeStats() const override
    {
        std::vector<PredictorStat> stats = slow_->describeStats();
        stats.push_back({"fetch.overriding.disagree_rate",
                         disagreements_.rate()});
        stats.push_back(
            {"fetch.overriding.pipeline_restarts",
             static_cast<double>(disagreements_.hits())});
        stats.push_back({"fetch.overriding.slow_latency_cycles",
                         static_cast<double>(slowLatency_)});
        return stats;
    }

    void visitState(robust::StateVisitor &v) override
    {
        quick_->visitState(v);
        slow_->visitState(v);
    }

    /** Fraction of predictions the slow predictor overrode (E10). */
    const RateStat &disagreements() const { return disagreements_; }
    /** Fetch-pipeline restarts caused by overrides (== hits()). */
    Counter pipelineRestarts() const { return disagreements_.hits(); }
    unsigned slowLatency() const { return slowLatency_; }
    DirectionPredictor &slow() { return *slow_; }
    DirectionPredictor &quick() { return *quick_; }

  private:
    std::unique_ptr<DirectionPredictor> quick_;
    std::unique_ptr<DirectionPredictor> slow_;
    unsigned slowLatency_;
    RateStat disagreements_;
};

/** No delay hiding: every branch pays (latency - 1) fetch bubbles. */
class DelayedFetchPredictor : public FetchPredictor
{
  public:
    DelayedFetchPredictor(std::unique_ptr<DirectionPredictor> pred,
                          unsigned latency)
        : pred_(std::move(pred)), latency_(latency)
    {
        assert(pred_ && latency >= 1);
    }

    std::string name() const override
    {
        return pred_->name() + "+stall";
    }
    std::size_t storageBits() const override
    {
        return pred_->storageBits();
    }

    FetchPrediction
    predict(Addr pc) override
    {
        return {pred_->predict(pc), latency_ - 1};
    }

    void update(Addr pc, bool taken) override
    {
        pred_->update(pc, taken);
    }

    std::vector<PredictorStat> describeStats() const override
    {
        return pred_->describeStats();
    }

    void visitState(robust::StateVisitor &v) override
    {
        pred_->visitState(v);
    }

    DirectionPredictor &inner() { return *pred_; }

  private:
    std::unique_ptr<DirectionPredictor> pred_;
    unsigned latency_;
};

} // namespace bpsim

#endif // BPSIM_PIPELINE_FETCH_PREDICTOR_HH
