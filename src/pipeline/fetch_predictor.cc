// FetchPredictor wrappers are header-only; see fetch_predictor.hh.
#include "pipeline/fetch_predictor.hh"
