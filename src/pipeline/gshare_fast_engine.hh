/**
 * @file
 * Cycle-level model of the gshare.fast predictor pipeline
 * (Section 3.1 / Figure 4 of the paper).
 *
 * The engine models the predictor's own little pipeline, which runs
 * beside the fetch engine:
 *
 *   stage 1 .. L   : a PHT row (line of 2^selectBits counters) is
 *                    being read; each stage carries Branch Present
 *                    and New History Bit latches that accumulate the
 *                    speculative history generated while the read is
 *                    in flight;
 *   stage L+1      : the arrived row sits in the PHT buffer; the low
 *                    branch-PC bits XOR the newest speculative
 *                    history bits select one counter — a single-cycle
 *                    operation.
 *
 * One row read is launched every cycle (the PHT is pipelined), so a
 * prediction is available every cycle regardless of the PHT's
 * latency: delay is hidden completely, which is the paper's central
 * claim. On a misprediction, the speculative history is overwritten
 * from the non-speculative history, and the checkpointed PHT-buffer
 * copies associated with older pipeline stages refill the buffer, so
 * recovery adds no predictor-specific penalty (Section 3.2).
 *
 * The engine is validated against GshareFastPredictor (the
 * functional model): driven at one branch per cycle with immediate
 * resolution, the two produce identical prediction streams (property
 * test E12).
 */

#ifndef BPSIM_PIPELINE_GSHARE_FAST_ENGINE_HH
#define BPSIM_PIPELINE_GSHARE_FAST_ENGINE_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/packed_pht.hh"
#include "common/types.hh"

namespace bpsim {

/** Cycle-accurate gshare.fast pipeline. */
class GshareFastEngine
{
  public:
    struct Config
    {
        /** PHT entries (power of two). */
        std::size_t entries = 1 << 16;
        /** PHT access latency in cycles (the number of read stages). */
        unsigned phtLatency = 3;
        /** Maximum branch predictions per cycle (B in Section 3.3.1). */
        unsigned branchesPerCycle = 1;
        /** Branches between prediction and PHT counter update. */
        unsigned updateDelay = 0;
    };

    explicit GshareFastEngine(const Config &cfg);

    /**
     * Advance one cycle in which no branch is fetched. A new row
     * read is still launched (the pipeline never idles).
     */
    void tickIdle();

    /**
     * Fetch and predict one branch this cycle, then advance the
     * cycle. Returns the (single-cycle) prediction. The speculative
     * history is updated with the prediction.
     */
    bool predictBranch(Addr pc);

    /**
     * Resolve the oldest outstanding predicted branch with its
     * actual direction. Trains the PHT (subject to updateDelay) and
     * advances the non-speculative history.
     *
     * @return true if the prediction had been correct.
     */
    bool resolve(bool taken);

    /**
     * Misprediction recovery: overwrite the speculative history with
     * the non-speculative one and restore the PHT buffer pipeline
     * from the checkpoints (modelled as an exact refill — the paper
     * argues the checkpointed copies provide precisely these rows).
     * Discards all unresolved predictions younger than the
     * mispredicted branch.
     */
    void recover();

    /** Required PHT buffer entries: B * 2^selectBits rows' worth of
     *  candidate counters in flight (Section 3.3.1 sizing). */
    std::size_t bufferEntries() const;

    /** Number of predictions outstanding (predicted, unresolved). */
    std::size_t outstanding() const { return outstanding_.size(); }

    /** Within-row select width. */
    unsigned selectBits() const { return selBits_; }
    /** Current cycle number. */
    Cycle cycle() const { return cycle_; }
    /** Resolved predictions so far. */
    Counter resolves() const { return resolves_; }
    /** Resolutions that disagreed with the prediction. */
    Counter disagreements() const { return disagreements_; }
    /** Pipeline restarts (recover() calls — one per misprediction
     *  the fetch engine acted on). */
    Counter pipelineRestarts() const { return restarts_; }
    /** Predictor storage in bits (PHT + history), as budgeted. */
    std::size_t storageBits() const
    {
        return pht_.storageBits() + historyBits_;
    }

  private:
    /** Compute the row index the prefetch launched this cycle uses. */
    std::uint64_t rowFromHistory(std::uint64_t hist) const;

    /** Advance the row-read pipeline by one cycle. */
    void advance();

    Config cfg_;
    PackedPhtStorage pht_;
    unsigned historyBits_;
    unsigned selBits_;

    /** Speculative global history (bit 0 newest). */
    std::uint64_t specHistory_ = 0;
    /** Non-speculative history, advanced at resolve. */
    std::uint64_t nonspecHistory_ = 0;

    /** Rows in flight, youngest last; front arrives next cycle. */
    std::deque<std::uint64_t> inflightRows_;
    /** The arrived row backing this cycle's PHT buffer. */
    std::uint64_t bufferRow_ = 0;

    /** Outstanding predictions: PHT index and predicted direction. */
    struct Outstanding
    {
        std::size_t index;
        bool predicted;
    };
    std::deque<Outstanding> outstanding_;

    /** Delayed PHT updates (index, direction). */
    std::deque<std::pair<std::size_t, bool>> pendingUpdates_;

    /**
     * The last (phtLatency - 1) non-speculative history values —
     * what the per-stage checkpoint buffers of Section 3.2 would
     * reconstruct the row pipeline from after a misprediction.
     */
    std::deque<std::uint64_t> nonspecPast_;

    Cycle cycle_ = 0;
    unsigned branchesThisCycle_ = 0;

    // observability counters
    Counter resolves_ = 0;
    Counter disagreements_ = 0;
    Counter restarts_ = 0;
};

} // namespace bpsim

#endif // BPSIM_PIPELINE_GSHARE_FAST_ENGINE_HH
