#include "pipeline/gshare_fast_engine.hh"

#include <cassert>

#include "common/bitutil.hh"

namespace bpsim {

GshareFastEngine::GshareFastEngine(const Config &cfg)
    : cfg_(cfg),
      pht_(cfg.entries),
      historyBits_(floorLog2(cfg.entries)),
      // Buffer >= 2^latency entries (Section 3.3.1) so every new
      // speculative history bit lands in the select, never the row.
      selBits_(std::min(std::max(9u, cfg.phtLatency - 1),
                        floorLog2(cfg.entries)))
{
    assert(isPowerOfTwo(cfg.entries));
    assert(cfg.phtLatency >= 1);
    assert(cfg.branchesPerCycle >= 1);
    // Row reads in flight: one per read stage minus the one that has
    // already arrived into the buffer.
    inflightRows_.assign(cfg.phtLatency - 1, 0);
    bufferRow_ = 0;
    nonspecPast_.assign(cfg.phtLatency - 1, 0);
}

std::uint64_t
GshareFastEngine::rowFromHistory(std::uint64_t hist) const
{
    // Launch-time history is (phtLatency - 1) branches older than
    // the history the select will use, so the row shift is reduced
    // accordingly; see GshareFastPredictor::indexFor.
    const unsigned lag = std::min(cfg_.phtLatency - 1, selBits_);
    return (hist >> (selBits_ - lag)) &
           loMask(historyBits_ - selBits_);
}

void
GshareFastEngine::advance()
{
    // A new row read launches every cycle using the current
    // speculative history; the oldest in-flight read completes and
    // becomes the PHT buffer.
    inflightRows_.push_back(rowFromHistory(specHistory_));
    bufferRow_ = inflightRows_.front();
    inflightRows_.pop_front();
    ++cycle_;
    branchesThisCycle_ = 0;
}

void
GshareFastEngine::tickIdle()
{
    advance();
}

bool
GshareFastEngine::predictBranch(Addr pc)
{
    if (branchesThisCycle_ >= cfg_.branchesPerCycle)
        advance();
    ++branchesThisCycle_;

    // Single-cycle select: low PC bits XOR the newest speculative
    // history bits choose within the buffered row (Figure 4 stage 4).
    const std::uint64_t col =
        ((pc >> 4) ^ specHistory_) & loMask(selBits_);
    const std::size_t index =
        static_cast<std::size_t>((bufferRow_ << selBits_) | col);
    const bool prediction = pht_.taken(index);

    outstanding_.push_back({index, prediction});
    // Speculative history update with the *predicted* direction
    // (Section 3.2, "speculative update of the global history").
    specHistory_ = ((specHistory_ << 1) | (prediction ? 1 : 0)) &
                   loMask(historyBits_);
    return prediction;
}

bool
GshareFastEngine::resolve(bool taken)
{
    assert(!outstanding_.empty());
    const Outstanding o = outstanding_.front();
    outstanding_.pop_front();

    // Non-speculative PHT update, applied slowly when configured.
    pendingUpdates_.emplace_back(o.index, taken);
    while (pendingUpdates_.size() > cfg_.updateDelay) {
        const auto [idx, dir] = pendingUpdates_.front();
        pendingUpdates_.pop_front();
        pht_.update(idx, dir);
    }

    // Advance the non-speculative history, remembering the past
    // values the recovery checkpoints would hold.
    if (!nonspecPast_.empty()) {
        nonspecPast_.push_back(nonspecHistory_);
        nonspecPast_.pop_front();
    }
    nonspecHistory_ = ((nonspecHistory_ << 1) | (taken ? 1 : 0)) &
                      loMask(historyBits_);
    ++resolves_;
    disagreements_ += o.predicted == taken ? 0 : 1;
    return o.predicted == taken;
}

void
GshareFastEngine::recover()
{
    ++restarts_;
    // Squash wrong-path predictions and overwrite the speculative
    // history with the non-speculative one (Section 3.2).
    outstanding_.clear();
    specHistory_ = nonspecHistory_;
    // The PHT buffer copies checkpointed alongside the pipeline
    // stages refill the row pipeline with exactly the rows the
    // non-speculative history would have fetched, so recovery costs
    // no extra predictor cycles.
    inflightRows_.clear();
    for (const std::uint64_t h : nonspecPast_)
        inflightRows_.push_back(rowFromHistory(h));
    // Force the next prediction to begin a fresh cycle.
    branchesThisCycle_ = cfg_.branchesPerCycle;
}

std::size_t
GshareFastEngine::bufferEntries() const
{
    // Section 3.3.1: with B predictions per block and latency L, the
    // buffer must hold each candidate combination reachable after L
    // cycles: B * 2^L entries for the running design (and our row
    // organization provisions a full row per fetch block).
    std::size_t per_block = std::size_t{1} << cfg_.phtLatency;
    return cfg_.branchesPerCycle * per_block;
}

} // namespace bpsim
