/**
 * @file
 * Alternative delay-hiding organizations from Section 2.6 of the
 * paper, against which overriding was originally established:
 *
 *  - Dual-path fetch (Section 2.6.2, AMD Hammer): while a slow
 *    prediction is computed the front end fetches down both paths,
 *    halving fetch bandwidth for the predictor's latency instead of
 *    squashing on disagreement.
 *  - Cascading (Driesen and Hoelzle; also "lookahead" Yeh/Marr/Patt):
 *    the slow predictor's output, which arrives too late for the
 *    current instance of a branch, is banked and used for that
 *    branch's *next* instance; if the next instance arrives before
 *    the slow table access completes, a quick prediction is used
 *    instead.
 *
 * Both present as FetchPredictor wrappers so the timing simulator
 * and benches can compare them directly with overriding (the paper
 * cites [7] for overriding winning this comparison; the
 * ablation_delay_hiding bench reproduces it).
 */

#ifndef BPSIM_PIPELINE_ALT_DELAY_HIDING_HH
#define BPSIM_PIPELINE_ALT_DELAY_HIDING_HH

#include <cassert>
#include <memory>
#include <unordered_map>
#include <utility>

#include "common/stats.hh"
#include "pipeline/fetch_predictor.hh"

namespace bpsim {

/**
 * Dual-path fetch: no squash penalty, but every conditional branch
 * halves fetch bandwidth for the slow predictor's latency while both
 * paths are fetched — equivalent to latency/2 lost fetch cycles.
 * The slow predictor's direction is always the one used (both paths
 * are in flight, the right one is kept).
 */
class DualPathFetchPredictor : public FetchPredictor
{
  public:
    DualPathFetchPredictor(std::unique_ptr<DirectionPredictor> slow,
                           unsigned slow_latency)
        : slow_(std::move(slow)), slowLatency_(slow_latency)
    {
        assert(slow_ && slow_latency >= 1);
    }

    std::string name() const override
    {
        return slow_->name() + "+dualpath";
    }
    std::size_t storageBits() const override
    {
        return slow_->storageBits();
    }

    FetchPrediction
    predict(Addr pc) override
    {
        // Half bandwidth for slowLatency_ cycles == slowLatency_/2
        // full-bandwidth fetch cycles lost, on *every* branch.
        return {slow_->predict(pc), slowLatency_ / 2};
    }

    void update(Addr pc, bool taken) override
    {
        slow_->update(pc, taken);
    }

    unsigned slowLatency() const { return slowLatency_; }
    DirectionPredictor &slow() { return *slow_; }

  private:
    std::unique_ptr<DirectionPredictor> slow_;
    unsigned slowLatency_;
};

/**
 * Cascading predictor: a quick predictor answers instantly; the slow
 * predictor's answer is banked against the branch's address and used
 * the *next* time that branch is fetched — but only if at least
 * slowLatency branches have passed since it was requested (branch
 * count approximates elapsed cycles at one branch per cycle, the
 * same worst-case the gshare.fast analysis uses).
 */
class CascadingFetchPredictor : public FetchPredictor
{
  public:
    CascadingFetchPredictor(std::unique_ptr<DirectionPredictor> quick,
                            std::unique_ptr<DirectionPredictor> slow,
                            unsigned slow_latency)
        : quick_(std::move(quick)),
          slow_(std::move(slow)),
          slowLatency_(slow_latency)
    {
        assert(quick_ && slow_ && slow_latency >= 1);
    }

    std::string name() const override
    {
        return slow_->name() + "+cascading";
    }
    std::size_t storageBits() const override
    {
        return quick_->storageBits() + slow_->storageBits();
    }

    FetchPrediction
    predict(Addr pc) override
    {
        ++now_;
        const bool q = quick_->predict(pc);
        const bool s = slow_->predict(pc);
        bool used;
        const auto it = banked_.find(pc);
        if (it != banked_.end() && it->second.readyAt <= now_) {
            // The banked slow prediction arrived in time.
            used = it->second.taken;
            slowUsed_.event(true);
        } else {
            used = q;
            slowUsed_.event(false);
        }
        // Bank this access's slow answer for the next instance.
        banked_[pc] = {now_ + slowLatency_, s};
        return {used, 0};
    }

    void
    update(Addr pc, bool taken) override
    {
        quick_->update(pc, taken);
        slow_->update(pc, taken);
    }

    /** Fraction of predictions served by the banked slow result. */
    const RateStat &slowUsed() const { return slowUsed_; }

    DirectionPredictor &quick() { return *quick_; }
    DirectionPredictor &slow() { return *slow_; }

  private:
    struct Banked
    {
        Counter readyAt;
        bool taken;
    };

    std::unique_ptr<DirectionPredictor> quick_;
    std::unique_ptr<DirectionPredictor> slow_;
    unsigned slowLatency_;
    Counter now_ = 0;
    /** Idealized unbounded prediction bank — generous to cascading
     *  (a real design would use a small tagged cache here). */
    std::unordered_map<Addr, Banked> banked_;
    RateStat slowUsed_;
};

} // namespace bpsim

#endif // BPSIM_PIPELINE_ALT_DELAY_HIDING_HH
