/**
 * @file
 * Uniform access to predictor SRAM state for fault injection and
 * state auditing.
 *
 * The paper's complex predictors hold hundreds of kilobytes of SRAM
 * (PHT counters, perceptron weights, history registers, BTB entries)
 * — exactly the regime where soft errors (single-event upsets)
 * matter. Predictor state is architecturally invisible: a flipped
 * bit costs accuracy, never correctness, so graceful degradation is
 * measurable. This header defines the visitor through which a
 * predictor exposes every bit of that state.
 *
 * A predictor's visitState() presents its storage as a sequence of
 * named StateFields — homogeneous arrays of elements with a fixed
 * SRAM width — via load/store accessors. Visitors never learn the
 * host representation; they see (element index, raw bits) pairs, so
 * the same FaultInjector works on two-bit counters, 8-bit perceptron
 * weights and 64-bit BTB targets alike.
 *
 * Invariant (checked by tests/test_fault_injection.cc): the total
 * bits exposed by visitState() equal storageBits(), i.e. the fault
 * model covers exactly the hardware budget the paper charges.
 */

#ifndef BPSIM_ROBUST_STATE_VISITOR_HH
#define BPSIM_ROBUST_STATE_VISITOR_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/bitutil.hh"
#include "common/history.hh"
#include "common/packed_pht.hh"
#include "common/sat_counter.hh"

namespace bpsim::robust {

/**
 * One named array of SRAM state. Elements are @p bits wide; load()
 * returns the element's raw bit pattern right-justified, store()
 * overwrites it (implementations mask to the legal range).
 */
struct StateField
{
    std::string name;  ///< e.g. "pred.gshare.pht"
    std::size_t count; ///< elements in the array
    unsigned bits;     ///< SRAM bits per element (1..64)
    std::function<std::uint64_t(std::size_t)> load;
    std::function<void(std::size_t, std::uint64_t)> store;
    /** The neutral pattern a protection policy writes when it must
     *  invalidate an uncorrectable element (e.g. weakly-not-taken
     *  for two-bit counters, zero for weights and histories). */
    std::uint64_t resetValue = 0;

    /** Total SRAM bits this field contributes. */
    std::size_t totalBits() const { return count * bits; }
};

/** Receives every state field a predictor exposes. */
class StateVisitor
{
  public:
    virtual ~StateVisitor() = default;

    /** Called once per field, in a stable order. */
    virtual void visit(const StateField &field) = 0;
};

/**
 * Forwards every field to an inner visitor with @p prefix prepended
 * to its name. Hybrid predictors wrap their component walks in this
 * so nested fields get unique names (three gshare components must
 * not all expose "pred.gshare.pht" — per-field targeting and the
 * protection ledger key on names).
 */
class PrefixingStateVisitor : public StateVisitor
{
  public:
    PrefixingStateVisitor(StateVisitor &inner, std::string prefix)
        : inner_(inner), prefix_(std::move(prefix))
    {
    }

    void
    visit(const StateField &field) override
    {
        StateField renamed = field;
        renamed.name = prefix_ + field.name;
        inner_.visit(renamed);
    }

  private:
    StateVisitor &inner_;
    std::string prefix_;
};

// ---------------------------------------------------------------------
// Field builders for the storage types predictors actually use.
// ---------------------------------------------------------------------

/** A PHT of two-bit counters. */
inline StateField
counterField(std::string name, std::vector<TwoBitCounter> &pht)
{
    return {std::move(name), pht.size(), 2,
            [&pht](std::size_t i) {
                return static_cast<std::uint64_t>(pht[i].value());
            },
            [&pht](std::size_t i, std::uint64_t v) {
                pht[i].set(static_cast<std::uint8_t>(v & 3));
            },
            1};
}

/**
 * A packed PHT of two-bit counters (four per byte). Field shape —
 * (count, bits) and therefore bit addressing — is identical to
 * counterField over the equivalent byte-per-counter table, so fault
 * plans written against either representation hit the same bits.
 */
inline StateField
packedCounterField(std::string name, PackedPhtStorage &pht)
{
    return {std::move(name), pht.size(), 2,
            [&pht](std::size_t i) {
                return static_cast<std::uint64_t>(pht.value(i));
            },
            [&pht](std::size_t i, std::uint64_t v) {
                pht.set(i, static_cast<std::uint8_t>(v & 3));
            },
            1};
}

/** A bit-packed table of n-bit unsigned saturating counters; same
 *  field shape as satCounterField at the same width. */
inline StateField
packedSatField(std::string name, PackedSatStorage &table)
{
    const unsigned bits = table.bits();
    return {std::move(name), table.size(), bits,
            [&table](std::size_t i) {
                return static_cast<std::uint64_t>(table.value(i));
            },
            [&table, bits](std::size_t i, std::uint64_t v) {
                table.set(i, static_cast<std::uint8_t>(v &
                                                       loMask(bits)));
            },
            loMask(bits) >> 1};
}

/** A table of n-bit unsigned saturating counters (all same width). */
inline StateField
satCounterField(std::string name, std::vector<SatCounter> &table,
                unsigned bits)
{
    return {std::move(name), table.size(), bits,
            [&table](std::size_t i) {
                return static_cast<std::uint64_t>(table[i].value());
            },
            [&table, bits](std::size_t i, std::uint64_t v) {
                table[i].set(static_cast<std::uint8_t>(v &
                                                       loMask(bits)));
            },
            loMask(bits) >> 1};
}

/** A table of n-bit two's-complement signed weights. */
inline StateField
weightField(std::string name, std::vector<SignedWeight> &weights,
            unsigned bits)
{
    return {std::move(name), weights.size(), bits,
            [&weights, bits](std::size_t i) {
                return static_cast<std::uint64_t>(weights[i].value()) &
                       loMask(bits);
            },
            [&weights, bits](std::size_t i, std::uint64_t v) {
                // Sign-extend the n-bit raw pattern; every pattern is
                // a legal weight, so no clamping is needed.
                std::int64_t s =
                    static_cast<std::int64_t>(v & loMask(bits));
                if (s >= (std::int64_t{1} << (bits - 1)))
                    s -= std::int64_t{1} << bits;
                weights[i].set(static_cast<std::int16_t>(s));
            }};
}

/** As weightField, over raw int16 storage (vectorizable perceptron
 *  rows). Same (count, bits) shape and sign-extension semantics. */
inline StateField
weightField(std::string name, std::vector<std::int16_t> &weights,
            unsigned bits)
{
    return {std::move(name), weights.size(), bits,
            [&weights, bits](std::size_t i) {
                return static_cast<std::uint64_t>(weights[i]) &
                       loMask(bits);
            },
            [&weights, bits](std::size_t i, std::uint64_t v) {
                std::int64_t s =
                    static_cast<std::int64_t>(v & loMask(bits));
                if (s >= (std::int64_t{1} << (bits - 1)))
                    s -= std::int64_t{1} << bits;
                weights[i] = static_cast<std::int16_t>(s);
            }};
}

/** A branch history shift register, one bit per element. */
inline StateField
historyField(std::string name, HistoryRegister &h)
{
    return {std::move(name), h.length(), 1,
            [&h](std::size_t i) {
                return std::uint64_t{
                    h.bit(static_cast<unsigned>(i)) ? 1u : 0u};
            },
            [&h](std::size_t i, std::uint64_t v) {
                h.setBit(static_cast<unsigned>(i), v & 1);
            }};
}

/** A single @p bits wide register stored in one host word. */
inline StateField
wordField(std::string name, std::uint64_t &word, unsigned bits)
{
    return {std::move(name), 1, bits,
            [&word, bits](std::size_t) { return word & loMask(bits); },
            [&word, bits](std::size_t, std::uint64_t v) {
                word = v & loMask(bits);
            }};
}

/** An array of @p bits wide values packed one per host word (local
 *  history tables). */
inline StateField
wordArrayField(std::string name, std::vector<std::uint64_t> &words,
               unsigned bits)
{
    return {std::move(name), words.size(), bits,
            [&words, bits](std::size_t i) {
                return words[i] & loMask(bits);
            },
            [&words, bits](std::size_t i, std::uint64_t v) {
                words[i] = v & loMask(bits);
            }};
}

} // namespace bpsim::robust

#endif // BPSIM_ROBUST_STATE_VISITOR_HH
