#include "robust/hardened_runner.hh"

#include <cstdio>

namespace bpsim::robust {

HardenedSuiteRunner::HardenedSuiteRunner(
    std::string manifest_path, RetryPolicy retry,
    std::chrono::milliseconds cell_timeout)
    : manifestPath_(std::move(manifest_path)),
      retry_(retry),
      cellTimeout_(cell_timeout)
{
}

void
HardenedSuiteRunner::persist() const
{
    if (!manifestPath_.empty())
        manifest_.save(manifestPath_);
}

HardenedRunSummary
HardenedSuiteRunner::run(const std::vector<SuiteCell> &cells,
                         obs::RunReport &report)
{
    if (!manifestPath_.empty() && RunManifest::exists(manifestPath_))
        manifest_ = RunManifest::load(manifestPath_);
    else
        manifest_ = RunManifest(report.experiment);

    HardenedRunSummary summary;
    std::size_t finalized = 0;
    for (const SuiteCell &cell : cells) {
        // Resume: a cell the manifest already completed is replayed
        // from its cached row — same bytes, no recomputation.
        if (manifest_.isDone(cell.key)) {
            report.rows.push_back(obs::RunReport::Row::fromJson(
                manifest_.find(cell.key)->row));
            ++summary.resumed;
            continue;
        }

        obs::RunReport::Row row;
        const RetryResult r = retryCall(
            retry_,
            [&] {
                const Deadline deadline =
                    cellTimeout_.count() > 0
                        ? Deadline::after(cellTimeout_)
                        : Deadline::unlimited();
                row = cell.run(deadline);
            },
            sleep_);
        summary.retries += r.attempts > 0 ? r.attempts - 1 : 0;

        if (r.succeeded) {
            manifest_.markDone(cell.key, r.attempts, row.toJson());
            report.rows.push_back(row);
            ++summary.completed;
        } else {
            manifest_.markFailed(cell.key, r.attempts, r.lastError);
            report.annotations.push_back(
                {cell.key, "failed after " +
                               std::to_string(r.attempts) +
                               " attempt(s): " + r.lastError});
            std::fprintf(stderr,
                         "robust: cell %s failed after %u "
                         "attempt(s): %s\n",
                         cell.key.c_str(), r.attempts,
                         r.lastError.c_str());
            ++summary.failed;
        }
        persist();
        ++finalized;
        if (afterCell_)
            afterCell_(finalized);
    }
    return summary;
}

} // namespace bpsim::robust
