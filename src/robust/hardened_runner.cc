#include "robust/hardened_runner.hh"

#include <cstdio>

#include "parallel/cell_pool.hh"

namespace bpsim::robust {

HardenedSuiteRunner::HardenedSuiteRunner(
    std::string manifest_path, RetryPolicy retry,
    std::chrono::milliseconds cell_timeout, parallel::CellPool *pool)
    : manifestPath_(std::move(manifest_path)),
      retry_(retry),
      cellTimeout_(cell_timeout),
      pool_(pool)
{
}

void
HardenedSuiteRunner::persist() const
{
    if (!manifestPath_.empty())
        manifest_.save(manifestPath_);
}

HardenedRunSummary
HardenedSuiteRunner::run(const std::vector<SuiteCell> &cells,
                         obs::RunReport &report)
{
    if (!manifestPath_.empty() && RunManifest::exists(manifestPath_))
        manifest_ = RunManifest::load(manifestPath_);
    else
        manifest_ = RunManifest(report.experiment);

    HardenedRunSummary summary;
    std::size_t finalized = 0;

    // Resume state is read once up front so workers never touch the
    // manifest; from here on it is written only by the commit phase
    // below, which runs on this thread in cell order.
    std::vector<char> resumed(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i)
        resumed[i] = manifest_.isDone(cells[i].key) ? 1 : 0;

    struct Outcome
    {
        RetryResult retry;
        obs::RunReport::Row row;
    };
    std::vector<Outcome> outcomes(cells.size());

    const auto compute = [&](std::size_t i) {
        if (resumed[i])
            return; // replayed from the manifest at commit time
        outcomes[i].retry = retryCall(
            retry_,
            [&] {
                const Deadline deadline =
                    cellTimeout_.count() > 0
                        ? Deadline::after(cellTimeout_)
                        : Deadline::unlimited();
                outcomes[i].row = cells[i].run(deadline);
            },
            sleep_);
    };

    const auto commit = [&](std::size_t i) {
        const SuiteCell &cell = cells[i];
        // Resume: a cell the manifest already completed is replayed
        // from its cached row — same bytes, no recomputation.
        if (resumed[i]) {
            report.rows.push_back(obs::RunReport::Row::fromJson(
                manifest_.find(cell.key)->row));
            ++summary.resumed;
            return;
        }
        const RetryResult &r = outcomes[i].retry;
        summary.retries += r.attempts > 0 ? r.attempts - 1 : 0;
        if (r.succeeded) {
            manifest_.markDone(cell.key, r.attempts,
                               outcomes[i].row.toJson());
            report.rows.push_back(outcomes[i].row);
            ++summary.completed;
        } else {
            manifest_.markFailed(cell.key, r.attempts, r.lastError);
            report.annotations.push_back(
                {cell.key, "failed after " +
                               std::to_string(r.attempts) +
                               " attempt(s): " + r.lastError});
            std::fprintf(stderr,
                         "robust: cell %s failed after %u "
                         "attempt(s): %s\n",
                         cell.key.c_str(), r.attempts,
                         r.lastError.c_str());
            ++summary.failed;
        }
        persist();
        ++finalized;
        if (afterCell_)
            afterCell_(finalized);
    };

    if (pool_) {
        pool_->run(cells.size(), compute, commit);
    } else {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            compute(i);
            commit(i);
        }
    }
    return summary;
}

} // namespace bpsim::robust
