/**
 * @file
 * Fault models for the data feeding the simulator, as opposed to the
 * predictor SRAM itself:
 *
 *  - corruptTrace() flips bits in in-memory trace records ("in
 *    flight" corruption): branch outcomes invert, PCs and effective
 *    addresses get single-bit upsets. Instruction *classes* are left
 *    alone so the corrupted trace stays structurally valid — the
 *    model is memory upsets in a trace buffer, not a broken decoder.
 *  - corruptFileBytes() flips bits in a serialized file, for
 *    exercising reader hardening (trace + report parsers must throw
 *    their typed errors, never crash or over-read).
 *  - IoFaultInjector schedules deterministic transient I/O failures,
 *    for driving RetryPolicy paths in tests and studies.
 */

#ifndef BPSIM_ROBUST_TRACE_FAULT_HH
#define BPSIM_ROBUST_TRACE_FAULT_HH

#include <string>

#include "common/rng.hh"
#include "common/types.hh"
#include "trace/trace_buffer.hh"

namespace bpsim::robust {

/** What corruptTrace() did, per record field. */
struct TraceCorruption
{
    Counter recordsHit = 0;
    Counter takenFlips = 0;
    Counter pcBitFlips = 0;
    Counter extraBitFlips = 0;

    Counter
    total() const
    {
        return takenFlips + pcBitFlips + extraBitFlips;
    }
};

/**
 * Corrupt ~@p rate of @p trace's records in place (Bernoulli per
 * record, deterministic under @p rng's seed). A hit record gets one
 * of: its taken bit inverted, one pc bit flipped, or one extra
 * (address/target) bit flipped, chosen uniformly.
 */
TraceCorruption corruptTrace(TraceBuffer &trace, double rate,
                             Rng &rng);

/**
 * Flip @p flips random bits of the file at @p path in place.
 * Returns the number of bits actually flipped (0 when the file is
 * missing or empty). Deterministic under @p rng's seed.
 */
Counter corruptFileBytes(const std::string &path, Counter flips,
                         Rng &rng);

/**
 * Deterministic transient-failure schedule: each shouldFail() call
 * is an independent Bernoulli(@p failure_rate) draw from the seeded
 * RNG, with an optional cap on total failures so a campaign is
 * guaranteed to eventually succeed.
 */
class IoFaultInjector
{
  public:
    IoFaultInjector(double failure_rate, std::uint64_t seed,
                    Counter max_failures = ~Counter{0})
        : rate_(failure_rate), rng_(seed), maxFailures_(max_failures)
    {
    }

    /** True when this operation should fail. */
    bool
    shouldFail()
    {
        ++calls_;
        if (failures_ >= maxFailures_)
            return false;
        if (!rng_.nextBool(rate_))
            return false;
        ++failures_;
        return true;
    }

    Counter calls() const { return calls_; }
    Counter failures() const { return failures_; }

  private:
    double rate_;
    Rng rng_;
    Counter maxFailures_;
    Counter calls_ = 0;
    Counter failures_ = 0;
};

} // namespace bpsim::robust

#endif // BPSIM_ROBUST_TRACE_FAULT_HH
