/**
 * @file
 * Checkpoint/resume manifest for suite campaigns.
 *
 * A campaign is a list of cells — (workload, predictor, mode,
 * budget) experiments keyed exactly like RunReport rows. The
 * manifest is a JSON file with one entry per cell: its status
 * (pending/done/failed), attempts spent, the last error, and — for
 * completed cells — the full result row. The hardened runner saves
 * the manifest after every cell (write-temp-then-rename, so a kill
 * at any instant leaves a loadable file) and on restart replays
 * completed cells from their cached rows instead of recomputing.
 * Because rows round-trip bit-exactly through the same JSON code the
 * report writer uses, a resumed campaign's final report is
 * byte-identical to an uninterrupted one.
 */

#ifndef BPSIM_ROBUST_RUN_MANIFEST_HH
#define BPSIM_ROBUST_RUN_MANIFEST_HH

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hh"
#include "obs/run_report.hh"

namespace bpsim::robust {

/** Thrown on unreadable/malformed manifest files. */
class RunManifestError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Per-cell progress and (when done) cached result. */
struct CellRecord
{
    enum class Status { Pending, Done, Failed };

    std::string key;
    Status status = Status::Pending;
    unsigned attempts = 0;
    std::string error; ///< last failure ("" when none)
    /** Completed cell's RunReport row (Done only; null otherwise). */
    obs::Json row;
};

/** The campaign checkpoint file; see file comment. */
class RunManifest
{
  public:
    static constexpr int kSchemaVersion = 1;

    RunManifest() = default;
    explicit RunManifest(std::string experiment)
        : experiment_(std::move(experiment))
    {
    }

    const std::string &experiment() const { return experiment_; }

    /** Cells in first-seen order. */
    const std::vector<CellRecord> &cells() const { return cells_; }

    /** Lookup by key; nullptr when absent. */
    const CellRecord *find(const std::string &key) const;

    bool
    isDone(const std::string &key) const
    {
        const CellRecord *c = find(key);
        return c && c->status == CellRecord::Status::Done;
    }

    /** Record a completed cell with its result row. */
    void markDone(const std::string &key, unsigned attempts,
                  obs::Json row);

    /** Record a permanently failed cell. */
    void markFailed(const std::string &key, unsigned attempts,
                    const std::string &error);

    /** Counts by status. */
    std::size_t done() const;
    std::size_t failed() const;

    obs::Json toJson() const;
    /** Throws RunManifestError on shape/schema problems. */
    static RunManifest fromJson(const obs::Json &j);

    /**
     * Atomically persist to @p path (write @p path.tmp, rename).
     * Throws RunManifestError on I/O failure.
     */
    void save(const std::string &path) const;

    /** Throws RunManifestError on I/O, parse or schema failure. */
    static RunManifest load(const std::string &path);

    /** True when @p path exists and is readable. */
    static bool exists(const std::string &path);

  private:
    CellRecord &upsert(const std::string &key);

    std::string experiment_;
    std::vector<CellRecord> cells_;
    std::map<std::string, std::size_t> index_;
};

} // namespace bpsim::robust

#endif // BPSIM_ROBUST_RUN_MANIFEST_HH
