#include "robust/trace_fault.hh"

#include <cstdio>
#include <memory>

namespace bpsim::robust {

TraceCorruption
corruptTrace(TraceBuffer &trace, double rate, Rng &rng)
{
    TraceCorruption c;
    if (rate <= 0.0)
        return c;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        if (!rng.nextBool(rate))
            continue;
        MicroOp &op = trace.mutableOp(i);
        ++c.recordsHit;
        switch (rng.nextRange(3)) {
        case 0:
            op.taken = !op.taken;
            ++c.takenFlips;
            break;
        case 1:
            op.pc ^= std::uint64_t{1} << rng.nextRange(64);
            ++c.pcBitFlips;
            break;
        default:
            op.extra ^= std::uint64_t{1} << rng.nextRange(64);
            ++c.extraBitFlips;
            break;
        }
    }
    // Publish: regenerate the dense branch view once, here, so the
    // corrupted trace is immediately safe for concurrent replay.
    trace.rebuildBranchView();
    return c;
}

Counter
corruptFileBytes(const std::string &path, Counter flips, Rng &rng)
{
    struct Closer
    {
        void
        operator()(std::FILE *f) const
        {
            if (f)
                std::fclose(f);
        }
    };
    std::unique_ptr<std::FILE, Closer> f(
        std::fopen(path.c_str(), "rb+"));
    if (!f)
        return 0;
    if (std::fseek(f.get(), 0, SEEK_END) != 0)
        return 0;
    const long size = std::ftell(f.get());
    if (size <= 0)
        return 0;

    Counter done = 0;
    for (Counter k = 0; k < flips; ++k) {
        const long off = static_cast<long>(
            rng.nextRange(static_cast<std::uint64_t>(size)));
        unsigned char byte = 0;
        if (std::fseek(f.get(), off, SEEK_SET) != 0 ||
            std::fread(&byte, 1, 1, f.get()) != 1)
            continue;
        byte ^= static_cast<unsigned char>(1u << rng.nextRange(8));
        if (std::fseek(f.get(), off, SEEK_SET) != 0 ||
            std::fwrite(&byte, 1, 1, f.get()) != 1)
            continue;
        ++done;
    }
    return done;
}

} // namespace bpsim::robust
