/**
 * @file
 * Bounded-exponential-backoff retry with deterministic jitter.
 *
 * Long suite campaigns hit transient failures (flaky filesystems,
 * injected I/O faults, OOM-killed children). A RetryPolicy describes
 * how to wait between attempts: delay doubles per attempt from
 * baseDelay up to maxDelay, then a jitter factor derived from the
 * policy seed and the attempt number perturbs it by up to
 * +/-jitterFraction. The jitter is a pure function of (seed,
 * attempt) — two runs of the same campaign back off identically,
 * preserving the repo's reproducibility contract.
 *
 * retryCall() runs a callable under a policy, treating any thrown
 * std::exception as a retriable failure, and reports how many
 * attempts were spent. Sleeping is pluggable so tests (and the
 * hardened runner's dry mode) never actually block.
 */

#ifndef BPSIM_ROBUST_RETRY_HH
#define BPSIM_ROBUST_RETRY_HH

#include <chrono>
#include <functional>
#include <stdexcept>
#include <string>
#include <thread>

#include "common/rng.hh"

namespace bpsim::robust {

/** Backoff shape for retried operations. */
struct RetryPolicy
{
    /** Total tries including the first (>= 1). */
    unsigned maxAttempts = 3;
    std::chrono::milliseconds baseDelay{25};
    std::chrono::milliseconds maxDelay{2000};
    /** Delay is scaled by 1 +/- U*jitterFraction (deterministic). */
    double jitterFraction = 0.25;
    std::uint64_t seed = 0xbac0ff;

    /**
     * Delay to sleep before retry number @p attempt (attempt 1 is
     * the first *re*try). Pure function of the policy and attempt.
     */
    std::chrono::milliseconds delayBefore(unsigned attempt) const;
};

/** Outcome of a retried operation. */
struct RetryResult
{
    bool succeeded = false;
    /** Attempts consumed (1 = first try succeeded). */
    unsigned attempts = 0;
    /** what() of the last failure ("" when succeeded first try). */
    std::string lastError;
};

/** Sleep hook; the default really sleeps. */
using Sleeper = std::function<void(std::chrono::milliseconds)>;

/** The default Sleeper: std::this_thread::sleep_for. */
inline void
realSleep(std::chrono::milliseconds ms)
{
    if (ms.count() > 0)
        std::this_thread::sleep_for(ms);
}

/**
 * Run @p fn until it returns without throwing or the policy's
 * attempts are exhausted. @p fn failures must be signalled by
 * throwing std::exception subclasses.
 */
template <typename Fn>
RetryResult
retryCall(const RetryPolicy &policy, Fn &&fn,
          const Sleeper &sleep = realSleep)
{
    RetryResult r;
    const unsigned attempts =
        policy.maxAttempts == 0 ? 1 : policy.maxAttempts;
    for (unsigned a = 1; a <= attempts; ++a) {
        r.attempts = a;
        try {
            fn();
            r.succeeded = true;
            return r;
        } catch (const std::exception &e) {
            r.lastError = e.what();
            if (a < attempts)
                sleep(policy.delayBefore(a));
        }
    }
    return r;
}

} // namespace bpsim::robust

#endif // BPSIM_ROBUST_RETRY_HH
