#include "robust/protection.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/bitutil.hh"

namespace bpsim::robust {

std::string
protectionPolicyName(ProtectionPolicy policy)
{
    switch (policy) {
      case ProtectionPolicy::None:
        return "none";
      case ProtectionPolicy::ParityInvalidate:
        return "parity";
      case ProtectionPolicy::SecdedCorrect:
        return "secded";
      case ProtectionPolicy::Scrub:
        return "scrub";
    }
    return "unknown";
}

const std::vector<ProtectionPolicy> &
allProtectionPolicies()
{
    static const std::vector<ProtectionPolicy> policies = {
        ProtectionPolicy::None,
        ProtectionPolicy::ParityInvalidate,
        ProtectionPolicy::SecdedCorrect,
        ProtectionPolicy::Scrub,
    };
    return policies;
}

unsigned
secdedCheckBits(unsigned word_bits)
{
    assert(word_bits >= 1);
    unsigned r = 1;
    while ((std::uint64_t{1} << r) < std::uint64_t{word_bits} + r + 1)
        ++r;
    return r + 1; // Hamming bits plus the overall (DED) parity bit.
}

unsigned
protectionCheckBits(const ProtectionConfig &cfg)
{
    switch (cfg.policy) {
      case ProtectionPolicy::None:
        return 0;
      case ProtectionPolicy::ParityInvalidate:
        return 1;
      case ProtectionPolicy::SecdedCorrect:
      case ProtectionPolicy::Scrub:
        return secdedCheckBits(cfg.wordBits);
    }
    return 0;
}

double
protectionStorageOverhead(const ProtectionConfig &cfg)
{
    return static_cast<double>(protectionCheckBits(cfg)) /
           static_cast<double>(cfg.wordBits);
}

std::uint64_t
protectionCheckBitsTotal(std::uint64_t data_bits,
                         const ProtectionConfig &cfg)
{
    const unsigned check = protectionCheckBits(cfg);
    if (check == 0 || data_bits == 0)
        return 0;
    const std::uint64_t words =
        (data_bits + cfg.wordBits - 1) / cfg.wordBits;
    return words * check;
}

std::size_t
protectedEffectiveBudget(std::size_t budget_bytes,
                         const ProtectionConfig &cfg)
{
    const unsigned check = protectionCheckBits(cfg);
    if (check == 0)
        return budget_bytes;
    // Each wordBits of data carries `check` extra bits; scale the
    // data share of the budget accordingly.
    const std::size_t eff =
        static_cast<std::size_t>(static_cast<std::uint64_t>(
                                     budget_bytes) *
                                 cfg.wordBits /
                                 (cfg.wordBits + check));
    return std::max<std::size_t>(eff, 64);
}

double
protectionCheckFo4(const ProtectionConfig &cfg)
{
    switch (cfg.policy) {
      case ProtectionPolicy::None:
      case ProtectionPolicy::Scrub:
        // Scrubbing runs in the background; the read path is bare.
        return 0.0;
      case ProtectionPolicy::ParityInvalidate: {
        // XOR tree over word + parity bit: log2 depth, ~half an FO4
        // per XOR2 level.
        const double levels = std::ceil(std::log2(cfg.wordBits + 1.0));
        return 0.5 * levels;
      }
      case ProtectionPolicy::SecdedCorrect: {
        // Syndrome XOR tree plus decode and the correction mux.
        const double levels = std::ceil(std::log2(cfg.wordBits + 1.0));
        return 0.5 * levels + 3.0;
      }
    }
    return 0.0;
}

ProtectionLayer::ProtectionLayer(const ProtectionConfig &cfg)
    : cfg_(cfg)
{
    assert(cfg_.wordBits >= 1 && cfg_.wordBits <= 64);
}

std::size_t
ProtectionLayer::elemsPerWord(const StateField &field) const
{
    // Elements wider than the ECC word get a word of their own.
    if (field.bits >= cfg_.wordBits)
        return 1;
    return cfg_.wordBits / field.bits;
}

void
ProtectionLayer::recordFlip(const StateField &field, std::size_t elem,
                            unsigned bit, std::uint64_t before)
{
    ++stats_.injectedFlips;
    const std::size_t word_idx = elem / elemsPerWord(field);
    WordRecord &word = ledger_[{field.name, word_idx}];
    if (!word.field.load)
        word.field = field;
    ElemRecord &rec = word.elems[elem];
    if (rec.mask == 0)
        rec.orig = before;
    rec.mask ^= std::uint64_t{1} << bit;
}

void
ProtectionLayer::invalidateWord(const WordRecord &word,
                                std::size_t word_idx)
{
    const std::size_t epw = elemsPerWord(word.field);
    const std::size_t first = word_idx * epw;
    const std::size_t last =
        std::min(first + epw, word.field.count);
    for (std::size_t e = first; e < last; ++e)
        word.field.store(e, word.field.resetValue);
    ++stats_.invalidatedWords;
    stats_.invalidatedElements += last - first;
}

void
ProtectionLayer::repair(bool as_scrub)
{
    ++stats_.repairEvents;
    if (as_scrub)
        ++stats_.scrubEvents;

    for (auto it = ledger_.begin(); it != ledger_.end();) {
        WordRecord &word = it->second;

        // An element the predictor overwrote since the flip was
        // re-encoded by that write: its recorded corruption is gone.
        std::map<std::size_t, ElemRecord> live;
        for (const auto &[elem, rec] : word.elems) {
            if (rec.mask != 0 &&
                word.field.load(elem) == (rec.orig ^ rec.mask))
                live.emplace(elem, rec);
            else
                ++stats_.launderedElements;
        }

        std::uint64_t corrupted = 0;
        for (const auto &[elem, rec] : live)
            corrupted += popcount64(rec.mask);

        if (corrupted == 0) {
            it = ledger_.erase(it);
            continue;
        }

        bool resolved = false;
        switch (cfg_.policy) {
          case ProtectionPolicy::None:
            // No checker; the ledger is unused under None.
            resolved = true;
            break;
          case ProtectionPolicy::ParityInvalidate:
            if (corrupted % 2 == 1) {
                invalidateWord(word, it->first.second);
                resolved = true;
            } else {
                // Even number of flipped bits: parity holds, the
                // corruption rides on. Keep the ledger so a later
                // odd flip in the word is still caught.
                ++stats_.undetectedWords;
            }
            break;
          case ProtectionPolicy::SecdedCorrect:
          case ProtectionPolicy::Scrub:
            if (corrupted == 1) {
                const auto &[elem, rec] = *live.begin();
                word.field.store(elem, rec.orig);
                ++stats_.correctedBits;
                resolved = true;
            } else if (corrupted == 2) {
                // Detected, uncorrectable: reset the word.
                invalidateWord(word, it->first.second);
                resolved = true;
            } else {
                // Three or more flips can alias a valid codeword;
                // the model counts them as undetected.
                ++stats_.undetectedWords;
            }
            break;
        }

        if (resolved) {
            it = ledger_.erase(it);
        } else {
            word.elems = std::move(live);
            ++it;
        }
    }
}

ProtectedPredictor::ProtectedPredictor(
    std::unique_ptr<DirectionPredictor> inner, const FaultPlan &plan,
    const ProtectionConfig &cfg)
    : inner_(std::move(inner)), layer_(cfg), injector_(plan)
{
    if (cfg.policy != ProtectionPolicy::None) {
        injector_.setFlipObserver(
            [this](const StateField &field, std::size_t elem,
                   unsigned bit, std::uint64_t before) {
                layer_.recordFlip(field, elem, bit, before);
            });
    }
}

void
ProtectedPredictor::update(Addr pc, bool taken)
{
    inner_->update(pc, taken);
    afterInnerUpdate();
}

void
ProtectedPredictor::afterInnerUpdate()
{
    ++updates_;

    const Counter interval = injector_.plan().intervalBranches;
    if (interval > 0 && updates_ % interval == 0) {
        injector_.beginEvent();
        inner_->visitState(injector_);
        const ProtectionPolicy policy = layer_.config().policy;
        if (policy == ProtectionPolicy::ParityInvalidate ||
            policy == ProtectionPolicy::SecdedCorrect) {
            // On-access protection: the very next read of a flipped
            // word would hit the checker, so model the check as
            // immediate.
            layer_.repair();
        }
    }

    if (layer_.config().policy == ProtectionPolicy::Scrub) {
        const Counter scrub = layer_.config().scrubIntervalBranches;
        if (scrub > 0 && updates_ % scrub == 0)
            layer_.repair(/*as_scrub=*/true);
    }
}

std::vector<PredictorStat>
ProtectedPredictor::describeStats() const
{
    std::vector<PredictorStat> stats = inner_->describeStats();
    const ProtectionStats &p = layer_.stats();
    stats.push_back({"robust.faults.flips",
                     static_cast<double>(injector_.flips())});
    stats.push_back({"robust.faults.events",
                     static_cast<double>(injector_.events())});
    stats.push_back({"robust.protect.corrected_bits",
                     static_cast<double>(p.correctedBits)});
    stats.push_back({"robust.protect.invalidated_words",
                     static_cast<double>(p.invalidatedWords)});
    stats.push_back({"robust.protect.undetected_words",
                     static_cast<double>(p.undetectedWords)});
    stats.push_back({"robust.protect.laundered_elements",
                     static_cast<double>(p.launderedElements)});
    stats.push_back({"robust.protect.scrub_events",
                     static_cast<double>(p.scrubEvents)});
    stats.push_back({"robust.protect.check_bits",
                     static_cast<double>(protectionBitsTotal())});
    return stats;
}

std::uint64_t
ProtectedPredictor::protectionBitsTotal() const
{
    return protectionCheckBitsTotal(inner_->storageBits(),
                                    layer_.config());
}

} // namespace bpsim::robust
