/**
 * @file
 * Fault-tolerant suite execution.
 *
 * The core suite helpers (core/runner.hh) run every cell of a
 * campaign in sequence and die with the process on the first
 * failure. The HardenedSuiteRunner wraps the same cells with the
 * three robustness mechanisms of this subsystem:
 *
 *  - RetryPolicy: a cell that throws is retried with bounded
 *    exponential backoff and deterministic jitter;
 *  - Deadline: each attempt gets a fresh per-cell time budget that
 *    cooperative loops poll (DeadlineExceeded is just another
 *    retriable failure);
 *  - RunManifest: after every cell the manifest checkpoint is
 *    atomically rewritten, so a killed campaign restarted with the
 *    same manifest path skips completed cells (replaying their
 *    cached rows — the final report is byte-identical to an
 *    uninterrupted run) and a cell that keeps failing is annotated
 *    in the partial RunReport instead of sinking the campaign.
 */

#ifndef BPSIM_ROBUST_HARDENED_RUNNER_HH
#define BPSIM_ROBUST_HARDENED_RUNNER_HH

#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "obs/run_report.hh"
#include "robust/deadline.hh"
#include "robust/retry.hh"
#include "robust/run_manifest.hh"

namespace bpsim::parallel {
class CellPool;
} // namespace bpsim::parallel

namespace bpsim::robust {

/**
 * One schedulable unit of a campaign. @c key must match the
 * RunReport row key the cell produces ("wl|pred|mode|budget") so
 * manifests, reports and bpstat agree on cell identity.
 */
struct SuiteCell
{
    std::string key;
    /** Compute the cell; poll @p deadline in long loops. May throw. */
    std::function<obs::RunReport::Row(const Deadline &deadline)> run;
};

/** What a hardened campaign did. */
struct HardenedRunSummary
{
    std::size_t completed = 0; ///< ran to success this invocation
    std::size_t resumed = 0;   ///< replayed from the manifest
    std::size_t failed = 0;    ///< exhausted retries; annotated
    std::size_t retries = 0;   ///< extra attempts spent
    bool
    allOk() const
    {
        return failed == 0;
    }
};

/** Executes SuiteCells under retry/deadline/manifest; see file
 *  comment. */
class HardenedSuiteRunner
{
  public:
    /**
     * @param manifest_path Checkpoint file; "" disables persistence
     *        (still retries and annotates, never resumes).
     * @param retry Backoff policy for failed cells.
     * @param cell_timeout Per-attempt deadline; zero = unlimited.
     * @param pool Optional executor: cells compute concurrently
     *        (each attempt under its own deadline, retried on its
     *        worker), while row/annotation emission, manifest
     *        updates and saves all happen on the calling thread in
     *        cell order — one writer, and a report byte-identical
     *        to a serial campaign. Cell closures must then be safe
     *        to run concurrently with each other.
     */
    HardenedSuiteRunner(std::string manifest_path, RetryPolicy retry,
                        std::chrono::milliseconds cell_timeout =
                            std::chrono::milliseconds{0},
                        parallel::CellPool *pool = nullptr);

    /**
     * Run @p cells, appending one row per successful (or resumed)
     * cell to @p report in cell order, and one annotation per
     * permanently failed cell.
     */
    HardenedRunSummary run(const std::vector<SuiteCell> &cells,
                           obs::RunReport &report);

    /** The manifest as of the last run() (for inspection/tests). */
    const RunManifest &manifest() const { return manifest_; }

    /** Replace the sleeper used between retries (tests). */
    void setSleeper(Sleeper sleeper) { sleep_ = std::move(sleeper); }

    /**
     * Hook called after each cell is finalized (done or failed) and
     * the manifest is saved; receives the number of cells finalized
     * this invocation. Tests throw from it to simulate a campaign
     * killed at a cell boundary.
     */
    void
    setAfterCellHook(std::function<void(std::size_t)> hook)
    {
        afterCell_ = std::move(hook);
    }

  private:
    void persist() const;

    std::string manifestPath_;
    RetryPolicy retry_;
    std::chrono::milliseconds cellTimeout_;
    parallel::CellPool *pool_;
    RunManifest manifest_;
    Sleeper sleep_ = realSleep;
    std::function<void(std::size_t)> afterCell_;
};

} // namespace bpsim::robust

#endif // BPSIM_ROBUST_HARDENED_RUNNER_HH
