#include "robust/fault_injector.hh"

#include <cmath>

namespace bpsim::robust {

namespace {

bool
hasPrefix(const std::string &name, const std::string &prefix)
{
    return !prefix.empty() &&
           name.compare(0, prefix.size(), prefix) == 0;
}

} // namespace

bool
FaultPlan::matches(const std::string &field_name) const
{
    if (targetPrefix.empty() && targetPrefixes.empty() &&
        targetFields.empty())
        return true;
    if (hasPrefix(field_name, targetPrefix))
        return true;
    for (const std::string &p : targetPrefixes)
        if (hasPrefix(field_name, p))
            return true;
    for (const std::string &f : targetFields)
        if (field_name == f)
            return true;
    return false;
}

FaultInjector::FaultInjector(const FaultPlan &plan)
    : plan_(plan), rng_(plan.seed)
{
}

std::size_t
FaultInjector::sampleFlipCount(std::size_t total_bits)
{
    const double lambda =
        plan_.upsetRatePerBit * static_cast<double>(total_bits);
    if (lambda <= 0.0)
        return 0;

    std::size_t n;
    if (lambda < 32.0) {
        // Knuth: multiply uniforms until the product drops below
        // e^-lambda. Exact Poisson, O(lambda) draws.
        const double limit = std::exp(-lambda);
        double prod = rng_.nextDouble();
        n = 0;
        while (prod > limit) {
            prod *= rng_.nextDouble();
            ++n;
        }
    } else {
        // Gaussian approximation for large means; the study sweeps
        // care about the expected flip mass, not tail exactness.
        const double g =
            lambda + std::sqrt(lambda) * rng_.nextGaussian();
        n = g <= 0.0 ? 0 : static_cast<std::size_t>(g + 0.5);
    }
    return n < total_bits ? n : total_bits;
}

void
FaultInjector::visit(const StateField &field)
{
    if (!plan_.matches(field.name))
        return;

    const std::size_t total = field.totalBits();
    if (total == 0)
        return;
    bitsVisited_ += total;

    const std::size_t n = sampleFlipCount(total);
    for (std::size_t k = 0; k < n; ++k) {
        const std::uint64_t pos = rng_.nextRange(total);
        const std::size_t elem =
            static_cast<std::size_t>(pos / field.bits);
        const unsigned bit = static_cast<unsigned>(pos % field.bits);
        const std::uint64_t before = field.load(elem);
        if (observer_)
            observer_(field, elem, bit, before);
        field.store(elem, before ^ (std::uint64_t{1} << bit));
    }
    flips_ += n;
    if (n)
        flipsByField_[field.name] += n;
}

FaultInjectingPredictor::FaultInjectingPredictor(
    std::unique_ptr<DirectionPredictor> inner, const FaultPlan &plan)
    : inner_(std::move(inner)), injector_(plan)
{
}

void
FaultInjectingPredictor::update(Addr pc, bool taken)
{
    inner_->update(pc, taken);
    afterInnerUpdate();
}

void
FaultInjectingPredictor::afterInnerUpdate()
{
    const Counter interval = injector_.plan().intervalBranches;
    if (interval > 0 && ++updates_ % interval == 0) {
        injector_.beginEvent();
        inner_->visitState(injector_);
    }
}

std::vector<PredictorStat>
FaultInjectingPredictor::describeStats() const
{
    std::vector<PredictorStat> stats = inner_->describeStats();
    stats.push_back({"robust.faults.flips",
                     static_cast<double>(injector_.flips())});
    stats.push_back({"robust.faults.events",
                     static_cast<double>(injector_.events())});
    stats.push_back({"robust.faults.upset_rate_per_bit",
                     injector_.plan().upsetRatePerBit});
    return stats;
}

FaultInjectingFetchPredictor::FaultInjectingFetchPredictor(
    std::unique_ptr<FetchPredictor> inner, const FaultPlan &plan)
    : inner_(std::move(inner)), injector_(plan)
{
}

void
FaultInjectingFetchPredictor::update(Addr pc, bool taken)
{
    inner_->update(pc, taken);
    const Counter interval = injector_.plan().intervalBranches;
    if (interval > 0 && ++updates_ % interval == 0) {
        injector_.beginEvent();
        inner_->visitState(injector_);
    }
}

std::vector<PredictorStat>
FaultInjectingFetchPredictor::describeStats() const
{
    std::vector<PredictorStat> stats = inner_->describeStats();
    stats.push_back({"robust.faults.flips",
                     static_cast<double>(injector_.flips())});
    stats.push_back({"robust.faults.events",
                     static_cast<double>(injector_.events())});
    return stats;
}

} // namespace bpsim::robust
