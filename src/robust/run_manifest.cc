#include "robust/run_manifest.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace bpsim::robust {

namespace {

const char *
statusName(CellRecord::Status s)
{
    switch (s) {
    case CellRecord::Status::Pending: return "pending";
    case CellRecord::Status::Done: return "done";
    case CellRecord::Status::Failed: return "failed";
    }
    return "pending";
}

CellRecord::Status
statusFromName(const std::string &s)
{
    if (s == "done")
        return CellRecord::Status::Done;
    if (s == "failed")
        return CellRecord::Status::Failed;
    if (s == "pending")
        return CellRecord::Status::Pending;
    throw RunManifestError("unknown cell status '" + s + "'");
}

} // namespace

const CellRecord *
RunManifest::find(const std::string &key) const
{
    const auto it = index_.find(key);
    return it == index_.end() ? nullptr : &cells_[it->second];
}

CellRecord &
RunManifest::upsert(const std::string &key)
{
    const auto it = index_.find(key);
    if (it != index_.end())
        return cells_[it->second];
    index_.emplace(key, cells_.size());
    cells_.push_back(CellRecord{});
    cells_.back().key = key;
    return cells_.back();
}

void
RunManifest::markDone(const std::string &key, unsigned attempts,
                      obs::Json row)
{
    CellRecord &c = upsert(key);
    c.status = CellRecord::Status::Done;
    c.attempts = attempts;
    c.error.clear();
    c.row = std::move(row);
}

void
RunManifest::markFailed(const std::string &key, unsigned attempts,
                        const std::string &error)
{
    CellRecord &c = upsert(key);
    c.status = CellRecord::Status::Failed;
    c.attempts = attempts;
    c.error = error;
    c.row = obs::Json();
}

std::size_t
RunManifest::done() const
{
    std::size_t n = 0;
    for (const CellRecord &c : cells_)
        n += c.status == CellRecord::Status::Done ? 1 : 0;
    return n;
}

std::size_t
RunManifest::failed() const
{
    std::size_t n = 0;
    for (const CellRecord &c : cells_)
        n += c.status == CellRecord::Status::Failed ? 1 : 0;
    return n;
}

obs::Json
RunManifest::toJson() const
{
    obs::Json j = obs::Json::object();
    j.set("schema_version", obs::Json(kSchemaVersion));
    j.set("tool", obs::Json("bpsim-manifest"));
    j.set("experiment", obs::Json(experiment_));
    obs::Json arr = obs::Json::array();
    for (const CellRecord &c : cells_) {
        obs::Json e = obs::Json::object();
        e.set("key", obs::Json(c.key));
        e.set("status", obs::Json(statusName(c.status)));
        e.set("attempts", obs::Json(c.attempts));
        if (!c.error.empty())
            e.set("error", obs::Json(c.error));
        if (c.status == CellRecord::Status::Done)
            e.set("row", c.row);
        arr.push(std::move(e));
    }
    j.set("cells", std::move(arr));
    return j;
}

RunManifest
RunManifest::fromJson(const obs::Json &j)
{
    try {
        const int version = static_cast<int>(
            j.get("schema_version").asNumber());
        if (version != kSchemaVersion)
            throw RunManifestError(
                "unsupported manifest schema_version " +
                std::to_string(version));
        RunManifest m(j.get("experiment").asString());
        for (const obs::Json &e : j.get("cells").items()) {
            CellRecord &c = m.upsert(e.get("key").asString());
            c.status = statusFromName(e.get("status").asString());
            c.attempts = static_cast<unsigned>(
                e.get("attempts").asU64());
            if (const obs::Json *err = e.find("error"))
                c.error = err->asString();
            if (const obs::Json *row = e.find("row"))
                c.row = *row;
        }
        return m;
    } catch (const obs::JsonError &e) {
        throw RunManifestError(std::string("malformed manifest: ") +
                               e.what());
    }
}

void
RunManifest::save(const std::string &path) const
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp);
        if (!os)
            throw RunManifestError("cannot open '" + tmp +
                                   "' for writing");
        os << toJson().dump(2) << '\n';
        if (!os)
            throw RunManifestError("short write on '" + tmp + "'");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw RunManifestError("cannot rename '" + tmp + "' to '" +
                               path + "'");
    }
}

RunManifest
RunManifest::load(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        throw RunManifestError("cannot open manifest '" + path +
                               "'");
    std::ostringstream buf;
    buf << is.rdbuf();
    try {
        return fromJson(obs::Json::parse(buf.str()));
    } catch (const obs::JsonError &e) {
        throw RunManifestError(path + ": " + e.what());
    }
}

bool
RunManifest::exists(const std::string &path)
{
    std::ifstream is(path);
    return static_cast<bool>(is);
}

} // namespace bpsim::robust
