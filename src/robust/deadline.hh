/**
 * @file
 * Cooperative per-cell watchdog.
 *
 * The simulator is single-threaded and allocation-heavy, so a
 * preemptive watchdog (signals, killer threads) would leave state
 * unrecoverable. Instead a Deadline is a steady-clock budget that
 * long loops poll: check() throws DeadlineExceeded once the budget
 * is spent, unwinding cleanly through the cell boundary where the
 * hardened runner catches it, annotates the cell as timed out and
 * moves on. runAccuracy()'s poll hook (core/runner.hh) calls check()
 * every few thousand ops, bounding detection latency without a
 * per-iteration cost.
 *
 * Tests construct deadlines from an explicit fake "now" so timeout
 * paths are exercised without real waiting.
 */

#ifndef BPSIM_ROBUST_DEADLINE_HH
#define BPSIM_ROBUST_DEADLINE_HH

#include <chrono>
#include <stdexcept>
#include <string>

namespace bpsim::robust {

/** Thrown by Deadline::check() when the budget is exhausted. */
class DeadlineExceeded : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** A point in time work must finish by. */
class Deadline
{
  public:
    using Clock = std::chrono::steady_clock;

    /** A deadline @p budget from now. */
    static Deadline
    after(std::chrono::milliseconds budget)
    {
        return Deadline(Clock::now() + budget, false);
    }

    /** A deadline that never expires. */
    static Deadline
    unlimited()
    {
        return Deadline(Clock::time_point::max(), true);
    }

    /** A deadline at an explicit time point (tests). */
    static Deadline
    at(Clock::time_point when)
    {
        return Deadline(when, false);
    }

    bool
    unlimitedBudget() const
    {
        return unlimited_;
    }

    bool
    expired() const
    {
        return !unlimited_ && Clock::now() >= when_;
    }

    /** Budget remaining; zero when expired, huge when unlimited. */
    std::chrono::milliseconds
    remaining() const
    {
        if (unlimited_)
            return std::chrono::milliseconds::max();
        const auto now = Clock::now();
        if (now >= when_)
            return std::chrono::milliseconds{0};
        return std::chrono::duration_cast<std::chrono::milliseconds>(
            when_ - now);
    }

    /** Throw DeadlineExceeded naming @p what when expired. */
    void
    check(const std::string &what) const
    {
        if (expired())
            throw DeadlineExceeded("deadline exceeded: " + what);
    }

  private:
    Deadline(Clock::time_point when, bool unlimited)
        : when_(when), unlimited_(unlimited)
    {
    }

    Clock::time_point when_;
    bool unlimited_;
};

} // namespace bpsim::robust

#endif // BPSIM_ROBUST_DEADLINE_HH
