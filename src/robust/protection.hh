/**
 * @file
 * SRAM protection policies: parity, SEC-DED ECC and scrubbing over
 * the predictor state the fault injector bombards.
 *
 * The paper's thesis is that predictor *delay* dominates *accuracy*,
 * so a reliability story has to charge protection honestly on both
 * axes. Each policy here carries two taxes:
 *
 *  - a storage tax: check bits per protected word shrink the
 *    effective table budget (protectedEffectiveBudget(), used by the
 *    factory so a SEC-DED gshare at "64KB" really holds a smaller
 *    PHT plus its check bits);
 *  - a delay tax: parity/syndrome check logic on the read path adds
 *    FO4s (protectionCheckFo4(), folded into the CACTI-lite access
 *    time so protected predictors move on the fig1/fig7 axes).
 *    Scrubbing is off the access path and pays no read-side FO4s,
 *    trading a vulnerability window instead.
 *
 * Detection and repair are *modeled*, not bit-accurately encoded: the
 * ProtectionLayer records every flip the FaultInjector lands (same
 * seeded stream, via the flip observer) into a per-word ledger and,
 * at check time, resolves each word the way the real circuit would —
 * parity detects an odd number of flipped bits and can only
 * invalidate; SEC-DED corrects one flipped bit, detects-and-
 * invalidates two, and is blind past that; scrubbing applies SEC-DED
 * semantics but only every scrubIntervalBranches updates. A word the
 * predictor has overwritten since the flip was re-encoded by that
 * write, so its ledger entry is dropped ("laundered") rather than
 * repaired. Everything is driven by the injector's RNG and ordered
 * maps, so protected campaigns stay byte-reproducible from the seed.
 */

#ifndef BPSIM_ROBUST_PROTECTION_HH
#define BPSIM_ROBUST_PROTECTION_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "predictors/predictor.hh"
#include "robust/fault_injector.hh"
#include "robust/state_visitor.hh"

namespace bpsim::robust {

/** How (whether) predictor SRAM is protected. */
enum class ProtectionPolicy {
    None,             ///< unprotected (injection only)
    ParityInvalidate, ///< 1 parity bit/word; detect odd, reset word
    SecdedCorrect,    ///< SEC-DED ECC; fix 1, reset 2, blind past 2
    Scrub,            ///< SEC-DED applied only at scrub intervals
};

/** Stable printable name: "none", "parity", "secded", "scrub". */
std::string protectionPolicyName(ProtectionPolicy policy);

/** All policies, in a stable order. */
const std::vector<ProtectionPolicy> &allProtectionPolicies();

/** One protection configuration. */
struct ProtectionConfig
{
    ProtectionPolicy policy = ProtectionPolicy::None;
    /** Data bits per protected word (ECC granule). */
    unsigned wordBits = 64;
    /** Updates between scrub passes (Scrub policy only). */
    Counter scrubIntervalBranches = 2048;
};

/** SEC-DED check bits for a @p word_bits data word: the smallest r
 *  with 2^r >= word_bits + r + 1, plus the overall parity bit. */
unsigned secdedCheckBits(unsigned word_bits);

/** Check bits per protected word under @p cfg (0, 1 or SEC-DED's). */
unsigned protectionCheckBits(const ProtectionConfig &cfg);

/** Storage overhead as a fraction of data bits (checkBits/wordBits). */
double protectionStorageOverhead(const ProtectionConfig &cfg);

/** Check bits needed to cover @p data_bits of state under @p cfg. */
std::uint64_t protectionCheckBitsTotal(std::uint64_t data_bits,
                                       const ProtectionConfig &cfg);

/**
 * Data budget left after the check-bit tax: the largest data
 * capacity whose data + check bits fit in @p budget_bytes. The
 * factory builds protected predictors at this budget so the nominal
 * budget pays for the whole protected array.
 */
std::size_t protectedEffectiveBudget(std::size_t budget_bytes,
                                     const ProtectionConfig &cfg);

/**
 * Read-path check/correct logic in FO4 delays: an XOR tree over the
 * word for parity, syndrome decode plus the correction mux for
 * SEC-DED. Zero for None and Scrub (scrubbing is off the read path).
 */
double protectionCheckFo4(const ProtectionConfig &cfg);

/** What a protection layer did (all deterministic counters). */
struct ProtectionStats
{
    Counter injectedFlips = 0;     ///< flips recorded from the stream
    Counter correctedBits = 0;     ///< SEC-DED single-bit corrections
    Counter invalidatedWords = 0;  ///< words reset (parity/DED)
    Counter invalidatedElements = 0; ///< elements those resets wiped
    Counter undetectedWords = 0;   ///< corrupt words the code missed
    Counter launderedElements = 0; ///< overwritten before the check
    Counter repairEvents = 0;      ///< check/repair passes run
    Counter scrubEvents = 0;       ///< scrub passes (Scrub only)
};

/**
 * The detect/repair engine shared by the protected decorators.
 * Flips stream in through recordFlip() (wired to the FaultInjector's
 * observer); repair() then resolves every touched word per the
 * policy. Public so tests can drive exact flip patterns without RNG.
 */
class ProtectionLayer
{
  public:
    explicit ProtectionLayer(const ProtectionConfig &cfg);

    const ProtectionConfig &config() const { return cfg_; }
    const ProtectionStats &stats() const { return stats_; }

    /** Record one injected flip (element value @p before the flip). */
    void recordFlip(const StateField &field, std::size_t elem,
                    unsigned bit, std::uint64_t before);

    /**
     * Resolve every ledgered word: drop laundered elements, then
     * correct / invalidate / miss per the policy. @p as_scrub only
     * tags the pass in the stats.
     */
    void repair(bool as_scrub = false);

    /** Words currently ledgered as (possibly) corrupt. */
    std::size_t pendingWords() const { return ledger_.size(); }

  private:
    struct ElemRecord
    {
        std::uint64_t orig = 0; ///< value before the first flip
        std::uint64_t mask = 0; ///< accumulated flipped bits
    };
    struct WordRecord
    {
        StateField field; ///< copy; accessors alias predictor state
        std::map<std::size_t, ElemRecord> elems;
    };

    std::size_t elemsPerWord(const StateField &field) const;
    void invalidateWord(const WordRecord &word, std::size_t word_idx);

    ProtectionConfig cfg_;
    ProtectionStats stats_;
    /** (field name, word index) -> record; ordered for determinism. */
    std::map<std::pair<std::string, std::size_t>, WordRecord> ledger_;
};

/**
 * Direction-predictor decorator combining injection and protection:
 * every plan.intervalBranches updates one injection event bombards
 * the inner predictor (flips recorded into the ProtectionLayer), and
 * the policy's check runs right after (parity/SEC-DED are on the
 * access path) or every cfg.scrubIntervalBranches updates (Scrub).
 * Policy None degenerates to plain injection. storageBits() stays
 * the inner predictor's — check bits are not addressable state (see
 * protectionBitsTotal() for the tax) — so the exposed-bits ==
 * storageBits() invariant holds for the wrapper too.
 */
class ProtectedPredictor : public DirectionPredictor
{
  public:
    ProtectedPredictor(std::unique_ptr<DirectionPredictor> inner,
                       const FaultPlan &plan,
                       const ProtectionConfig &cfg);

    std::string name() const override { return inner_->name(); }
    std::size_t storageBits() const override
    {
        return inner_->storageBits();
    }
    bool predict(Addr pc) override { return inner_->predict(pc); }
    void update(Addr pc, bool taken) override;
    std::vector<PredictorStat> describeStats() const override;
    void visitState(StateVisitor &v) override
    {
        inner_->visitState(v);
    }

    /**
     * The injection/check/scrub tail of update(), after the inner
     * predictor has trained: counts the update and fires the fault /
     * repair cadence. Public so the batched accuracy ensemble
     * (core/ensemble.cc) can train the inner predictor through the
     * monomorphic fast path and then replay this wrapper's per-branch
     * hook — the cadence depends only on this member's own update
     * count, so hooked replay is bit-identical to calling update().
     */
    void afterInnerUpdate();

    const FaultInjector &injector() const { return injector_; }
    const ProtectionStats &protectionStats() const
    {
        return layer_.stats();
    }
    const ProtectionConfig &protectionConfig() const
    {
        return layer_.config();
    }
    /** Check bits covering the inner predictor's state. */
    std::uint64_t protectionBitsTotal() const;
    DirectionPredictor &inner() { return *inner_; }

  private:
    std::unique_ptr<DirectionPredictor> inner_;
    ProtectionLayer layer_;
    FaultInjector injector_;
    Counter updates_ = 0;
};

} // namespace bpsim::robust

#endif // BPSIM_ROBUST_PROTECTION_HH
