#include "robust/retry.hh"

#include <algorithm>

namespace bpsim::robust {

std::chrono::milliseconds
RetryPolicy::delayBefore(unsigned attempt) const
{
    if (attempt == 0)
        attempt = 1;
    // Bounded exponential: base * 2^(attempt-1), saturating at
    // maxDelay (shift capped so the multiply cannot overflow).
    const unsigned shift = std::min(attempt - 1, 20u);
    const auto raw = baseDelay.count() << shift;
    const auto capped = std::min<std::chrono::milliseconds::rep>(
        raw, maxDelay.count());

    // Deterministic jitter: one draw from an RNG keyed on (seed,
    // attempt), so delays are reproducible yet decorrelated across
    // attempts.
    Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * attempt));
    const double factor =
        1.0 + jitterFraction * (2.0 * rng.nextDouble() - 1.0);
    const auto jittered = static_cast<std::chrono::milliseconds::rep>(
        static_cast<double>(capped) * factor);
    return std::chrono::milliseconds(std::max<
        std::chrono::milliseconds::rep>(0, jittered));
}

} // namespace bpsim::robust
