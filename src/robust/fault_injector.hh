/**
 * @file
 * SRAM soft-error (single-event-upset) injection.
 *
 * A FaultPlan describes an upset model: with what probability each
 * SRAM bit flips per injection event, how often events fire (every N
 * predictor updates), and which state fields are eligible. The
 * FaultInjector is a StateVisitor that walks a predictor's exposed
 * fields and flips bits accordingly, driven by the repo's xorshift
 * RNG so every campaign is deterministic and reproducible.
 *
 * Sampling: per field, the number of flips is drawn once (Poisson
 * for small expected counts, a Gaussian approximation beyond — both
 * from our own Rng, never the standard library's distributions) and
 * then that many uniformly random bit positions are flipped. This is
 * equivalent to per-bit Bernoulli trials for the upset rates of
 * interest but costs O(flips), not O(total bits), so megabit PHTs
 * stay cheap to bombard.
 */

#ifndef BPSIM_ROBUST_FAULT_INJECTOR_HH
#define BPSIM_ROBUST_FAULT_INJECTOR_HH

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "pipeline/fetch_predictor.hh"
#include "predictors/predictor.hh"
#include "robust/state_visitor.hh"

namespace bpsim::robust {

/** The upset model driving a FaultInjector. */
struct FaultPlan
{
    /** Probability each SRAM bit flips per injection event. */
    double upsetRatePerBit = 0.0;
    /** Predictor updates between injection events. */
    Counter intervalBranches = 4096;
    /** RNG seed; same plan + seed => identical flip sequence. */
    std::uint64_t seed = 0x5eedfa17;
    /** Only fields whose name starts with this are hit ("" = all). */
    std::string targetPrefix;
    /** Additional eligible prefixes (any-of, alongside
     *  targetPrefix). */
    std::vector<std::string> targetPrefixes;
    /** Exact field names to hit (any-of, alongside the prefixes).
     *  The vulnerability-ranking pass bombards one field at a time
     *  through this. */
    std::vector<std::string> targetFields;

    /** True when @p field_name is eligible under the plan: no
     *  targeting at all means every field, otherwise the name must
     *  match one prefix or one exact name. */
    bool matches(const std::string &field_name) const;
};

/** Walks visitState() fields and flips bits per a FaultPlan. */
class FaultInjector : public StateVisitor
{
  public:
    /** Called for every flip as it lands: the field, the element
     *  index, the bit within it, and the element's value *before*
     *  the flip. Protection policies record flips through this so
     *  detection/repair replays the exact injection stream. */
    using FlipObserver = std::function<void(
        const StateField &field, std::size_t elem, unsigned bit,
        std::uint64_t before)>;

    explicit FaultInjector(const FaultPlan &plan);

    void visit(const StateField &field) override;

    /** Install @p obs (empty = none); does not perturb sampling. */
    void setFlipObserver(FlipObserver obs)
    {
        observer_ = std::move(obs);
    }

    /** Total bits flipped so far. */
    Counter flips() const { return flips_; }
    /** Total SRAM bits visited (eligible fields, all events). */
    Counter bitsVisited() const { return bitsVisited_; }
    /** Injection events (visitState() walks) completed. */
    Counter events() const { return events_; }
    /** Per-field flip tallies. */
    const std::map<std::string, Counter> &flipsByField() const
    {
        return flipsByField_;
    }

    /** Mark the start of one injection event (bookkeeping only). */
    void beginEvent() { ++events_; }

    const FaultPlan &plan() const { return plan_; }

  private:
    std::size_t sampleFlipCount(std::size_t total_bits);

    FaultPlan plan_;
    Rng rng_;
    FlipObserver observer_;
    Counter flips_ = 0;
    Counter bitsVisited_ = 0;
    Counter events_ = 0;
    std::map<std::string, Counter> flipsByField_;
};

/**
 * Direction-predictor decorator that periodically bombards its inner
 * predictor's SRAM per a FaultPlan: every plan.intervalBranches
 * updates, one injection event walks the inner visitState(). Used by
 * the soft-error study and the robustness tests; composes with every
 * fetch wrapper since it is itself a DirectionPredictor.
 */
class FaultInjectingPredictor : public DirectionPredictor
{
  public:
    FaultInjectingPredictor(std::unique_ptr<DirectionPredictor> inner,
                            const FaultPlan &plan);

    std::string name() const override { return inner_->name(); }
    std::size_t storageBits() const override
    {
        return inner_->storageBits();
    }
    bool predict(Addr pc) override { return inner_->predict(pc); }
    void update(Addr pc, bool taken) override;
    std::vector<PredictorStat> describeStats() const override;
    void visitState(StateVisitor &v) override
    {
        inner_->visitState(v);
    }

    /**
     * The injection tail of update(), after the inner predictor has
     * trained: counts the update and bombards the inner state every
     * plan.intervalBranches. Public so the batched accuracy ensemble
     * (core/ensemble.cc) can train the inner predictor through the
     * monomorphic fast path and replay this hook per member — the
     * cadence depends only on this member's own update count, so
     * hooked replay is bit-identical to calling update().
     */
    void afterInnerUpdate();

    const FaultInjector &injector() const { return injector_; }
    DirectionPredictor &inner() { return *inner_; }

  private:
    std::unique_ptr<DirectionPredictor> inner_;
    FaultInjector injector_;
    Counter updates_ = 0;
};

/**
 * Fetch-side analogue: decorates any FetchPredictor (overriding,
 * delayed, single-cycle) so timing campaigns can be bombarded too.
 */
class FaultInjectingFetchPredictor : public FetchPredictor
{
  public:
    FaultInjectingFetchPredictor(std::unique_ptr<FetchPredictor> inner,
                                 const FaultPlan &plan);

    std::string name() const override { return inner_->name(); }
    std::size_t storageBits() const override
    {
        return inner_->storageBits();
    }
    FetchPrediction predict(Addr pc) override
    {
        return inner_->predict(pc);
    }
    void update(Addr pc, bool taken) override;
    std::vector<PredictorStat> describeStats() const override;
    void visitState(StateVisitor &v) override
    {
        inner_->visitState(v);
    }

    const FaultInjector &injector() const { return injector_; }
    /** The wrapped fetch predictor, so the timing ensemble's
     *  grouping probe (core/ensemble.cc) can key on the full wrapper
     *  chain. */
    FetchPredictor &inner() { return *inner_; }

  private:
    std::unique_ptr<FetchPredictor> inner_;
    FaultInjector injector_;
    Counter updates_ = 0;
};

} // namespace bpsim::robust

#endif // BPSIM_ROBUST_FAULT_INJECTOR_HH
