/**
 * @file
 * Loop predictor: per-branch trip-count tracking.
 *
 * One of the component types Evers' multi-component work drew on:
 * a counted loop's backward branch is taken exactly N times then
 * falls through, a pattern that global- and local-history schemes
 * capture only when the history window exceeds N. This table learns
 * N directly and predicts the exit, at any trip count that fits the
 * count field — complementing the history components rather than
 * competing with them.
 */

#ifndef BPSIM_PREDICTORS_LOOP_HH
#define BPSIM_PREDICTORS_LOOP_HH

#include <vector>

#include "common/sat_counter.hh"
#include "predictors/predictor.hh"

namespace bpsim {

/** Trip-count loop predictor. */
class LoopPredictor : public DirectionPredictor
{
  public:
    /**
     * @param entries Loop table entries (power of two).
     * @param count_bits Width of the trip counters (max learnable
     *        trip count is 2^count_bits - 1).
     */
    explicit LoopPredictor(std::size_t entries,
                           unsigned count_bits = 10);

    std::string name() const override { return "loop"; }
    std::size_t storageBits() const override;
    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;

    /** Whether @p pc currently holds a confident trip count (tests
     *  and hybrid choosers use this as a filter). */
    bool confident(Addr pc) const;

  private:
    struct Entry
    {
        std::uint16_t tripCount = 0; ///< learned iterations
        std::uint16_t current = 0;   ///< position in this execution
        SatCounter confidence{2, 0}; ///< same count seen repeatedly
    };

    std::size_t index(Addr pc) const;

    std::vector<Entry> table_;
    std::size_t mask_;
    unsigned countBits_;
};

} // namespace bpsim

#endif // BPSIM_PREDICTORS_LOOP_HH
