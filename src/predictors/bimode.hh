/**
 * @file
 * Bi-Mode predictor (Lee, Chen and Mudge, MICRO-30): splits the PHT
 * into a taken-biased and a not-taken-biased bank, with a PC-indexed
 * choice PHT selecting between them. This removes most destructive
 * aliasing between oppositely-biased branches, which is why it beats
 * plain gshare in Figure 1 of the paper.
 */

#ifndef BPSIM_PREDICTORS_BIMODE_HH
#define BPSIM_PREDICTORS_BIMODE_HH

#include "common/history.hh"
#include "common/packed_pht.hh"
#include "predictors/predictor.hh"

namespace bpsim {

/** Bi-Mode two-bank predictor with a choice PHT. */
class BiModePredictor final : public DirectionPredictor
{
  public:
    /**
     * @param direction_entries Entries in *each* direction bank
     *        (power of two).
     * @param choice_entries Entries in the choice PHT (power of two);
     *        0 means same as @p direction_entries.
     */
    explicit BiModePredictor(std::size_t direction_entries,
                             std::size_t choice_entries = 0);

    std::string name() const override { return "bimode"; }
    std::size_t storageBits() const override
    {
        return (takenBank_.size() + notTakenBank_.size() +
                choice_.size()) * 2 + history_.length();
    }
    // Inline bodies: see the note in gshare.hh.
    bool
    predict(Addr pc) override
    {
        lastChoiceIndex_ = choiceIndex(pc);
        lastChoiceTaken_ = choice_.taken(lastChoiceIndex_);
        lastDirIndex_ = directionIndex(pc);
        lastPrediction_ = lastChoiceTaken_
                              ? takenBank_.taken(lastDirIndex_)
                              : notTakenBank_.taken(lastDirIndex_);
        return lastPrediction_;
    }

    void
    update(Addr /*pc*/, bool taken) override
    {
        // Both indices carry over from predict(): update() is always
        // paired with the predict() for the same pc, and the history
        // has not shifted in between, so recomputing them (with the
        // possible history fold) would give the same values.
        const std::size_t di = lastDirIndex_;
        // Only the bank that made the prediction is trained,
        // preserving each bank's bias.
        if (lastChoiceTaken_)
            takenBank_.update(di, taken);
        else
            notTakenBank_.update(di, taken);

        // The choice PHT trains toward the outcome, except when it
        // was overruled successfully: choice disagreed with the
        // outcome but the selected bank still predicted correctly.
        const bool selected_correct = lastPrediction_ == taken;
        if (!(lastChoiceTaken_ != taken && selected_correct))
            choice_.update(lastChoiceIndex_, taken);

        history_.shiftIn(taken);
    }

  private:
    std::size_t
    directionIndex(Addr pc) const
    {
        const std::uint64_t h = history_.length() > dirIndexBits_
                                    ? history_.fold(dirIndexBits_)
                                    : history_.low64();
        return static_cast<std::size_t>((indexPc(pc) ^ h) & dirMask_);
    }

    std::size_t
    choiceIndex(Addr pc) const
    {
        return static_cast<std::size_t>(indexPc(pc)) & choiceMask_;
    }

    PackedPhtStorage takenBank_;
    PackedPhtStorage notTakenBank_;
    PackedPhtStorage choice_;
    std::size_t dirMask_;
    std::size_t choiceMask_;
    unsigned dirIndexBits_;
    HistoryRegister history_;

    // predict() -> update() carried state
    std::size_t lastDirIndex_ = 0;
    std::size_t lastChoiceIndex_ = 0;
    bool lastChoiceTaken_ = false;
    bool lastPrediction_ = false;
};

} // namespace bpsim

#endif // BPSIM_PREDICTORS_BIMODE_HH
