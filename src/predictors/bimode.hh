/**
 * @file
 * Bi-Mode predictor (Lee, Chen and Mudge, MICRO-30): splits the PHT
 * into a taken-biased and a not-taken-biased bank, with a PC-indexed
 * choice PHT selecting between them. This removes most destructive
 * aliasing between oppositely-biased branches, which is why it beats
 * plain gshare in Figure 1 of the paper.
 */

#ifndef BPSIM_PREDICTORS_BIMODE_HH
#define BPSIM_PREDICTORS_BIMODE_HH

#include <vector>

#include "common/history.hh"
#include "common/sat_counter.hh"
#include "predictors/predictor.hh"

namespace bpsim {

/** Bi-Mode two-bank predictor with a choice PHT. */
class BiModePredictor : public DirectionPredictor
{
  public:
    /**
     * @param direction_entries Entries in *each* direction bank
     *        (power of two).
     * @param choice_entries Entries in the choice PHT (power of two);
     *        0 means same as @p direction_entries.
     */
    explicit BiModePredictor(std::size_t direction_entries,
                             std::size_t choice_entries = 0);

    std::string name() const override { return "bimode"; }
    std::size_t storageBits() const override
    {
        return (takenBank_.size() + notTakenBank_.size() +
                choice_.size()) * 2 + history_.length();
    }
    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;

  private:
    std::size_t directionIndex(Addr pc) const;
    std::size_t choiceIndex(Addr pc) const;

    std::vector<TwoBitCounter> takenBank_;
    std::vector<TwoBitCounter> notTakenBank_;
    std::vector<TwoBitCounter> choice_;
    std::size_t dirMask_;
    std::size_t choiceMask_;
    unsigned dirIndexBits_;
    HistoryRegister history_;

    // predict() -> update() carried state
    bool lastChoiceTaken_ = false;
    bool lastPrediction_ = false;
};

} // namespace bpsim

#endif // BPSIM_PREDICTORS_BIMODE_HH
