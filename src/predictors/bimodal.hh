/**
 * @file
 * Bimodal predictor (Smith): a PC-indexed table of two-bit counters.
 *
 * The simplest dynamic predictor; serves as a baseline, as the
 * bias component of the 2Bc-gskew predictor, and as a component of
 * the multi-component hybrid.
 */

#ifndef BPSIM_PREDICTORS_BIMODAL_HH
#define BPSIM_PREDICTORS_BIMODAL_HH

#include <vector>

#include "common/sat_counter.hh"
#include "predictors/predictor.hh"

namespace bpsim {

/** PC-indexed two-bit-counter predictor. */
class BimodalPredictor : public DirectionPredictor
{
  public:
    /** @param entries PHT entry count; must be a power of two. */
    explicit BimodalPredictor(std::size_t entries);

    std::string name() const override { return "bimodal"; }
    std::size_t storageBits() const override { return pht_.size() * 2; }
    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;
    void visitState(robust::StateVisitor &v) override;

    /** Direct table peek for composite predictors and tests. */
    const TwoBitCounter &counterAt(std::size_t i) const { return pht_[i]; }

  private:
    std::size_t index(Addr pc) const;

    std::vector<TwoBitCounter> pht_;
    std::size_t mask_;
};

} // namespace bpsim

#endif // BPSIM_PREDICTORS_BIMODAL_HH
