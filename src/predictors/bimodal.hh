/**
 * @file
 * Bimodal predictor (Smith): a PC-indexed table of two-bit counters.
 *
 * The simplest dynamic predictor; serves as a baseline, as the
 * bias component of the 2Bc-gskew predictor, and as a component of
 * the multi-component hybrid.
 */

#ifndef BPSIM_PREDICTORS_BIMODAL_HH
#define BPSIM_PREDICTORS_BIMODAL_HH

#include "common/packed_pht.hh"
#include "predictors/predictor.hh"

namespace bpsim {

/** PC-indexed two-bit-counter predictor. */
class BimodalPredictor final : public DirectionPredictor
{
  public:
    /** @param entries PHT entry count; must be a power of two. */
    explicit BimodalPredictor(std::size_t entries);

    std::string name() const override { return "bimodal"; }
    std::size_t storageBits() const override { return pht_.storageBits(); }
    // Inline bodies: see the note in gshare.hh — the devirtualized
    // replay loop needs them visible to fold the per-branch step.
    bool predict(Addr pc) override { return pht_.taken(index(pc)); }
    void
    update(Addr pc, bool taken) override
    {
        pht_.update(index(pc), taken);
    }
    void visitState(robust::StateVisitor &v) override;

  private:
    std::size_t
    index(Addr pc) const
    {
        return static_cast<std::size_t>(indexPc(pc)) & mask_;
    }

    PackedPhtStorage pht_;
    std::size_t mask_;

    /** Batched MC replay prefetches next-branch PHT rows
     *  (core/ensemble.cc); needs index() and pht_. */
    friend struct MulticomponentBatch;
};

} // namespace bpsim

#endif // BPSIM_PREDICTORS_BIMODAL_HH
