/**
 * @file
 * gshare predictor (McFarling, WRL TN-36): a PHT of two-bit counters
 * indexed by the XOR of the branch PC with the global history.
 *
 * Following the paper, history length equals log2(PHT entries) —
 * "the maximum history length possible" (Section 4.1.4). A 2K-entry
 * gshare is also the quick component of the overriding predictors.
 */

#ifndef BPSIM_PREDICTORS_GSHARE_HH
#define BPSIM_PREDICTORS_GSHARE_HH

#include "common/history.hh"
#include "common/packed_pht.hh"
#include "predictors/predictor.hh"

namespace bpsim {

/** Global-history XOR-indexed two-bit-counter predictor. */
class GsharePredictor final : public DirectionPredictor
{
  public:
    /**
     * @param entries PHT entry count (power of two).
     * @param history_bits History length; 0 means log2(entries).
     */
    explicit GsharePredictor(std::size_t entries,
                             unsigned history_bits = 0);

    std::string name() const override { return "gshare"; }
    std::size_t storageBits() const override
    {
        return pht_.size() * 2 + history_.length();
    }
    // predict/update are defined inline here (not in gshare.cc): the
    // devirtualized replay loop (core/dispatch.hh) instantiates its
    // template at the concrete type, and the whole per-branch step
    // only collapses into straight-line code when the bodies are
    // visible at that call site.
    bool
    predict(Addr pc) override
    {
        lastIndex_ = index(pc);
        return pht_.taken(lastIndex_);
    }

    void
    update(Addr /*pc*/, bool taken) override
    {
        // lastIndex_ carries predict()'s index: update() is always
        // paired with the predict() for the same pc, and the
        // history has not shifted in between, so the index (and its
        // possible history fold) would come out identical anyway.
        pht_.update(lastIndex_, taken);
        history_.shiftIn(taken);
    }

    std::vector<PredictorStat> describeStats() const override;
    void visitState(robust::StateVisitor &v) override;

    /** Current global history (tests and composite predictors). */
    const HistoryRegister &history() const { return history_; }

  private:
    std::size_t
    index(Addr pc) const
    {
        // When the history is longer than the index, fold it down so
        // all bits still participate.
        const std::uint64_t h = history_.length() > indexBits_
                                    ? history_.fold(indexBits_)
                                    : history_.low64();
        return static_cast<std::size_t>((indexPc(pc) ^ h) & mask_);
    }

    PackedPhtStorage pht_;
    std::size_t mask_;
    unsigned indexBits_;
    HistoryRegister history_;

    // predict() -> update() carried state
    std::size_t lastIndex_ = 0;

    /** Batched MC replay prefetches next-branch PHT rows
     *  (core/ensemble.cc); needs index() and pht_. */
    friend struct MulticomponentBatch;
};

} // namespace bpsim

#endif // BPSIM_PREDICTORS_GSHARE_HH
