#include "predictors/loop.hh"

#include <cassert>

#include "common/bitutil.hh"

namespace bpsim {

LoopPredictor::LoopPredictor(std::size_t entries, unsigned count_bits)
    : table_(entries), mask_(entries - 1), countBits_(count_bits)
{
    assert(isPowerOfTwo(entries));
    assert(count_bits >= 2 && count_bits <= 16);
}

std::size_t
LoopPredictor::storageBits() const
{
    // Two count fields plus the confidence counter per entry.
    return table_.size() * (2 * countBits_ + 2);
}

std::size_t
LoopPredictor::index(Addr pc) const
{
    return static_cast<std::size_t>(indexPc(pc)) & mask_;
}

bool
LoopPredictor::confident(Addr pc) const
{
    const Entry &e = table_[index(pc)];
    return e.confidence.value() == e.confidence.maxValue() &&
           e.tripCount > 0;
}

bool
LoopPredictor::predict(Addr pc)
{
    const Entry &e = table_[index(pc)];
    if (!confident(pc))
        return true; // loop branches are taken by default
    // Predict not-taken exactly at the learned exit.
    return e.current != e.tripCount;
}

void
LoopPredictor::update(Addr pc, bool taken)
{
    Entry &e = table_[index(pc)];
    const std::uint16_t cap =
        static_cast<std::uint16_t>(loMask(countBits_));

    if (taken) {
        if (e.current < cap) {
            ++e.current;
        } else {
            // Trip count exceeds the field: this is not a loop this
            // table can learn.
            e.confidence.set(0);
            e.tripCount = 0;
            e.current = 0;
        }
        return;
    }

    // Loop exit: compare this execution's trip count with the
    // learned one.
    if (e.current == e.tripCount && e.tripCount > 0) {
        e.confidence.increment();
    } else {
        e.tripCount = e.current;
        e.confidence.set(e.tripCount > 0 ? 1 : 0);
    }
    e.current = 0;
}

} // namespace bpsim
