/**
 * @file
 * Multi-component hybrid predictor (Evers, "Improving Branch
 * Prediction by Understanding Branch Behavior", PhD thesis,
 * University of Michigan, 2000) — the second of the paper's two
 * "most accurate known" predictors.
 *
 * Several two-level components observe the same branch stream
 * through different *global* history lengths, so each captures
 * correlation at a different distance; a *local*-history two-level
 * component covers self-correlated (loop/periodic) branches and a
 * bimodal component covers biased branches. A PC-indexed selector
 * holds one two-bit confidence counter per component and predicts
 * with the most-confident component (ties go to the longer
 * history). Confidence adapts per branch: on a hybrid
 * misprediction, components that were right gain confidence and
 * components that were wrong lose it.
 *
 * This organization is exactly what Section 2.2 of the paper calls
 * complex: multiple large tables plus selection logic between them,
 * all on the prediction critical path.
 */

#ifndef BPSIM_PREDICTORS_MULTICOMPONENT_HH
#define BPSIM_PREDICTORS_MULTICOMPONENT_HH

#include <array>
#include <memory>
#include <vector>

#include "common/sat_counter.hh"
#include "predictors/bimodal.hh"
#include "predictors/gshare.hh"
#include "predictors/local.hh"
#include "predictors/predictor.hh"

namespace bpsim {

/** Evers-style multi-component hybrid with confidence selection. */
class MultiComponentPredictor final : public DirectionPredictor
{
  public:
    /** One global two-level component: table size and history. */
    struct ComponentSpec
    {
        std::size_t entries;
        unsigned historyBits;
    };

    /**
     * @param global_specs Table size and global history length for
     *        each two-level component, ascending history (bimodal
     *        and local-history components are always added first).
     * @param selector_entries Selector table entries (power of two).
     * @param local_entries Local-history table entries (power of
     *        two); 0 omits the local component.
     * @param bimodal_entries Bimodal component entries.
     */
    MultiComponentPredictor(std::vector<ComponentSpec> global_specs,
                            std::size_t selector_entries,
                            std::size_t local_entries = 1024,
                            std::size_t bimodal_entries = 1024);

    // The slot view points at the typed members; a copied or moved
    // instance would keep aiming at the source's components.
    MultiComponentPredictor(const MultiComponentPredictor &) = delete;
    MultiComponentPredictor &
    operator=(const MultiComponentPredictor &) = delete;

    std::string name() const override { return "multicomponent"; }
    std::size_t storageBits() const override;

    // predict/update are defined inline so the whole per-branch step
    // — every component's table lookup plus selection — folds into
    // straight-line code in the devirtualized replay loop
    // (core/dispatch.hh). The components are held by concrete type
    // for the same reason: with unique_ptr<DirectionPredictor> slots
    // this predictor paid ~12 virtual calls per branch, which made
    // it (with the perceptron) the dominant cost of the fig1/fig5
    // sweeps.
    bool
    predict(Addr pc) override
    {
        const std::size_t base = selectorIndex(pc);
        std::size_t best = 0;
        std::size_t c = 0;
        unsigned best_conf = 0;
        // >= so that ties pick the longest-history component, which
        // Evers found captures the most correlation when confident.
        // Written as unconditional selects, not an if: which
        // component leads is data-dependent and effectively random,
        // so a branchy max-scan mispredicts its way through all five
        // slots.
        const auto consider = [&](bool pred) {
            componentPreds_[c] = pred;
            const unsigned conf = selector_[base + c].value();
            const bool better = conf >= best_conf;
            best_conf = better ? conf : best_conf;
            best = better ? c : best;
            ++c;
        };
        consider(bimodal_.predict(pc));
        if (local_)
            consider(local_->predict(pc));
        for (GsharePredictor &g : globals_)
            consider(g.predict(pc));
        chosen_ = best;
        selectorBase_ = base;
        lastPrediction_ = componentPreds_[chosen_];
        ++predicts_;
        ++chosenCounts_[chosen_];
        return lastPrediction_;
    }

    void
    update(Addr pc, bool taken) override
    {
        // selectorBase_ carries predict()'s index, like chosen_ and
        // componentPreds_ — update() is always paired with the
        // predict() for the same pc.
        const std::size_t base = selectorBase_;
        if (lastPrediction_ == taken) {
            // The hybrid was right: the rank rule reinforces only
            // the chosen component and leaves the others alone
            // (Evers' rule — demoting them on every success makes
            // the selector thrash on noisy branches), so the
            // per-component scan reduces to one increment.
            selector_[base + chosen_].increment();
            bimodal_.update(pc, taken);
            if (local_)
                local_->update(pc, taken);
            for (GsharePredictor &g : globals_)
                g.update(pc, taken);
            return;
        }
        // The selection failed: re-rank every component so a
        // component that handles this branch takes over.
        std::size_t c = 0;
        const auto rank = [&] {
            if (componentPreds_[c] == taken)
                selector_[base + c].increment();
            else
                selector_[base + c].decrement();
            ++c;
        };
        rank();
        bimodal_.update(pc, taken);
        if (local_) {
            rank();
            local_->update(pc, taken);
        }
        for (GsharePredictor &g : globals_) {
            rank();
            g.update(pc, taken);
        }
    }

    std::vector<PredictorStat> describeStats() const override;
    void visitState(robust::StateVisitor &v) override;

    /** Number of components including the bimodal one. */
    std::size_t numComponents() const { return components_.size(); }

    /** Hard cap on components (bimodal + local + globals). */
    static constexpr std::size_t kMaxComponents = 8;

  private:
    std::size_t
    selectorIndex(Addr pc) const
    {
        return (static_cast<std::size_t>(indexPc(pc)) &
                selectorMask_) *
               components_.size();
    }

    // Typed component storage, hot-path order: bimodal, optional
    // local, then the global components ascending history.
    BimodalPredictor bimodal_;
    std::unique_ptr<LocalPredictor> local_;
    std::vector<GsharePredictor> globals_;
    /** Non-owning slot view in the same order, for the cold paths
     *  (visitState, describeStats, storageBits) — slot numbering is
     *  part of the fault-plan/ledger naming contract. */
    std::vector<DirectionPredictor *> components_;

    /** selector_[entry * numComponents + c] */
    std::vector<SatCounter> selector_;
    std::size_t selectorMask_;

    // predict() -> update() carried state. A fixed bool array, not
    // vector<uint8_t>: byte-typed stores may alias anything, so each
    // one forced the compiler to reload every table pointer in the
    // per-branch loop; bool stores don't, and the fixed size drops
    // the heap indirection.
    std::array<bool, kMaxComponents> componentPreds_{};
    std::size_t chosen_ = 0;
    std::size_t selectorBase_ = 0;
    bool lastPrediction_ = false;

    // per-component selection accounting (describeStats)
    std::vector<Counter> chosenCounts_;
    Counter predicts_ = 0;

    /** Batched MC replay prefetches next-branch selector/component
     *  rows (core/ensemble.cc); needs selectorIndex() and the typed
     *  component members. */
    friend struct MulticomponentBatch;
};

} // namespace bpsim

#endif // BPSIM_PREDICTORS_MULTICOMPONENT_HH
