/**
 * @file
 * Multi-component hybrid predictor (Evers, "Improving Branch
 * Prediction by Understanding Branch Behavior", PhD thesis,
 * University of Michigan, 2000) — the second of the paper's two
 * "most accurate known" predictors.
 *
 * Several two-level components observe the same branch stream
 * through different *global* history lengths, so each captures
 * correlation at a different distance; a *local*-history two-level
 * component covers self-correlated (loop/periodic) branches and a
 * bimodal component covers biased branches. A PC-indexed selector
 * holds one two-bit confidence counter per component and predicts
 * with the most-confident component (ties go to the longer
 * history). Confidence adapts per branch: on a hybrid
 * misprediction, components that were right gain confidence and
 * components that were wrong lose it.
 *
 * This organization is exactly what Section 2.2 of the paper calls
 * complex: multiple large tables plus selection logic between them,
 * all on the prediction critical path.
 */

#ifndef BPSIM_PREDICTORS_MULTICOMPONENT_HH
#define BPSIM_PREDICTORS_MULTICOMPONENT_HH

#include <memory>
#include <vector>

#include "common/sat_counter.hh"
#include "predictors/bimodal.hh"
#include "predictors/gshare.hh"
#include "predictors/predictor.hh"

namespace bpsim {

/** Evers-style multi-component hybrid with confidence selection. */
class MultiComponentPredictor final : public DirectionPredictor
{
  public:
    /** One global two-level component: table size and history. */
    struct ComponentSpec
    {
        std::size_t entries;
        unsigned historyBits;
    };

    /**
     * @param global_specs Table size and global history length for
     *        each two-level component, ascending history (bimodal
     *        and local-history components are always added first).
     * @param selector_entries Selector table entries (power of two).
     * @param local_entries Local-history table entries (power of
     *        two); 0 omits the local component.
     * @param bimodal_entries Bimodal component entries.
     */
    MultiComponentPredictor(std::vector<ComponentSpec> global_specs,
                            std::size_t selector_entries,
                            std::size_t local_entries = 1024,
                            std::size_t bimodal_entries = 1024);

    std::string name() const override { return "multicomponent"; }
    std::size_t storageBits() const override;
    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;
    std::vector<PredictorStat> describeStats() const override;
    void visitState(robust::StateVisitor &v) override;

    /** Number of components including the bimodal one. */
    std::size_t numComponents() const { return components_.size(); }

  private:
    std::size_t selectorIndex(Addr pc) const;

    std::vector<std::unique_ptr<DirectionPredictor>> components_;
    /** selector_[entry * numComponents + c] */
    std::vector<SatCounter> selector_;
    std::size_t selectorMask_;

    // predict() -> update() carried state
    std::vector<bool> componentPreds_;
    std::size_t chosen_ = 0;
    bool lastPrediction_ = false;

    // per-component selection accounting (describeStats)
    std::vector<Counter> chosenCounts_;
    Counter predicts_ = 0;
};

} // namespace bpsim

#endif // BPSIM_PREDICTORS_MULTICOMPONENT_HH
