/**
 * @file
 * Alpha EV6 (21264) tournament predictor (Kessler, IEEE Micro 1999),
 * as described in Section 2.1 of the paper: a 4K-entry global
 * two-level predictor and a 1K x 10-bit local two-level predictor,
 * arbitrated by a 4K-entry chooser indexed by global history.
 */

#ifndef BPSIM_PREDICTORS_TOURNAMENT_HH
#define BPSIM_PREDICTORS_TOURNAMENT_HH

#include <vector>

#include "common/history.hh"
#include "common/sat_counter.hh"
#include "predictors/local.hh"
#include "predictors/predictor.hh"

namespace bpsim {

/** EV6-style global/local tournament hybrid. */
class TournamentPredictor : public DirectionPredictor
{
  public:
    /**
     * Defaults reproduce the EV6 configuration; all table sizes are
     * powers of two. The scale parameter multiplies every structure
     * for budget sweeps.
     */
    explicit TournamentPredictor(std::size_t global_entries = 4096,
                                 std::size_t local_entries = 1024,
                                 unsigned local_history_bits = 10,
                                 std::size_t chooser_entries = 4096);

    std::string name() const override { return "ev6-tournament"; }
    std::size_t storageBits() const override;
    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;
    std::vector<PredictorStat> describeStats() const override;

  private:
    std::size_t globalIndex() const;
    std::size_t chooserIndex() const;

    std::vector<TwoBitCounter> globalPht_;
    LocalPredictor local_;
    std::vector<TwoBitCounter> chooser_;
    std::size_t globalMask_;
    std::size_t chooserMask_;
    HistoryRegister history_;

    bool pGlobal_ = false, pLocal_ = false, pChoseGlobal_ = false;

    // per-table contribution accounting (describeStats)
    Counter predicts_ = 0;
    Counter choseGlobal_ = 0;
};

} // namespace bpsim

#endif // BPSIM_PREDICTORS_TOURNAMENT_HH
