/**
 * @file
 * Alpha EV6 (21264) tournament predictor (Kessler, IEEE Micro 1999),
 * as described in Section 2.1 of the paper: a 4K-entry global
 * two-level predictor and a 1K x 10-bit local two-level predictor,
 * arbitrated by a 4K-entry chooser indexed by global history.
 */

#ifndef BPSIM_PREDICTORS_TOURNAMENT_HH
#define BPSIM_PREDICTORS_TOURNAMENT_HH

#include "common/history.hh"
#include "common/packed_pht.hh"
#include "predictors/local.hh"
#include "predictors/predictor.hh"

namespace bpsim {

/** EV6-style global/local tournament hybrid. */
class TournamentPredictor final : public DirectionPredictor
{
  public:
    /**
     * Defaults reproduce the EV6 configuration; all table sizes are
     * powers of two. The scale parameter multiplies every structure
     * for budget sweeps.
     */
    explicit TournamentPredictor(std::size_t global_entries = 4096,
                                 std::size_t local_entries = 1024,
                                 unsigned local_history_bits = 10,
                                 std::size_t chooser_entries = 4096);

    std::string name() const override { return "ev6-tournament"; }
    std::size_t storageBits() const override;
    // Inline bodies: see the note in gshare.hh.
    bool
    predict(Addr pc) override
    {
        pGlobal_ = globalPht_.taken(globalIndex());
        pLocal_ = local_.predict(pc);
        pChoseGlobal_ = chooser_.taken(chooserIndex());
        ++predicts_;
        choseGlobal_ += pChoseGlobal_ ? 1 : 0;
        return pChoseGlobal_ ? pGlobal_ : pLocal_;
    }

    void
    update(Addr pc, bool taken) override
    {
        // Chooser trains only when the components disagree.
        if (pGlobal_ != pLocal_)
            chooser_.update(chooserIndex(), pGlobal_ == taken);
        globalPht_.update(globalIndex(), taken);
        local_.update(pc, taken);
        history_.shiftIn(taken);
    }

    std::vector<PredictorStat> describeStats() const override;

  private:
    std::size_t
    globalIndex() const
    {
        // EV6 indexes the global PHT purely by global history.
        return static_cast<std::size_t>(history_.low64()) &
               globalMask_;
    }

    std::size_t
    chooserIndex() const
    {
        return static_cast<std::size_t>(history_.low64()) &
               chooserMask_;
    }

    PackedPhtStorage globalPht_;
    LocalPredictor local_;
    PackedPhtStorage chooser_;
    std::size_t globalMask_;
    std::size_t chooserMask_;
    HistoryRegister history_;

    bool pGlobal_ = false, pLocal_ = false, pChoseGlobal_ = false;

    // per-table contribution accounting (describeStats)
    Counter predicts_ = 0;
    Counter choseGlobal_ = 0;
};

} // namespace bpsim

#endif // BPSIM_PREDICTORS_TOURNAMENT_HH
