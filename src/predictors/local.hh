/**
 * @file
 * Local two-level predictor (Yeh and Patt, MICRO-24): a PC-indexed
 * table of per-branch history registers selects into a pattern
 * history table. This is the local component of the Alpha EV6
 * tournament predictor (Section 2.1 of the paper) and supplies the
 * local-history inputs of the global+local perceptron.
 */

#ifndef BPSIM_PREDICTORS_LOCAL_HH
#define BPSIM_PREDICTORS_LOCAL_HH

#include <vector>

#include "common/bitutil.hh"
#include "common/packed_pht.hh"
#include "predictors/predictor.hh"

namespace bpsim {

/** PAg-style local-history two-level predictor. */
class LocalPredictor final : public DirectionPredictor
{
  public:
    /**
     * @param history_entries Per-branch history table entries
     *        (power of two; EV6: 1024).
     * @param history_bits Local history length (EV6: 10).
     * @param pht_entries Second-level PHT entries (power of two;
     *        0 means 2^history_bits).
     * @param counter_bits Width of the PHT counters (EV6 uses 3).
     */
    LocalPredictor(std::size_t history_entries, unsigned history_bits,
                   std::size_t pht_entries = 0,
                   unsigned counter_bits = 2);

    std::string name() const override { return "local"; }
    std::size_t storageBits() const override
    {
        return histories_.size() * historyBits_ +
               pht_.size() * counterBits_;
    }
    // Inline bodies: see the note in gshare.hh.
    bool
    predict(Addr pc) override
    {
        lastHistIndex_ = historyIndex(pc);
        lastPhtIndex_ = static_cast<std::size_t>(
                            histories_[lastHistIndex_]) &
                        phtMask_;
        return pht_.taken(lastPhtIndex_);
    }

    void
    update(Addr /*pc*/, bool taken) override
    {
        // Both indices carry over from predict(): update() is always
        // paired with the predict() for the same pc, and the local
        // history entry only shifts below, after the PHT index has
        // been consumed — exactly the order the recompute preserved.
        pht_.update(lastPhtIndex_, taken);
        auto &h = histories_[lastHistIndex_];
        h = ((h << 1) | (taken ? 1 : 0)) & loMask(historyBits_);
    }

    void visitState(robust::StateVisitor &v) override;

    /** Raw local history of @p pc's entry (for the perceptron). */
    std::uint64_t
    localHistory(Addr pc) const
    {
        return histories_[historyIndex(pc)];
    }

  private:
    std::size_t
    historyIndex(Addr pc) const
    {
        return static_cast<std::size_t>(indexPc(pc)) & histMask_;
    }

    std::size_t
    phtIndex(Addr pc) const
    {
        return static_cast<std::size_t>(
                   histories_[historyIndex(pc)]) &
               phtMask_;
    }

    std::vector<std::uint64_t> histories_;
    PackedSatStorage pht_;
    unsigned historyBits_;
    unsigned counterBits_;
    std::size_t histMask_;
    std::size_t phtMask_;

    // predict() -> update() carried state
    std::size_t lastHistIndex_ = 0;
    std::size_t lastPhtIndex_ = 0;

    /** Batched MC replay prefetches next-branch history words
     *  (core/ensemble.cc); needs historyIndex() and histories_. */
    friend struct MulticomponentBatch;
};

} // namespace bpsim

#endif // BPSIM_PREDICTORS_LOCAL_HH
