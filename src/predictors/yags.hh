/**
 * @file
 * YAGS — "Yet Another Global Scheme" (Eden and Mudge, MICRO-31).
 *
 * A refinement of the Bi-Mode idea: a PC-indexed choice PHT supplies
 * the bias, and two small *tagged* direction caches (taken-cache and
 * not-taken-cache) store only the exceptions — instances where the
 * outcome disagrees with the bias. Tags eliminate most destructive
 * aliasing at a fraction of Bi-Mode's direction-bank storage. It
 * belongs to the same "cleverer indexing, more logic levels" family
 * the paper weighs against pipelinable simplicity.
 */

#ifndef BPSIM_PREDICTORS_YAGS_HH
#define BPSIM_PREDICTORS_YAGS_HH

#include <vector>

#include "common/bitutil.hh"

#include "common/history.hh"
#include "common/packed_pht.hh"
#include "common/sat_counter.hh"
#include "predictors/predictor.hh"

namespace bpsim {

/** YAGS: choice PHT + tagged exception caches. */
class YagsPredictor final : public DirectionPredictor
{
  public:
    /**
     * @param choice_entries Choice PHT entries (power of two).
     * @param cache_entries Entries in *each* exception cache
     *        (power of two).
     * @param tag_bits Partial tag width (6-8 in the paper).
     */
    YagsPredictor(std::size_t choice_entries,
                  std::size_t cache_entries, unsigned tag_bits = 8);

    std::string name() const override { return "yags"; }
    std::size_t storageBits() const override;
    // Inline bodies: see the note in gshare.hh.
    bool
    predict(Addr pc) override
    {
        lastBiasTaken_ = choice_.taken(choiceIndex(pc));
        const auto &cache =
            lastBiasTaken_ ? takenCache_ : notTakenCache_;
        const CacheEntry &e = cache[cacheIndex(pc)];
        lastFromCache_ = e.valid && e.tag == tagOf(pc);
        lastPrediction_ =
            lastFromCache_ ? e.counter.taken() : lastBiasTaken_;
        return lastPrediction_;
    }

    void
    update(Addr pc, bool taken) override
    {
        auto &cache = lastBiasTaken_ ? takenCache_ : notTakenCache_;
        CacheEntry &e = cache[cacheIndex(pc)];

        if (lastFromCache_) {
            // Train the exception entry that made the prediction.
            e.counter.update(taken);
        } else if (taken != lastBiasTaken_) {
            // The bias failed and no exception was recorded: allocate.
            e.valid = true;
            e.tag = tagOf(pc);
            e.counter.set(taken ? 2 : 1);
        }

        // The choice PHT trains toward the outcome except when it was
        // successfully overridden by the exception cache (the Bi-Mode
        // partial-update rule).
        const bool cache_correct =
            lastFromCache_ && lastPrediction_ == taken;
        if (!(lastBiasTaken_ != taken && cache_correct))
            choice_.update(choiceIndex(pc), taken);

        history_.shiftIn(taken);
    }

  private:
    struct CacheEntry
    {
        std::uint16_t tag = 0;
        TwoBitCounter counter;
        bool valid = false;
    };

    std::size_t
    choiceIndex(Addr pc) const
    {
        return static_cast<std::size_t>(indexPc(pc)) & choiceMask_;
    }

    std::size_t
    cacheIndex(Addr pc) const
    {
        const std::uint64_t h = history_.low(cacheIndexBits_);
        return static_cast<std::size_t>((indexPc(pc) ^ h) &
                                        cacheMask_);
    }

    std::uint16_t
    tagOf(Addr pc) const
    {
        return static_cast<std::uint16_t>(indexPc(pc) &
                                          loMask(tagBits_));
    }

    PackedPhtStorage choice_;
    std::vector<CacheEntry> takenCache_;    ///< exceptions when bias=T
    std::vector<CacheEntry> notTakenCache_; ///< exceptions when bias=NT
    std::size_t choiceMask_;
    std::size_t cacheMask_;
    unsigned cacheIndexBits_;
    unsigned tagBits_;
    HistoryRegister history_;

    // predict() -> update() carried state
    bool lastBiasTaken_ = false;
    bool lastFromCache_ = false;
    bool lastPrediction_ = false;
};

} // namespace bpsim

#endif // BPSIM_PREDICTORS_YAGS_HH
