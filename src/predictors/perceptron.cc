#include "predictors/perceptron.hh"

#include <cassert>

#include "common/bitutil.hh"
#include "common/vec_kernels.hh"
#include "robust/state_visitor.hh"

namespace bpsim {

PerceptronPredictor::PerceptronPredictor(std::size_t num_perceptrons,
                                         unsigned global_bits,
                                         unsigned local_bits,
                                         std::size_t local_entries,
                                         unsigned weight_bits)
    : globalBits_(global_bits),
      localBits_(local_bits),
      weightBits_(weight_bits),
      numRows_(num_perceptrons),
      localMask_(local_entries - 1),
      threshold_(static_cast<int>(1.93 * (global_bits + local_bits)) +
                 14),
      weightMin_(-(1 << (weight_bits - 1))),
      weightMax_((1 << (weight_bits - 1)) - 1),
      rowStride_(1 + global_bits + local_bits),
      globalHistory_(global_bits),
      localHistories_(local_bits > 0 ? local_entries : 0, 0),
      inputs_(1 + global_bits + local_bits, 0)
{
    assert(num_perceptrons >= 1);
    assert(local_bits == 0 || isPowerOfTwo(local_entries));
    assert(weight_bits >= 2 && weight_bits <= 16);
    weights_.assign(num_perceptrons * rowStride_, 0);
    inputs_[0] = 1; // bias input is constant
}

std::size_t
PerceptronPredictor::storageBits() const
{
    return weights_.size() * weightBits_ +
           localHistories_.size() * localBits_ +
           globalHistory_.length();
}

std::size_t
PerceptronPredictor::rowIndex(Addr pc) const
{
    // The row count need not be a power of two (the weight table is
    // indexed by a small modulo, as in the TOCS design), which lets
    // configurations use their full hardware budget.
    return static_cast<std::size_t>(indexPc(pc)) % numRows_;
}

std::size_t
PerceptronPredictor::localIndex(Addr pc) const
{
    return static_cast<std::size_t>(indexPc(pc)) & localMask_;
}

void
PerceptronPredictor::visitState(robust::StateVisitor &v)
{
    v.visit(robust::weightField("pred.perceptron.weights", weights_,
                                weightBits_));
    if (!localHistories_.empty())
        v.visit(robust::wordArrayField(
            "pred.perceptron.local_histories", localHistories_,
            localBits_));
    v.visit(robust::historyField("pred.perceptron.global_history",
                                 globalHistory_));
}

void
PerceptronPredictor::fillInputs(Addr pc)
{
    std::int16_t *x = inputs_.data() + 1;
    for (unsigned i = 0; i < globalBits_; ++i)
        x[i] = globalHistory_.bit(i) ? 1 : -1;
    if (localBits_ > 0) {
        const std::uint64_t lh = localHistories_[localIndex(pc)];
        std::int16_t *lx = x + globalBits_;
        for (unsigned i = 0; i < localBits_; ++i)
            lx[i] = ((lh >> i) & 1) ? 1 : -1;
    }
}

bool
PerceptronPredictor::predict(Addr pc)
{
    fillInputs(pc);
    const std::int16_t *row = &weights_[rowIndex(pc) * rowStride_];
    lastOutput_ = dotSignedI16(row, inputs_.data(), rowStride_);
    return lastOutput_ >= 0;
}

void
PerceptronPredictor::update(Addr pc, bool taken)
{
    const bool predicted = lastOutput_ >= 0;
    const int magnitude =
        lastOutput_ >= 0 ? lastOutput_ : -lastOutput_;
    // Train on mispredictions and on low-confidence correct
    // predictions (|y| <= theta), per the TOCS training rule. The
    // inputs are refilled from live state rather than reused from
    // predict() so callers (and fault injection) that touch history
    // between the two calls see the same behaviour as the
    // per-element implementation did.
    if (predicted != taken || magnitude <= threshold_) {
        fillInputs(pc);
        std::int16_t *row = &weights_[rowIndex(pc) * rowStride_];
        trainSignedI16(row, inputs_.data(), rowStride_,
                       taken ? 1 : -1, weightMin_, weightMax_);
    }

    globalHistory_.shiftIn(taken);
    if (localBits_ > 0) {
        auto &lh = localHistories_[localIndex(pc)];
        lh = ((lh << 1) | (taken ? 1 : 0)) & loMask(localBits_);
    }
}

} // namespace bpsim
