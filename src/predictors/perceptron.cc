#include "predictors/perceptron.hh"

#include <cassert>

#include "common/bitutil.hh"
#include "robust/state_visitor.hh"

namespace bpsim {

PerceptronPredictor::PerceptronPredictor(std::size_t num_perceptrons,
                                         unsigned global_bits,
                                         unsigned local_bits,
                                         std::size_t local_entries,
                                         unsigned weight_bits)
    : globalBits_(global_bits),
      localBits_(local_bits),
      weightBits_(weight_bits),
      numRows_(num_perceptrons),
      localMask_(local_entries - 1),
      threshold_(static_cast<int>(1.93 * (global_bits + local_bits)) +
                 14),
      rowStride_(1 + global_bits + local_bits),
      globalHistory_(global_bits),
      localHistories_(local_bits > 0 ? local_entries : 0, 0)
{
    assert(num_perceptrons >= 1);
    assert(local_bits == 0 || isPowerOfTwo(local_entries));
    weights_.assign(num_perceptrons * rowStride_,
                    SignedWeight(weight_bits, 0));
}

std::size_t
PerceptronPredictor::storageBits() const
{
    return weights_.size() * weightBits_ +
           localHistories_.size() * localBits_ +
           globalHistory_.length();
}

std::size_t
PerceptronPredictor::rowIndex(Addr pc) const
{
    // The row count need not be a power of two (the weight table is
    // indexed by a small modulo, as in the TOCS design), which lets
    // configurations use their full hardware budget.
    return static_cast<std::size_t>(indexPc(pc)) % numRows_;
}

std::size_t
PerceptronPredictor::localIndex(Addr pc) const
{
    return static_cast<std::size_t>(indexPc(pc)) & localMask_;
}

void
PerceptronPredictor::visitState(robust::StateVisitor &v)
{
    v.visit(robust::weightField("pred.perceptron.weights", weights_,
                                weightBits_));
    if (!localHistories_.empty())
        v.visit(robust::wordArrayField(
            "pred.perceptron.local_histories", localHistories_,
            localBits_));
    v.visit(robust::historyField("pred.perceptron.global_history",
                                 globalHistory_));
}

bool
PerceptronPredictor::predict(Addr pc)
{
    const SignedWeight *row = &weights_[rowIndex(pc) * rowStride_];
    int y = row[0].value(); // bias weight (input fixed at 1)
    for (unsigned i = 0; i < globalBits_; ++i) {
        const int x = globalHistory_.bit(i) ? 1 : -1;
        y += x * row[1 + i].value();
    }
    if (localBits_ > 0) {
        const std::uint64_t lh = localHistories_[localIndex(pc)];
        for (unsigned i = 0; i < localBits_; ++i) {
            const int x = ((lh >> i) & 1) ? 1 : -1;
            y += x * row[1 + globalBits_ + i].value();
        }
    }
    lastOutput_ = y;
    return y >= 0;
}

void
PerceptronPredictor::update(Addr pc, bool taken)
{
    const bool predicted = lastOutput_ >= 0;
    const int magnitude =
        lastOutput_ >= 0 ? lastOutput_ : -lastOutput_;
    // Train on mispredictions and on low-confidence correct
    // predictions (|y| <= theta), per the TOCS training rule.
    if (predicted != taken || magnitude <= threshold_) {
        SignedWeight *row = &weights_[rowIndex(pc) * rowStride_];
        row[0].train(taken);
        for (unsigned i = 0; i < globalBits_; ++i) {
            const bool x = globalHistory_.bit(i);
            row[1 + i].train(x == taken);
        }
        if (localBits_ > 0) {
            const std::uint64_t lh = localHistories_[localIndex(pc)];
            for (unsigned i = 0; i < localBits_; ++i) {
                const bool x = (lh >> i) & 1;
                row[1 + globalBits_ + i].train(x == taken);
            }
        }
    }

    globalHistory_.shiftIn(taken);
    if (localBits_ > 0) {
        auto &lh = localHistories_[localIndex(pc)];
        lh = ((lh << 1) | (taken ? 1 : 0)) & loMask(localBits_);
    }
}

} // namespace bpsim
