/**
 * @file
 * gshare.fast — the paper's contribution (Section 3), functional
 * model.
 *
 * gshare.fast reorganizes gshare's index so the predictor can be
 * pipelined: the *older* history bits (positions >= 9) select a wide
 * PHT row, which is prefetched over several cycles into a PHT
 * buffer; at prediction time the lower nine branch-PC bits XOR the
 * newest (speculative) history bits to select one counter within the
 * buffered row in a single cycle (Figure 3/4 of the paper). Because
 * the branch address only ever touches the low 9 index bits, there
 * is no dependence between the address and the prefetch, which is
 * the property that makes pipelining possible.
 *
 * This class is the *functional* model: it computes the predictions
 * such a predictor makes, including the two fidelity knobs that
 * distinguish it from plain gshare —
 *  - rowLag: the row index is computed from history as it stood a
 *    few branches ago (the prefetch started rowLag cycles before the
 *    prediction; worst case one branch per cycle);
 *  - updateDelay: non-speculative PHT updates are applied up to N
 *    branches late (Section 3.2's "update the table slowly" policy).
 * The cycle-accurate pipeline (src/pipeline/gshare_fast_engine) is
 * validated against this model.
 */

#ifndef BPSIM_PREDICTORS_GSHARE_FAST_HH
#define BPSIM_PREDICTORS_GSHARE_FAST_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/bitutil.hh"
#include "common/packed_pht.hh"
#include "predictors/predictor.hh"

namespace bpsim {

/** Functional model of the pipelined gshare.fast predictor. */
class GshareFastPredictor final : public DirectionPredictor
{
  public:
    /** Width of the within-row select (paper: lower 9 PC bits). */
    static constexpr unsigned selectBits = 9;

    /**
     * @param entries PHT entry count (power of two).
     * @param row_lag Branches of staleness in the row-select history
     *        (the PHT access latency; paper's running example is 3).
     * @param update_delay Branches between a prediction and its PHT
     *        counter update (0 = immediate; Section 3.2 studies 64).
     */
    explicit GshareFastPredictor(std::size_t entries,
                                 unsigned row_lag = 3,
                                 unsigned update_delay = 0);

    std::string name() const override { return "gshare.fast"; }
    std::size_t storageBits() const override
    {
        return pht_.size() * 2 + historyBits_;
    }
    // Inline bodies: see the note in gshare.hh.
    bool
    predict(Addr pc) override
    {
        lastIndex_ = indexFor(pc);
        return pht_.taken(lastIndex_);
    }

    void
    update(Addr /*pc*/, bool taken) override
    {
        // lastIndex_ carries predict()'s index: update() is always
        // paired with the predict() for the same pc, and neither the
        // history nor the ring has advanced in between.
        if (updateDelay_ == 0) {
            // Immediate update: the pending queue would be emptied
            // right after the push anyway, so skip it entirely.
            pht_.update(lastIndex_, taken);
        } else {
            // Non-speculative PHT update applied slowly: enqueue
            // now, retire once updateDelay_ younger branches have
            // passed.
            pending_.emplace_back(lastIndex_, taken);
            while (pending_.size() > updateDelay_) {
                const auto [idx, dir] = pending_.front();
                pending_.pop_front();
                pht_.update(idx, dir);
            }
        }

        // Speculative history update with perfect recovery == shift
        // in the actual outcome (see predictor.hh).
        history_ = ((history_ << 1) | (taken ? 1 : 0)) &
                   loMask(historyBits_);
        ringPos_ = (ringPos_ + 1) & ringMask_;
        historyRing_[ringPos_] = history_;
    }

    void visitState(robust::StateVisitor &v) override;

    /** History length (== log2 entries, as for gshare). */
    unsigned historyBits() const { return historyBits_; }
    /** Within-row select width for this geometry. */
    unsigned rowSelectBits() const { return selBits_; }
    /** Row (line) count in the PHT. */
    std::size_t rows() const
    {
        return pht_.size() >> selBits_;
    }

    /** Index the full PHT for a (pc, current-history) pair — used by
     *  the pipelined engine's equivalence tests. */
    std::size_t
    indexFor(Addr pc) const
    {
        // Row from *stale* history (the prefetch began rowLag
        // branches ago), column from the freshest speculative history
        // XOR the low PC bits. The fetch-time bit that sits at
        // select-boundary position selBits at prediction time was at
        // position (selBits - rowLag) when the row address was
        // formed, so the row shift is selBits - rowLag: together the
        // column and row then observe a contiguous history window,
        // which is why the buffer must hold at least 2^latency
        // entries (Section 3.3.1). With rowLag == 0 the row uses
        // current history and the only difference from gshare is that
        // PC bits stop at bit selBits.
        const std::uint64_t lagged =
            historyRing_[(ringPos_ + historyRing_.size() - rowLag_) &
                         ringMask_];
        const std::uint64_t row =
            (lagged >> (selBits_ - rowLag_)) &
            loMask(historyBits_ - selBits_);
        const std::uint64_t col =
            (indexPc(pc) ^ history_) & loMask(selBits_);
        return static_cast<std::size_t>((row << selBits_) | col);
    }

  private:
    PackedPhtStorage pht_;
    unsigned historyBits_;
    unsigned selBits_;
    unsigned rowLag_;
    unsigned updateDelay_;

    std::uint64_t history_ = 0;
    /** Ring of past history values, power-of-two capacity (>= the
     *  rowLag_+1 live entries) so position arithmetic is a mask
     *  instead of a division; [ringPos_] is current. */
    std::vector<std::uint64_t> historyRing_;
    std::size_t ringMask_;
    std::size_t ringPos_ = 0;

    // predict() -> update() carried state
    std::size_t lastIndex_ = 0;

    /** Pending delayed PHT updates: (index, taken). */
    std::deque<std::pair<std::size_t, bool>> pending_;
};

} // namespace bpsim

#endif // BPSIM_PREDICTORS_GSHARE_FAST_HH
