/**
 * @file
 * gshare.fast — the paper's contribution (Section 3), functional
 * model.
 *
 * gshare.fast reorganizes gshare's index so the predictor can be
 * pipelined: the *older* history bits (positions >= 9) select a wide
 * PHT row, which is prefetched over several cycles into a PHT
 * buffer; at prediction time the lower nine branch-PC bits XOR the
 * newest (speculative) history bits to select one counter within the
 * buffered row in a single cycle (Figure 3/4 of the paper). Because
 * the branch address only ever touches the low 9 index bits, there
 * is no dependence between the address and the prefetch, which is
 * the property that makes pipelining possible.
 *
 * This class is the *functional* model: it computes the predictions
 * such a predictor makes, including the two fidelity knobs that
 * distinguish it from plain gshare —
 *  - rowLag: the row index is computed from history as it stood a
 *    few branches ago (the prefetch started rowLag cycles before the
 *    prediction; worst case one branch per cycle);
 *  - updateDelay: non-speculative PHT updates are applied up to N
 *    branches late (Section 3.2's "update the table slowly" policy).
 * The cycle-accurate pipeline (src/pipeline/gshare_fast_engine) is
 * validated against this model.
 */

#ifndef BPSIM_PREDICTORS_GSHARE_FAST_HH
#define BPSIM_PREDICTORS_GSHARE_FAST_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/sat_counter.hh"
#include "predictors/predictor.hh"

namespace bpsim {

/** Functional model of the pipelined gshare.fast predictor. */
class GshareFastPredictor : public DirectionPredictor
{
  public:
    /** Width of the within-row select (paper: lower 9 PC bits). */
    static constexpr unsigned selectBits = 9;

    /**
     * @param entries PHT entry count (power of two).
     * @param row_lag Branches of staleness in the row-select history
     *        (the PHT access latency; paper's running example is 3).
     * @param update_delay Branches between a prediction and its PHT
     *        counter update (0 = immediate; Section 3.2 studies 64).
     */
    explicit GshareFastPredictor(std::size_t entries,
                                 unsigned row_lag = 3,
                                 unsigned update_delay = 0);

    std::string name() const override { return "gshare.fast"; }
    std::size_t storageBits() const override
    {
        return pht_.size() * 2 + historyBits_;
    }
    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;
    void visitState(robust::StateVisitor &v) override;

    /** History length (== log2 entries, as for gshare). */
    unsigned historyBits() const { return historyBits_; }
    /** Within-row select width for this geometry. */
    unsigned rowSelectBits() const { return selBits_; }
    /** Row (line) count in the PHT. */
    std::size_t rows() const
    {
        return pht_.size() >> selBits_;
    }

    /** Index the full PHT for a (pc, current-history) pair — used by
     *  the pipelined engine's equivalence tests. */
    std::size_t indexFor(Addr pc) const;

  private:
    std::vector<TwoBitCounter> pht_;
    unsigned historyBits_;
    unsigned selBits_;
    unsigned rowLag_;
    unsigned updateDelay_;

    std::uint64_t history_ = 0;
    /** Ring of past history values; [0] is current. */
    std::vector<std::uint64_t> historyRing_;
    std::size_t ringPos_ = 0;

    /** Pending delayed PHT updates: (index, taken). */
    std::deque<std::pair<std::size_t, bool>> pending_;
};

} // namespace bpsim

#endif // BPSIM_PREDICTORS_GSHARE_FAST_HH
