/**
 * @file
 * Trivial static predictors, used as baselines and in tests.
 */

#ifndef BPSIM_PREDICTORS_STATIC_PRED_HH
#define BPSIM_PREDICTORS_STATIC_PRED_HH

#include "predictors/predictor.hh"

namespace bpsim {

/** Predicts a fixed direction for every branch. */
class StaticPredictor : public DirectionPredictor
{
  public:
    explicit StaticPredictor(bool taken = true) : taken_(taken) {}

    std::string name() const override
    {
        return taken_ ? "always-taken" : "always-not-taken";
    }
    std::size_t storageBits() const override { return 0; }
    bool predict(Addr) override { return taken_; }
    void update(Addr, bool) override {}

  private:
    bool taken_;
};

} // namespace bpsim

#endif // BPSIM_PREDICTORS_STATIC_PRED_HH
