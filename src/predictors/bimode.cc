#include "predictors/bimode.hh"

#include <cassert>

#include "common/bitutil.hh"

namespace bpsim {

BiModePredictor::BiModePredictor(std::size_t direction_entries,
                                 std::size_t choice_entries)
    : takenBank_(direction_entries, 2), // taken bank starts weakly taken
      notTakenBank_(direction_entries, 1),
      choice_(choice_entries == 0 ? direction_entries : choice_entries),
      dirMask_(direction_entries - 1),
      choiceMask_(choice_.size() - 1),
      dirIndexBits_(floorLog2(direction_entries)),
      history_(floorLog2(direction_entries))
{
    assert(isPowerOfTwo(direction_entries));
    assert(isPowerOfTwo(choice_.size()));
}

} // namespace bpsim
