#include "predictors/bimode.hh"

#include <cassert>

#include "common/bitutil.hh"

namespace bpsim {

BiModePredictor::BiModePredictor(std::size_t direction_entries,
                                 std::size_t choice_entries)
    : takenBank_(direction_entries,
                 TwoBitCounter(2)), // taken bank starts weakly taken
      notTakenBank_(direction_entries, TwoBitCounter(1)),
      choice_(choice_entries == 0 ? direction_entries : choice_entries),
      dirMask_(direction_entries - 1),
      choiceMask_(choice_.size() - 1),
      dirIndexBits_(floorLog2(direction_entries)),
      history_(floorLog2(direction_entries))
{
    assert(isPowerOfTwo(direction_entries));
    assert(isPowerOfTwo(choice_.size()));
}

std::size_t
BiModePredictor::directionIndex(Addr pc) const
{
    const std::uint64_t h = history_.length() > dirIndexBits_
                                ? history_.fold(dirIndexBits_)
                                : history_.low64();
    return static_cast<std::size_t>((indexPc(pc) ^ h) & dirMask_);
}

std::size_t
BiModePredictor::choiceIndex(Addr pc) const
{
    return static_cast<std::size_t>(indexPc(pc)) & choiceMask_;
}

bool
BiModePredictor::predict(Addr pc)
{
    lastChoiceTaken_ = choice_[choiceIndex(pc)].taken();
    const std::size_t di = directionIndex(pc);
    lastPrediction_ = lastChoiceTaken_ ? takenBank_[di].taken()
                                       : notTakenBank_[di].taken();
    return lastPrediction_;
}

void
BiModePredictor::update(Addr pc, bool taken)
{
    const std::size_t di = directionIndex(pc);
    // Only the bank that made the prediction is trained, preserving
    // each bank's bias.
    if (lastChoiceTaken_)
        takenBank_[di].update(taken);
    else
        notTakenBank_[di].update(taken);

    // The choice PHT trains toward the outcome, except when it was
    // overruled successfully: choice disagreed with the outcome but
    // the selected bank still predicted correctly.
    const bool selected_correct = lastPrediction_ == taken;
    if (!(lastChoiceTaken_ != taken && selected_correct))
        choice_[choiceIndex(pc)].update(taken);

    history_.shiftIn(taken);
}

} // namespace bpsim
