/**
 * @file
 * The branch direction predictor interface.
 *
 * The paper (and this reproduction) is concerned only with
 * *direction* prediction — taken vs. not-taken for conditional
 * branches (Section 3.3.3); target prediction is the BTB's job in
 * src/sim.
 *
 * Contract: the driver calls predict(pc), then update(pc, taken)
 * for the same branch before the next predict(). Predictors may
 * cache per-prediction state between the two calls. History
 * registers are updated inside update() with the *actual* outcome,
 * which implements the paper's optimistic "speculative update with
 * zero-latency misprediction recovery" assumption (Section 4.1.2):
 * in a trace-driven run the recovered speculative history is exactly
 * the actual outcome history.
 */

#ifndef BPSIM_PREDICTORS_PREDICTOR_HH
#define BPSIM_PREDICTORS_PREDICTOR_HH

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.hh"

namespace bpsim {

namespace robust {
class StateVisitor;
} // namespace robust

/**
 * One named internal statistic a predictor chooses to expose —
 * table occupancy, per-component contribution of a hybrid, history
 * length. Names follow the observability convention
 * (`pred.<family>.<stat>{label=value}`, docs/OBSERVABILITY.md) so
 * they drop straight into a MetricRegistry or RunReport.
 */
struct PredictorStat
{
    std::string name;
    double value = 0.0;
};

/** Abstract conditional-branch direction predictor. */
class DirectionPredictor
{
  public:
    virtual ~DirectionPredictor() = default;

    /** Short name for reports, e.g. "gshare". */
    virtual std::string name() const = 0;

    /** Total predictor state in bits (the paper's hardware budget). */
    virtual std::size_t storageBits() const = 0;

    /** Predict the direction of the branch at @p pc. */
    virtual bool predict(Addr pc) = 0;

    /**
     * Train on the resolved outcome of the branch last passed to
     * predict(). @p taken is the actual direction.
     */
    virtual void update(Addr pc, bool taken) = 0;

    /** Hardware budget in bytes (rounded up). */
    std::size_t storageBytes() const { return (storageBits() + 7) / 8; }

    /**
     * Describe internal state for reports: table occupancy,
     * per-table contribution for hybrids, adaptation counters.
     * Called at end of run — implementations may scan their tables.
     * The default exposes nothing.
     */
    virtual std::vector<PredictorStat> describeStats() const
    {
        return {};
    }

    /**
     * Expose every bit of SRAM state to @p v (robust/state_visitor.hh)
     * for fault injection and state audits. Implementations present
     * the exact storage storageBits() charges, as named fields. The
     * default exposes nothing (predictors without the hook simply
     * cannot be bombarded).
     */
    virtual void visitState(robust::StateVisitor &v) { (void)v; }

  protected:
    /**
     * Branch PCs in this simulator sit at 16-byte-aligned static
     * slots (see Tracer), so predictors drop the constant low bits —
     * the analogue of real predictors dropping the instruction
     * alignment bits.
     */
    static Addr indexPc(Addr pc) { return pc >> 4; }
};

} // namespace bpsim

#endif // BPSIM_PREDICTORS_PREDICTOR_HH
