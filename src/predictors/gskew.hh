/**
 * @file
 * 2Bc-gskew predictor (Michaud/Seznec/Uhlig ISCA-24; Seznec et al.,
 * "Design Tradeoffs for the Alpha EV8 Conditional Branch Predictor",
 * ISCA-29).
 *
 * Four banks of two-bit counters: BIM (a bimodal bias table), two
 * skewed global-history banks G0/G1, and a META chooser. The e-gskew
 * side predicts by majority vote of {BIM, G0, G1} with each bank
 * indexed through a different skewing hash so that an address/history
 * pair that conflicts in one bank rarely conflicts in the others;
 * META selects between the bimodal side and the e-gskew side.
 * Partial update keeps the banks from being polluted by branches the
 * other side already predicts well. This is the paper's stand-in for
 * a practical, industrial-strength complex predictor.
 */

#ifndef BPSIM_PREDICTORS_GSKEW_HH
#define BPSIM_PREDICTORS_GSKEW_HH

#include "common/bitutil.hh"
#include "common/history.hh"
#include "common/packed_pht.hh"
#include "predictors/predictor.hh"

namespace bpsim {

/** EV8-style 2Bc-gskew hybrid. */
class GskewPredictor final : public DirectionPredictor
{
  public:
    /**
     * @param bank_entries Entries per bank (power of two); the total
     *        budget is 4 banks x entries x 2 bits.
     * @param history_bits Global history length; 0 picks the EV8-ish
     *        default of 1.5x the bank index width.
     */
    explicit GskewPredictor(std::size_t bank_entries,
                            unsigned history_bits = 0);

    std::string name() const override { return "2bc-gskew"; }
    std::size_t storageBits() const override
    {
        return (bim_.size() + g0_.size() + g1_.size() + meta_.size()) *
                   2 +
               history_.length();
    }
    // Inline bodies: see the note in gshare.hh.
    bool
    predict(Addr pc) override
    {
        const Indices idx = lastIdx_ = indices(pc);
        pBim_ = bim_.taken(idx.bim);
        pG0_ = g0_.taken(idx.g0);
        pG1_ = g1_.taken(idx.g1);
        const int votes =
            (pBim_ ? 1 : 0) + (pG0_ ? 1 : 0) + (pG1_ ? 1 : 0);
        pEgskew_ = votes >= 2;
        pMetaGskew_ = meta_.taken(idx.meta);
        pFinal_ = pMetaGskew_ ? pEgskew_ : pBim_;
        return pFinal_;
    }

    void
    update(Addr /*pc*/, bool taken) override
    {
        // The four bank indices carry over from predict(): update()
        // is always paired with the predict() for the same pc, and
        // the history has not shifted in between, so the skewing
        // hashes and the history fold would come out identical —
        // recomputing them cost more than the bank updates below.
        const Indices idx = lastIdx_;
        const bool correct = pFinal_ == taken;

        if (correct) {
            // Partial update: strengthen only the side that was used,
            // and within the e-gskew side only the banks that agreed.
            if (pMetaGskew_) {
                if (pBim_ == taken)
                    bim_.update(idx.bim, taken);
                if (pG0_ == taken)
                    g0_.update(idx.g0, taken);
                if (pG1_ == taken)
                    g1_.update(idx.g1, taken);
            } else {
                bim_.update(idx.bim, taken);
            }
            // Reinforce META only when the two sides disagreed, i.e.
            // when the choice actually mattered.
            if (pEgskew_ != pBim_)
                meta_.update(idx.meta, pMetaGskew_);
        } else {
            // Full update on a misprediction: retrain everything.
            bim_.update(idx.bim, taken);
            g0_.update(idx.g0, taken);
            g1_.update(idx.g1, taken);
            if (pEgskew_ != pBim_) {
                // Train META toward whichever side was right.
                meta_.update(idx.meta, pEgskew_ == taken);
            }
        }

        history_.shiftIn(taken);
    }

    void visitState(robust::StateVisitor &v) override;

  private:
    struct Indices
    {
        std::size_t bim, g0, g1, meta;
    };

    /**
     * The skewing functions of Michaud/Seznec/Uhlig build each bank's
     * index from a different invertible mix of the same (pc, history)
     * pair. We use H(x) = rotate/xor mixes that are cheap and give
     * the required inter-bank dispersion.
     */
    static std::uint64_t
    skewMix(std::uint64_t v, unsigned bits, unsigned variant)
    {
        const std::uint64_t m = loMask(bits);
        std::uint64_t x = v & m;
        const std::uint64_t hi = (v >> bits) & m;
        switch (variant) {
          case 0:
            return x ^ hi;
          case 1:
            // H: x -> (x >> 1) ^ (lsb ? taps : 0), an LFSR step.
            return ((x >> 1) ^
                    ((x & 1) ? (m >> 1) ^ (m >> 3) : 0) ^ hi) &
                   m;
          default:
            // H^-1-ish: shift left with feedback.
            return ((x << 1) ^
                    ((x >> (bits - 1)) & 1 ? 0x5 : 0) ^ hi) &
                   m;
        }
    }

    Indices
    indices(Addr pc) const
    {
        const std::uint64_t a = indexPc(pc);
        const std::uint64_t h = history_.fold(indexBits_);
        const std::uint64_t hshort = history_.low(indexBits_ / 2);
        Indices idx;
        idx.bim = static_cast<std::size_t>(a & mask_);
        idx.g0 = static_cast<std::size_t>(
            skewMix(a ^ h, indexBits_, 1) & mask_);
        idx.g1 = static_cast<std::size_t>(
            skewMix((a << 1) ^ h, indexBits_, 2) & mask_);
        // META sees the address and a short history, as in the EV8
        // design.
        idx.meta =
            static_cast<std::size_t>((a ^ (hshort << 1)) & mask_);
        return idx;
    }

    PackedPhtStorage bim_;
    PackedPhtStorage g0_;
    PackedPhtStorage g1_;
    PackedPhtStorage meta_;
    std::size_t mask_;
    unsigned indexBits_;
    HistoryRegister history_;

    // predict() -> update() carried state
    Indices lastIdx_ = {0, 0, 0, 0};
    bool pBim_ = false, pG0_ = false, pG1_ = false;
    bool pEgskew_ = false, pMetaGskew_ = false, pFinal_ = false;
};

} // namespace bpsim

#endif // BPSIM_PREDICTORS_GSKEW_HH
