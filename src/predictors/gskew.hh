/**
 * @file
 * 2Bc-gskew predictor (Michaud/Seznec/Uhlig ISCA-24; Seznec et al.,
 * "Design Tradeoffs for the Alpha EV8 Conditional Branch Predictor",
 * ISCA-29).
 *
 * Four banks of two-bit counters: BIM (a bimodal bias table), two
 * skewed global-history banks G0/G1, and a META chooser. The e-gskew
 * side predicts by majority vote of {BIM, G0, G1} with each bank
 * indexed through a different skewing hash so that an address/history
 * pair that conflicts in one bank rarely conflicts in the others;
 * META selects between the bimodal side and the e-gskew side.
 * Partial update keeps the banks from being polluted by branches the
 * other side already predicts well. This is the paper's stand-in for
 * a practical, industrial-strength complex predictor.
 */

#ifndef BPSIM_PREDICTORS_GSKEW_HH
#define BPSIM_PREDICTORS_GSKEW_HH

#include <vector>

#include "common/history.hh"
#include "common/sat_counter.hh"
#include "predictors/predictor.hh"

namespace bpsim {

/** EV8-style 2Bc-gskew hybrid. */
class GskewPredictor : public DirectionPredictor
{
  public:
    /**
     * @param bank_entries Entries per bank (power of two); the total
     *        budget is 4 banks x entries x 2 bits.
     * @param history_bits Global history length; 0 picks the EV8-ish
     *        default of 1.5x the bank index width.
     */
    explicit GskewPredictor(std::size_t bank_entries,
                            unsigned history_bits = 0);

    std::string name() const override { return "2bc-gskew"; }
    std::size_t storageBits() const override
    {
        return (bim_.size() + g0_.size() + g1_.size() + meta_.size()) *
                   2 +
               history_.length();
    }
    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;
    void visitState(robust::StateVisitor &v) override;

  private:
    struct Indices
    {
        std::size_t bim, g0, g1, meta;
    };
    Indices indices(Addr pc) const;

    std::vector<TwoBitCounter> bim_;
    std::vector<TwoBitCounter> g0_;
    std::vector<TwoBitCounter> g1_;
    std::vector<TwoBitCounter> meta_;
    std::size_t mask_;
    unsigned indexBits_;
    HistoryRegister history_;

    // predict() -> update() carried state
    bool pBim_ = false, pG0_ = false, pG1_ = false;
    bool pEgskew_ = false, pMetaGskew_ = false, pFinal_ = false;
};

} // namespace bpsim

#endif // BPSIM_PREDICTORS_GSKEW_HH
