#include "predictors/gshare_fast.hh"

#include <bit>
#include <cassert>

#include "common/bitutil.hh"
#include "robust/state_visitor.hh"

namespace bpsim {

namespace {

/**
 * Within-row select width: the PHT buffer (and hence the select)
 * must cover every speculative history bit that can appear while a
 * row read is in flight — at least 2^latency entries (Section
 * 3.3.1) — and at least the paper's 9-bit PC select, clamped to the
 * index width of small tables.
 */
unsigned
selectWidthFor(std::size_t entries, unsigned row_lag)
{
    return std::min(std::max(GshareFastPredictor::selectBits, row_lag),
                    floorLog2(entries));
}

} // namespace

GshareFastPredictor::GshareFastPredictor(std::size_t entries,
                                         unsigned row_lag,
                                         unsigned update_delay)
    : pht_(entries),
      historyBits_(floorLog2(entries)),
      selBits_(selectWidthFor(entries, row_lag)),
      // Staleness can never exceed the select width (tiny tables
      // with huge lags clamp), or row bits would be skipped.
      rowLag_(std::min(row_lag, selectWidthFor(entries, row_lag))),
      updateDelay_(update_delay),
      historyRing_(std::bit_ceil(std::size_t{rowLag_} + 1), 0),
      ringMask_(historyRing_.size() - 1)
{
    assert(isPowerOfTwo(entries));
    assert(historyBits_ <= 64 &&
           "gshare.fast functional model holds history in one word");
}

void
GshareFastPredictor::visitState(robust::StateVisitor &v)
{
    // The budgeted SRAM is the PHT plus the speculative history
    // register. (The history ring and pending-update queue are
    // pipeline latches, not part of the predictor's storage budget;
    // an upset there is a re-steer, not a table corruption.)
    v.visit(robust::packedCounterField("pred.gshare.fast.pht", pht_));
    v.visit(robust::wordField("pred.gshare.fast.history", history_,
                              historyBits_));
}

} // namespace bpsim
