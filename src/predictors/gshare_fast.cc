#include "predictors/gshare_fast.hh"

#include <cassert>

#include "common/bitutil.hh"
#include "robust/state_visitor.hh"

namespace bpsim {

namespace {

/**
 * Within-row select width: the PHT buffer (and hence the select)
 * must cover every speculative history bit that can appear while a
 * row read is in flight — at least 2^latency entries (Section
 * 3.3.1) — and at least the paper's 9-bit PC select, clamped to the
 * index width of small tables.
 */
unsigned
selectWidthFor(std::size_t entries, unsigned row_lag)
{
    return std::min(std::max(GshareFastPredictor::selectBits, row_lag),
                    floorLog2(entries));
}

} // namespace

GshareFastPredictor::GshareFastPredictor(std::size_t entries,
                                         unsigned row_lag,
                                         unsigned update_delay)
    : pht_(entries),
      historyBits_(floorLog2(entries)),
      selBits_(selectWidthFor(entries, row_lag)),
      // Staleness can never exceed the select width (tiny tables
      // with huge lags clamp), or row bits would be skipped.
      rowLag_(std::min(row_lag, selectWidthFor(entries, row_lag))),
      updateDelay_(update_delay),
      historyRing_(rowLag_ + 1, 0)
{
    assert(isPowerOfTwo(entries));
    assert(historyBits_ <= 64 &&
           "gshare.fast functional model holds history in one word");
}

std::size_t
GshareFastPredictor::indexFor(Addr pc) const
{
    // Row from *stale* history (the prefetch began rowLag branches
    // ago), column from the freshest speculative history XOR the low
    // PC bits. The fetch-time bit that sits at select-boundary
    // position selBits at prediction time was at position
    // (selBits - rowLag) when the row address was formed, so the row
    // shift is selBits - rowLag: together the column and row then
    // observe a contiguous history window, which is why the buffer
    // must hold at least 2^latency entries (Section 3.3.1). With
    // rowLag == 0 the row uses current history and the only
    // difference from gshare is that PC bits stop at bit selBits.
    const std::uint64_t lagged =
        historyRing_[(ringPos_ + historyRing_.size() - rowLag_) %
                     historyRing_.size()];
    const std::uint64_t row =
        (lagged >> (selBits_ - rowLag_)) &
        loMask(historyBits_ - selBits_);
    const std::uint64_t col =
        (indexPc(pc) ^ history_) & loMask(selBits_);
    return static_cast<std::size_t>((row << selBits_) | col);
}

bool
GshareFastPredictor::predict(Addr pc)
{
    return pht_[indexFor(pc)].taken();
}

void
GshareFastPredictor::visitState(robust::StateVisitor &v)
{
    // The budgeted SRAM is the PHT plus the speculative history
    // register. (The history ring and pending-update queue are
    // pipeline latches, not part of the predictor's storage budget;
    // an upset there is a re-steer, not a table corruption.)
    v.visit(robust::counterField("pred.gshare.fast.pht", pht_));
    v.visit(robust::wordField("pred.gshare.fast.history", history_,
                              historyBits_));
}

void
GshareFastPredictor::update(Addr pc, bool taken)
{
    // Non-speculative PHT update, possibly applied slowly: enqueue
    // now, retire once updateDelay_ younger branches have passed.
    pending_.emplace_back(indexFor(pc), taken);
    while (pending_.size() > updateDelay_) {
        const auto [idx, dir] = pending_.front();
        pending_.pop_front();
        pht_[idx].update(dir);
    }

    // Speculative history update with perfect recovery == shift in
    // the actual outcome (see predictor.hh).
    history_ = ((history_ << 1) | (taken ? 1 : 0)) &
               loMask(historyBits_);
    ringPos_ = (ringPos_ + 1) % historyRing_.size();
    historyRing_[ringPos_] = history_;
}

} // namespace bpsim
