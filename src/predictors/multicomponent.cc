#include "predictors/multicomponent.hh"

#include <cassert>

#include "common/bitutil.hh"
#include "predictors/local.hh"
#include "robust/state_visitor.hh"

namespace bpsim {

MultiComponentPredictor::MultiComponentPredictor(
    std::vector<ComponentSpec> global_specs,
    std::size_t selector_entries, std::size_t local_entries,
    std::size_t bimodal_entries)
    : selectorMask_(selector_entries - 1)
{
    assert(isPowerOfTwo(selector_entries));
    assert(!global_specs.empty());

    // The bimodal component covers biased branches cheaply.
    components_.push_back(std::make_unique<BimodalPredictor>(
        std::max<std::size_t>(bimodal_entries, 64)));
    // A local-history two-level component catches self-correlated
    // branches no global-history component sees.
    if (local_entries > 0)
        components_.push_back(std::make_unique<LocalPredictor>(
            local_entries, 10, 1024, 3));
    for (const ComponentSpec &spec : global_specs)
        components_.push_back(std::make_unique<GsharePredictor>(
            spec.entries, spec.historyBits));

    // Start fully confident so cold branches use the longest-history
    // component only once it proves itself; ties resolve toward the
    // *later* (longer-history) component below.
    selector_.assign(selector_entries * components_.size(),
                     SatCounter(2, 3));
    componentPreds_.resize(components_.size());
    chosenCounts_.assign(components_.size(), 0);
}

std::size_t
MultiComponentPredictor::storageBits() const
{
    std::size_t bits = selector_.size() * 2;
    for (const auto &c : components_)
        bits += c->storageBits();
    return bits;
}

std::size_t
MultiComponentPredictor::selectorIndex(Addr pc) const
{
    return (static_cast<std::size_t>(indexPc(pc)) & selectorMask_) *
           components_.size();
}

bool
MultiComponentPredictor::predict(Addr pc)
{
    const std::size_t base = selectorIndex(pc);
    std::size_t best = 0;
    std::uint8_t best_conf = 0;
    for (std::size_t c = 0; c < components_.size(); ++c) {
        componentPreds_[c] = components_[c]->predict(pc);
        const std::uint8_t conf = selector_[base + c].value();
        // >= so that ties pick the longest-history component, which
        // Evers found captures the most correlation when confident.
        if (conf >= best_conf) {
            best_conf = conf;
            best = c;
        }
    }
    chosen_ = best;
    lastPrediction_ = componentPreds_[chosen_];
    ++predicts_;
    ++chosenCounts_[chosen_];
    return lastPrediction_;
}

void
MultiComponentPredictor::update(Addr pc, bool taken)
{
    const std::size_t base = selectorIndex(pc);
    const bool hybrid_correct = lastPrediction_ == taken;
    for (std::size_t c = 0; c < components_.size(); ++c) {
        const bool correct = componentPreds_[c] == taken;
        if (!hybrid_correct) {
            // The selection failed: re-rank every component so a
            // component that handles this branch takes over.
            if (correct)
                selector_[base + c].increment();
            else
                selector_[base + c].decrement();
        } else if (c == chosen_) {
            // Reinforce a working choice; leave the others alone
            // (Evers' rule — demoting them on every success makes
            // the selector thrash on noisy branches).
            selector_[base + c].increment();
        }
        components_[c]->update(pc, taken);
    }
}

void
MultiComponentPredictor::visitState(robust::StateVisitor &v)
{
    // Selector confidences are two-bit SatCounters; every component
    // then exposes its own tables, so the walk covers the full
    // storageBits() budget. Component fields are prefixed with their
    // slot so the three gshare components stay distinguishable to
    // fault plans and protection ledgers.
    v.visit(robust::satCounterField("pred.multicomponent.selector",
                                    selector_, 2));
    for (std::size_t c = 0; c < components_.size(); ++c) {
        robust::PrefixingStateVisitor pv(
            v, "pred.multicomponent.c" + std::to_string(c) + ".");
        components_[c]->visitState(pv);
    }
}

std::vector<PredictorStat>
MultiComponentPredictor::describeStats() const
{
    // Per-table contribution: how often the selector predicted with
    // each component. Component 0 is bimodal, 1 the local-history
    // component (when present), the rest ascending global history.
    std::vector<PredictorStat> stats;
    const double n = predicts_ ? static_cast<double>(predicts_) : 1.0;
    for (std::size_t c = 0; c < components_.size(); ++c)
        stats.push_back(
            {"pred.multicomponent.contribution{component=" +
                 std::to_string(c) + ":" + components_[c]->name() +
                 "}",
             static_cast<double>(chosenCounts_[c]) / n});
    stats.push_back({"pred.multicomponent.predicts",
                     static_cast<double>(predicts_)});
    return stats;
}

} // namespace bpsim
